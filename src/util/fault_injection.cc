#include "util/fault_injection.h"

#include <algorithm>
#include <fstream>

// Test-support inversion: the harness must speak the binary-catalog layout,
// whose single definition lives in core/serialize.h (binfmt). Production
// util code does not depend on core; this file is tooling for the tests.
#include "core/serialize.h"
#include "util/crc32c.h"

namespace pathest {

Result<std::vector<BinarySectionInfo>> ParseBinarySectionTable(
    std::string_view bytes) {
  using namespace binfmt;  // NOLINT — layout constants
  if (bytes.size() < kHeaderBytes) {
    return Status::IOError("image too short for a header");
  }
  BoundedReader header(bytes.data(), kHeaderBytes);
  PATHEST_RETURN_NOT_OK(header.Skip(kMagicBytes + 4, "magic+version"));
  uint32_t section_count = 0;
  PATHEST_RETURN_NOT_OK(header.ReadU32(&section_count, "section count"));
  if (section_count > kMaxSections) {
    return Status::IOError("implausible section count in image");
  }
  const size_t table_bytes = section_count * kSectionEntryBytes;
  if (bytes.size() < kHeaderBytes + table_bytes) {
    return Status::IOError("image too short for its section table");
  }
  BoundedReader table(bytes.data() + kHeaderBytes, table_bytes);
  std::vector<BinarySectionInfo> sections(section_count);
  for (BinarySectionInfo& s : sections) {
    PATHEST_RETURN_NOT_OK(table.ReadU32(&s.id, "id"));
    PATHEST_RETURN_NOT_OK(table.ReadU32(&s.crc, "crc"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&s.offset, "offset"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&s.length, "length"));
  }
  return sections;
}

std::vector<size_t> TruncationPoints(std::string_view bytes) {
  std::vector<size_t> points;
  // Byte-granularity over the fixed header — the region where every field
  // gates a different validation path.
  for (size_t i = 0; i <= binfmt::kHeaderBytes && i < bytes.size(); ++i) {
    points.push_back(i);
  }
  auto sections = ParseBinarySectionTable(bytes);
  if (sections.ok()) {
    for (const BinarySectionInfo& s : *sections) {
      // Both edges and the midpoint of every section payload.
      points.push_back(s.offset);
      points.push_back(s.offset + s.length / 2);
      points.push_back(s.offset + s.length);
    }
    if (!sections->empty()) {
      // End of the section table (= start of the first payload region).
      points.push_back(binfmt::kHeaderBytes +
                       sections->size() * binfmt::kSectionEntryBytes);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  // Truncations only: drop any point at or past the full size.
  while (!points.empty() && points.back() >= bytes.size()) points.pop_back();
  return points;
}

Status FlipBit(std::string* bytes, size_t offset, int bit) {
  if (offset >= bytes->size() || bit < 0 || bit > 7) {
    return Status::InvalidArgument("flip outside the image");
  }
  (*bytes)[offset] = static_cast<char>(
      static_cast<unsigned char>((*bytes)[offset]) ^ (1u << bit));
  return Status::OK();
}

Status PatchSectionPayload(std::string* bytes, uint32_t section_id,
                           size_t offset_in_payload,
                           std::string_view replacement) {
  using namespace binfmt;  // NOLINT — layout constants
  auto sections = ParseBinarySectionTable(*bytes);
  PATHEST_RETURN_NOT_OK(sections.status());
  for (size_t idx = 0; idx < sections->size(); ++idx) {
    const BinarySectionInfo& s = (*sections)[idx];
    if (s.id != section_id) continue;
    if (offset_in_payload + replacement.size() > s.length ||
        s.offset + s.length > bytes->size()) {
      return Status::InvalidArgument("patch outside the section payload");
    }
    bytes->replace(s.offset + offset_in_payload, replacement.size(),
                   replacement.data(), replacement.size());
    // Refresh the section CRC in its table entry (entry layout: id, crc,
    // offset, length)…
    const uint32_t new_crc =
        Crc32c(bytes->data() + s.offset, static_cast<size_t>(s.length));
    std::string crc_le;
    AppendU32(&crc_le, new_crc);
    const size_t entry_at = kHeaderBytes + idx * kSectionEntryBytes;
    bytes->replace(entry_at + 4, 4, crc_le);
    // …and the table CRC in the header (at kHeaderBytes - 4), since the
    // table bytes just changed.
    const size_t table_bytes = sections->size() * kSectionEntryBytes;
    std::string table_crc_le;
    AppendU32(&table_crc_le, Crc32c(bytes->data() + kHeaderBytes,
                                    table_bytes));
    bytes->replace(kHeaderBytes - 4, 4, table_crc_le);
    return Status::OK();
  }
  return Status::NotFound("section id " + std::to_string(section_id) +
                          " not present");
}

Status WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out.is_open()) return Status::IOError("cannot write: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::string out;
  PATHEST_RETURN_NOT_OK(ReadFileToString(path, &out));
  return out;
}

Status ScriptedWriteFaults::OnWrite(size_t already_written, size_t chunk,
                                    size_t* allowed) {
  if (fail_write_at_byte == SIZE_MAX ||
      already_written + chunk <= fail_write_at_byte) {
    return Status::OK();
  }
  // Land the torn prefix, then fail.
  *allowed = fail_write_at_byte > already_written
                 ? fail_write_at_byte - already_written
                 : 0;
  return Status::IOError("scripted write fault");
}

Status ScriptedWriteFaults::OnSync() {
  return fail_sync ? Status::IOError("scripted fsync fault") : Status::OK();
}

Status ScriptedWriteFaults::OnRename() {
  return fail_rename ? Status::IOError("scripted rename fault")
                     : Status::OK();
}

}  // namespace pathest
