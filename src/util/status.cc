#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace pathest {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ == nullptr ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "PATHEST_CHECK failed at %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace internal
}  // namespace pathest
