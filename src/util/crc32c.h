// pathest: CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the
// checksum guarding every binary-catalog section (core/serialize.h).
//
// CRC32C is the storage-industry default (iSCSI, ext4, LevelDB/RocksDB
// block trailers) because it detects all burst errors up to 32 bits and
// has hardware support on modern ISAs. Two implementations, selected once
// at runtime:
//
//   - SSE4.2 `crc32` instruction path (x86-64 with __builtin_cpu_supports
//     detection): ~8 bytes per 3-cycle latency step, several GB/s — this
//     is what keeps the mmap admission checksum walk (core/catalog_cache.h)
//     in the hundreds of microseconds for multi-megabyte catalogs.
//   - Portable software slicing-by-8 fallback: eight 256-entry tables built
//     once at first use, ~1 byte/cycle.
//
// Both produce the same Castagnoli values, so checksums written by either
// verify under the other (the committed golden catalogs do not depend on
// the host ISA).

#ifndef PATHEST_UTIL_CRC32C_H_
#define PATHEST_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace pathest {

/// \brief CRC32C of `data[0, n)`, continuing from `crc` (pass 0 to start).
///
/// Streaming-friendly: Crc32c(b, Crc32c(a)) == Crc32c(a ++ b). The value
/// is the plain (unmasked) CRC; callers that store checksums next to the
/// data they cover should prefer Crc32cMasked below.
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

/// \brief CRC mixed so that a stored checksum is not a fixed point of the
/// CRC of its own bytes (the LevelDB masking trick: computing the CRC of a
/// buffer that embeds its CRC would otherwise verify trivially).
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// \brief Inverse of Crc32cMask.
inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace pathest

#endif  // PATHEST_UTIL_CRC32C_H_
