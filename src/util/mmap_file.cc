#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pathest {

namespace {

FileId FileIdFromStat(const struct stat& st) {
  FileId id;
  id.device = static_cast<uint64_t>(st.st_dev);
  id.inode = static_cast<uint64_t>(st.st_ino);
  id.size = static_cast<uint64_t>(st.st_size);
  id.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                st.st_mtim.tv_nsec;
  return id;
}

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Result<FileId> StatFileId(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoError("cannot stat", path);
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  return FileIdFromStat(st);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      id_(other.id_),
      data_(other.data_),
      size_(other.size_) {
  other.path_.clear();
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    path_ = std::move(other.path_);
    id_ = other.id_;
    data_ = other.data_;
    size_ = other.size_;
    other.path_.clear();
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoError("cannot open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = ErrnoError("cannot fstat", path);
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("not a regular file: " + path);
  }

  MappedFile file;
  file.path_ = path;
  file.id_ = FileIdFromStat(st);
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      Status status = ErrnoError("cannot mmap", path);
      ::close(fd);
      return status;
    }
    file.data_ = data;
  }
  // The mapping pins the file contents; the descriptor is no longer
  // needed (and holding it would leak fds across a long-lived cache).
  ::close(fd);
  return file;
}

void MappedFile::Advise(Advice advice) const {
  if (data_ == nullptr) return;
  int native = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      native = MADV_NORMAL;
      break;
    case Advice::kRandom:
      native = MADV_RANDOM;
      break;
    case Advice::kSequential:
      native = MADV_SEQUENTIAL;
      break;
    case Advice::kWillNeed:
      native = MADV_WILLNEED;
      break;
    case Advice::kDontNeed:
      native = MADV_DONTNEED;
      break;
  }
  (void)::madvise(data_, size_, native);
}

}  // namespace pathest
