#include "util/random.h"

#include <cmath>

#include "util/status.h"

namespace pathest {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PATHEST_CHECK(bound > 0, "NextBounded requires bound > 0");
  // Lemire's method: multiply-shift with a rejection pass for exactness.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PATHEST_CHECK(lo <= hi, "NextInRange requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A55A5A5A5AULL); }

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  PATHEST_CHECK(n >= 1, "Zipf requires n >= 1");
  PATHEST_CHECK(s >= 0.0, "Zipf requires s >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_[n - 1] = 1.0;  // guard against FP drift
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first index with cdf >= u.
  uint64_t lo = 0;
  uint64_t hi = n_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(uint64_t i) const {
  PATHEST_CHECK(i < n_, "Zipf Pmf index out of range");
  double prev = (i == 0) ? 0.0 : cdf_[i - 1];
  return cdf_[i] - prev;
}

}  // namespace pathest
