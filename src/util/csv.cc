#include "util/csv.h"

#include <cstdio>

namespace pathest {

std::string CsvWriter::QuoteCell(const std::string& cell) {
  bool needs_quote = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header) {
  if (out_.is_open()) return Status::AlreadyExists("CsvWriter already open");
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IOError("cannot open CSV file for writing: " + path);
  }
  num_columns_ = header.size();
  return WriteRow(header);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return Status::IOError("CsvWriter is not open");
  if (num_columns_ != 0 && cells.size() != num_columns_) {
    return Status::InvalidArgument("CSV row has " +
                                   std::to_string(cells.size()) +
                                   " cells, expected " +
                                   std::to_string(num_columns_));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << QuoteCell(cells[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
    if (out_.fail()) return Status::IOError("CSV close failed");
  }
  return Status::OK();
}

std::string CsvCell(uint64_t v) { return std::to_string(v); }
std::string CsvCell(int64_t v) { return std::to_string(v); }

std::string CsvCell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

}  // namespace pathest
