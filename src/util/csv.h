// pathest: tiny CSV writer used by the bench harness to persist the rows it
// prints, so figures can be re-plotted without re-running experiments.

#ifndef PATHEST_UTIL_CSV_H_
#define PATHEST_UTIL_CSV_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace pathest {

/// \brief Streaming CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  CsvWriter() = default;

  /// \brief Opens `path` for writing and emits `header` as the first row.
  Status Open(const std::string& path, const std::vector<std::string>& header);

  /// \brief Appends one row; the cell count should match the header.
  Status WriteRow(const std::vector<std::string>& cells);

  /// \brief Flushes and closes the file. Idempotent.
  Status Close();

  bool is_open() const { return out_.is_open(); }

  /// \brief Quotes a single cell per RFC 4180 (only when needed).
  static std::string QuoteCell(const std::string& cell);

 private:
  std::ofstream out_;
  size_t num_columns_ = 0;
};

/// \brief Convenience numeric-to-cell conversions.
std::string CsvCell(uint64_t v);
std::string CsvCell(int64_t v);
std::string CsvCell(double v);

}  // namespace pathest

#endif  // PATHEST_UTIL_CSV_H_
