// pathest: DynamicBitset — a fixed-capacity bit set with word-parallel
// operations, the scratch structure behind the evaluator's dense extension
// kernel (path/pair_set.h).
//
// The dense kernel's access pattern drives the API: successors are
// accumulated with blind single-bit ORs (duplicates are free — no branch,
// no read-check), then drained either as a popcount total or as an
// ascending word scan that emits set positions and zeroes each word on the
// way out, so the structure is all-zero again when the scan finishes and
// reset costs nothing between uses. One bit per vertex is 64× denser than
// the Marker's per-vertex epoch word, which is what lets dense target sets
// stay cache-resident.

#ifndef PATHEST_UTIL_BITSET_H_
#define PATHEST_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathest {

/// \brief Fixed-capacity bit set over positions [0, num_bits).
///
/// Scratch, not a value: reusable across any number of accumulate/drain
/// cycles and not thread-safe — parallel callers own disjoint instances
/// (see engine/eval_context.h). The draining operations (CountAndClear,
/// ExtractAndClear) restore the all-zero state, which is the invariant
/// every kernel relies on between source groups.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t num_bits) { Reset(num_bits); }

  /// \brief Resizes to `num_bits` positions and clears every bit.
  void Reset(size_t num_bits);

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  /// \brief True when bit `i` is set. i must be < num_bits().
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// \brief Sets bit `i`; returns true when it was previously clear.
  bool SetBit(size_t i) {
    uint64_t& word = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (word & mask) return false;
    word |= mask;
    return true;
  }

  /// \brief Branch-free set: duplicates cost one OR and nothing else. The
  /// hot-kernel variant — distinctness is recovered later by the drain.
  void SetBitBlind(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  /// \brief Word-level union: this |= other. Capacities must match.
  void UnionWith(const DynamicBitset& other);

  /// \brief Raw word-level union of an external bitmap row: words_[i] |=
  /// words[i] for i in [0, n). n must be <= num_words(). The fused
  /// kernel's row accumulate — a plain loop the compiler vectorizes, so a
  /// whole adjacency row ORs in at a handful of SIMD ops instead of one
  /// read-modify-write per edge.
  void OrWords(const uint64_t* words, size_t n) {
    uint64_t* w = words_.data();
    for (size_t i = 0; i < n; ++i) w[i] |= words[i];
  }

  /// \brief Number of set bits.
  uint64_t Count() const;

  /// \brief Popcount total and zero in one pass, leaving the set empty.
  uint64_t CountAndClear();

  /// \brief Zeroes every word.
  void ClearAll();

  /// \brief Calls fn(i) for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t word = words_[wi];
      while (word != 0) {
        fn((wi << 6) + static_cast<size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  /// \brief Ascending emission with free reset: like ForEachSetBit, but each
  /// word is zeroed as soon as its bits have been emitted, so the set is
  /// empty when the scan returns. The dense kernel's drain.
  template <typename Fn>
  void ExtractAndClear(Fn&& fn) {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t word = words_[wi];
      if (word == 0) continue;
      words_[wi] = 0;
      do {
        fn((wi << 6) + static_cast<size_t>(std::countr_zero(word)));
        word &= word - 1;
      } while (word != 0);
    }
  }

  /// \brief Word-scan iterator over set bit positions, ascending. Enables
  /// range-for over the set; invalidated by any mutation.
  class ConstIterator {
   public:
    using value_type = size_t;
    using difference_type = ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    size_t operator*() const {
      return (word_index_ << 6) + static_cast<size_t>(std::countr_zero(word_));
    }
    ConstIterator& operator++() {
      word_ &= word_ - 1;
      SkipEmptyWords();
      return *this;
    }
    ConstIterator operator++(int) {
      ConstIterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const ConstIterator& other) const {
      return word_index_ == other.word_index_ && word_ == other.word_;
    }
    bool operator!=(const ConstIterator& other) const {
      return !(*this == other);
    }

   private:
    friend class DynamicBitset;
    ConstIterator(const std::vector<uint64_t>* words, size_t word_index)
        : words_(words),
          word_index_(word_index),
          word_(word_index < words->size() ? (*words)[word_index] : 0) {
      SkipEmptyWords();
    }
    void SkipEmptyWords() {
      while (word_ == 0 && word_index_ + 1 < words_->size()) {
        word_ = (*words_)[++word_index_];
      }
      if (word_ == 0) word_index_ = words_->size();  // normalize to end()
    }

    const std::vector<uint64_t>* words_;
    size_t word_index_;
    uint64_t word_;
  };

  ConstIterator begin() const { return ConstIterator(&words_, 0); }
  ConstIterator end() const { return ConstIterator(&words_, words_.size()); }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pathest

#endif  // PATHEST_UTIL_BITSET_H_
