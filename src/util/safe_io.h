// pathest: crash-safe file writing and bounds-checked binary reading — the
// durability substrate of the binary catalog (core/serialize.h).
//
// Two invariants this module enforces for every catalog on disk:
//
//   1. No partially-written file is ever visible at its final path.
//      AtomicFileWriter stages all bytes in `<path>.tmp.<pid>`, fsyncs the
//      file AND its directory, and publishes with a POSIX rename — which is
//      atomic with respect to concurrent readers and crashes. A failure at
//      any step (short write, failed fsync, failed rename, process death)
//      leaves the previous file at `path` byte-identical and unlinks the
//      temp file on the error path.
//
//   2. No length or count field read from a file is trusted before it is
//      checked against the bytes that actually exist. BoundedReader is a
//      cursor over an in-memory buffer whose every read is bounds-checked
//      and whose ValidateCount() must be called before sizing any
//      allocation from file data — a forged 2^60 element count yields an
//      IOError, never an OOM.
//
// Fault injection: SetWriteFaultInjectorForTesting installs a process-wide
// hook consulted by AtomicFileWriter at each write/sync/rename so the
// fault-injection suite (util/fault_injection.h) can simulate crashes at
// every stage of a save. Test-only; not thread-safe against concurrent
// writers.
//
// Signal safety: every read/write/fsync/open loop in this module retries
// EINTR (a delivered signal must not surface as a spurious IOError in a
// long-running daemon), and close() is deliberately NOT retried on EINTR —
// on Linux the descriptor is closed regardless, and a retry could close a
// descriptor re-used by another thread. Daemons should additionally call
// IgnoreSigpipeForProcess() so a peer closing a socket mid-write yields
// EPIPE (an error return) instead of killing the process.

#ifndef PATHEST_UTIL_SAFE_IO_H_
#define PATHEST_UTIL_SAFE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pathest {

/// \brief Test hook simulating crashes inside an atomic save. Every method
/// returning non-OK makes the writer fail (and clean up) at that point.
class WriteFaultInjector {
 public:
  virtual ~WriteFaultInjector() = default;

  /// Called before writing `chunk` bytes (having durably accepted
  /// `already_written`). May clamp the write via `*allowed` (a short write,
  /// then the returned Status decides success of the remainder).
  virtual Status OnWrite(size_t already_written, size_t chunk,
                         size_t* allowed) {
    (void)already_written;
    (void)chunk;
    (void)allowed;
    return Status::OK();
  }

  /// Called before fsync of the temp file.
  virtual Status OnSync() { return Status::OK(); }

  /// Called before the rename that publishes the file.
  virtual Status OnRename() { return Status::OK(); }
};

/// \brief Installs (or, with nullptr, removes) the process-wide injector.
/// Returns the previous one. FOR TESTS ONLY.
WriteFaultInjector* SetWriteFaultInjectorForTesting(
    WriteFaultInjector* injector);

/// \brief Writes a file so that the final path only ever holds a complete,
/// durable copy (see file comment). Typical use:
///
///   AtomicFileWriter writer(path);
///   PATHEST_RETURN_NOT_OK(writer.Open());
///   PATHEST_RETURN_NOT_OK(writer.Append(bytes.data(), bytes.size()));
///   PATHEST_RETURN_NOT_OK(writer.Commit());
///
/// Destruction before Commit() abandons the write: the temp file is
/// unlinked and the final path is untouched.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// \brief Creates the temp file. IOError if it cannot be created.
  Status Open();

  /// \brief Appends bytes to the temp file.
  Status Append(const void* data, size_t n);
  Status Append(std::string_view bytes) {
    return Append(bytes.data(), bytes.size());
  }

  /// \brief Flushes, fsyncs, closes, renames into place, and fsyncs the
  /// parent directory. After OK the file is durable at the final path; on
  /// error the previous file (if any) is untouched and the temp is gone.
  Status Commit();

  /// \brief Unlinks the temp file without publishing. Idempotent.
  void Abandon();

  const std::string& path() const { return final_path_; }
  const std::string& temp_path() const { return tmp_path_; }

 private:
  Status FailAndCleanup(std::string msg);

  std::string final_path_;
  std::string tmp_path_;
  int fd_ = -1;
  size_t written_ = 0;
  bool committed_ = false;
};

/// \brief One-shot atomic write of `contents` to `path`.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// \brief Append-only writer with explicit durability points — the
/// substrate of the edge-delta journal (maint/delta_journal.h), where the
/// file GROWS in place instead of being republished whole.
///
/// The discipline is append-then-Sync: Append() hands bytes to the kernel,
/// Sync() (fdatasync) makes everything appended so far durable; a record
/// is acknowledged only after its Sync returns OK. Both stages consult the
/// process-wide WriteFaultInjector (the same hook AtomicFileWriter uses),
/// and an injected write failure may land a short write first — so the
/// crash matrix produces exactly the torn-tail shape a power loss leaves,
/// which the journal's recovery scan must (and does) amputate. Unlike
/// AtomicFileWriter, a failure does NOT unlink anything: the file plus its
/// torn tail IS the crash artifact recovery is tested against.
class DurableAppendFile {
 public:
  DurableAppendFile() = default;
  ~DurableAppendFile();  // closes without syncing (unsynced tail may tear)

  DurableAppendFile(const DurableAppendFile&) = delete;
  DurableAppendFile& operator=(const DurableAppendFile&) = delete;

  /// \brief Opens (creating if absent) `path` for appending; records the
  /// current end-of-file offset.
  Status Open(const std::string& path);

  /// \brief Appends bytes (EINTR-safe). Not yet durable.
  Status Append(std::string_view bytes);

  /// \brief Makes every appended byte durable (fdatasync).
  Status Sync();

  /// \brief Closes the descriptor without syncing. Idempotent.
  void Close();

  bool is_open() const { return fd_ >= 0; }
  /// \brief End-of-file offset: bytes handed to the kernel so far.
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  uint64_t offset_ = 0;
};

/// \brief Truncates `path` to `new_size` bytes and fsyncs it — recovery's
/// torn-tail amputation. Consults the WriteFaultInjector's OnSync (a crash
/// between truncate and fsync re-runs recovery, which is idempotent).
Status TruncateFileDurable(const std::string& path, uint64_t new_size);

/// \brief Slurps a whole file (binary mode) into `*out`. IOError on any
/// failure; the existing content of `*out` is replaced only on success.
/// EINTR-safe: interrupted reads resume where they left off.
Status ReadFileToString(const std::string& path, std::string* out);

/// \brief Ignores SIGPIPE for the whole process (idempotent). A server
/// writing to a socket whose peer died then sees EPIPE from write()/send()
/// instead of being killed by the default SIGPIPE disposition.
void IgnoreSigpipeForProcess();

/// \brief Bounds-checked little-endian cursor over an in-memory buffer.
///
/// Every accessor fails with a typed IOError instead of reading past the
/// end; the buffer must outlive the reader. The `what` strings name the
/// field being read so corruption errors localize themselves ("section
/// histogram: truncated reading bucket begins").
class BoundedReader {
 public:
  BoundedReader(const void* data, size_t size)
      : cur_(static_cast<const uint8_t*>(data)),
        end_(static_cast<const uint8_t*>(data) + size) {}
  explicit BoundedReader(std::string_view bytes)
      : BoundedReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - cur_); }
  bool AtEnd() const { return cur_ == end_; }

  Status ReadU32(uint32_t* out, const char* what);
  Status ReadU64(uint64_t* out, const char* what);
  /// Doubles travel as their IEEE-754 bit pattern in a little-endian u64:
  /// bit-exact, no locale, no hexfloat parsing.
  Status ReadDouble(double* out, const char* what);
  Status ReadBytes(void* out, size_t n, const char* what);
  /// u32 length prefix + raw bytes; length is validated against both
  /// `max_len` and the remaining buffer BEFORE any allocation.
  Status ReadLengthPrefixedString(std::string* out, size_t max_len,
                                  const char* what);
  Status Skip(size_t n, const char* what);

  /// \brief Guards allocations sized from file data: fails unless
  /// `count * elem_bytes` (overflow-checked) fits in the remaining bytes.
  /// MUST be called before any reserve/resize driven by an untrusted count.
  Status ValidateCount(uint64_t count, uint64_t elem_bytes,
                       const char* what) const;

 private:
  const uint8_t* cur_;
  const uint8_t* end_;
};

/// \brief Appends fixed-width little-endian fields to a byte buffer — the
/// writer-side twin of BoundedReader.
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendDouble(std::string* out, double v);
void AppendLengthPrefixedString(std::string* out, std::string_view s);

}  // namespace pathest

#endif  // PATHEST_UTIL_SAFE_IO_H_
