#include "util/crc32c.h"

#include <cstring>

namespace pathest {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int slice = 1; slice < 8; ++slice) {
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PATHEST_CRC32C_HW 1

// The SSE4.2 crc32 instruction computes exactly the reflected-Castagnoli
// update the tables above implement, so the two paths are bit-identical.
// target("sse4.2") scopes the ISA extension to this one function; the
// runtime __builtin_cpu_supports gate below keeps it off pre-Nehalem CPUs.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const uint8_t* p,
                                                          size_t n,
                                                          uint32_t crc) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return ~crc;
}

bool HaveCrc32cHardware() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif  // __x86_64__

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
#ifdef PATHEST_CRC32C_HW
  if (HaveCrc32cHardware()) {
    return Crc32cHardware(static_cast<const uint8_t*>(data), n, crc);
  }
#endif
  const Tables& tab = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment, then slicing-by-8.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    // Little-endian fold: works on LE hosts; the build targets LE only
    // (the binary catalog format is defined little-endian, serialize.h).
    word ^= crc;
    crc = tab.t[7][word & 0xFF] ^ tab.t[6][(word >> 8) & 0xFF] ^
          tab.t[5][(word >> 16) & 0xFF] ^ tab.t[4][(word >> 24) & 0xFF] ^
          tab.t[3][(word >> 32) & 0xFF] ^ tab.t[2][(word >> 40) & 0xFF] ^
          tab.t[1][(word >> 48) & 0xFF] ^ tab.t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  return ~crc;
}

}  // namespace pathest
