#include "util/bitset.h"

#include "util/status.h"

namespace pathest {

void DynamicBitset::Reset(size_t num_bits) {
  num_bits_ = num_bits;
  words_.assign((num_bits + 63) / 64, 0);
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  PATHEST_CHECK(num_bits_ == other.num_bits_,
                "DynamicBitset::UnionWith capacity mismatch");
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    words_[wi] |= other.words_[wi];
  }
}

uint64_t DynamicBitset::Count() const {
  uint64_t total = 0;
  for (uint64_t word : words_) {
    total += static_cast<uint64_t>(std::popcount(word));
  }
  return total;
}

uint64_t DynamicBitset::CountAndClear() {
  uint64_t total = 0;
  for (uint64_t& word : words_) {
    total += static_cast<uint64_t>(std::popcount(word));
    word = 0;
  }
  return total;
}

void DynamicBitset::ClearAll() {
  for (uint64_t& word : words_) word = 0;
}

}  // namespace pathest
