// pathest: Status / Result error-handling primitives.
//
// The public API of this library does not throw exceptions; fallible
// operations return a Status (or a Result<T> carrying a value on success).
// This mirrors the idiom used by Arrow and RocksDB.

#ifndef PATHEST_UTIL_STATUS_H_
#define PATHEST_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace pathest {

/// \brief Machine-readable category of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses own their message.
/// Statuses are cheap to move and to test for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg);

  /// \brief Returns the success singleton.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// \brief True iff the status represents success.
  bool ok() const noexcept { return state_ == nullptr; }

  /// \brief The status code (kOk for success).
  StatusCode code() const noexcept {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const;

  /// \brief Renders "<CODE>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const noexcept {
    return code() == other.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

/// \brief A value of type T or the Status explaining why it is absent.
///
/// Result is the return type for fallible constructors; successful paths
/// access the value with ValueOrDie() / operator*.
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const noexcept { return std::holds_alternative<T>(repr_); }

  /// \brief The failure status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return Status(std::get<Status>(repr_).code(),
                  std::get<Status>(repr_).message());
  }

  /// \brief Access the value. Undefined when !ok().
  const T& operator*() const& { return std::get<T>(repr_); }
  T& operator*() & { return std::get<T>(repr_); }
  const T* operator->() const { return &std::get<T>(repr_); }
  T* operator->() { return &std::get<T>(repr_); }

  /// \brief Move the value out. Undefined when !ok().
  T ValueOrDie() && { return std::move(std::get<T>(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

/// \brief Propagates a non-OK Status from the evaluated expression.
#define PATHEST_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::pathest::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// \brief Aborts the process with a message when `cond` is false.
/// Used for internal invariants that indicate programmer error.
#define PATHEST_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::pathest::internal::CheckFailed(__FILE__, __LINE__, msg); \
  } while (false)

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* msg);
}  // namespace internal

}  // namespace pathest

#endif  // PATHEST_UTIL_STATUS_H_
