// pathest: deterministic pseudo-random number generation.
//
// All randomized components (graph generators, label assigners, workload
// samplers) take an explicit Rng so that every experiment is reproducible
// from a seed. The engine is xoshiro256**, seeded via SplitMix64.

#ifndef PATHEST_UTIL_RANDOM_H_
#define PATHEST_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace pathest {

/// \brief SplitMix64 step; used for seeding and cheap hashing.
uint64_t SplitMix64(uint64_t* state);

/// \brief Deterministic xoshiro256** PRNG.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions, although the built-in helpers below are
/// preferred for cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// \brief Next 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's nearly-divisionless unbiased method.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5);

  /// \brief Forks an independent child stream (for parallel determinism).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// \brief Zipf(s, n) sampler over {0, 1, ..., n-1} by rejection inversion.
///
/// P(X = i) is proportional to 1 / (i+1)^s. The common database-benchmark
/// choice s = 1 gives the classic harmonic skew. Construction is O(n) (it
/// precomputes the CDF); sampling is O(log n).
class ZipfDistribution {
 public:
  /// \param n number of items, must be >= 1.
  /// \param s skew exponent, must be >= 0 (0 degenerates to uniform).
  ZipfDistribution(uint64_t n, double s);

  /// \brief Draws one sample in [0, n).
  uint64_t Sample(Rng* rng) const;

  /// \brief Probability mass of item i.
  double Pmf(uint64_t i) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace pathest

#endif  // PATHEST_UTIL_RANDOM_H_
