// pathest: combinatorial primitives backing the sum-based ordering
// (paper Section 3.3, Formulas 3-5).
//
// All counts are exact unsigned 64-bit values; helpers saturate-check and
// abort on overflow, which cannot occur for the parameter ranges used by the
// library (path length k <= 16, label sets |L| <= 4096).

#ifndef PATHEST_UTIL_COMBINATORICS_H_
#define PATHEST_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace pathest {

/// \brief n! as uint64. Aborts for n > 20 (overflow).
uint64_t Factorial(uint64_t n);

/// \brief Binomial coefficient C(n, k); 0 when k > n. Overflow-checked.
uint64_t Binomial(uint64_t n, uint64_t k);

/// \brief Checked a * b for uint64; aborts on overflow.
uint64_t CheckedMul(uint64_t a, uint64_t b);

/// \brief Checked a + b for uint64; aborts on overflow.
uint64_t CheckedAdd(uint64_t a, uint64_t b);

/// \brief Checked base^exp for uint64; aborts on overflow.
uint64_t CheckedPow(uint64_t base, uint64_t exp);

/// \brief Number of compositions of `sum` into exactly `m` ordered parts,
/// each in [1, num_labels] (paper Formula 3, inclusion-exclusion).
///
/// This is the size of the stage-two partition of the sum-based histogram
/// domain holding all rank permutations of length `m` with summed rank `sum`.
/// Returns 0 when the constraints are unsatisfiable.
uint64_t CompositionCount(uint64_t sum, uint64_t m, uint64_t num_labels);

/// \brief An integer partition: a multiset of parts. Parts are kept in the
/// enumeration order produced by EnumeratePartitions (see below).
using Partition = std::vector<uint32_t>;

/// \brief All partitions of `sum` into exactly `m` parts, each in
/// [1, max_part] (paper Formula 4).
///
/// Enumeration order is the order required by the sum-based ordering's
/// stage three: the recursion peels off `i` copies of the current largest
/// allowed part `max_part` with `i` ascending, so partitions using fewer
/// large parts come first. (The paper's Formula 4 writes `m - 1` where the
/// recursion must use `m - i`; Table 2 of the paper confirms the latter.)
std::vector<Partition> EnumeratePartitions(uint64_t sum, uint64_t m,
                                           uint64_t max_part);

/// \brief Number of distinct permutations of the multiset `parts`
/// (paper Formula 5): |C|! / prod_i d_i!.
uint64_t MultisetPermutationCount(const Partition& parts);

/// \brief Cached-table variant of CompositionCount for hot paths.
///
/// The sum-based (un)ranking functions evaluate CompositionCount for every
/// (sum, length) pair of a query; this table precomputes all of them for a
/// fixed label-set size and maximum path length, PLUS the running prefix
/// sums over each length's row, so the stage-two offset of the sum-based
/// ordering (sum of all lower summed-rank partition sizes) is a single O(1)
/// lookup instead of an O(sum) loop per query. The prefix build is
/// overflow-checked (CheckedAdd).
///
/// Storage comes in two forms behind the same query interface: OWNED (the
/// computing constructor fills one flat vector) and BORROWED (the Borrowed
/// factory views caller-owned rows — in practice the composition section of
/// a mapped binary catalog v2, core/serialize.h). Either way the rows live
/// in one contiguous region per kind (counts, then prefix), m-major, which
/// is exactly the on-disk layout, so the mapped form is pure pointer fixup.
class CompositionTable {
 public:
  /// Precomputes counts for all m in [1, max_len], sum in [m, m*num_labels].
  CompositionTable(uint64_t num_labels, uint64_t max_len);

  /// \brief Zero-copy form over caller-owned flat rows: `counts` holds the
  /// m-major concatenation of Count(sum, m) rows (row m has
  /// m*num_labels - m + 1 values), `prefix` the matching prefix rows (each
  /// one longer). Shapes are checked; VALUES are not — callers on untrusted
  /// bytes must verify first (core/mapped_catalog.h). The backing memory
  /// must outlive the table and everything constructed over it.
  static CompositionTable Borrowed(uint64_t num_labels, uint64_t max_len,
                                   std::span<const uint64_t> counts,
                                   std::span<const uint64_t> prefix);

  // Moves keep the flat vector's heap allocation, so the per-m spans stay
  // valid; copies would need re-pointing and nothing needs them — deleted.
  CompositionTable(CompositionTable&&) noexcept = default;
  CompositionTable& operator=(CompositionTable&&) noexcept = default;
  CompositionTable(const CompositionTable&) = delete;
  CompositionTable& operator=(const CompositionTable&) = delete;

  /// \brief CompositionCount(sum, m, num_labels()); 0 outside the table.
  uint64_t Count(uint64_t sum, uint64_t m) const;

  /// \brief Number of compositions of length `m` with sum' in [m, sum) —
  /// i.e. how many whole stage-two partitions precede summed rank `sum` in
  /// the sum-based ordering. O(1); inline, it sits on the Rank fast path.
  /// Saturates: sums past the table's end return the total count for m.
  uint64_t CumulativeBelow(uint64_t sum, uint64_t m) const {
    PATHEST_CHECK(m >= 1 && m <= max_len_, "length out of table range");
    const std::span<const uint64_t> pre = prefix_[m - 1];
    if (sum <= m) return 0;
    const uint64_t i = sum - m;
    return pre[i < pre.size() ? i : pre.size() - 1];
  }

  /// \brief Inverse of CumulativeBelow: the unique sum with
  /// CumulativeBelow(sum, m) <= offset < CumulativeBelow(sum + 1, m), found
  /// by binary search over the prefix row (O(log(m * num_labels))).
  /// `offset` must be < the total composition count for length m.
  uint64_t SumForOffset(uint64_t offset, uint64_t m) const;

  uint64_t num_labels() const { return num_labels_; }
  uint64_t max_len() const { return max_len_; }
  /// \brief False when the rows are borrowed views into caller memory.
  bool owns_storage() const { return !owned_.empty() || counts_flat_.empty(); }

  /// \brief The m-major flat count rows — what the catalog v2 writer
  /// persists and the full-verify path compares against a rebuild.
  std::span<const uint64_t> flat_counts() const { return counts_flat_; }
  /// \brief The m-major flat prefix rows (row m is one value longer than
  /// its count row).
  std::span<const uint64_t> flat_prefix() const { return prefix_flat_; }

  /// \brief Total values across all count rows for (num_labels, max_len) —
  /// the one definition of the flat-row length shared by writer, readers,
  /// and verifier.
  static uint64_t FlatCountValues(uint64_t num_labels, uint64_t max_len);

 private:
  CompositionTable() = default;
  // Carves the per-m row directories out of the flat regions.
  void BuildRowViews();

  uint64_t num_labels_ = 0;
  uint64_t max_len_ = 0;
  // Owned storage: counts region then prefix region, both m-major. Empty
  // for the borrowed form.
  std::vector<uint64_t> owned_;
  // Flat views over the two regions (into owned_ or the caller's memory).
  std::span<const uint64_t> counts_flat_;
  std::span<const uint64_t> prefix_flat_;
  // rows_[m - 1][sum - m] for sum in [m, m * num_labels].
  std::vector<std::span<const uint64_t>> rows_;
  // prefix_[m - 1][i] = sum of rows_[m - 1][0 .. i); one longer than rows_.
  std::vector<std::span<const uint64_t>> prefix_;
};

/// \brief Overflow-checked factorial table for (un)ranking hot paths.
///
/// The counts-based Algorithm-1 core evaluates (n-1)! once per path
/// position; this caches 0!..max_n! at construction (aborting on overflow,
/// i.e. max_n > 20) so the query path performs no recomputation.
class FactorialCache {
 public:
  explicit FactorialCache(uint64_t max_n);

  uint64_t Fact(uint64_t n) const {
    PATHEST_CHECK(n < fact_.size(), "FactorialCache index beyond max_n");
    return fact_[n];
  }

  uint64_t max_n() const { return fact_.size() - 1; }

 private:
  std::vector<uint64_t> fact_;
};

}  // namespace pathest

#endif  // PATHEST_UTIL_COMBINATORICS_H_
