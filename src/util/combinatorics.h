// pathest: combinatorial primitives backing the sum-based ordering
// (paper Section 3.3, Formulas 3-5).
//
// All counts are exact unsigned 64-bit values; helpers saturate-check and
// abort on overflow, which cannot occur for the parameter ranges used by the
// library (path length k <= 16, label sets |L| <= 4096).

#ifndef PATHEST_UTIL_COMBINATORICS_H_
#define PATHEST_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace pathest {

/// \brief n! as uint64. Aborts for n > 20 (overflow).
uint64_t Factorial(uint64_t n);

/// \brief Binomial coefficient C(n, k); 0 when k > n. Overflow-checked.
uint64_t Binomial(uint64_t n, uint64_t k);

/// \brief Checked a * b for uint64; aborts on overflow.
uint64_t CheckedMul(uint64_t a, uint64_t b);

/// \brief Checked a + b for uint64; aborts on overflow.
uint64_t CheckedAdd(uint64_t a, uint64_t b);

/// \brief Checked base^exp for uint64; aborts on overflow.
uint64_t CheckedPow(uint64_t base, uint64_t exp);

/// \brief Number of compositions of `sum` into exactly `m` ordered parts,
/// each in [1, num_labels] (paper Formula 3, inclusion-exclusion).
///
/// This is the size of the stage-two partition of the sum-based histogram
/// domain holding all rank permutations of length `m` with summed rank `sum`.
/// Returns 0 when the constraints are unsatisfiable.
uint64_t CompositionCount(uint64_t sum, uint64_t m, uint64_t num_labels);

/// \brief An integer partition: a multiset of parts. Parts are kept in the
/// enumeration order produced by EnumeratePartitions (see below).
using Partition = std::vector<uint32_t>;

/// \brief All partitions of `sum` into exactly `m` parts, each in
/// [1, max_part] (paper Formula 4).
///
/// Enumeration order is the order required by the sum-based ordering's
/// stage three: the recursion peels off `i` copies of the current largest
/// allowed part `max_part` with `i` ascending, so partitions using fewer
/// large parts come first. (The paper's Formula 4 writes `m - 1` where the
/// recursion must use `m - i`; Table 2 of the paper confirms the latter.)
std::vector<Partition> EnumeratePartitions(uint64_t sum, uint64_t m,
                                           uint64_t max_part);

/// \brief Number of distinct permutations of the multiset `parts`
/// (paper Formula 5): |C|! / prod_i d_i!.
uint64_t MultisetPermutationCount(const Partition& parts);

/// \brief Cached-table variant of CompositionCount for hot paths.
///
/// The sum-based (un)ranking functions evaluate CompositionCount for every
/// (sum, length) pair of a query; this table precomputes all of them for a
/// fixed label-set size and maximum path length.
class CompositionTable {
 public:
  /// Precomputes counts for all m in [1, max_len], sum in [m, m*num_labels].
  CompositionTable(uint64_t num_labels, uint64_t max_len);

  /// \brief CompositionCount(sum, m, num_labels()); 0 outside the table.
  uint64_t Count(uint64_t sum, uint64_t m) const;

  uint64_t num_labels() const { return num_labels_; }
  uint64_t max_len() const { return max_len_; }

 private:
  uint64_t num_labels_;
  uint64_t max_len_;
  // rows_[m - 1][sum - m] for sum in [m, m * num_labels].
  std::vector<std::vector<uint64_t>> rows_;
};

}  // namespace pathest

#endif  // PATHEST_UTIL_COMBINATORICS_H_
