#include "util/combinatorics.h"

#include <algorithm>

#include "util/status.h"

namespace pathest {

uint64_t Factorial(uint64_t n) {
  PATHEST_CHECK(n <= 20, "Factorial overflow (n > 20)");
  uint64_t r = 1;
  for (uint64_t i = 2; i <= n; ++i) r *= i;
  return r;
}

uint64_t CheckedMul(uint64_t a, uint64_t b) {
  __uint128_t wide = static_cast<__uint128_t>(a) * b;
  PATHEST_CHECK(wide <= ~0ULL, "uint64 multiplication overflow");
  return static_cast<uint64_t>(wide);
}

uint64_t CheckedAdd(uint64_t a, uint64_t b) {
  PATHEST_CHECK(a <= ~0ULL - b, "uint64 addition overflow");
  return a + b;
}

uint64_t CheckedPow(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < exp; ++i) result = CheckedMul(result, base);
  return result;
}

uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  // Multiplicative formula with interleaved division keeps intermediates
  // exact: after each step the accumulator equals C(n - k + i, i).
  __uint128_t acc = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    acc = acc * (n - k + i) / i;
    PATHEST_CHECK(acc <= ~0ULL, "Binomial overflow");
  }
  return static_cast<uint64_t>(acc);
}

uint64_t CompositionCount(uint64_t sum, uint64_t m, uint64_t num_labels) {
  if (m == 0) return sum == 0 ? 1 : 0;
  if (sum < m || sum > m * num_labels) return 0;
  // Inclusion-exclusion over the number of parts that exceed num_labels
  // (paper Formula 3). Signed accumulation stays within int64 bounds for
  // the library's parameter ranges; verified by the overflow checks in
  // Binomial.
  int64_t total = 0;
  for (uint64_t j = 0; j <= m; ++j) {
    if (sum < j * num_labels + 1) break;  // C(negative, m-1) == 0
    uint64_t term =
        CheckedMul(Binomial(m, j), Binomial(sum - j * num_labels - 1, m - 1));
    if (j % 2 == 0) {
      total += static_cast<int64_t>(term);
    } else {
      total -= static_cast<int64_t>(term);
    }
  }
  PATHEST_CHECK(total >= 0, "CompositionCount internal error (negative)");
  return static_cast<uint64_t>(total);
}

namespace {

// Recursive worker for EnumeratePartitions. Appends, in enumeration order,
// every partition of `sum` into exactly `m` parts within [1, max_part],
// each extended by the fixed `suffix` of already-chosen larger parts.
void EnumerateRec(uint64_t sum, uint64_t m, uint64_t max_part,
                  std::vector<uint32_t>* suffix,
                  std::vector<Partition>* out) {
  if (m == 0) {
    if (sum == 0) {
      out->push_back(Partition(suffix->rbegin(), suffix->rend()));
    }
    return;
  }
  if (max_part == 0 || sum < m || sum > m * max_part) return;
  // i = number of copies of max_part used, ascending (paper Formula 4).
  uint64_t max_i = std::min(m, sum / max_part);
  for (uint64_t i = 0; i <= max_i; ++i) {
    for (uint64_t c = 0; c < i; ++c) {
      suffix->push_back(static_cast<uint32_t>(max_part));
    }
    EnumerateRec(sum - i * max_part, m - i, max_part - 1, suffix, out);
    for (uint64_t c = 0; c < i; ++c) suffix->pop_back();
  }
}

}  // namespace

std::vector<Partition> EnumeratePartitions(uint64_t sum, uint64_t m,
                                           uint64_t max_part) {
  std::vector<Partition> out;
  std::vector<uint32_t> suffix;
  EnumerateRec(sum, m, max_part, &suffix, &out);
  return out;
}

uint64_t MultisetPermutationCount(const Partition& parts) {
  if (parts.empty()) return 1;
  uint64_t numerator = Factorial(parts.size());
  Partition sorted = parts;
  std::sort(sorted.begin(), sorted.end());
  uint64_t run = 1;
  for (size_t i = 1; i <= sorted.size(); ++i) {
    if (i < sorted.size() && sorted[i] == sorted[i - 1]) {
      ++run;
    } else {
      numerator /= Factorial(run);
      run = 1;
    }
  }
  return numerator;
}

uint64_t CompositionTable::FlatCountValues(uint64_t num_labels,
                                           uint64_t max_len) {
  uint64_t total = 0;
  for (uint64_t m = 1; m <= max_len; ++m) {
    total += m * num_labels - m + 1;
  }
  return total;
}

void CompositionTable::BuildRowViews() {
  rows_.resize(max_len_);
  prefix_.resize(max_len_);
  size_t count_at = 0;
  size_t prefix_at = 0;
  for (uint64_t m = 1; m <= max_len_; ++m) {
    const size_t row_len = m * num_labels_ - m + 1;
    rows_[m - 1] = counts_flat_.subspan(count_at, row_len);
    prefix_[m - 1] = prefix_flat_.subspan(prefix_at, row_len + 1);
    count_at += row_len;
    prefix_at += row_len + 1;
  }
  PATHEST_CHECK(count_at == counts_flat_.size() &&
                    prefix_at == prefix_flat_.size(),
                "composition flat-row sizes inconsistent");
}

CompositionTable::CompositionTable(uint64_t num_labels, uint64_t max_len)
    : num_labels_(num_labels), max_len_(max_len) {
  PATHEST_CHECK(num_labels >= 1, "CompositionTable requires >= 1 label");
  const uint64_t count_values = FlatCountValues(num_labels, max_len);
  // One flat region: counts (m-major), then prefixes (each row one longer).
  owned_.resize(count_values + count_values + max_len);
  uint64_t* counts = owned_.data();
  uint64_t* prefixes = owned_.data() + count_values;
  size_t at = 0;
  size_t pre_at = 0;
  for (uint64_t m = 1; m <= max_len; ++m) {
    const size_t row_start = at;
    for (uint64_t sum = m; sum <= m * num_labels; ++sum) {
      counts[at++] = CompositionCount(sum, m, num_labels);
    }
    // Running prefix, overflow-checked: prefix[i] = row[0] + ... + row[i-1].
    prefixes[pre_at] = 0;
    for (size_t i = row_start; i < at; ++i) {
      prefixes[pre_at + 1] = CheckedAdd(prefixes[pre_at], counts[i]);
      ++pre_at;
    }
    ++pre_at;  // past this row's final (total) entry
  }
  counts_flat_ = {counts, count_values};
  prefix_flat_ = {prefixes, count_values + max_len};
  BuildRowViews();
}

CompositionTable CompositionTable::Borrowed(uint64_t num_labels,
                                            uint64_t max_len,
                                            std::span<const uint64_t> counts,
                                            std::span<const uint64_t> prefix) {
  PATHEST_CHECK(num_labels >= 1, "CompositionTable requires >= 1 label");
  const uint64_t count_values = FlatCountValues(num_labels, max_len);
  PATHEST_CHECK(counts.size() == count_values &&
                    prefix.size() == count_values + max_len,
                "borrowed composition row shapes inconsistent");
  CompositionTable table;
  table.num_labels_ = num_labels;
  table.max_len_ = max_len;
  table.counts_flat_ = counts;
  table.prefix_flat_ = prefix;
  table.BuildRowViews();
  return table;
}

uint64_t CompositionTable::Count(uint64_t sum, uint64_t m) const {
  if (m == 0 || m > max_len_) return 0;
  if (sum < m || sum > m * num_labels_) return 0;
  return rows_[m - 1][sum - m];
}

uint64_t CompositionTable::SumForOffset(uint64_t offset, uint64_t m) const {
  PATHEST_CHECK(m >= 1 && m <= max_len_, "length out of table range");
  const auto& pre = prefix_[m - 1];
  PATHEST_CHECK(offset < pre.back(), "offset beyond total composition count");
  // Largest i with pre[i] <= offset; the partition's sum is then m + i.
  auto it = std::upper_bound(pre.begin(), pre.end(), offset);
  return m + static_cast<uint64_t>(it - pre.begin()) - 1;
}

FactorialCache::FactorialCache(uint64_t max_n) {
  fact_.resize(max_n + 1);
  for (uint64_t n = 0; n <= max_n; ++n) fact_[n] = Factorial(n);
}

}  // namespace pathest
