// pathest: simple wall-clock stopwatch used by benches and the experiment
// runner. Header-only.

#ifndef PATHEST_UTIL_TIMER_H_
#define PATHEST_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pathest {

/// \brief Monotonic wall-clock stopwatch.
class Timer {
 public:
  /// Starts the stopwatch immediately.
  Timer() : start_(Clock::now()) {}

  /// \brief Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed time in nanoseconds since construction or last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// \brief Elapsed time in microseconds.
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// \brief Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// \brief Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pathest

#endif  // PATHEST_UTIL_TIMER_H_
