#include "util/safe_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <csignal>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace pathest {

namespace {

WriteFaultInjector* g_write_faults = nullptr;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

// Directory of `path` for the post-rename directory fsync ("" = cwd ".").
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// EINTR-retrying open(2). close(2) is deliberately not wrapped: on Linux
// the descriptor is gone even when close returns EINTR, and retrying could
// close an unrelated descriptor opened meanwhile by another thread.
int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int FsyncRetry(int fd) {
  for (;;) {
    const int rc = ::fsync(fd);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

}  // namespace

WriteFaultInjector* SetWriteFaultInjectorForTesting(
    WriteFaultInjector* injector) {
  WriteFaultInjector* prev = g_write_faults;
  g_write_faults = injector;
  return prev;
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : final_path_(std::move(path)),
      tmp_path_(final_path_ + ".tmp." + std::to_string(::getpid())) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abandon();
}

Status AtomicFileWriter::Open() {
  fd_ = OpenRetry(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    return Status::IOError(ErrnoMessage("cannot create temp file", tmp_path_));
  }
  written_ = 0;
  committed_ = false;
  return Status::OK();
}

Status AtomicFileWriter::FailAndCleanup(std::string msg) {
  Abandon();
  return Status::IOError(std::move(msg));
}

Status AtomicFileWriter::Append(const void* data, size_t n) {
  if (fd_ < 0) return Status::IOError("atomic writer not open");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    size_t chunk = n;
    if (g_write_faults != nullptr) {
      size_t allowed = chunk;
      Status st = g_write_faults->OnWrite(written_, chunk, &allowed);
      if (allowed < chunk) chunk = allowed;
      if (!st.ok()) {
        // An injected crash may still land a short write first — exactly
        // the torn-write shape a real power loss produces.
        if (chunk > 0) (void)::write(fd_, p, chunk);
        return FailAndCleanup("injected write failure after " +
                              std::to_string(written_ + chunk) + " bytes: " +
                              st.message());
      }
    }
    const ssize_t wrote = ::write(fd_, p, chunk);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return FailAndCleanup(ErrnoMessage("write failed", tmp_path_));
    }
    p += wrote;
    n -= static_cast<size_t>(wrote);
    written_ += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (fd_ < 0) return Status::IOError("atomic writer not open");
  if (g_write_faults != nullptr) {
    Status st = g_write_faults->OnSync();
    if (!st.ok()) {
      return FailAndCleanup("injected fsync failure: " + st.message());
    }
  }
  if (FsyncRetry(fd_) != 0) {
    return FailAndCleanup(ErrnoMessage("fsync failed", tmp_path_));
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return FailAndCleanup(ErrnoMessage("close failed", tmp_path_));
  }
  fd_ = -1;
  if (g_write_faults != nullptr) {
    Status st = g_write_faults->OnRename();
    if (!st.ok()) {
      return FailAndCleanup("injected rename failure: " + st.message());
    }
  }
  if (::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    return FailAndCleanup(ErrnoMessage(
        "rename to '" + final_path_ + "' failed from", tmp_path_));
  }
  committed_ = true;
  // Durability of the rename itself: fsync the parent directory. A failure
  // here is reported, but the file is already visible and complete.
  const std::string dir = ParentDir(final_path_);
  const int dir_fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    const int rc = FsyncRetry(dir_fd);
    ::close(dir_fd);
    if (rc != 0) {
      return Status::IOError(ErrnoMessage("directory fsync failed", dir));
    }
  }
  return Status::OK();
}

void AtomicFileWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_) ::unlink(tmp_path_.c_str());
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  AtomicFileWriter writer(path);
  PATHEST_RETURN_NOT_OK(writer.Open());
  PATHEST_RETURN_NOT_OK(writer.Append(contents));
  return writer.Commit();
}

DurableAppendFile::~DurableAppendFile() { Close(); }

Status DurableAppendFile::Open(const std::string& path) {
  Close();
  fd_ = OpenRetry(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError(ErrnoMessage("cannot open for append", path));
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    Close();
    return Status::IOError(ErrnoMessage("cannot seek to end of", path));
  }
  path_ = path;
  offset_ = static_cast<uint64_t>(end);
  return Status::OK();
}

Status DurableAppendFile::Append(std::string_view bytes) {
  if (fd_ < 0) return Status::IOError("append file not open");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t n = bytes.size();
  while (n > 0) {
    size_t chunk = n;
    if (g_write_faults != nullptr) {
      size_t allowed = chunk;
      Status st = g_write_faults->OnWrite(offset_, chunk, &allowed);
      if (allowed < chunk) chunk = allowed;
      if (!st.ok()) {
        // Land the permitted short write first — the torn-tail shape a
        // real crash produces. The file is NOT cleaned up: the tail is
        // the artifact recovery is exercised against.
        if (chunk > 0 && ::write(fd_, p, chunk) > 0) {
          offset_ += chunk;
        }
        return Status::IOError("injected write failure after " +
                               std::to_string(offset_) + " bytes: " +
                               st.message());
      }
    }
    const ssize_t wrote = ::write(fd_, p, chunk);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("append failed", path_));
    }
    p += wrote;
    n -= static_cast<size_t>(wrote);
    offset_ += static_cast<uint64_t>(wrote);
  }
  return Status::OK();
}

Status DurableAppendFile::Sync() {
  if (fd_ < 0) return Status::IOError("append file not open");
  if (g_write_faults != nullptr) {
    Status st = g_write_faults->OnSync();
    if (!st.ok()) {
      return Status::IOError("injected fsync failure: " + st.message());
    }
  }
  if (FsyncRetry(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed", path_));
  }
  return Status::OK();
}

void DurableAppendFile::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Status TruncateFileDurable(const std::string& path, uint64_t new_size) {
  for (;;) {
    const int rc = ::truncate(path.c_str(), static_cast<off_t>(new_size));
    if (rc == 0) break;
    if (errno == EINTR) continue;
    return Status::IOError(ErrnoMessage("truncate failed", path));
  }
  const int fd = OpenRetry(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot reopen for fsync", path));
  }
  if (g_write_faults != nullptr) {
    Status st = g_write_faults->OnSync();
    if (!st.ok()) {
      (void)::close(fd);
      return Status::IOError("injected fsync failure: " + st.message());
    }
  }
  const int rc = FsyncRetry(fd);
  (void)::close(fd);
  if (rc != 0) {
    return Status::IOError(ErrnoMessage("fsync after truncate failed", path));
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  std::string content;
  struct stat st;
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    content.reserve(static_cast<size_t>(st.st_size));
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st_err = Status::IOError(ErrnoMessage("read failed", path));
      ::close(fd);
      return st_err;
    }
    content.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  *out = std::move(content);
  return Status::OK();
}

void IgnoreSigpipeForProcess() { ::signal(SIGPIPE, SIG_IGN); }

namespace {
Status Truncated(const char* what) {
  return Status::IOError(std::string("truncated reading ") + what);
}
}  // namespace

Status BoundedReader::ReadBytes(void* out, size_t n, const char* what) {
  if (remaining() < n) return Truncated(what);
  std::memcpy(out, cur_, n);
  cur_ += n;
  return Status::OK();
}

Status BoundedReader::ReadU32(uint32_t* out, const char* what) {
  uint8_t b[4];
  PATHEST_RETURN_NOT_OK(ReadBytes(b, 4, what));
  *out = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
  return Status::OK();
}

Status BoundedReader::ReadU64(uint64_t* out, const char* what) {
  uint8_t b[8];
  PATHEST_RETURN_NOT_OK(ReadBytes(b, 8, what));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  *out = v;
  return Status::OK();
}

Status BoundedReader::ReadDouble(double* out, const char* what) {
  uint64_t bits = 0;
  PATHEST_RETURN_NOT_OK(ReadU64(&bits, what));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status BoundedReader::ReadLengthPrefixedString(std::string* out,
                                               size_t max_len,
                                               const char* what) {
  uint32_t len = 0;
  PATHEST_RETURN_NOT_OK(ReadU32(&len, what));
  if (len > max_len) {
    return Status::IOError(std::string("implausible length ") +
                           std::to_string(len) + " reading " + what +
                           " (max " + std::to_string(max_len) + ")");
  }
  if (remaining() < len) return Truncated(what);
  out->assign(reinterpret_cast<const char*>(cur_), len);
  cur_ += len;
  return Status::OK();
}

Status BoundedReader::Skip(size_t n, const char* what) {
  if (remaining() < n) return Truncated(what);
  cur_ += n;
  return Status::OK();
}

Status BoundedReader::ValidateCount(uint64_t count, uint64_t elem_bytes,
                                    const char* what) const {
  // Overflow-safe: count <= remaining / elem_bytes avoids count * elem_bytes.
  if (elem_bytes == 0 || count > remaining() / elem_bytes) {
    return Status::IOError(
        std::string("implausible count ") + std::to_string(count) + " of " +
        what + " (" + std::to_string(elem_bytes) + " bytes each, " +
        std::to_string(remaining()) + " bytes remain)");
  }
  return Status::OK();
}

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 8);
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(v));
  AppendU64(out, bits);
}

void AppendLengthPrefixedString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

}  // namespace pathest
