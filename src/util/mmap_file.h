// pathest: read-only memory-mapped files — the zero-copy substrate of the
// binary catalog v2 serving path (core/mapped_catalog.h).
//
// A MappedFile is RAII over open + fstat + mmap(PROT_READ, MAP_PRIVATE):
// the descriptor is closed immediately after mapping (the mapping keeps
// the file alive), the pages fault in lazily as they are touched, and the
// identity captured at open time (device, inode, size, mtime) lets a cache
// decide whether a path still names the SAME bytes — the atomic-rename
// publish of util/safe_io.h guarantees any content change lands under a
// new inode, so an unchanged FileId means an unchanged mapping.
//
// The mapping is strictly read-only: PROT_READ faults any write, and
// MAP_PRIVATE isolates the process from concurrent truncation-free
// rewrites (which, again, never happen in place under AtomicFileWriter).

#ifndef PATHEST_UTIL_MMAP_FILE_H_
#define PATHEST_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pathest {

/// \brief Identity of one file GENERATION: two opens of a path observe the
/// same FileId iff they observed the same inode with the same size and
/// mtime. Under the atomic temp+rename publish discipline every content
/// change allocates a fresh inode, so FileId equality is a sound
/// "unchanged since last open" test for catalog files.
struct FileId {
  uint64_t device = 0;
  uint64_t inode = 0;
  uint64_t size = 0;
  int64_t mtime_ns = 0;

  bool operator==(const FileId&) const = default;
};

/// \brief stat(2)s `path` into a FileId without opening or mapping it —
/// the cheap "did this entry change?" probe of core/catalog_cache.h.
Result<FileId> StatFileId(const std::string& path);

/// \brief Read-only memory mapping of a whole file. Move-only RAII.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// \brief Opens and maps `path` read-only. The descriptor is closed
  /// before returning; an empty file yields a valid zero-length mapping.
  static Result<MappedFile> Open(const std::string& path);

  bool valid() const { return size_ == 0 ? !path_.empty() : data_ != nullptr; }
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }
  /// \brief The mapped bytes as a string_view (what the catalog readers
  /// consume — they are written against in-memory buffers and work
  /// unchanged over a mapping).
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }
  const std::string& path() const { return path_; }
  /// \brief Identity captured by the fstat between open and mmap.
  const FileId& id() const { return id_; }

  enum class Advice { kNormal, kRandom, kSequential, kWillNeed, kDontNeed };
  /// \brief madvise(2) forwarding; advisory, errors ignored by design.
  void Advise(Advice advice) const;

 private:
  std::string path_;
  FileId id_{};
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_UTIL_MMAP_FILE_H_
