// pathest: minimal leveled logging to stderr.
//
// Logging is intentionally tiny: benches and the experiment runner use it for
// progress lines; the library itself logs only at kWarn and above.

#ifndef PATHEST_UTIL_LOGGING_H_
#define PATHEST_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pathest {

/// \brief Severity of a log line. Messages below the global level are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Sets the global minimum severity. Thread-compatible (set at startup).
void SetLogLevel(LogLevel level);

/// \brief Current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line emitter; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PATHEST_LOG(level)                                       \
  ::pathest::internal::LogMessage(::pathest::LogLevel::k##level, \
                                  __FILE__, __LINE__)

}  // namespace pathest

#endif  // PATHEST_UTIL_LOGGING_H_
