// pathest: corruption and crash-simulation harness for the binary catalog
// — TEST SUPPORT, not part of the serving surface.
//
// The robustness contract of the storage layer (core/serialize.h) is only
// as real as the faults it has survived. This module gives the
// fault-injection suite (tests/fault_injection_test.cc) the tools to take
// one VALID catalog file and systematically derive every corrupt variant:
//
//   - truncations at arbitrary byte counts (tests sweep the header at byte
//     granularity and every section boundary),
//   - single-bit flips anywhere (caught by the section/header CRCs),
//   - forged length/count fields WITH the covering CRC refreshed, so the
//     corruption gets past the checksum walk and exercises the
//     BoundedReader count validation itself (the OOM-from-a-forged-count
//     class the CRC alone would mask in tests),
//   - crashed saves: ScriptedWriteFaults plugs into the safe_io injector
//     hook to kill a save at any write offset, at fsync, or at rename.
//
// Everything here speaks the layout constants exported by
// core/serialize.h's binfmt namespace — there is no second definition of
// the format to drift.

#ifndef PATHEST_UTIL_FAULT_INJECTION_H_
#define PATHEST_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/safe_io.h"
#include "util/status.h"

namespace pathest {

/// \brief One section-table row of a binary catalog, as read from bytes.
struct BinarySectionInfo {
  uint32_t id = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// \brief Parses the section table of a binary catalog image (header CRCs
/// are NOT required to be valid — the harness reads what is there). Fails
/// only when the bytes are too short to hold the claimed table.
Result<std::vector<BinarySectionInfo>> ParseBinarySectionTable(
    std::string_view bytes);

/// \brief Every interesting truncation point of a catalog image: 0, each
/// byte of the header, the table end, and both edges and the midpoint of
/// every section. Sorted, deduplicated, all strictly < bytes.size().
std::vector<size_t> TruncationPoints(std::string_view bytes);

/// \brief Flips bit `bit` (0-7) of byte `offset` in place.
Status FlipBit(std::string* bytes, size_t offset, int bit);

/// \brief Overwrites `replacement.size()` bytes at `offset_in_payload`
/// inside section `section_id`'s payload AND refreshes that section's CRC
/// plus the header's table CRC, so the forgery survives the checksum walk
/// and reaches the parser. Fails if the section is absent or the patch
/// falls outside its payload.
Status PatchSectionPayload(std::string* bytes, uint32_t section_id,
                           size_t offset_in_payload,
                           std::string_view replacement);

/// \brief Plain (non-atomic) byte-level file helpers for planting corrupt
/// images on disk. Test-support: the PRODUCT write path is AtomicWriteFile.
Status WriteFileBytes(const std::string& path, std::string_view bytes);
Result<std::string> ReadFileBytes(const std::string& path);

/// \brief Scriptable WriteFaultInjector: fails the save at a chosen write
/// offset (landing a short write first, like a real torn write), at fsync,
/// or at rename. Install via SetWriteFaultInjectorForTesting.
class ScriptedWriteFaults : public WriteFaultInjector {
 public:
  /// No fault by default; set exactly the stage to kill.
  size_t fail_write_at_byte = SIZE_MAX;  // fail once written_ would pass this
  bool fail_sync = false;
  bool fail_rename = false;

  Status OnWrite(size_t already_written, size_t chunk,
                 size_t* allowed) override;
  Status OnSync() override;
  Status OnRename() override;

  /// \brief RAII installation for a test scope.
  class Install {
   public:
    explicit Install(ScriptedWriteFaults* faults)
        : previous_(SetWriteFaultInjectorForTesting(faults)) {}
    ~Install() { SetWriteFaultInjectorForTesting(previous_); }
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    WriteFaultInjector* previous_;
  };
};

}  // namespace pathest

#endif  // PATHEST_UTIL_FAULT_INJECTION_H_
