// pathest: descriptive statistics of a labeled graph; backs the Table 3
// reproduction and the cardinality ranking rule.

#ifndef PATHEST_GRAPH_GRAPH_STATS_H_
#define PATHEST_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace pathest {

/// \brief Summary of one graph (the columns of the paper's Table 3, plus
/// per-label detail).
struct GraphStats {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
  /// f(l) for each label id.
  std::vector<uint64_t> label_cardinalities;
  /// Maximum out-degree over all (vertex, label) pairs.
  uint64_t max_label_out_degree = 0;
  /// Mean out-degree |E| / |V|.
  double mean_out_degree = 0.0;
  /// Number of vertices with no outgoing edge of any label.
  size_t num_sink_vertices = 0;
};

/// \brief Computes stats in one pass over the CSR structures.
GraphStats ComputeGraphStats(const Graph& graph);

/// \brief Multi-line human-readable rendering (used by benches/examples).
std::string FormatGraphStats(const Graph& graph, const GraphStats& stats);

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_STATS_H_
