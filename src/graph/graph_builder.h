// pathest: mutable accumulator that produces an immutable Graph.

#ifndef PATHEST_GRAPH_GRAPH_BUILDER_H_
#define PATHEST_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace pathest {

/// \brief Adjacency-plane materialization policy for GraphBuilder::Build.
enum class PlanePolicy : uint8_t {
  kAuto = 0,   ///< dense when it fits the budget, else hub, else none
  kNone = 1,   ///< never materialize a plane
  kDense = 2,  ///< dense when it fits the budget, else none (no hub)
  kHub = 3,    ///< hub plane even when dense would fit (test/measure knob)
};

/// \brief Options for GraphBuilder::Build.
struct GraphBuildOptions {
  /// Also materialize in-neighbor CSR structures.
  bool with_reverse = false;

  /// Worker threads for the build fan-out (per-label CSR construction,
  /// vertex-major segment fill, plane-row population). 0 = one per
  /// hardware core. The built Graph is BIT-IDENTICAL for every value:
  /// each worker writes disjoint label/vertex slices and every per-cell
  /// decision is a pure function of the edge multiset (enforced by
  /// tests/graph_build_test.cc). Builds below kParallelBuildMinEdges
  /// always run serially — pool spawn costs more than they save.
  size_t num_threads = 0;

  /// Plane materialization policy (the decision rule documented at
  /// kAdjacencyPlaneMaxBytes). kAuto for real use; the forcing values
  /// exist so tests and benches can pin a representation.
  PlanePolicy plane = PlanePolicy::kAuto;

  /// Byte budget for plane rows (default kAdjacencyPlaneMaxBytes).
  /// Tests shrink it to force the hub path on small graphs.
  size_t plane_budget_bytes = kAdjacencyPlaneMaxBytes;
};

/// \brief Where the wall-clock of one Build went, plus what it decided.
struct GraphBuildStats {
  size_t num_threads = 1;    ///< resolved worker count actually used
  double partition_ms = 0;   ///< label counting-sort partition of the edges
  double csr_ms = 0;         ///< per-(label, src) bucket sort/dedup + CSRs
  double vm_ms = 0;          ///< vertex-major segment directory + targets
  double plane_ms = 0;       ///< plane decision + row population
  double reverse_ms = 0;     ///< reverse CSRs (0 unless with_reverse)
  double total_ms = 0;       ///< end-to-end Build wall time
  PlaneKind plane_kind = PlaneKind::kNone;
  size_t plane_bytes = 0;    ///< bytes of materialized rows
  size_t plane_rows = 0;     ///< materialized row count
  uint64_t hub_degree_threshold = 0;  ///< hub only: min cell out-degree
};

/// Below this many pending edges Build runs serially regardless of
/// options.num_threads (thread-pool spawn would dominate).
inline constexpr size_t kParallelBuildMinEdges = 1u << 15;

/// \brief Collects vertices/edges and finalizes them into a Graph.
///
/// Duplicate (src, label, dst) triples are dropped at Build() time, per the
/// paper's set semantics. Vertices are implicit: adding an edge extends the
/// vertex range to cover both endpoints; SetNumVertices can reserve isolated
/// tail vertices.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// \brief Interns `name` and returns its label id.
  LabelId AddLabel(const std::string& name);

  /// \brief Adds edge (src, label, dst). Label must come from AddLabel.
  void AddEdge(VertexId src, LabelId label, VertexId dst);

  /// \brief Convenience: interns the label name and adds the edge.
  void AddEdge(VertexId src, const std::string& label, VertexId dst);

  /// \brief Ensures the graph has at least `n` vertices.
  void SetNumVertices(size_t n);

  /// \brief Bulk-adopts a whole pre-validated edge list at once — the
  /// streaming loader's entry point, which skips AddEdge's per-edge label
  /// check and vertex-range maintenance. Every edge's label must be a
  /// valid id in `labels` and both endpoints must be < `num_vertices`
  /// (checked in one O(E) pass). Replaces any previously added labels and
  /// edges.
  void Adopt(LabelDictionary labels, std::vector<Edge> edges,
             size_t num_vertices);

  /// \brief Number of edges accumulated so far (before dedup).
  size_t num_pending_edges() const { return edges_.size(); }

  /// \brief Finalizes into an immutable Graph.
  ///
  /// The build is a two-pass counting sort keyed by (label, src): edges
  /// are partitioned by label, then each label's buckets are sorted and
  /// deduplicated independently — per-label CSR fill, vertex-major segment
  /// construction, plane-row population, and reverse-CSR inversion all fan
  /// out over an engine ThreadPool with disjoint writes, so the result is
  /// bit-identical to BuildReference (the seed's global-sort path) at
  /// every thread count. Does not consume the pending edges: Build may be
  /// called again (e.g. with different options).
  Result<Graph> Build(const GraphBuildOptions& options,
                      GraphBuildStats* stats = nullptr);

  /// \brief Build with default options, except the given reverse flag.
  Result<Graph> Build(bool with_reverse = false);

  /// \brief The seed implementation — one global std::sort + unique over
  /// the full edge list, then single-threaded CSR/vertex-major/plane
  /// materialization (dense-or-none plane under kAdjacencyPlaneMaxBytes).
  /// Kept verbatim as the independently-derived oracle the counting-sort
  /// path is tested and benchmarked against. Sorts the pending edge list
  /// in place (the graph produced by a later Build is unaffected).
  Result<Graph> BuildReference(bool with_reverse = false);

 private:
  LabelDictionary labels_;
  std::vector<Edge> edges_;
  size_t num_vertices_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_BUILDER_H_
