// pathest: mutable accumulator that produces an immutable Graph.

#ifndef PATHEST_GRAPH_GRAPH_BUILDER_H_
#define PATHEST_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace pathest {

/// \brief Collects vertices/edges and finalizes them into a Graph.
///
/// Duplicate (src, label, dst) triples are dropped at Build() time, per the
/// paper's set semantics. Vertices are implicit: adding an edge extends the
/// vertex range to cover both endpoints; SetNumVertices can reserve isolated
/// tail vertices.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// \brief Interns `name` and returns its label id.
  LabelId AddLabel(const std::string& name);

  /// \brief Adds edge (src, label, dst). Label must come from AddLabel.
  void AddEdge(VertexId src, LabelId label, VertexId dst);

  /// \brief Convenience: interns the label name and adds the edge.
  void AddEdge(VertexId src, const std::string& label, VertexId dst);

  /// \brief Ensures the graph has at least `n` vertices.
  void SetNumVertices(size_t n);

  /// \brief Number of edges accumulated so far (before dedup).
  size_t num_pending_edges() const { return edges_.size(); }

  /// \brief Finalizes into an immutable Graph.
  /// \param with_reverse also materialize in-neighbor CSR structures.
  Result<Graph> Build(bool with_reverse = false);

 private:
  LabelDictionary labels_;
  std::vector<Edge> edges_;
  size_t num_vertices_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_BUILDER_H_
