#include "graph/graph_builder.h"

#include <algorithm>

namespace pathest {

LabelId GraphBuilder::AddLabel(const std::string& name) {
  return labels_.Intern(name);
}

void GraphBuilder::AddEdge(VertexId src, LabelId label, VertexId dst) {
  PATHEST_CHECK(label < labels_.size(), "AddEdge with un-interned label");
  edges_.push_back(Edge{src, label, dst});
  size_t needed = static_cast<size_t>(std::max(src, dst)) + 1;
  if (needed > num_vertices_) num_vertices_ = needed;
}

void GraphBuilder::AddEdge(VertexId src, const std::string& label,
                           VertexId dst) {
  AddEdge(src, labels_.Intern(label), dst);
}

void GraphBuilder::SetNumVertices(size_t n) {
  if (n > num_vertices_) num_vertices_ = n;
}

namespace {

// Prefix-sum degree table per label; `get_src` selects the endpoint that
// indexes the CSR, so the same code builds forward and reverse structures.
template <typename GetSrc>
std::vector<std::vector<uint64_t>> CountDegrees(const std::vector<Edge>& edges,
                                                size_t num_labels,
                                                size_t num_vertices,
                                                GetSrc get_src) {
  std::vector<std::vector<uint64_t>> offsets(
      num_labels, std::vector<uint64_t>(num_vertices + 1, 0));
  for (const Edge& e : edges) {
    ++offsets[e.label][get_src(e) + 1];
  }
  for (auto& row : offsets) {
    for (size_t v = 1; v <= num_vertices; ++v) row[v] += row[v - 1];
  }
  return offsets;
}

}  // namespace

Result<Graph> GraphBuilder::Build(bool with_reverse) {
  if (labels_.size() == 0 && !edges_.empty()) {
    return Status::InvalidArgument("edges present but no labels interned");
  }
  // Dedup in (label, src, dst) order; this is also CSR insertion order.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.label != b.label) return a.label < b.label;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.num_vertices_ = num_vertices_;
  g.num_edges_ = edges_.size();
  g.labels_ = labels_;

  const size_t num_labels = labels_.size();
  g.forward_.resize(num_labels);
  {
    auto offsets = CountDegrees(edges_, num_labels, num_vertices_,
                                [](const Edge& e) { return e.src; });
    for (size_t l = 0; l < num_labels; ++l) {
      g.forward_[l].offsets = offsets[l];
      g.forward_[l].targets.resize(offsets[l][num_vertices_]);
    }
    std::vector<std::vector<uint64_t>> cursor = offsets;
    for (const Edge& e : edges_) {
      g.forward_[e.label].targets[cursor[e.label][e.src]++] = e.dst;
    }
  }

  if (with_reverse) {
    auto offsets = CountDegrees(edges_, num_labels, num_vertices_,
                                [](const Edge& e) { return e.dst; });
    g.reverse_.resize(num_labels);
    for (size_t l = 0; l < num_labels; ++l) {
      g.reverse_[l].offsets = offsets[l];
      g.reverse_[l].targets.resize(offsets[l][num_vertices_]);
    }
    std::vector<std::vector<uint64_t>> cursor = offsets;
    for (const Edge& e : edges_) {
      g.reverse_[e.label].targets[cursor[e.label][e.dst]++] = e.src;
    }
    // Reverse targets must be sorted per source for binary-search use.
    for (size_t l = 0; l < num_labels; ++l) {
      auto& csr = g.reverse_[l];
      for (size_t v = 0; v < num_vertices_; ++v) {
        std::sort(csr.targets.begin() + csr.offsets[v],
                  csr.targets.begin() + csr.offsets[v + 1]);
      }
    }
  }
  return g;
}

}  // namespace pathest
