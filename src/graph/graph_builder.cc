#include "graph/graph_builder.h"

#include <algorithm>

#include "engine/thread_pool.h"
#include "util/timer.h"

namespace pathest {

LabelId GraphBuilder::AddLabel(const std::string& name) {
  return labels_.Intern(name);
}

void GraphBuilder::AddEdge(VertexId src, LabelId label, VertexId dst) {
  PATHEST_CHECK(label < labels_.size(), "AddEdge with un-interned label");
  edges_.push_back(Edge{src, label, dst});
  size_t needed = static_cast<size_t>(std::max(src, dst)) + 1;
  if (needed > num_vertices_) num_vertices_ = needed;
}

void GraphBuilder::AddEdge(VertexId src, const std::string& label,
                           VertexId dst) {
  AddEdge(src, labels_.Intern(label), dst);
}

void GraphBuilder::SetNumVertices(size_t n) {
  if (n > num_vertices_) num_vertices_ = n;
}

void GraphBuilder::Adopt(LabelDictionary labels, std::vector<Edge> edges,
                         size_t num_vertices) {
  for (const Edge& e : edges) {
    PATHEST_CHECK(e.label < labels.size(), "Adopt with invalid label id");
    PATHEST_CHECK(e.src < num_vertices && e.dst < num_vertices,
                  "Adopt with endpoint outside the vertex range");
  }
  labels_ = std::move(labels);
  edges_ = std::move(edges);
  num_vertices_ = num_vertices;
}

namespace {

// Prefix-sum degree table per label; `get_src` selects the endpoint that
// indexes the CSR, so the same code builds forward and reverse structures.
// (BuildReference only — the counting-sort path computes per-label tables
// inside each label's task instead of |L| tables at once.)
template <typename GetSrc>
std::vector<std::vector<uint64_t>> CountDegrees(const std::vector<Edge>& edges,
                                                size_t num_labels,
                                                size_t num_vertices,
                                                GetSrc get_src) {
  std::vector<std::vector<uint64_t>> offsets(
      num_labels, std::vector<uint64_t>(num_vertices + 1, 0));
  for (const Edge& e : edges) {
    ++offsets[e.label][get_src(e) + 1];
  }
  for (auto& row : offsets) {
    for (size_t v = 1; v <= num_vertices; ++v) row[v] += row[v - 1];
  }
  return offsets;
}

// One label's slice of the label-partitioned edge list.
struct SrcDst {
  VertexId src;
  VertexId dst;
};

// Counting sort by src, then sort + dedup each (src) bucket in place and
// compact into the final CSR. The result equals the corresponding slice of
// a globally (label, src, dst)-sorted, deduplicated edge list — which is
// how the counting-sort build stays bit-identical to BuildReference.
void BuildLabelCsr(const SrcDst* edges, size_t n, size_t num_vertices,
                   std::vector<uint64_t>* offsets,
                   std::vector<VertexId>* targets) {
  std::vector<uint64_t> bucket(num_vertices + 1, 0);
  for (size_t i = 0; i < n; ++i) ++bucket[edges[i].src + 1];
  for (size_t v = 0; v < num_vertices; ++v) bucket[v + 1] += bucket[v];
  std::vector<VertexId> tmp(n);
  {
    std::vector<uint64_t> cursor(bucket.begin(), bucket.end() - 1);
    for (size_t i = 0; i < n; ++i) tmp[cursor[edges[i].src]++] = edges[i].dst;
  }
  offsets->assign(num_vertices + 1, 0);
  size_t w = 0;  // write cursor; w <= read position always, so compaction
                 // never clobbers unread bucket entries
  for (size_t v = 0; v < num_vertices; ++v) {
    const size_t b = bucket[v];
    const size_t e = bucket[v + 1];
    std::sort(tmp.begin() + b, tmp.begin() + e);
    VertexId prev = 0;
    bool first = true;
    for (size_t j = b; j < e; ++j) {
      const VertexId x = tmp[j];
      if (first || x != prev) {
        tmp[w++] = x;
        prev = x;
        first = false;
      }
    }
    (*offsets)[v + 1] = w;
  }
  targets->assign(tmp.begin(), tmp.begin() + w);
}

}  // namespace

Result<Graph> GraphBuilder::Build(const GraphBuildOptions& options,
                                  GraphBuildStats* stats_out) {
  if (labels_.size() == 0 && !edges_.empty()) {
    return Status::InvalidArgument("edges present but no labels interned");
  }
  Timer total_timer;
  Timer phase;
  GraphBuildStats stats;
  const size_t num_labels = labels_.size();
  const size_t num_vertices = num_vertices_;

  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  if (edges_.size() < kParallelBuildMinEdges) threads = 1;
  ThreadPool pool(threads);
  stats.num_threads = threads;

  Graph g;
  g.num_vertices_ = num_vertices;
  g.labels_ = labels_;
  g.forward_.resize(num_labels);

  // Phase 1 — counting-sort partition by label (pass one of the (label,
  // src) key): one O(|L|) count + prefix, one O(E) scatter. Scatter order
  // within a label is irrelevant: each (src) bucket is sorted and
  // deduplicated below, so the partition needs no stability.
  std::vector<uint64_t> label_base(num_labels + 1, 0);
  for (const Edge& e : edges_) ++label_base[e.label + 1];
  for (size_t l = 0; l < num_labels; ++l) label_base[l + 1] += label_base[l];
  std::vector<SrcDst> part(edges_.size());
  {
    std::vector<uint64_t> cursor(label_base.begin(), label_base.end() - 1);
    for (const Edge& e : edges_) part[cursor[e.label]++] = {e.src, e.dst};
  }
  stats.partition_ms = phase.ElapsedMillis();

  // Phase 2 — per-label forward CSRs, one independent task per label:
  // counting sort by src, sort + dedup only within each (label, src)
  // bucket. Disjoint writes per label, so the fan-out is deterministic by
  // construction.
  phase.Reset();
  pool.ParallelFor(num_labels, [&](size_t l, size_t) {
    BuildLabelCsr(part.data() + label_base[l],
                  label_base[l + 1] - label_base[l], num_vertices,
                  &g.forward_[l].offsets, &g.forward_[l].targets);
  });
  uint64_t total_edges = 0;
  for (const Graph::Csr& csr : g.forward_) total_edges += csr.targets.size();
  g.num_edges_ = total_edges;
  stats.csr_ms = phase.ElapsedMillis();

  // Phase 3 — vertex-major, label-segmented adjacency: count segments and
  // out-degree per vertex (parallel over vertex ranges), prefix-sum both,
  // then fill each vertex's disjoint directory/target slice in parallel.
  phase.Reset();
  constexpr size_t kVertexChunk = 4096;
  const size_t num_chunks = (num_vertices + kVertexChunk - 1) / kVertexChunk;
  g.vm_seg_offsets_.assign(num_vertices + 1, 0);
  std::vector<uint64_t> vtx_tgt_base(num_vertices + 1, 0);
  pool.ParallelFor(num_chunks, [&](size_t c, size_t) {
    const size_t begin = c * kVertexChunk;
    const size_t end = std::min(num_vertices, begin + kVertexChunk);
    for (size_t v = begin; v < end; ++v) {
      uint64_t segs = 0;
      uint64_t deg = 0;
      for (size_t l = 0; l < num_labels; ++l) {
        const uint64_t len =
            g.forward_[l].offsets[v + 1] - g.forward_[l].offsets[v];
        segs += len != 0;
        deg += len;
      }
      g.vm_seg_offsets_[v + 1] = segs;
      vtx_tgt_base[v + 1] = deg;
    }
  });
  for (size_t v = 0; v < num_vertices; ++v) {
    g.vm_seg_offsets_[v + 1] += g.vm_seg_offsets_[v];
    vtx_tgt_base[v + 1] += vtx_tgt_base[v];
  }
  const size_t num_segments = g.vm_seg_offsets_[num_vertices];
  g.vm_seg_labels_.resize(num_segments);
  g.vm_tgt_offsets_.resize(num_segments + 1);
  g.vm_tgt_offsets_[0] = 0;
  g.vm_targets_.resize(total_edges);
  pool.ParallelFor(num_chunks, [&](size_t c, size_t) {
    const size_t begin = c * kVertexChunk;
    const size_t end = std::min(num_vertices, begin + kVertexChunk);
    for (size_t v = begin; v < end; ++v) {
      uint64_t s = g.vm_seg_offsets_[v];
      uint64_t t = vtx_tgt_base[v];
      for (size_t l = 0; l < num_labels; ++l) {
        const Graph::Csr& csr = g.forward_[l];
        const uint64_t b = csr.offsets[v];
        const uint64_t e = csr.offsets[v + 1];
        if (b == e) continue;
        g.vm_seg_labels_[s] = static_cast<LabelId>(l);
        std::copy(csr.targets.begin() + b, csr.targets.begin() + e,
                  g.vm_targets_.begin() + t);
        t += e - b;
        g.vm_tgt_offsets_[s + 1] = t;
        ++s;
      }
    }
  });
  stats.vm_ms = phase.ElapsedMillis();

  // Phase 4 — adjacency bitmap plane, per the decision rule documented at
  // kAdjacencyPlaneMaxBytes: dense when it fits the budget, else hub rows
  // for cells whose out-degree crosses a graph-deterministic threshold.
  phase.Reset();
  const size_t stride = (num_vertices + 63) / 64;
  const size_t budget_words = options.plane_budget_bytes / sizeof(uint64_t);
  // Overflow-proof fit check (the guard exists precisely for huge graphs,
  // where stride · |V| · |L| would wrap a size_t).
  const bool dense_fits = num_vertices > 0 && num_labels > 0 &&
                          stride <= budget_words / num_vertices / num_labels;
  const bool want_dense =
      dense_fits && (options.plane == PlanePolicy::kAuto ||
                     options.plane == PlanePolicy::kDense);
  const bool want_hub = options.plane == PlanePolicy::kHub ||
                        (options.plane == PlanePolicy::kAuto && !dense_fits);
  if (want_dense) {
    g.plane_kind_ = PlaneKind::kDense;
    g.plane_stride_words_ = stride;
    g.plane_.assign(stride * num_vertices * num_labels, 0);
    pool.ParallelFor(num_chunks, [&](size_t c, size_t) {
      const size_t begin = c * kVertexChunk;
      const size_t end = std::min(num_vertices, begin + kVertexChunk);
      for (size_t v = begin; v < end; ++v) {
        for (uint64_t s = g.vm_seg_offsets_[v]; s < g.vm_seg_offsets_[v + 1];
             ++s) {
          uint64_t* row = g.plane_.data() +
                          (v * num_labels + g.vm_seg_labels_[s]) * stride;
          for (uint64_t e = g.vm_tgt_offsets_[s]; e < g.vm_tgt_offsets_[s + 1];
               ++e) {
            const VertexId u = g.vm_targets_[e];
            row[u >> 6] |= uint64_t{1} << (u & 63);
          }
        }
      }
    });
  } else if (want_hub && num_segments > 0 && stride > 0 &&
             budget_words / stride > 0) {
    const uint64_t rows_budget = budget_words / stride;
    // Cells below the row-OR crossover would never use their row (the
    // fused kernel's per-segment seg_len * kPlaneRowWinFactor >= stride
    // test), so the threshold never drops below that floor.
    const uint64_t floor_deg = std::max<uint64_t>(
        1, (stride + kPlaneRowWinFactor - 1) / kPlaneRowWinFactor);
    std::vector<uint64_t> hist(num_vertices + 1, 0);
    for (size_t s = 0; s < num_segments; ++s) {
      ++hist[g.vm_tgt_offsets_[s + 1] - g.vm_tgt_offsets_[s]];
    }
    // Smallest threshold T >= floor such that every cell with out-degree
    // >= T fits the budget: scan degrees descending, accumulating whole
    // degree classes (ties are all-in or all-out, keeping the choice a
    // pure function of the degree multiset).
    uint64_t rows = 0;
    uint64_t threshold = 0;
    for (uint64_t d = num_vertices; d >= floor_deg; --d) {
      if (rows + hist[d] > rows_budget) break;
      rows += hist[d];
      threshold = d;
    }
    if (rows > 0) {
      g.plane_kind_ = PlaneKind::kHub;
      g.plane_stride_words_ = stride;
      g.hub_degree_threshold_ = threshold;
      g.plane_seg_rows_.assign(num_segments, kNoPlaneRow);
      uint32_t next_row = 0;
      for (size_t s = 0; s < num_segments; ++s) {
        if (g.vm_tgt_offsets_[s + 1] - g.vm_tgt_offsets_[s] >= threshold) {
          g.plane_seg_rows_[s] = next_row++;
        }
      }
      g.plane_.assign(static_cast<size_t>(rows) * stride, 0);
      constexpr size_t kSegmentChunk = 1024;
      const size_t seg_chunks =
          (num_segments + kSegmentChunk - 1) / kSegmentChunk;
      pool.ParallelFor(seg_chunks, [&](size_t c, size_t) {
        const size_t begin = c * kSegmentChunk;
        const size_t end = std::min(num_segments, begin + kSegmentChunk);
        for (size_t s = begin; s < end; ++s) {
          const uint32_t r = g.plane_seg_rows_[s];
          if (r == kNoPlaneRow) continue;
          uint64_t* row = g.plane_.data() + static_cast<size_t>(r) * stride;
          for (uint64_t e = g.vm_tgt_offsets_[s]; e < g.vm_tgt_offsets_[s + 1];
               ++e) {
            const VertexId u = g.vm_targets_[e];
            row[u >> 6] |= uint64_t{1} << (u & 63);
          }
        }
      });
    }
  }
  stats.plane_kind = g.plane_kind_;
  stats.plane_bytes = g.plane_.size() * sizeof(uint64_t);
  stats.plane_rows = stride == 0 ? 0 : g.plane_.size() / stride;
  stats.hub_degree_threshold = g.hub_degree_threshold_;
  stats.plane_ms = phase.ElapsedMillis();

  // Phase 5 — reverse CSRs by per-label inversion of the forward CSR.
  // Scattering sources in ascending v order leaves every (dst) bucket
  // already sorted, so no per-bucket sort pass is needed at all.
  if (options.with_reverse) {
    phase.Reset();
    g.reverse_.resize(num_labels);
    pool.ParallelFor(num_labels, [&](size_t l, size_t) {
      const Graph::Csr& fwd = g.forward_[l];
      Graph::Csr& rev = g.reverse_[l];
      rev.offsets.assign(num_vertices + 1, 0);
      for (const VertexId u : fwd.targets) ++rev.offsets[u + 1];
      for (size_t v = 0; v < num_vertices; ++v) {
        rev.offsets[v + 1] += rev.offsets[v];
      }
      rev.targets.resize(fwd.targets.size());
      std::vector<uint64_t> cursor(rev.offsets.begin(), rev.offsets.end() - 1);
      for (size_t v = 0; v < num_vertices; ++v) {
        for (uint64_t e = fwd.offsets[v]; e < fwd.offsets[v + 1]; ++e) {
          rev.targets[cursor[fwd.targets[e]]++] = static_cast<VertexId>(v);
        }
      }
    });
    stats.reverse_ms = phase.ElapsedMillis();
  }

  stats.total_ms = total_timer.ElapsedMillis();
  if (stats_out != nullptr) *stats_out = stats;
  return g;
}

Result<Graph> GraphBuilder::Build(bool with_reverse) {
  GraphBuildOptions options;
  options.with_reverse = with_reverse;
  return Build(options);
}

Result<Graph> GraphBuilder::BuildReference(bool with_reverse) {
  if (labels_.size() == 0 && !edges_.empty()) {
    return Status::InvalidArgument("edges present but no labels interned");
  }
  // Dedup in (label, src, dst) order; this is also CSR insertion order.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.label != b.label) return a.label < b.label;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.num_vertices_ = num_vertices_;
  g.num_edges_ = edges_.size();
  g.labels_ = labels_;

  const size_t num_labels = labels_.size();
  g.forward_.resize(num_labels);
  {
    auto offsets = CountDegrees(edges_, num_labels, num_vertices_,
                                [](const Edge& e) { return e.src; });
    for (size_t l = 0; l < num_labels; ++l) {
      g.forward_[l].offsets = offsets[l];
      g.forward_[l].targets.resize(offsets[l][num_vertices_]);
    }
    std::vector<std::vector<uint64_t>> cursor = offsets;
    for (const Edge& e : edges_) {
      g.forward_[e.label].targets[cursor[e.label][e.src]++] = e.dst;
    }
  }

  // Vertex-major, label-segmented adjacency: concatenate each vertex's
  // per-label CSR rows (labels ascending — the rows are already distinct
  // and sorted). A segment is one non-empty (vertex, label) cell; count
  // them first so every directory vector is sized exactly once.
  size_t num_segments = 0;
  for (size_t l = 0; l < num_labels; ++l) {
    const std::vector<uint64_t>& offsets = g.forward_[l].offsets;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      num_segments += offsets[v] != offsets[v + 1];
    }
  }
  g.vm_seg_offsets_.assign(num_vertices_ + 1, 0);
  g.vm_seg_labels_.reserve(num_segments);
  g.vm_tgt_offsets_.reserve(num_segments + 1);
  g.vm_tgt_offsets_.push_back(0);
  g.vm_targets_.reserve(edges_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (size_t l = 0; l < num_labels; ++l) {
      const Graph::Csr& csr = g.forward_[l];
      const uint64_t begin = csr.offsets[v];
      const uint64_t end = csr.offsets[v + 1];
      if (begin == end) continue;
      g.vm_seg_labels_.push_back(static_cast<LabelId>(l));
      g.vm_targets_.insert(g.vm_targets_.end(), csr.targets.begin() + begin,
                           csr.targets.begin() + end);
      g.vm_tgt_offsets_.push_back(g.vm_targets_.size());
    }
    g.vm_seg_offsets_[v + 1] = g.vm_seg_labels_.size();
  }

  // Adjacency bitmap plane: the seed's dense-or-none rule — one |V|-bit
  // row per (vertex, label) while |V|²·|L|/8 stays under the cap.
  {
    const size_t stride = (num_vertices_ + 63) / 64;
    const size_t max_words = kAdjacencyPlaneMaxBytes / sizeof(uint64_t);
    // Overflow-proof cap check (the guard exists precisely for huge
    // graphs, where stride · |V| · |L| would wrap a size_t).
    if (num_vertices_ > 0 && num_labels > 0 &&
        stride <= max_words / num_vertices_ / num_labels) {
      g.plane_kind_ = PlaneKind::kDense;
      g.plane_stride_words_ = stride;
      g.plane_.assign(stride * num_vertices_ * num_labels, 0);
      for (const Edge& e : edges_) {
        uint64_t* row =
            g.plane_.data() +
            (static_cast<size_t>(e.src) * num_labels + e.label) * stride;
        row[e.dst >> 6] |= uint64_t{1} << (e.dst & 63);
      }
    }
  }

  if (with_reverse) {
    auto offsets = CountDegrees(edges_, num_labels, num_vertices_,
                                [](const Edge& e) { return e.dst; });
    g.reverse_.resize(num_labels);
    for (size_t l = 0; l < num_labels; ++l) {
      g.reverse_[l].offsets = offsets[l];
      g.reverse_[l].targets.resize(offsets[l][num_vertices_]);
    }
    std::vector<std::vector<uint64_t>> cursor = offsets;
    for (const Edge& e : edges_) {
      g.reverse_[e.label].targets[cursor[e.label][e.dst]++] = e.src;
    }
    // Reverse targets must be sorted per source for binary-search use.
    for (size_t l = 0; l < num_labels; ++l) {
      auto& csr = g.reverse_[l];
      for (size_t v = 0; v < num_vertices_; ++v) {
        std::sort(csr.targets.begin() + csr.offsets[v],
                  csr.targets.begin() + csr.offsets[v + 1]);
      }
    }
  }
  return g;
}

}  // namespace pathest
