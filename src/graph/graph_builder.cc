#include "graph/graph_builder.h"

#include <algorithm>

namespace pathest {

LabelId GraphBuilder::AddLabel(const std::string& name) {
  return labels_.Intern(name);
}

void GraphBuilder::AddEdge(VertexId src, LabelId label, VertexId dst) {
  PATHEST_CHECK(label < labels_.size(), "AddEdge with un-interned label");
  edges_.push_back(Edge{src, label, dst});
  size_t needed = static_cast<size_t>(std::max(src, dst)) + 1;
  if (needed > num_vertices_) num_vertices_ = needed;
}

void GraphBuilder::AddEdge(VertexId src, const std::string& label,
                           VertexId dst) {
  AddEdge(src, labels_.Intern(label), dst);
}

void GraphBuilder::SetNumVertices(size_t n) {
  if (n > num_vertices_) num_vertices_ = n;
}

namespace {

// Prefix-sum degree table per label; `get_src` selects the endpoint that
// indexes the CSR, so the same code builds forward and reverse structures.
template <typename GetSrc>
std::vector<std::vector<uint64_t>> CountDegrees(const std::vector<Edge>& edges,
                                                size_t num_labels,
                                                size_t num_vertices,
                                                GetSrc get_src) {
  std::vector<std::vector<uint64_t>> offsets(
      num_labels, std::vector<uint64_t>(num_vertices + 1, 0));
  for (const Edge& e : edges) {
    ++offsets[e.label][get_src(e) + 1];
  }
  for (auto& row : offsets) {
    for (size_t v = 1; v <= num_vertices; ++v) row[v] += row[v - 1];
  }
  return offsets;
}

}  // namespace

Result<Graph> GraphBuilder::Build(bool with_reverse) {
  if (labels_.size() == 0 && !edges_.empty()) {
    return Status::InvalidArgument("edges present but no labels interned");
  }
  // Dedup in (label, src, dst) order; this is also CSR insertion order.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.label != b.label) return a.label < b.label;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.num_vertices_ = num_vertices_;
  g.num_edges_ = edges_.size();
  g.labels_ = labels_;

  const size_t num_labels = labels_.size();
  g.forward_.resize(num_labels);
  {
    auto offsets = CountDegrees(edges_, num_labels, num_vertices_,
                                [](const Edge& e) { return e.src; });
    for (size_t l = 0; l < num_labels; ++l) {
      g.forward_[l].offsets = offsets[l];
      g.forward_[l].targets.resize(offsets[l][num_vertices_]);
    }
    std::vector<std::vector<uint64_t>> cursor = offsets;
    for (const Edge& e : edges_) {
      g.forward_[e.label].targets[cursor[e.label][e.src]++] = e.dst;
    }
  }

  // Vertex-major, label-segmented adjacency: concatenate each vertex's
  // per-label CSR rows (labels ascending — the rows are already distinct
  // and sorted). A segment is one non-empty (vertex, label) cell; count
  // them first so every directory vector is sized exactly once.
  size_t num_segments = 0;
  for (size_t l = 0; l < num_labels; ++l) {
    const std::vector<uint64_t>& offsets = g.forward_[l].offsets;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      num_segments += offsets[v] != offsets[v + 1];
    }
  }
  g.vm_seg_offsets_.assign(num_vertices_ + 1, 0);
  g.vm_seg_labels_.reserve(num_segments);
  g.vm_tgt_offsets_.reserve(num_segments + 1);
  g.vm_tgt_offsets_.push_back(0);
  g.vm_targets_.reserve(edges_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (size_t l = 0; l < num_labels; ++l) {
      const Graph::Csr& csr = g.forward_[l];
      const uint64_t begin = csr.offsets[v];
      const uint64_t end = csr.offsets[v + 1];
      if (begin == end) continue;
      g.vm_seg_labels_.push_back(static_cast<LabelId>(l));
      g.vm_targets_.insert(g.vm_targets_.end(), csr.targets.begin() + begin,
                           csr.targets.begin() + end);
      g.vm_tgt_offsets_.push_back(g.vm_targets_.size());
    }
    g.vm_seg_offsets_[v + 1] = g.vm_seg_labels_.size();
  }

  // Adjacency bitmap plane: one |V|-bit row per (vertex, label), for the
  // fused kernel's word-level row unions. Materialized only while
  // |V|²·|L|/8 stays under the cap.
  {
    const size_t stride = (num_vertices_ + 63) / 64;
    const size_t max_words = kAdjacencyPlaneMaxBytes / sizeof(uint64_t);
    // Overflow-proof cap check (the guard exists precisely for huge
    // graphs, where stride · |V| · |L| would wrap a size_t).
    if (num_vertices_ > 0 && num_labels > 0 &&
        stride <= max_words / num_vertices_ / num_labels) {
      g.plane_stride_words_ = stride;
      g.plane_.assign(stride * num_vertices_ * num_labels, 0);
      for (const Edge& e : edges_) {
        uint64_t* row =
            g.plane_.data() +
            (static_cast<size_t>(e.src) * num_labels + e.label) * stride;
        row[e.dst >> 6] |= uint64_t{1} << (e.dst & 63);
      }
    }
  }

  if (with_reverse) {
    auto offsets = CountDegrees(edges_, num_labels, num_vertices_,
                                [](const Edge& e) { return e.dst; });
    g.reverse_.resize(num_labels);
    for (size_t l = 0; l < num_labels; ++l) {
      g.reverse_[l].offsets = offsets[l];
      g.reverse_[l].targets.resize(offsets[l][num_vertices_]);
    }
    std::vector<std::vector<uint64_t>> cursor = offsets;
    for (const Edge& e : edges_) {
      g.reverse_[e.label].targets[cursor[e.label][e.dst]++] = e.src;
    }
    // Reverse targets must be sorted per source for binary-search use.
    for (size_t l = 0; l < num_labels; ++l) {
      auto& csr = g.reverse_[l];
      for (size_t v = 0; v < num_vertices_; ++v) {
        std::sort(csr.targets.begin() + csr.offsets[v],
                  csr.targets.begin() + csr.offsets[v + 1]);
      }
    }
  }
  return g;
}

}  // namespace pathest
