#include "graph/graph_stats.h"

#include <sstream>

namespace pathest {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  stats.num_labels = graph.num_labels();
  stats.label_cardinalities.resize(graph.num_labels());
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    stats.label_cardinalities[l] = graph.LabelCardinality(l);
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    bool has_out = false;
    for (LabelId l = 0; l < graph.num_labels(); ++l) {
      uint64_t deg = graph.OutNeighbors(v, l).size();
      if (deg > stats.max_label_out_degree) stats.max_label_out_degree = deg;
      has_out = has_out || deg > 0;
    }
    if (!has_out) ++stats.num_sink_vertices;
  }
  stats.mean_out_degree =
      stats.num_vertices == 0
          ? 0.0
          : static_cast<double>(stats.num_edges) /
                static_cast<double>(stats.num_vertices);
  return stats;
}

std::string FormatGraphStats(const Graph& graph, const GraphStats& stats) {
  std::ostringstream out;
  out << "vertices: " << stats.num_vertices << "\n"
      << "edges:    " << stats.num_edges << "\n"
      << "labels:   " << stats.num_labels << "\n"
      << "mean out-degree: " << stats.mean_out_degree << "\n"
      << "max (v,l) out-degree: " << stats.max_label_out_degree << "\n"
      << "sink vertices: " << stats.num_sink_vertices << "\n"
      << "label cardinalities:\n";
  for (LabelId l = 0; l < stats.label_cardinalities.size(); ++l) {
    out << "  " << graph.labels().Name(l) << ": "
        << stats.label_cardinalities[l] << "\n";
  }
  return out.str();
}

}  // namespace pathest
