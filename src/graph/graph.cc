#include "graph/graph.h"

namespace pathest {

LabelId LabelDictionary::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

Result<LabelId> LabelDictionary::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown edge label: " + name);
  }
  return it->second;
}

const std::string& LabelDictionary::Name(LabelId id) const {
  PATHEST_CHECK(id < names_.size(), "label id out of range");
  return names_[id];
}

std::span<const VertexId> Graph::OutNeighbors(VertexId v, LabelId l) const {
  PATHEST_CHECK(l < forward_.size(), "label id out of range");
  PATHEST_CHECK(v < num_vertices_, "vertex id out of range");
  const Csr& csr = forward_[l];
  return {csr.targets.data() + csr.offsets[v],
          csr.targets.data() + csr.offsets[v + 1]};
}

std::span<const VertexId> Graph::InNeighbors(VertexId v, LabelId l) const {
  PATHEST_CHECK(has_reverse(), "graph built without reverse adjacency");
  PATHEST_CHECK(l < reverse_.size(), "label id out of range");
  PATHEST_CHECK(v < num_vertices_, "vertex id out of range");
  const Csr& csr = reverse_[l];
  return {csr.targets.data() + csr.offsets[v],
          csr.targets.data() + csr.offsets[v + 1]};
}

Graph::CsrView Graph::ForwardView(LabelId l) const {
  PATHEST_CHECK(l < forward_.size(), "label id out of range");
  return CsrView{forward_[l].offsets.data(), forward_[l].targets.data()};
}

Graph::VertexMajorView Graph::VertexMajor() const {
  PATHEST_CHECK(vm_seg_offsets_.size() == num_vertices_ + 1,
                "vertex-major adjacency not built");
  return VertexMajorView{vm_seg_offsets_.data(), vm_seg_labels_.data(),
                         vm_tgt_offsets_.data(), vm_targets_.data()};
}

Graph::AdjacencyPlane Graph::AdjacencyBitmaps() const {
  return AdjacencyPlane{plane_.empty() ? nullptr : plane_.data(),
                        plane_stride_words_};
}

uint64_t Graph::LabelCardinality(LabelId l) const {
  PATHEST_CHECK(l < forward_.size(), "label id out of range");
  return forward_[l].targets.size();
}

std::vector<Edge> Graph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (LabelId l = 0; l < forward_.size(); ++l) {
    const Csr& csr = forward_[l];
    for (VertexId v = 0; v < num_vertices_; ++v) {
      for (uint64_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
        edges.push_back(Edge{v, l, csr.targets[i]});
      }
    }
  }
  return edges;
}

}  // namespace pathest
