#include "graph/graph.h"

#include <algorithm>

namespace pathest {

const char* PlaneKindName(PlaneKind kind) {
  switch (kind) {
    case PlaneKind::kDense:
      return "dense";
    case PlaneKind::kHub:
      return "hub";
    case PlaneKind::kNone:
    default:
      return "none";
  }
}

LabelId LabelDictionary::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

Result<LabelId> LabelDictionary::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown edge label: " + name);
  }
  return it->second;
}

const std::string& LabelDictionary::Name(LabelId id) const {
  PATHEST_CHECK(id < names_.size(), "label id out of range");
  return names_[id];
}

std::span<const VertexId> Graph::OutNeighbors(VertexId v, LabelId l) const {
  PATHEST_CHECK(l < forward_.size(), "label id out of range");
  PATHEST_CHECK(v < num_vertices_, "vertex id out of range");
  const Csr& csr = forward_[l];
  return {csr.targets.data() + csr.offsets[v],
          csr.targets.data() + csr.offsets[v + 1]};
}

std::span<const VertexId> Graph::InNeighbors(VertexId v, LabelId l) const {
  PATHEST_CHECK(has_reverse(), "graph built without reverse adjacency");
  PATHEST_CHECK(l < reverse_.size(), "label id out of range");
  PATHEST_CHECK(v < num_vertices_, "vertex id out of range");
  const Csr& csr = reverse_[l];
  return {csr.targets.data() + csr.offsets[v],
          csr.targets.data() + csr.offsets[v + 1]};
}

Graph::CsrView Graph::ForwardView(LabelId l) const {
  PATHEST_CHECK(l < forward_.size(), "label id out of range");
  return CsrView{forward_[l].offsets.data(), forward_[l].targets.data()};
}

Graph::VertexMajorView Graph::VertexMajor() const {
  PATHEST_CHECK(vm_seg_offsets_.size() == num_vertices_ + 1,
                "vertex-major adjacency not built");
  return VertexMajorView{vm_seg_offsets_.data(), vm_seg_labels_.data(),
                         vm_tgt_offsets_.data(), vm_targets_.data()};
}

Graph::AdjacencyPlane Graph::AdjacencyBitmaps() const {
  AdjacencyPlane plane;
  plane.kind = plane_kind_;
  plane.rows = plane_.empty() ? nullptr : plane_.data();
  plane.stride_words = plane_stride_words_;
  plane.seg_rows = plane_seg_rows_.empty() ? nullptr : plane_seg_rows_.data();
  plane.num_rows =
      plane_stride_words_ == 0 ? 0 : plane_.size() / plane_stride_words_;
  plane.hub_degree_threshold = hub_degree_threshold_;
  return plane;
}

const uint64_t* Graph::PlaneRow(VertexId v, LabelId l) const {
  PATHEST_CHECK(v < num_vertices_ && l < num_labels(),
                "plane cell out of range");
  if (plane_kind_ == PlaneKind::kNone) return nullptr;
  if (plane_kind_ == PlaneKind::kDense) {
    return plane_.data() +
           (static_cast<size_t>(v) * num_labels() + l) * plane_stride_words_;
  }
  // Hub plane: find v's segment for l (labels ascending within a vertex),
  // then follow the segment directory.
  const uint64_t begin = vm_seg_offsets_[v];
  const uint64_t end = vm_seg_offsets_[v + 1];
  const LabelId* first = vm_seg_labels_.data() + begin;
  const LabelId* last = vm_seg_labels_.data() + end;
  const LabelId* it = std::lower_bound(first, last, l);
  if (it == last || *it != l) return nullptr;
  const uint32_t row = plane_seg_rows_[begin + (it - first)];
  if (row == kNoPlaneRow) return nullptr;
  return plane_.data() + static_cast<size_t>(row) * plane_stride_words_;
}

bool Graph::IdenticalTo(const Graph& other) const {
  auto csr_equal = [](const std::vector<Csr>& a, const std::vector<Csr>& b) {
    if (a.size() != b.size()) return false;
    for (size_t l = 0; l < a.size(); ++l) {
      if (a[l].offsets != b[l].offsets || a[l].targets != b[l].targets) {
        return false;
      }
    }
    return true;
  };
  return num_vertices_ == other.num_vertices_ &&
         num_edges_ == other.num_edges_ &&
         labels_.names() == other.labels_.names() &&
         csr_equal(forward_, other.forward_) &&
         csr_equal(reverse_, other.reverse_) &&
         vm_seg_offsets_ == other.vm_seg_offsets_ &&
         vm_seg_labels_ == other.vm_seg_labels_ &&
         vm_tgt_offsets_ == other.vm_tgt_offsets_ &&
         vm_targets_ == other.vm_targets_ &&
         plane_kind_ == other.plane_kind_ && plane_ == other.plane_ &&
         plane_stride_words_ == other.plane_stride_words_ &&
         plane_seg_rows_ == other.plane_seg_rows_ &&
         hub_degree_threshold_ == other.hub_degree_threshold_;
}

uint64_t Graph::LabelCardinality(LabelId l) const {
  PATHEST_CHECK(l < forward_.size(), "label id out of range");
  return forward_[l].targets.size();
}

std::vector<Edge> Graph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (LabelId l = 0; l < forward_.size(); ++l) {
    const Csr& csr = forward_[l];
    for (VertexId v = 0; v < num_vertices_; ++v) {
      for (uint64_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
        edges.push_back(Edge{v, l, csr.targets[i]});
      }
    }
  }
  return edges;
}

}  // namespace pathest
