// pathest: directed edge-labeled graph, the data model of the paper
// (Section 2): G = (V, L, E) with E a set of labeled directed edges
// E ⊆ V × L × V.
//
// The graph is immutable once built (see GraphBuilder) and stores one CSR
// adjacency structure per edge label, which is exactly the access pattern of
// the path-selectivity evaluator: "all l-successors of vertex v".

#ifndef PATHEST_GRAPH_GRAPH_H_
#define PATHEST_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pathest {

/// Vertex identifier; dense in [0, num_vertices).
using VertexId = uint32_t;

/// Edge-label identifier; dense in [0, num_labels).
using LabelId = uint32_t;

/// Size cap for the per-(vertex, label) adjacency bitmap plane
/// (|V|² · |L| / 8 bytes); graphs whose plane would exceed it skip the
/// materialization and the fused kernel falls back to edge-list loops.
inline constexpr size_t kAdjacencyPlaneMaxBytes = 32 * 1024 * 1024;

/// \brief One directed labeled edge.
struct Edge {
  VertexId src;
  LabelId label;
  VertexId dst;

  bool operator==(const Edge&) const = default;
};

/// \brief Dictionary mapping label names to dense LabelIds.
///
/// LabelIds are assigned in insertion order; the alphabetical ranking rule
/// (ordering/ranking.h) orders by *name*, not by id.
class LabelDictionary {
 public:
  /// \brief Returns the id for `name`, interning it if new.
  LabelId Intern(const std::string& name);

  /// \brief Id for an existing name, or NotFound.
  Result<LabelId> Find(const std::string& name) const;

  /// \brief Name of an id. Id must be valid.
  const std::string& Name(LabelId id) const;

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> index_;
};

/// \brief Immutable directed edge-labeled multigraph with per-label CSR.
///
/// Parallel (src, label, dst) duplicates are removed at build time, matching
/// the paper's set semantics for E.
class Graph {
 public:
  /// \brief Number of vertices |V|.
  size_t num_vertices() const { return num_vertices_; }

  /// \brief Number of distinct labels |L|.
  size_t num_labels() const { return labels_.size(); }

  /// \brief Number of distinct labeled edges |E|.
  size_t num_edges() const { return num_edges_; }

  /// \brief The label dictionary.
  const LabelDictionary& labels() const { return labels_; }

  /// \brief Out-neighbors of `v` via edges labeled `l`, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v, LabelId l) const;

  /// \brief In-neighbors of `v` via edges labeled `l`, sorted ascending.
  /// Only available when the graph was built with reverse adjacency.
  std::span<const VertexId> InNeighbors(VertexId v, LabelId l) const;

  /// \brief True when reverse adjacency was materialized.
  bool has_reverse() const { return !reverse_.empty(); }

  /// \brief Number of edges labeled `l` — the label cardinality f(l).
  uint64_t LabelCardinality(LabelId l) const;

  /// \brief Borrowed raw view of one label's forward CSR, for hot loops that
  /// cannot afford per-access bounds checks (the selectivity evaluator).
  /// Valid as long as the Graph is alive. `offsets` has num_vertices()+1
  /// entries; neighbors of v are targets[offsets[v] .. offsets[v+1]).
  struct CsrView {
    const uint64_t* offsets;
    const VertexId* targets;
  };

  /// \brief Checked-once accessor for CsrView.
  CsrView ForwardView(LabelId l) const;

  /// \brief Borrowed raw view of the vertex-major, label-segmented
  /// adjacency: all out-edges of one vertex stored contiguously, grouped
  /// into per-label segments with a per-vertex segment directory.
  ///
  /// This is the transpose of the per-label CSR family along the (vertex,
  /// label) axes, built once at graph construction. Where the per-label CSR
  /// answers "the l-successors of v" (one random row access per label), this
  /// view answers "ALL successors of v, split by label" in one sequential
  /// read — the access pattern of the fused all-labels extension kernel
  /// (path/pair_set.h FusedExtender), which visits each DFS pair exactly
  /// once instead of once per label.
  ///
  /// Layout: segments of vertex v are seg_offsets[v] .. seg_offsets[v+1]);
  /// segment s carries label seg_labels[s] and the distinct, ascending
  /// target run targets[tgt_offsets[s] .. tgt_offsets[s+1]). Only non-empty
  /// (vertex, label) cells get a segment. Valid while the Graph is alive.
  struct VertexMajorView {
    const uint64_t* seg_offsets;  // num_vertices() + 1 entries
    const LabelId* seg_labels;    // one per segment
    const uint64_t* tgt_offsets;  // num_segments + 1 entries
    const VertexId* targets;      // num_edges() entries
  };

  /// \brief Checked-once accessor for VertexMajorView.
  VertexMajorView VertexMajor() const;

  /// \brief Borrowed view of the per-(vertex, label) adjacency bitmap
  /// plane: row (v, l) is a |V|-bit bitmap (stride_words 64-bit words) of
  /// v's l-successors, at rows + (v * num_labels() + l) * stride_words.
  ///
  /// The plane lets the fused kernel's dense cells union a whole adjacency
  /// row with stride_words word-ORs (vectorizable) instead of one
  /// bit-RMW per edge — a win whenever a segment carries at least
  /// ~stride_words/4 edges. It costs |V|² · |L| / 8 bytes, so it is only
  /// materialized for graphs where that stays under
  /// kAdjacencyPlaneMaxBytes; `rows` is nullptr otherwise and callers fall
  /// back to the edge-list loops. Derived data, built once per graph.
  struct AdjacencyPlane {
    const uint64_t* rows;  // nullptr when not materialized
    size_t stride_words;   // ceil(num_vertices / 64)
  };

  /// \brief Accessor for the adjacency bitmap plane (rows == nullptr when
  /// the graph was too large to materialize it).
  AdjacencyPlane AdjacencyBitmaps() const;

  /// \brief All edges, materialized in (label, src, dst) order.
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;

  struct Csr {
    std::vector<uint64_t> offsets;  // size num_vertices + 1
    std::vector<VertexId> targets;
  };

  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;
  LabelDictionary labels_;
  std::vector<Csr> forward_;  // one per label
  std::vector<Csr> reverse_;  // empty unless requested

  // Vertex-major, label-segmented adjacency (VertexMajorView). One extra
  // copy of the edge targets plus O(segments) directory — the price of the
  // fused kernel's sequential access pattern, paid once per graph.
  std::vector<uint64_t> vm_seg_offsets_;  // num_vertices_ + 1
  std::vector<LabelId> vm_seg_labels_;    // one per non-empty (v, l) cell
  std::vector<uint64_t> vm_tgt_offsets_;  // segments + 1
  std::vector<VertexId> vm_targets_;      // num_edges_

  // Adjacency bitmap plane (AdjacencyBitmaps); empty when the graph is too
  // large for kAdjacencyPlaneMaxBytes.
  std::vector<uint64_t> plane_;
  size_t plane_stride_words_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_H_
