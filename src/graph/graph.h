// pathest: directed edge-labeled graph, the data model of the paper
// (Section 2): G = (V, L, E) with E a set of labeled directed edges
// E ⊆ V × L × V.
//
// The graph is immutable once built (see GraphBuilder) and stores one CSR
// adjacency structure per edge label, which is exactly the access pattern of
// the path-selectivity evaluator: "all l-successors of vertex v".

#ifndef PATHEST_GRAPH_GRAPH_H_
#define PATHEST_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pathest {

/// Vertex identifier; dense in [0, num_vertices).
using VertexId = uint32_t;

/// Edge-label identifier; dense in [0, num_labels).
using LabelId = uint32_t;

/// \brief One directed labeled edge.
struct Edge {
  VertexId src;
  LabelId label;
  VertexId dst;

  bool operator==(const Edge&) const = default;
};

/// \brief Dictionary mapping label names to dense LabelIds.
///
/// LabelIds are assigned in insertion order; the alphabetical ranking rule
/// (ordering/ranking.h) orders by *name*, not by id.
class LabelDictionary {
 public:
  /// \brief Returns the id for `name`, interning it if new.
  LabelId Intern(const std::string& name);

  /// \brief Id for an existing name, or NotFound.
  Result<LabelId> Find(const std::string& name) const;

  /// \brief Name of an id. Id must be valid.
  const std::string& Name(LabelId id) const;

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> index_;
};

/// \brief Immutable directed edge-labeled multigraph with per-label CSR.
///
/// Parallel (src, label, dst) duplicates are removed at build time, matching
/// the paper's set semantics for E.
class Graph {
 public:
  /// \brief Number of vertices |V|.
  size_t num_vertices() const { return num_vertices_; }

  /// \brief Number of distinct labels |L|.
  size_t num_labels() const { return labels_.size(); }

  /// \brief Number of distinct labeled edges |E|.
  size_t num_edges() const { return num_edges_; }

  /// \brief The label dictionary.
  const LabelDictionary& labels() const { return labels_; }

  /// \brief Out-neighbors of `v` via edges labeled `l`, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v, LabelId l) const;

  /// \brief In-neighbors of `v` via edges labeled `l`, sorted ascending.
  /// Only available when the graph was built with reverse adjacency.
  std::span<const VertexId> InNeighbors(VertexId v, LabelId l) const;

  /// \brief True when reverse adjacency was materialized.
  bool has_reverse() const { return !reverse_.empty(); }

  /// \brief Number of edges labeled `l` — the label cardinality f(l).
  uint64_t LabelCardinality(LabelId l) const;

  /// \brief Borrowed raw view of one label's forward CSR, for hot loops that
  /// cannot afford per-access bounds checks (the selectivity evaluator).
  /// Valid as long as the Graph is alive. `offsets` has num_vertices()+1
  /// entries; neighbors of v are targets[offsets[v] .. offsets[v+1]).
  struct CsrView {
    const uint64_t* offsets;
    const VertexId* targets;
  };

  /// \brief Checked-once accessor for CsrView.
  CsrView ForwardView(LabelId l) const;

  /// \brief All edges, materialized in (label, src, dst) order.
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;

  struct Csr {
    std::vector<uint64_t> offsets;  // size num_vertices + 1
    std::vector<VertexId> targets;
  };

  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;
  LabelDictionary labels_;
  std::vector<Csr> forward_;  // one per label
  std::vector<Csr> reverse_;  // empty unless requested
};

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_H_
