// pathest: directed edge-labeled graph, the data model of the paper
// (Section 2): G = (V, L, E) with E a set of labeled directed edges
// E ⊆ V × L × V.
//
// The graph is immutable once built (see GraphBuilder) and stores one CSR
// adjacency structure per edge label, which is exactly the access pattern of
// the path-selectivity evaluator: "all l-successors of vertex v".

#ifndef PATHEST_GRAPH_GRAPH_H_
#define PATHEST_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pathest {

/// Vertex identifier; dense in [0, num_vertices).
using VertexId = uint32_t;

/// Edge-label identifier; dense in [0, num_labels).
using LabelId = uint32_t;

/// Byte budget for the per-(vertex, label) adjacency bitmap plane.
///
/// Plane-kind decision rule (GraphBuilder::Build, PlanePolicy::kAuto):
///   1. DENSE — when the full |V|² · |L| / 8-byte plane fits the budget,
///      every (vertex, label) cell gets a |V|-bit row at the fixed address
///      rows + (v · |L| + l) · stride_words. Small/medium graphs.
///   2. HUB — otherwise, rows are materialized only for cells whose
///      out-degree reaches a graph-deterministic threshold: the smallest
///      degree T >= ceil(stride_words / kPlaneRowWinFactor) such that all
///      cells with degree >= T still fit the budget (cells below the floor
///      never win against their edge-list scan, so they are never
///      materialized). Rows are addressed through a per-vertex-major-
///      segment directory (AdjacencyPlane::seg_rows). Million-vertex
///      graphs keep the fused kernel's word-OR fast path on exactly the
///      hub cells that dominate its work instead of losing the plane
///      entirely at the dense cliff.
///   3. NONE — when not even one hub row fits (or the graph is empty).
/// The rule depends only on the graph and the budget — never on thread
/// count — so built planes are bit-identical across ingest parallelism.
inline constexpr size_t kAdjacencyPlaneMaxBytes = 32 * 1024 * 1024;

/// A plane row beats the per-edge bit-RMW loop when the cell carries at
/// least stride_words / kPlaneRowWinFactor edges — word-ORs vectorize to
/// roughly this many per bit-RMW (FusedExtender's row crossover, and the
/// hub plane's materialization floor).
inline constexpr uint64_t kPlaneRowWinFactor = 4;

/// \brief Which adjacency-plane representation a graph carries.
enum class PlaneKind : uint8_t {
  kNone = 0,   ///< no rows materialized (over budget even for hubs)
  kDense = 1,  ///< every (vertex, label) cell has a row, direct addressing
  kHub = 2,    ///< degree-thresholded rows behind a segment directory
};

/// \brief Stable lowercase name ("none" / "dense" / "hub").
const char* PlaneKindName(PlaneKind kind);

/// \brief Sentinel in AdjacencyPlane::seg_rows: segment has no bitmap row.
inline constexpr uint32_t kNoPlaneRow = UINT32_MAX;

/// \brief One directed labeled edge.
struct Edge {
  VertexId src;
  LabelId label;
  VertexId dst;

  bool operator==(const Edge&) const = default;
};

/// \brief Dictionary mapping label names to dense LabelIds.
///
/// LabelIds are assigned in insertion order; the alphabetical ranking rule
/// (ordering/ranking.h) orders by *name*, not by id.
class LabelDictionary {
 public:
  /// \brief Returns the id for `name`, interning it if new.
  LabelId Intern(const std::string& name);

  /// \brief Id for an existing name, or NotFound.
  Result<LabelId> Find(const std::string& name) const;

  /// \brief Name of an id. Id must be valid.
  const std::string& Name(LabelId id) const;

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> index_;
};

/// \brief Immutable directed edge-labeled multigraph with per-label CSR.
///
/// Parallel (src, label, dst) duplicates are removed at build time, matching
/// the paper's set semantics for E.
class Graph {
 public:
  /// \brief Number of vertices |V|.
  size_t num_vertices() const { return num_vertices_; }

  /// \brief Number of distinct labels |L|.
  size_t num_labels() const { return labels_.size(); }

  /// \brief Number of distinct labeled edges |E|.
  size_t num_edges() const { return num_edges_; }

  /// \brief The label dictionary.
  const LabelDictionary& labels() const { return labels_; }

  /// \brief Out-neighbors of `v` via edges labeled `l`, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v, LabelId l) const;

  /// \brief In-neighbors of `v` via edges labeled `l`, sorted ascending.
  /// Only available when the graph was built with reverse adjacency.
  std::span<const VertexId> InNeighbors(VertexId v, LabelId l) const;

  /// \brief True when reverse adjacency was materialized.
  bool has_reverse() const { return !reverse_.empty(); }

  /// \brief Number of edges labeled `l` — the label cardinality f(l).
  uint64_t LabelCardinality(LabelId l) const;

  /// \brief Borrowed raw view of one label's forward CSR, for hot loops that
  /// cannot afford per-access bounds checks (the selectivity evaluator).
  /// Valid as long as the Graph is alive. `offsets` has num_vertices()+1
  /// entries; neighbors of v are targets[offsets[v] .. offsets[v+1]).
  struct CsrView {
    const uint64_t* offsets;
    const VertexId* targets;
  };

  /// \brief Checked-once accessor for CsrView.
  CsrView ForwardView(LabelId l) const;

  /// \brief Borrowed raw view of the vertex-major, label-segmented
  /// adjacency: all out-edges of one vertex stored contiguously, grouped
  /// into per-label segments with a per-vertex segment directory.
  ///
  /// This is the transpose of the per-label CSR family along the (vertex,
  /// label) axes, built once at graph construction. Where the per-label CSR
  /// answers "the l-successors of v" (one random row access per label), this
  /// view answers "ALL successors of v, split by label" in one sequential
  /// read — the access pattern of the fused all-labels extension kernel
  /// (path/pair_set.h FusedExtender), which visits each DFS pair exactly
  /// once instead of once per label.
  ///
  /// Layout: segments of vertex v are seg_offsets[v] .. seg_offsets[v+1]);
  /// segment s carries label seg_labels[s] and the distinct, ascending
  /// target run targets[tgt_offsets[s] .. tgt_offsets[s+1]). Only non-empty
  /// (vertex, label) cells get a segment. Valid while the Graph is alive.
  struct VertexMajorView {
    const uint64_t* seg_offsets;  // num_vertices() + 1 entries
    const LabelId* seg_labels;    // one per segment
    const uint64_t* tgt_offsets;  // num_segments + 1 entries
    const VertexId* targets;      // num_edges() entries
  };

  /// \brief Checked-once accessor for VertexMajorView.
  VertexMajorView VertexMajor() const;

  /// \brief Borrowed view of the per-(vertex, label) adjacency bitmap
  /// plane: a row is a |V|-bit bitmap (stride_words 64-bit words) of one
  /// cell's l-successors.
  ///
  /// The plane lets the fused kernel's dense cells union a whole adjacency
  /// row with stride_words word-ORs (vectorizable) instead of one
  /// bit-RMW per edge — a win whenever a segment carries at least
  /// ~stride_words / kPlaneRowWinFactor edges. Addressing depends on kind
  /// (see the decision rule at kAdjacencyPlaneMaxBytes):
  ///   * kDense — cell (v, l) is at rows + (v · |L| + l) · stride_words;
  ///     seg_rows is nullptr.
  ///   * kHub  — only cells with out-degree >= hub_degree_threshold have
  ///     rows; vertex-major segment s maps to row seg_rows[s] (kNoPlaneRow
  ///     when absent), i.e. rows + seg_rows[s] · stride_words. Consumers
  ///     walking VertexMajorView get the lookup for free; everyone else
  ///     uses Graph::PlaneRow.
  ///   * kNone — rows is nullptr, nothing is materialized.
  /// Derived data, built once per graph; valid while the Graph is alive.
  struct AdjacencyPlane {
    const uint64_t* rows;      // nullptr when kind == kNone
    size_t stride_words;       // ceil(num_vertices / 64)
    PlaneKind kind;
    const uint32_t* seg_rows;  // hub only: one entry per vm segment
    size_t num_rows;           // materialized row count
    uint64_t hub_degree_threshold;  // hub only: min cell out-degree
  };

  /// \brief Accessor for the adjacency bitmap plane (kind == kNone and
  /// rows == nullptr when nothing was materialized).
  AdjacencyPlane AdjacencyBitmaps() const;

  /// \brief The bitmap row of cell (v, l), or nullptr when that cell has
  /// none (kNone plane, or a below-threshold cell of a hub plane). O(1)
  /// for dense planes, O(log segments(v)) for hub planes — convenience
  /// for tests and cold paths; hot loops use AdjacencyPlane directly.
  const uint64_t* PlaneRow(VertexId v, LabelId l) const;

  /// \brief Deep structural equality: vertex/edge/label counts, label
  /// names, forward and reverse CSRs, vertex-major arrays, and the plane
  /// (kind, threshold, directory, and row words). This is the ingest
  /// determinism contract — builds of the same edge multiset must compare
  /// equal at every thread count — and is what the build tests assert.
  bool IdenticalTo(const Graph& other) const;

  /// \brief All edges, materialized in (label, src, dst) order.
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;

  struct Csr {
    std::vector<uint64_t> offsets;  // size num_vertices + 1
    std::vector<VertexId> targets;
  };

  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;
  LabelDictionary labels_;
  std::vector<Csr> forward_;  // one per label
  std::vector<Csr> reverse_;  // empty unless requested

  // Vertex-major, label-segmented adjacency (VertexMajorView). One extra
  // copy of the edge targets plus O(segments) directory — the price of the
  // fused kernel's sequential access pattern, paid once per graph.
  std::vector<uint64_t> vm_seg_offsets_;  // num_vertices_ + 1
  std::vector<LabelId> vm_seg_labels_;    // one per non-empty (v, l) cell
  std::vector<uint64_t> vm_tgt_offsets_;  // segments + 1
  std::vector<VertexId> vm_targets_;      // num_edges_

  // Adjacency bitmap plane (AdjacencyBitmaps); empty when not even hub
  // rows fit the byte budget.
  PlaneKind plane_kind_ = PlaneKind::kNone;
  std::vector<uint64_t> plane_;
  size_t plane_stride_words_ = 0;
  std::vector<uint32_t> plane_seg_rows_;  // hub only: row per vm segment
  uint64_t hub_degree_threshold_ = 0;     // hub only
};

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_H_
