#include "graph/graph_io.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/thread_pool.h"
#include "util/timer.h"

namespace pathest {

namespace {

// In-line whitespace, per the classic locale minus '\n' (lines are split
// before tokenization, exactly like getline + istringstream).
inline bool IsLineSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

// istream-compatible unsigned extraction on a cursor: optional sign
// (num_get wraps '-' like strtoull), digit run via from_chars, overflow
// fails with the digits consumed (failbit semantics). `ok` false and
// next == p means "no numeric prefix at all".
struct U64Parse {
  uint64_t value;
  const char* next;
  bool ok;
};

U64Parse ParseU64(const char* p, const char* end) {
  const char* q = p;
  bool negative = false;
  if (q != end && (*q == '+' || *q == '-')) {
    negative = *q == '-';
    ++q;
  }
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(q, end, value);
  if (ptr == q) return {0, p, false};
  if (ec == std::errc::result_out_of_range) return {0, ptr, false};
  return {negative ? uint64_t{0} - value : value, ptr, true};
}

// One newline-aligned slice of the input, parsed independently. Labels
// are chunk-local first-appearance ids until the serial merge.
struct ParsedChunk {
  std::vector<Edge> edges;           // Edge::label is a chunk-local id
  std::vector<std::string_view> labels;  // local id -> name, in-order
  size_t num_lines = 0;
  size_t num_vertices = 0;           // max endpoint + 1
  bool has_error = false;
  bool error_is_range = false;       // OutOfRange vs malformed IOError
  size_t error_line_offset = 0;      // 0-based line within the chunk
  std::string error_line_text;       // comment-stripped malformed line
};

void ParseChunk(const char* begin, const char* end, ParsedChunk* out) {
  std::unordered_map<std::string_view, LabelId> label_index;
  const char* p = begin;
  while (p < end) {
    const char* line_begin = p;
    const char* nl = static_cast<const char*>(
        memchr(p, '\n', static_cast<size_t>(end - p)));
    const char* line_end = nl == nullptr ? end : nl;
    p = nl == nullptr ? end : nl + 1;
    const size_t line_offset = out->num_lines++;
    // Strip comments.
    const char* hash = static_cast<const char*>(memchr(
        line_begin, '#', static_cast<size_t>(line_end - line_begin)));
    if (hash != nullptr) line_end = hash;

    const char* c = line_begin;
    while (c < line_end && IsLineSpace(*c)) ++c;
    if (c == line_end) continue;  // blank / comment-only line
    const U64Parse src = ParseU64(c, line_end);
    if (!src.ok) continue;  // failed first extraction skips the line
    c = src.next;

    while (c < line_end && IsLineSpace(*c)) ++c;
    const char* label_begin = c;
    while (c < line_end && !IsLineSpace(*c)) ++c;
    const std::string_view label(label_begin,
                                 static_cast<size_t>(c - label_begin));

    while (c < line_end && IsLineSpace(*c)) ++c;
    const U64Parse dst = ParseU64(c, line_end);
    if (label.empty() || !dst.ok) {
      out->has_error = true;
      out->error_line_offset = line_offset;
      out->error_line_text.assign(
          line_begin, static_cast<size_t>(line_end - line_begin));
      return;
    }
    // Trailing junk after the dst is ignored, as with istream extraction.
    if (src.value > UINT32_MAX || dst.value > UINT32_MAX) {
      out->has_error = true;
      out->error_is_range = true;
      out->error_line_offset = line_offset;
      return;
    }

    const auto [it, inserted] =
        label_index.emplace(label, static_cast<LabelId>(out->labels.size()));
    if (inserted) out->labels.push_back(label);
    out->edges.push_back(Edge{static_cast<VertexId>(src.value), it->second,
                              static_cast<VertexId>(dst.value)});
    const size_t needed =
        static_cast<size_t>(std::max(src.value, dst.value)) + 1;
    if (needed > out->num_vertices) out->num_vertices = needed;
  }
}

// Chunks below this size parse serially — thread-pool spawn would
// dominate the from_chars sweep.
constexpr size_t kMinParallelParseBytes = 1u << 20;
constexpr size_t kChunksPerThread = 4;  // parse-time skew smoothing

}  // namespace

Result<Graph> ReadGraphText(std::istream* in, const GraphLoadOptions& options,
                            GraphLoadStats* stats_out) {
  Timer total_timer;
  Timer phase;
  GraphLoadStats stats;

  // Slurp once; all tokenization runs on cursors into this buffer.
  const std::string content{std::istreambuf_iterator<char>(*in),
                            std::istreambuf_iterator<char>()};
  stats.read_ms = phase.ElapsedMillis();

  phase.Reset();
  size_t threads = options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads;
  if (content.size() < kMinParallelParseBytes) threads = 1;
  stats.num_threads = threads;

  // Newline-aligned chunk boundaries: each chunk ends just past a '\n'
  // (or at EOF), so no line straddles two chunks and concatenating
  // per-chunk results in chunk order is exactly file order.
  std::vector<const char*> bounds;
  const char* data = content.data();
  const char* data_end = data + content.size();
  bounds.push_back(data);
  if (threads > 1) {
    const size_t target = threads * kChunksPerThread;
    const size_t step = content.size() / target;
    for (size_t i = 1; i < target; ++i) {
      const char* probe = data + i * step;
      if (probe <= bounds.back()) continue;
      const char* nl = static_cast<const char*>(
          memchr(probe, '\n', static_cast<size_t>(data_end - probe)));
      if (nl == nullptr) break;
      bounds.push_back(nl + 1);
    }
  }
  bounds.push_back(data_end);
  const size_t num_chunks = bounds.size() - 1;
  stats.num_chunks = num_chunks;

  std::vector<ParsedChunk> chunks(num_chunks);
  {
    ThreadPool pool(threads);
    pool.ParallelFor(num_chunks, [&](size_t c, size_t) {
      ParseChunk(bounds[c], bounds[c + 1], &chunks[c]);
    });
  }

  // Earliest error line wins, as in the sequential reader: chunks are in
  // file order and each stops at its first error.
  size_t line_base = 0;
  for (const ParsedChunk& chunk : chunks) {
    if (chunk.has_error) {
      const size_t line_no = line_base + chunk.error_line_offset + 1;
      if (chunk.error_is_range) {
        return Status::OutOfRange("vertex id exceeds 32 bits at line " +
                                  std::to_string(line_no));
      }
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no) + ": '" +
                             chunk.error_line_text + "'");
    }
    line_base += chunk.num_lines;
  }

  // Serial chunk-order label merge: interning each chunk's local table in
  // order reproduces file-order first-appearance ids exactly — a label's
  // first chunk is its first file appearance, and within a chunk local
  // ids are already first-appearance ordered.
  LabelDictionary labels;
  size_t num_vertices = 0;
  size_t num_edges = 0;
  std::vector<std::vector<LabelId>> local_to_global(num_chunks);
  std::vector<size_t> edge_base(num_chunks + 1, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    local_to_global[c].reserve(chunks[c].labels.size());
    for (const std::string_view name : chunks[c].labels) {
      local_to_global[c].push_back(labels.Intern(std::string(name)));
    }
    num_vertices = std::max(num_vertices, chunks[c].num_vertices);
    num_edges += chunks[c].edges.size();
    edge_base[c + 1] = num_edges;
  }
  std::vector<Edge> edges(num_edges);
  {
    ThreadPool pool(threads);
    pool.ParallelFor(num_chunks, [&](size_t c, size_t) {
      const std::vector<LabelId>& map = local_to_global[c];
      Edge* out = edges.data() + edge_base[c];
      for (const Edge& e : chunks[c].edges) {
        *out++ = Edge{e.src, map[e.label], e.dst};
      }
    });
  }
  stats.parse_ms = phase.ElapsedMillis();

  GraphBuilder builder;
  builder.Adopt(std::move(labels), std::move(edges), num_vertices);
  GraphBuildOptions build_options;
  build_options.with_reverse = options.with_reverse;
  build_options.num_threads = options.num_threads;
  build_options.plane = options.plane;
  build_options.plane_budget_bytes = options.plane_budget_bytes;
  Result<Graph> graph = builder.Build(build_options, &stats.build);
  stats.total_ms = total_timer.ElapsedMillis();
  if (stats_out != nullptr) *stats_out = stats;
  return graph;
}

Result<Graph> ReadGraphText(std::istream* in, bool with_reverse) {
  GraphLoadOptions options;
  options.with_reverse = with_reverse;
  return ReadGraphText(in, options);
}

Result<Graph> LoadGraphFile(const std::string& path,
                            const GraphLoadOptions& options,
                            GraphLoadStats* stats) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open graph file: " + path);
  }
  return ReadGraphText(&in, options, stats);
}

Result<Graph> LoadGraphFile(const std::string& path, bool with_reverse) {
  GraphLoadOptions options;
  options.with_reverse = with_reverse;
  return LoadGraphFile(path, options);
}

Status WriteGraphText(const Graph& graph, std::ostream* out) {
  (*out) << "# pathest edge-list v1: <src> <label> <dst>\n";
  // Stream per label, per source, straight off the CSR — (label, src,
  // dst) order, identical to the CollectEdges-based writer's output —
  // through one flat buffer instead of a materialized edge list.
  constexpr size_t kFlushBytes = 1u << 20;
  std::string buf;
  buf.reserve(kFlushBytes + 128);
  char digits[20];
  const auto append_u32 = [&buf, &digits](uint32_t v) {
    const auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), v);
    (void)ec;
    buf.append(digits, static_cast<size_t>(ptr - digits));
  };
  const size_t num_vertices = graph.num_vertices();
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    const std::string& name = graph.labels().Name(l);
    const Graph::CsrView view = graph.ForwardView(l);
    for (size_t v = 0; v < num_vertices; ++v) {
      for (uint64_t i = view.offsets[v]; i < view.offsets[v + 1]; ++i) {
        append_u32(static_cast<uint32_t>(v));
        buf.push_back(' ');
        buf.append(name);
        buf.push_back(' ');
        append_u32(view.targets[i]);
        buf.push_back('\n');
        if (buf.size() >= kFlushBytes) {
          out->write(buf.data(), static_cast<std::streamsize>(buf.size()));
          buf.clear();
        }
      }
    }
  }
  if (!buf.empty()) {
    out->write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  if (!out->good()) return Status::IOError("graph write failed");
  return Status::OK();
}

Status SaveGraphFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open graph file for writing: " + path);
  }
  return WriteGraphText(graph, &out);
}

}  // namespace pathest
