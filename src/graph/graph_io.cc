#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace pathest {

Result<Graph> ReadGraphText(std::istream* in, bool with_reverse) {
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    std::string label;
    if (!(ls >> src)) continue;  // blank / comment-only line
    if (!(ls >> label >> dst)) {
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    if (src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::OutOfRange("vertex id exceeds 32 bits at line " +
                                std::to_string(line_no));
    }
    builder.AddEdge(static_cast<VertexId>(src), label,
                    static_cast<VertexId>(dst));
  }
  return builder.Build(with_reverse);
}

Result<Graph> LoadGraphFile(const std::string& path, bool with_reverse) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open graph file: " + path);
  }
  return ReadGraphText(&in, with_reverse);
}

Status WriteGraphText(const Graph& graph, std::ostream* out) {
  (*out) << "# pathest edge-list v1: <src> <label> <dst>\n";
  for (const Edge& e : graph.CollectEdges()) {
    (*out) << e.src << ' ' << graph.labels().Name(e.label) << ' ' << e.dst
           << '\n';
  }
  if (!out->good()) return Status::IOError("graph write failed");
  return Status::OK();
}

Status SaveGraphFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open graph file for writing: " + path);
  }
  return WriteGraphText(graph, &out);
}

}  // namespace pathest
