// pathest: text serialization for graphs.
//
// Format ("pathest edge-list v1"):
//   # comment lines and blank lines are ignored
//   <src-vertex-id> <label-name> <dst-vertex-id>
// one edge per line, whitespace-separated. Vertex ids are non-negative
// integers; label names are arbitrary non-whitespace tokens.

#ifndef PATHEST_GRAPH_GRAPH_IO_H_
#define PATHEST_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace pathest {

/// \brief Parses an edge-list stream into a Graph.
Result<Graph> ReadGraphText(std::istream* in, bool with_reverse = false);

/// \brief Loads an edge-list file.
Result<Graph> LoadGraphFile(const std::string& path,
                            bool with_reverse = false);

/// \brief Writes a graph as an edge list.
Status WriteGraphText(const Graph& graph, std::ostream* out);

/// \brief Saves a graph to an edge-list file.
Status SaveGraphFile(const Graph& graph, const std::string& path);

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_IO_H_
