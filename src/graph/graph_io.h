// pathest: text serialization for graphs.
//
// Format ("pathest edge-list v1"):
//   # comment lines and blank lines are ignored
//   <src-vertex-id> <label-name> <dst-vertex-id>
// one edge per line, whitespace-separated. Vertex ids are non-negative
// integers; label names are arbitrary non-whitespace tokens.

#ifndef PATHEST_GRAPH_GRAPH_IO_H_
#define PATHEST_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/status.h"

namespace pathest {

/// \brief Options for the streaming graph loader.
struct GraphLoadOptions {
  /// Also materialize in-neighbor CSR structures.
  bool with_reverse = false;

  /// Worker threads for chunked parsing AND the graph build (see
  /// GraphBuildOptions::num_threads). 0 = one per hardware core. The
  /// loaded Graph — label ids, vertex range, every derived structure —
  /// is bit-identical at every value: chunks split on newline
  /// boundaries, per-chunk label tables merge in chunk order (which
  /// reproduces file-order first-appearance interning exactly), and the
  /// earliest error line wins.
  size_t num_threads = 0;

  /// Plane policy / budget forwarded to GraphBuilder::Build.
  PlanePolicy plane = PlanePolicy::kAuto;
  size_t plane_budget_bytes = kAdjacencyPlaneMaxBytes;
};

/// \brief Where one load's wall-clock went.
struct GraphLoadStats {
  size_t num_threads = 1;  ///< resolved parse worker count
  size_t num_chunks = 1;   ///< newline-aligned parse chunks
  double read_ms = 0;      ///< stream slurp
  double parse_ms = 0;     ///< chunked from_chars parse + label merge
  GraphBuildStats build;   ///< the Build breakdown
  double total_ms = 0;     ///< end-to-end load wall time
};

/// \brief Parses an edge-list stream into a Graph.
///
/// Slurps the stream once and parses newline-aligned chunks in parallel
/// on std::from_chars cursors — no per-line istringstream. Matches the
/// line-oriented istream semantics exactly: lines whose first token is
/// missing or not a parseable integer are skipped, a missing/bad label
/// or dst is "malformed edge at line N", ids above 32 bits are
/// OutOfRange, negative ids wrap like istream's unsigned extraction,
/// and trailing junk after the dst is ignored.
Result<Graph> ReadGraphText(std::istream* in, const GraphLoadOptions& options,
                            GraphLoadStats* stats = nullptr);

/// \brief ReadGraphText with default options, except the reverse flag.
Result<Graph> ReadGraphText(std::istream* in, bool with_reverse = false);

/// \brief Loads an edge-list file.
Result<Graph> LoadGraphFile(const std::string& path,
                            const GraphLoadOptions& options,
                            GraphLoadStats* stats = nullptr);

/// \brief LoadGraphFile with default options, except the reverse flag.
Result<Graph> LoadGraphFile(const std::string& path,
                            bool with_reverse = false);

/// \brief Writes a graph as an edge list, streaming edges straight from
/// the per-label CSRs in (label, src, dst) order — the same order
/// CollectEdges produces, without materializing the edge list.
Status WriteGraphText(const Graph& graph, std::ostream* out);

/// \brief Saves a graph to an edge-list file.
Status SaveGraphFile(const Graph& graph, const std::string& path);

}  // namespace pathest

#endif  // PATHEST_GRAPH_GRAPH_IO_H_
