// pathest: the read-optimized histogram lookup structure of the serving
// path (core/estimator.h).
//
// A Histogram keeps full Bucket records (begin, end, sum, sumsq — 32 bytes)
// because the BUILD side needs variance diagnostics; the QUERY side only
// ever reads a boundary and a mean, so an array-of-Bucket lookup drags two
// dead doubles through the cache per probed element. FlatHistogram is the
// structure-of-arrays projection built once from a Histogram:
//
//   begins()[b]      bucket begins, ascending; begins()[0] == 0
//   means()[b]       bucket mean frequency (sum / width, divided once here,
//                    so point estimates are bit-identical to
//                    Histogram::Estimate which performs the same division)
//   prefix_sums()[b] running sum of bucket frequency-sums over buckets < b
//                    (β + 1 entries), giving O(1) interior mass for ranges
//
// plus an Eytzinger-ordered copy of the boundaries (eytz_begins()) with a
// slot → sorted-rank map (eytz_ranks()). Point lookup descends the implicit
// tree with a conditional-move candidate update — no unpredictable branch,
// and ancestors of every leaf share cache lines at the top of the array,
// unlike the pointer-jumping middle probes of a std::upper_bound over a
// 32-byte-stride Bucket vector.
//
// Storage comes in two forms behind the same query interface:
//   - OWNED (the Histogram constructor): the five rows live in member
//     vectors, as always.
//   - BORROWED (FromBorrowedRows): the spans point into caller-owned
//     memory — in practice the 64-byte-aligned rows of a mapped binary
//     catalog v2 (core/serialize.h), making construction pure pointer
//     fixup with zero row copies. The backing memory must outlive the
//     FlatHistogram; core/mapped_catalog.h ties the two lifetimes.
//
// A FlatHistogram is immutable after construction and safe to share across
// any number of concurrent readers.

#ifndef PATHEST_HISTOGRAM_FLAT_HISTOGRAM_H_
#define PATHEST_HISTOGRAM_FLAT_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "histogram/histogram.h"
#include "util/status.h"

namespace pathest {

/// \brief Immutable SoA bucket index with branch-light point lookup.
class FlatHistogram {
 public:
  FlatHistogram() = default;

  /// \brief Builds the flat projection of `source` (which keeps ownership of
  /// the full diagnostic buckets; the two are independent afterwards).
  explicit FlatHistogram(const Histogram& source);

  /// \brief Caller-owned serving rows for borrowed construction — exactly
  /// the arrays a binary catalog v2 histogram section persists.
  struct Rows {
    uint64_t domain_size = 0;
    std::span<const uint64_t> begin;          // β entries, begin[0] == 0
    std::span<const double> mean;             // β entries
    std::span<const double> prefix_sum;       // β + 1 entries
    std::span<const uint64_t> eytz_begin;     // β + 1 entries, slot 0 unused
    std::span<const uint32_t> eytz_rank;      // β + 1 entries, slot 0 unused
  };

  /// \brief Zero-copy form over caller-owned rows (an mmap'ed catalog
  /// section): O(1) work, no allocation, no row validation beyond shape
  /// checks — callers on untrusted bytes must have verified the rows first
  /// (core/mapped_catalog.h's tiered verification). The backing memory must
  /// outlive the returned object and every copy made of it.
  static FlatHistogram FromBorrowedRows(const Rows& rows);

  // A copy must re-point the spans at ITS vectors when storage is owned
  // (the defaults would alias the source's heap); moves keep the heap
  // allocations, so the spans stay valid and the defaults are correct.
  FlatHistogram(const FlatHistogram& other);
  FlatHistogram& operator=(const FlatHistogram& other);
  FlatHistogram(FlatHistogram&& other) noexcept;
  FlatHistogram& operator=(FlatHistogram&& other) noexcept;

  size_t num_buckets() const { return begin_.size(); }
  uint64_t domain_size() const { return domain_size_; }
  /// \brief True when the rows live in member vectors (false: borrowed
  /// views into caller memory, e.g. a mapped catalog).
  bool owns_storage() const { return owned_; }

  /// \brief Bucket-mean estimate at `index` (< domain_size()). Bit-identical
  /// to Histogram::Estimate on the source histogram.
  double EstimatePoint(uint64_t index) const {
    return mean_[FindBucket(index)];
  }

  /// \brief Estimated SUM of frequencies over [begin, end): exact bucket
  /// sums for interior buckets (via the prefix array), pro-rata means at the
  /// boundaries. Mathematically equal to Histogram::EstimateRange but
  /// associates the additions differently, so equality is up to FP rounding
  /// (the estimator test bounds the difference).
  double EstimateRange(uint64_t begin, uint64_t end) const;

  /// \brief Sorted position of the bucket containing `index`
  /// (< domain_size()).
  size_t FindBucket(uint64_t index) const {
    PATHEST_CHECK(index < domain_size_, "estimate index out of range");
    // Descend the Eytzinger tree tracking the last node whose begin is
    // <= index (the predecessor). begin_[0] == 0 guarantees a hit.
    const size_t n = eytz_begin_.size() - 1;  // slots are 1-based
    size_t k = 1;
    size_t best = 0;
    while (k <= n) {
      const bool le = eytz_begin_[k] <= index;
      best = le ? k : best;
      k = 2 * k + static_cast<size_t>(le);
    }
    return eytz_rank_[best];
  }

  /// \brief Heap bytes OWNED by this object: the five rows when storage is
  /// owned, zero when borrowed (the bytes then belong to the mapping —
  /// see MappedBytes).
  size_t ResidentBytes() const;

  /// \brief Bytes served through borrowed views (a mapped catalog's pages);
  /// zero for owned storage.
  size_t MappedBytes() const;

  // Row views — the writer (core/serialize.cc) persists these verbatim and
  // the full-verify path compares a rebuild against them bit-for-bit.
  std::span<const uint64_t> begins() const { return begin_; }
  std::span<const double> means() const { return mean_; }
  std::span<const double> prefix_sums() const { return prefix_sum_; }
  std::span<const uint64_t> eytz_begins() const { return eytz_begin_; }
  std::span<const uint32_t> eytz_ranks() const { return eytz_rank_; }

 private:
  // Points the span members at the owned vectors (after any vector change).
  void PointAtOwned();

  uint64_t domain_size_ = 0;
  bool owned_ = true;
  std::vector<uint64_t> begin_store_;
  std::vector<double> mean_store_;
  std::vector<double> prefix_store_;
  std::vector<uint64_t> eytz_begin_store_;
  std::vector<uint32_t> eytz_rank_store_;
  // The query path reads ONLY these spans; for owned storage they view the
  // vectors above, for borrowed storage the caller's rows.
  std::span<const uint64_t> begin_;
  std::span<const double> mean_;
  std::span<const double> prefix_sum_;
  // 1-based implicit-tree layout of begin_; slot 0 unused.
  std::span<const uint64_t> eytz_begin_;
  // Slot -> sorted bucket position.
  std::span<const uint32_t> eytz_rank_;
};

}  // namespace pathest

#endif  // PATHEST_HISTOGRAM_FLAT_HISTOGRAM_H_
