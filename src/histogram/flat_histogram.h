// pathest: the read-optimized histogram lookup structure of the serving
// path (core/estimator.h).
//
// A Histogram keeps full Bucket records (begin, end, sum, sumsq — 32 bytes)
// because the BUILD side needs variance diagnostics; the QUERY side only
// ever reads a boundary and a mean, so an array-of-Bucket lookup drags two
// dead doubles through the cache per probed element. FlatHistogram is the
// structure-of-arrays projection built once from a Histogram:
//
//   begin_[b]       bucket begins, ascending; begin_[0] == 0
//   mean_[b]        bucket mean frequency (sum / width, divided once here,
//                   so point estimates are bit-identical to
//                   Histogram::Estimate which performs the same division)
//   prefix_sum_[b]  running sum of bucket frequency-sums over buckets < b
//                   (β + 1 entries), giving O(1) interior mass for ranges
//
// plus an Eytzinger-ordered copy of the boundaries (eytz_begin_) with a
// slot → sorted-rank map (eytz_rank_). Point lookup descends the implicit
// tree with a conditional-move candidate update — no unpredictable branch,
// and ancestors of every leaf share cache lines at the top of the array,
// unlike the pointer-jumping middle probes of a std::upper_bound over a
// 32-byte-stride Bucket vector.
//
// A FlatHistogram is immutable after construction and safe to share across
// any number of concurrent readers.

#ifndef PATHEST_HISTOGRAM_FLAT_HISTOGRAM_H_
#define PATHEST_HISTOGRAM_FLAT_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "histogram/histogram.h"
#include "util/status.h"

namespace pathest {

/// \brief Immutable SoA bucket index with branch-light point lookup.
class FlatHistogram {
 public:
  FlatHistogram() = default;

  /// \brief Builds the flat projection of `source` (which keeps ownership of
  /// the full diagnostic buckets; the two are independent afterwards).
  explicit FlatHistogram(const Histogram& source);

  size_t num_buckets() const { return begin_.size(); }
  uint64_t domain_size() const { return domain_size_; }

  /// \brief Bucket-mean estimate at `index` (< domain_size()). Bit-identical
  /// to Histogram::Estimate on the source histogram.
  double EstimatePoint(uint64_t index) const {
    return mean_[FindBucket(index)];
  }

  /// \brief Estimated SUM of frequencies over [begin, end): exact bucket
  /// sums for interior buckets (via the prefix array), pro-rata means at the
  /// boundaries. Mathematically equal to Histogram::EstimateRange but
  /// associates the additions differently, so equality is up to FP rounding
  /// (the estimator test bounds the difference).
  double EstimateRange(uint64_t begin, uint64_t end) const;

  /// \brief Sorted position of the bucket containing `index`
  /// (< domain_size()).
  size_t FindBucket(uint64_t index) const {
    PATHEST_CHECK(index < domain_size_, "estimate index out of range");
    // Descend the Eytzinger tree tracking the last node whose begin is
    // <= index (the predecessor). begin_[0] == 0 guarantees a hit.
    const size_t n = eytz_begin_.size() - 1;  // slots are 1-based
    size_t k = 1;
    size_t best = 0;
    while (k <= n) {
      const bool le = eytz_begin_[k] <= index;
      best = le ? k : best;
      k = 2 * k + static_cast<size_t>(le);
    }
    return eytz_rank_[best];
  }

  /// \brief Bytes resident for serving: the three SoA rows plus the
  /// Eytzinger index (the "estimator footprint" reported next to
  /// Histogram::ApproxBytes' diagnostic footprint).
  size_t ResidentBytes() const;

 private:
  uint64_t domain_size_ = 0;
  std::vector<uint64_t> begin_;
  std::vector<double> mean_;
  std::vector<double> prefix_sum_;
  // 1-based implicit-tree layout of begin_; slot 0 unused.
  std::vector<uint64_t> eytz_begin_;
  // Slot -> sorted bucket position.
  std::vector<uint32_t> eytz_rank_;
};

}  // namespace pathest

#endif  // PATHEST_HISTOGRAM_FLAT_HISTOGRAM_H_
