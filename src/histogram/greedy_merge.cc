#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "histogram/builders.h"

namespace pathest {

namespace {

// Live bucket during greedy merging; linked-list via prev/next indexes.
struct Node {
  uint64_t begin;
  uint64_t end;
  double sum;
  double sumsq;
  int64_t prev;
  int64_t next;
  uint64_t version;  // bumped on every mutation to invalidate heap entries
  bool alive;

  double Sse() const {
    double w = static_cast<double>(end - begin);
    return sumsq - (sum * sum) / w;
  }
};

struct Candidate {
  double delta;  // SSE increase of merging node with its next neighbor
  size_t node;
  // Versions of the pair at creation; any later mutation invalidates them.
  uint64_t left_version;
  uint64_t right_version;
  bool operator>(const Candidate& other) const { return delta > other.delta; }
};

double MergeDelta(const Node& a, const Node& b) {
  double sum = a.sum + b.sum;
  double sumsq = a.sumsq + b.sumsq;
  double w = static_cast<double>(b.end - a.begin);
  double merged_sse = sumsq - (sum * sum) / w;
  return merged_sse - a.Sse() - b.Sse();
}

// The shared merge engine: ONE lazy-min-heap merge pass from n singleton
// buckets down to the smallest requested level, snapshotting boundaries
// each time the live-bucket count reaches a requested level. Both the
// per-β builder and the sweep run through here, which is what makes their
// outputs bit-identical: the merge trajectory never depends on the target
// β — the target only decides where along the trajectory to stop (or, for
// the sweep, where to snapshot and keep going).
Result<std::vector<Histogram>> RunGreedyMerge(const std::vector<uint64_t>& data,
                                              const std::vector<size_t>& betas,
                                              GreedyMergeMetrics* metrics) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  for (size_t b : betas) {
    if (b == 0) return Status::InvalidArgument("need >= 1 bucket");
  }
  if (betas.empty()) return std::vector<Histogram>{};
  const size_t n = data.size();
  if (metrics != nullptr) ++metrics->merge_runs;

  // Requested live-bucket levels, clamped like the per-β builder, visited
  // in descending order as merging shrinks the live count.
  std::vector<size_t> targets;
  targets.reserve(betas.size());
  for (size_t b : betas) targets.push_back(std::min(b, n));
  std::sort(targets.begin(), targets.end(), std::greater<size_t>());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  std::vector<Node> nodes(n);
  for (size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(data[i]);
    nodes[i] = Node{i, i + 1, v,       v * v,
                    static_cast<int64_t>(i) - 1,
                    i + 1 < n ? static_cast<int64_t>(i + 1) : -1,
                    0,       true};
  }

  // Boundary snapshots per target level, in descending-level order.
  std::vector<std::pair<size_t, std::vector<uint64_t>>> snapshots;
  snapshots.reserve(targets.size());
  size_t live = n;
  size_t next_target = 0;
  auto snapshot_if_requested = [&]() {
    if (next_target >= targets.size() || live != targets[next_target]) return;
    std::vector<uint64_t> boundaries;
    boundaries.reserve(live - 1);
    for (size_t i = 0; i < n; ++i) {
      if (nodes[i].alive && nodes[i].begin > 0) {
        boundaries.push_back(nodes[i].begin);
      }
    }
    snapshots.emplace_back(live, std::move(boundaries));
    ++next_target;
  };
  snapshot_if_requested();  // covers targets equal to n

  if (live > targets.back()) {
    auto make_candidate = [&](size_t i) {
      size_t j = static_cast<size_t>(nodes[i].next);
      return Candidate{MergeDelta(nodes[i], nodes[j]), i, nodes[i].version,
                       nodes[j].version};
    };

    std::priority_queue<Candidate, std::vector<Candidate>,
                        std::greater<Candidate>>
        heap;
    for (size_t i = 0; i + 1 < n; ++i) heap.push(make_candidate(i));

    while (live > targets.back()) {
      PATHEST_CHECK(!heap.empty(), "greedy merge heap exhausted early");
      Candidate c = heap.top();
      heap.pop();
      Node& a = nodes[c.node];
      if (!a.alive || a.next < 0 || c.left_version != a.version ||
          c.right_version != nodes[a.next].version) {
        continue;  // stale entry
      }
      Node& b = nodes[a.next];
      // Merge b into a.
      a.end = b.end;
      a.sum += b.sum;
      a.sumsq += b.sumsq;
      a.next = b.next;
      ++a.version;
      b.alive = false;
      ++b.version;
      if (a.next >= 0) nodes[a.next].prev = static_cast<int64_t>(c.node);
      --live;
      if (metrics != nullptr) ++metrics->merges;
      // Refresh candidates with both neighbors.
      if (a.prev >= 0) heap.push(make_candidate(static_cast<size_t>(a.prev)));
      if (a.next >= 0) heap.push(make_candidate(c.node));
      snapshot_if_requested();
    }
  }

  // Materialize one histogram per INPUT beta (duplicates share a snapshot).
  std::vector<Histogram> out;
  out.reserve(betas.size());
  for (size_t b : betas) {
    const size_t level = std::min(b, n);
    const std::vector<uint64_t>* boundaries = nullptr;
    for (const auto& [snap_level, snap] : snapshots) {
      if (snap_level == level) {
        boundaries = &snap;
        break;
      }
    }
    PATHEST_CHECK(boundaries != nullptr, "greedy sweep missed a target level");
    auto h = Histogram::FromBoundaries(data, *boundaries);
    if (!h.ok()) return h.status();
    out.push_back(std::move(*h));
  }
  return out;
}

}  // namespace

Result<Histogram> BuildVOptimalGreedy(const std::vector<uint64_t>& data,
                                      size_t num_buckets) {
  auto sweep = RunGreedyMerge(data, {num_buckets}, nullptr);
  if (!sweep.ok()) return sweep.status();
  return std::move((*sweep)[0]);
}

Result<Histogram> BuildVOptimalGreedy(const DistributionStats& stats,
                                      size_t num_buckets) {
  return BuildVOptimalGreedy(stats.data(), num_buckets);
}

Result<std::vector<Histogram>> BuildVOptimalGreedySweep(
    const DistributionStats& stats, const std::vector<size_t>& betas,
    GreedyMergeMetrics* metrics) {
  return RunGreedyMerge(stats.data(), betas, metrics);
}

}  // namespace pathest
