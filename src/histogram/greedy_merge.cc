#include <queue>

#include "histogram/builders.h"

namespace pathest {

namespace {

// Live bucket during greedy merging; linked-list via prev/next indexes.
struct Node {
  uint64_t begin;
  uint64_t end;
  double sum;
  double sumsq;
  int64_t prev;
  int64_t next;
  uint64_t version;  // bumped on every mutation to invalidate heap entries
  bool alive;

  double Sse() const {
    double w = static_cast<double>(end - begin);
    return sumsq - (sum * sum) / w;
  }
};

struct Candidate {
  double delta;  // SSE increase of merging node with its next neighbor
  size_t node;
  // Versions of the pair at creation; any later mutation invalidates them.
  uint64_t left_version;
  uint64_t right_version;
  bool operator>(const Candidate& other) const { return delta > other.delta; }
};

double MergeDelta(const Node& a, const Node& b) {
  double sum = a.sum + b.sum;
  double sumsq = a.sumsq + b.sumsq;
  double w = static_cast<double>(b.end - a.begin);
  double merged_sse = sumsq - (sum * sum) / w;
  return merged_sse - a.Sse() - b.Sse();
}

}  // namespace

Result<Histogram> BuildVOptimalGreedy(const std::vector<uint64_t>& data,
                                      size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const size_t n = data.size();
  const size_t beta = std::min(num_buckets, n);

  std::vector<Node> nodes(n);
  for (size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(data[i]);
    nodes[i] = Node{i, i + 1, v,       v * v,
                    static_cast<int64_t>(i) - 1,
                    i + 1 < n ? static_cast<int64_t>(i + 1) : -1,
                    0,       true};
  }

  auto make_candidate = [&](size_t i) {
    size_t j = static_cast<size_t>(nodes[i].next);
    return Candidate{MergeDelta(nodes[i], nodes[j]), i, nodes[i].version,
                     nodes[j].version};
  };

  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      heap;
  for (size_t i = 0; i + 1 < n; ++i) heap.push(make_candidate(i));

  size_t live = n;
  while (live > beta) {
    PATHEST_CHECK(!heap.empty(), "greedy merge heap exhausted early");
    Candidate c = heap.top();
    heap.pop();
    Node& a = nodes[c.node];
    if (!a.alive || a.next < 0 || c.left_version != a.version ||
        c.right_version != nodes[a.next].version) {
      continue;  // stale entry
    }
    Node& b = nodes[a.next];
    // Merge b into a.
    a.end = b.end;
    a.sum += b.sum;
    a.sumsq += b.sumsq;
    a.next = b.next;
    ++a.version;
    b.alive = false;
    ++b.version;
    if (a.next >= 0) nodes[a.next].prev = static_cast<int64_t>(c.node);
    --live;
    // Refresh candidates with both neighbors.
    if (a.prev >= 0) heap.push(make_candidate(static_cast<size_t>(a.prev)));
    if (a.next >= 0) heap.push(make_candidate(c.node));
  }

  std::vector<uint64_t> boundaries;
  boundaries.reserve(beta - 1);
  for (size_t i = 0; i < n; ++i) {
    if (nodes[i].alive && nodes[i].begin > 0) {
      boundaries.push_back(nodes[i].begin);
    }
  }
  return Histogram::FromBoundaries(data, std::move(boundaries));
}

}  // namespace pathest
