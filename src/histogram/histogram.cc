#include "histogram/histogram.h"

#include <algorithm>

namespace pathest {

Bucket MakeBucket(const std::vector<uint64_t>& data, uint64_t begin,
                  uint64_t end) {
  Bucket b;
  b.begin = begin;
  b.end = end;
  for (uint64_t i = begin; i < end; ++i) {
    double v = static_cast<double>(data[i]);
    b.sum += v;
    b.sumsq += v * v;
  }
  return b;
}

Result<Histogram> Histogram::FromBoundaries(const std::vector<uint64_t>& data,
                                            std::vector<uint64_t> boundaries) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  const uint64_t n = data.size();
  uint64_t prev = 0;
  std::vector<Bucket> buckets;
  buckets.reserve(boundaries.size() + 1);
  for (uint64_t b : boundaries) {
    if (b <= prev || b >= n) {
      return Status::InvalidArgument(
          "histogram boundaries must be strictly increasing within (0, n)");
    }
    buckets.push_back(MakeBucket(data, prev, b));
    prev = b;
  }
  buckets.push_back(MakeBucket(data, prev, n));
  return Histogram(std::move(buckets));
}

Result<Histogram> Histogram::FromBuckets(std::vector<Bucket> buckets) {
  if (buckets.empty()) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  uint64_t expected_begin = 0;
  for (const Bucket& b : buckets) {
    if (b.begin != expected_begin || b.end <= b.begin) {
      return Status::InvalidArgument(
          "buckets must be contiguous, non-empty, and start at 0");
    }
    if (b.sum < 0.0 || b.sumsq < 0.0) {
      return Status::InvalidArgument("bucket sums must be non-negative");
    }
    expected_begin = b.end;
  }
  return Histogram(std::move(buckets));
}

const Bucket& Histogram::BucketFor(uint64_t index) const {
  PATHEST_CHECK(index < domain_size(), "estimate index out of range");
  // First bucket whose end exceeds index.
  auto it = std::upper_bound(
      buckets_.begin(), buckets_.end(), index,
      [](uint64_t value, const Bucket& b) { return value < b.end; });
  return *it;
}

double Histogram::Estimate(uint64_t index) const {
  return BucketFor(index).Mean();
}

double Histogram::EstimateRange(uint64_t begin, uint64_t end) const {
  PATHEST_CHECK(begin <= end, "range begin must be <= end");
  PATHEST_CHECK(end <= domain_size(), "range end out of domain");
  if (begin == end) return 0.0;
  // First bucket overlapping the range.
  auto it = std::upper_bound(
      buckets_.begin(), buckets_.end(), begin,
      [](uint64_t value, const Bucket& b) { return value < b.end; });
  double total = 0.0;
  for (; it != buckets_.end() && it->begin < end; ++it) {
    uint64_t lo = std::max(begin, it->begin);
    uint64_t hi = std::min(end, it->end);
    total += it->Mean() * static_cast<double>(hi - lo);
  }
  return total;
}

double Histogram::TotalSse() const {
  double total = 0.0;
  for (const Bucket& b : buckets_) total += b.Sse();
  return total;
}

}  // namespace pathest
