#include <limits>

#include "histogram/builders.h"

namespace pathest {

Result<Histogram> BuildVOptimalExact(const std::vector<uint64_t>& data,
                                     size_t num_buckets, size_t max_n) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const size_t n = data.size();
  if (n > max_n) {
    return Status::ResourceExhausted(
        "exact V-optimal DP limited to " + std::to_string(max_n) +
        " values (got " + std::to_string(n) +
        "); use BuildVOptimalGreedy at scale");
  }
  const size_t beta = std::min(num_buckets, n);

  // Prefix sums for O(1) range SSE.
  std::vector<double> prefix_sum(n + 1, 0.0);
  std::vector<double> prefix_sumsq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(data[i]);
    prefix_sum[i + 1] = prefix_sum[i] + v;
    prefix_sumsq[i + 1] = prefix_sumsq[i] + v * v;
  }
  auto range_sse = [&](size_t begin, size_t end) {
    double s = prefix_sum[end] - prefix_sum[begin];
    double ss = prefix_sumsq[end] - prefix_sumsq[begin];
    double w = static_cast<double>(end - begin);
    return ss - (s * s) / w;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[i] = min SSE of covering the first i values with the current number
  // of buckets; parent[b][i] = split point producing dp at (b, i).
  std::vector<double> dp(n + 1, kInf);
  std::vector<std::vector<uint32_t>> parent(
      beta + 1, std::vector<uint32_t>(n + 1, 0));
  for (size_t i = 1; i <= n; ++i) dp[i] = range_sse(0, i);

  for (size_t b = 2; b <= beta; ++b) {
    std::vector<double> next(n + 1, kInf);
    // First i values need at least b buckets worth of positions: i >= b.
    for (size_t i = b; i <= n; ++i) {
      double best = kInf;
      uint32_t best_j = 0;
      for (size_t j = b - 1; j < i; ++j) {
        double cost = dp[j] + range_sse(j, i);
        if (cost < best) {
          best = cost;
          best_j = static_cast<uint32_t>(j);
        }
      }
      next[i] = best;
      parent[b][i] = best_j;
    }
    dp.swap(next);
  }

  // Backtrack boundaries.
  std::vector<uint64_t> boundaries(beta - 1);
  size_t i = n;
  for (size_t b = beta; b >= 2; --b) {
    i = parent[b][i];
    boundaries[b - 2] = i;
  }
  return Histogram::FromBoundaries(data, std::move(boundaries));
}

}  // namespace pathest
