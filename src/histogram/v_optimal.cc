// Exact V-optimal histogram construction.
//
// The classic DP is dp[b][i] = min_j dp[b-1][j] + SSE(j, i) — O(n² β) time
// with a naive inner scan and an O(n β) parent matrix for backtracking.
// This implementation keeps the DP exact but attacks both costs:
//
//   * Pruned inner scans. The textbook divide-and-conquer speedup (monotone
//     split points via the quadrangle inequality) is UNSOUND here: segment
//     SSE of an arbitrary sequence does not satisfy the quadrangle
//     inequality — only sorted 1D data (the k-means case) does — and the
//     true argmin rows are observably non-monotone on real path
//     distributions. What DOES hold, and is exploited below, is one
//     monotone bound: SSE(j, i) is non-increasing in j (dropping front
//     elements of a bucket never raises its SSE), and it alone is a lower
//     bound on the cost (the previous layer's row is non-negative). So a
//     single scan outward from the bucket's near end can STOP outright at
//     the first split whose segment SSE reaches the incumbent best —
//     every split beyond it is provably dead. Worst case stays O(n² β)
//     but measured scans on path distributions are short once β is
//     non-trivial (see bench_ablation_voptimal).
//
//   * Hirschberg boundary recovery. Boundaries are reconstructed by
//     divide-and-conquer on the BUCKET COUNT: a forward row (exactly m
//     buckets over a prefix) and a backward row (exactly β-m buckets over a
//     suffix) locate the middle boundary, then the two halves recurse. Only
//     O(n) working memory is ever live — the (β+1)×(n+1) parent matrix of
//     the seed implementation is gone. The recursion re-derives rows over
//     geometrically shrinking subranges, roughly doubling the DP work in
//     exchange for the memory bound.
//
// All SSE evaluations are O(1) lookups on the shared DistributionStats
// prefix aggregates.

#include <algorithm>
#include <limits>
#include <vector>

#include "histogram/builders.h"

namespace pathest {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One forward DP layer with the pruned scan:
//   (*next)[i] = min over j in [min_j, i - 1] of
//                  prev[j] + stats.RangeSse(base + j, base + i)
// for i in [b, len] (positions relative to `base`), where min_j = b - 1 is
// the feasibility floor and prev[j] is finite and non-negative on
// [min_j, len].
void ForwardLayerPruned(const DistributionStats& stats, size_t base,
                        const std::vector<double>& prev,
                        std::vector<double>* next, size_t min_j, size_t b,
                        size_t len) {
  for (size_t i = b; i <= len; ++i) {
    double best = kInf;
    // Descending scan: the candidate bucket [j, i) grows as j falls, and
    // its SSE alone is a lower bound on the cost (prev >= 0) — once it
    // reaches `best`, j and every smaller split are dead (SSE is
    // non-increasing in j), so the scan is complete.
    size_t j = i;
    while (j > min_j) {
      --j;
      const double s = stats.RangeSse(base + j, base + i);
      if (s >= best) break;
      const double cost = prev[j] + s;
      if (cost < best) best = cost;
    }
    (*next)[i] = best;
  }
}

// F[i] = min SSE of partitioning data[base, base + i) into EXACTLY
// `buckets` buckets, for i in [0, len]; infeasible entries are +inf.
// (For i >= buckets, "exactly" and "at most" coincide — splitting a bucket
// never raises SSE — which is what makes F monotone in i.)
std::vector<double> ForwardRow(const DistributionStats& stats, size_t base,
                               size_t len, size_t buckets) {
  std::vector<double> dp(len + 1, kInf);
  for (size_t i = 1; i <= len; ++i) dp[i] = stats.RangeSse(base, base + i);
  if (buckets < 2) return dp;
  std::vector<double> next(len + 1, kInf);
  for (size_t b = 2; b <= buckets; ++b) {
    std::fill(next.begin(), next.end(), kInf);
    if (len >= b) ForwardLayerPruned(stats, base, dp, &next, b - 1, b, len);
    dp.swap(next);
  }
  return dp;
}

// Mirror of ForwardLayerPruned for the suffix DP:
//   (*next)[i] = min over j in [i + 1, max_j] of
//                  stats.RangeSse(base + i, base + j) + prev[j]
// for i in [0, len - b], where max_j = len - (b - 1) and prev[j] is finite
// and non-negative on [i + 1, max_j].
void BackwardLayerPruned(const DistributionStats& stats, size_t base,
                         const std::vector<double>& prev,
                         std::vector<double>* next, size_t max_j, size_t b,
                         size_t len) {
  for (size_t i = 0; i + b <= len; ++i) {
    double best = kInf;
    // Ascending scan: bucket [i, j) grows with j; once its SSE alone
    // reaches `best`, j and every larger split are dead (SSE is
    // non-decreasing in j), so the scan is complete.
    for (size_t j = i + 1; j <= max_j; ++j) {
      const double s = stats.RangeSse(base + i, base + j);
      if (s >= best) break;
      const double cost = s + prev[j];
      if (cost < best) best = cost;
    }
    (*next)[i] = best;
  }
}

// B[i] = min SSE of partitioning data[base + i, base + len) into EXACTLY
// `buckets` buckets, for i in [0, len]; infeasible entries are +inf.
std::vector<double> BackwardRow(const DistributionStats& stats, size_t base,
                                size_t len, size_t buckets) {
  std::vector<double> dp(len + 1, kInf);
  for (size_t i = 0; i < len; ++i) dp[i] = stats.RangeSse(base + i, base + len);
  if (buckets < 2) return dp;
  std::vector<double> next(len + 1, kInf);
  for (size_t b = 2; b <= buckets; ++b) {
    std::fill(next.begin(), next.end(), kInf);
    if (len >= b) {
      BackwardLayerPruned(stats, base, dp, &next, len - (b - 1), b, len);
    }
    dp.swap(next);
  }
  return dp;
}

// Appends the absolute positions of the b - 1 inner boundaries of an
// optimal b-bucket partition of data[base, base + len), ascending.
// Requires 1 <= b <= len.
void SolveBoundaries(const DistributionStats& stats, size_t base, size_t len,
                     size_t b, std::vector<uint64_t>* out) {
  if (b <= 1) return;
  if (b == len) {  // every value its own bucket; SSE 0 is optimal
    for (size_t i = 1; i < len; ++i) out->push_back(base + i);
    return;
  }
  const size_t m = b / 2;     // buckets left of the middle boundary
  const size_t rest = b - m;  // buckets right of it
  size_t best_j = m;
  {
    // Scoped so the rows are freed before recursing — keeps live memory
    // O(n) instead of O(n log β) across the recursion stack.
    const std::vector<double> f = ForwardRow(stats, base, len, m);
    const std::vector<double> g = BackwardRow(stats, base, len, rest);
    double best = kInf;
    for (size_t j = m; j + rest <= len; ++j) {
      const double cost = f[j] + g[j];
      if (cost < best) {
        best = cost;
        best_j = j;
      }
    }
  }
  SolveBoundaries(stats, base, best_j, m, out);
  out->push_back(base + best_j);
  SolveBoundaries(stats, base + best_j, len - best_j, rest, out);
}

}  // namespace

Result<Histogram> BuildVOptimalExact(const DistributionStats& stats,
                                     size_t num_buckets, size_t max_n) {
  if (stats.n() == 0) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const size_t n = stats.n();
  if (n > max_n) {
    return Status::ResourceExhausted(
        "exact V-optimal DP limited to " + std::to_string(max_n) +
        " values (got " + std::to_string(n) +
        "); use BuildVOptimalGreedy at scale");
  }
  const size_t beta = std::min(num_buckets, n);

  std::vector<uint64_t> boundaries;
  boundaries.reserve(beta - 1);
  SolveBoundaries(stats, 0, n, beta, &boundaries);
  return Histogram::FromBoundaries(stats.data(), std::move(boundaries));
}

Result<Histogram> BuildVOptimalExact(const std::vector<uint64_t>& data,
                                     size_t num_buckets, size_t max_n) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (data.size() > max_n) {
    // Reject before paying the O(n) stats allocation.
    return Status::ResourceExhausted(
        "exact V-optimal DP limited to " + std::to_string(max_n) +
        " values (got " + std::to_string(data.size()) +
        "); use BuildVOptimalGreedy at scale");
  }
  DistributionStats stats(data);
  return BuildVOptimalExact(stats, num_buckets, max_n);
}

}  // namespace pathest
