#include "histogram/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pathest {

DistributionStats::DistributionStats(const std::vector<uint64_t>& data)
    : data_(&data),
      prefix_sum_(data.size() + 1, 0.0),
      prefix_sumsq_(data.size() + 1, 0.0) {
  for (size_t i = 0; i < data.size(); ++i) {
    const double v = static_cast<double>(data[i]);
    prefix_sum_[i + 1] = prefix_sum_[i] + v;
    prefix_sumsq_[i + 1] = prefix_sumsq_[i] + v * v;
    max_value_ = std::max(max_value_, data[i]);
  }
}

size_t DistributionStats::LowerBoundMass(double mass) const {
  auto it = std::lower_bound(prefix_sum_.begin(), prefix_sum_.end(), mass);
  if (it == prefix_sum_.end()) return n();
  return static_cast<size_t>(it - prefix_sum_.begin());
}

std::vector<uint64_t> TopFrequencyPositions(const std::vector<uint64_t>& data,
                                            size_t k) {
  const size_t n = data.size();
  k = std::min(k, n);
  if (k == 0) return {};
  auto ranks_before = [&](uint64_t a, uint64_t b) {
    if (data[a] != data[b]) return data[a] > data[b];
    return a < b;
  };
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (k < n) {
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     ranks_before);
    order.resize(k);
  }
  // Ranked order gives the prefix property the sweep relies on.
  std::sort(order.begin(), order.end(), ranks_before);
  return order;
}

std::vector<uint64_t> TopGapPositions(const std::vector<uint64_t>& data,
                                      size_t k) {
  const size_t n = data.size();
  if (n < 2) return {};
  k = std::min(k, n - 1);
  if (k == 0) return {};
  auto gap = [&](uint64_t p) {
    return std::abs(static_cast<double>(data[p]) -
                    static_cast<double>(data[p - 1]));
  };
  auto ranks_before = [&](uint64_t a, uint64_t b) {
    const double ga = gap(a);
    const double gb = gap(b);
    if (ga != gb) return ga > gb;
    return a < b;
  };
  std::vector<uint64_t> positions(n - 1);
  std::iota(positions.begin(), positions.end(), 1);
  if (k < n - 1) {
    std::nth_element(positions.begin(), positions.begin() + (k - 1),
                     positions.end(), ranks_before);
    positions.resize(k);
  }
  std::sort(positions.begin(), positions.end(), ranks_before);
  return positions;
}

}  // namespace pathest
