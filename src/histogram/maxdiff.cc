#include <algorithm>

#include "histogram/builders.h"

namespace pathest {

namespace {

// Boundaries for `beta` buckets from a ranked-gap prefix (see
// TopGapPositions): the first beta - 1 ranked positions, ascending. Both
// the per-β builder and the sweep derive cuts through here, so one ranked
// selection produces bit-identical histograms either way.
Result<Histogram> MaxDiffFromRanked(const std::vector<uint64_t>& data,
                                    size_t beta,
                                    const std::vector<uint64_t>& ranked) {
  if (beta <= 1 || data.size() == 1) {
    return Histogram::FromBoundaries(data, {});
  }
  PATHEST_CHECK(ranked.size() >= beta - 1, "ranked gap prefix too short");
  std::vector<uint64_t> boundaries(ranked.begin(),
                                   ranked.begin() + (beta - 1));
  std::sort(boundaries.begin(), boundaries.end());
  return Histogram::FromBoundaries(data, std::move(boundaries));
}

}  // namespace

Result<Histogram> BuildMaxDiff(const std::vector<uint64_t>& data,
                               size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const size_t beta = std::min(num_buckets, data.size());
  return MaxDiffFromRanked(data, beta,
                           TopGapPositions(data, beta > 0 ? beta - 1 : 0));
}

Result<Histogram> BuildMaxDiff(const DistributionStats& stats,
                               size_t num_buckets) {
  return BuildMaxDiff(stats.data(), num_buckets);
}

Result<std::vector<Histogram>> BuildMaxDiffSweep(
    const DistributionStats& stats, const std::vector<size_t>& betas) {
  if (stats.n() == 0) return Status::InvalidArgument("empty histogram domain");
  for (size_t b : betas) {
    if (b == 0) return Status::InvalidArgument("need >= 1 bucket");
  }
  const size_t n = stats.n();
  size_t max_beta = 1;
  for (size_t b : betas) max_beta = std::max(max_beta, std::min(b, n));
  // One ranked selection for the largest β serves every smaller β as a
  // prefix (the selection order is total, so top-j is a prefix of top-k).
  const std::vector<uint64_t> ranked =
      TopGapPositions(stats.data(), max_beta - 1);
  std::vector<Histogram> out;
  out.reserve(betas.size());
  for (size_t b : betas) {
    auto h = MaxDiffFromRanked(stats.data(), std::min(b, n), ranked);
    if (!h.ok()) return h.status();
    out.push_back(std::move(*h));
  }
  return out;
}

}  // namespace pathest
