#include <algorithm>
#include <cmath>
#include <numeric>

#include "histogram/builders.h"

namespace pathest {

Result<Histogram> BuildMaxDiff(const std::vector<uint64_t>& data,
                               size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const size_t n = data.size();
  const size_t beta = std::min(num_buckets, n);
  if (beta == 1 || n == 1) {
    return Histogram::FromBoundaries(data, {});
  }

  // Positions 1..n-1 are possible boundaries; score = |data[i] - data[i-1]|.
  std::vector<uint64_t> positions(n - 1);
  std::iota(positions.begin(), positions.end(), 1);
  std::nth_element(
      positions.begin(), positions.begin() + (beta - 2), positions.end(),
      [&](uint64_t a, uint64_t b) {
        double da = std::abs(static_cast<double>(data[a]) -
                             static_cast<double>(data[a - 1]));
        double db = std::abs(static_cast<double>(data[b]) -
                             static_cast<double>(data[b - 1]));
        if (da != db) return da > db;
        return a < b;  // deterministic tie-break
      });
  std::vector<uint64_t> boundaries(positions.begin(),
                                   positions.begin() + (beta - 1));
  std::sort(boundaries.begin(), boundaries.end());
  return Histogram::FromBoundaries(data, std::move(boundaries));
}

}  // namespace pathest
