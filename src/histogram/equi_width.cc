#include "histogram/builders.h"

namespace pathest {

Result<Histogram> BuildEquiWidth(const std::vector<uint64_t>& data,
                                 size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const uint64_t n = data.size();
  const uint64_t beta = std::min<uint64_t>(num_buckets, n);
  std::vector<uint64_t> boundaries;
  boundaries.reserve(beta - 1);
  // i-th boundary at round(i * n / beta); strictly increasing because
  // beta <= n.
  for (uint64_t i = 1; i < beta; ++i) {
    boundaries.push_back(i * n / beta);
  }
  return Histogram::FromBoundaries(data, std::move(boundaries));
}

Result<Histogram> BuildEquiWidth(const DistributionStats& stats,
                                 size_t num_buckets) {
  return BuildEquiWidth(stats.data(), num_buckets);
}

}  // namespace pathest
