#include <algorithm>

#include "histogram/builders.h"

namespace pathest {

namespace {

// Cut set for `beta` buckets from a ranked top-frequency prefix (see
// TopFrequencyPositions): the first (beta - 1) / 2 positions become
// singleton buckets. Shared by the per-β builder and the sweep so one
// ranked selection produces bit-identical histograms either way.
Result<Histogram> EndBiasedFromRanked(const std::vector<uint64_t>& data,
                                      size_t beta,
                                      const std::vector<uint64_t>& ranked) {
  const size_t n = data.size();
  if (beta <= 1 || n == 1) {
    return Histogram::FromBoundaries(data, {});
  }
  // Give the (beta - 1) / 2 highest-frequency positions singleton buckets;
  // every contiguous run between singletons becomes one bucket, keeping
  // the total bucket count <= beta.
  const size_t singletons = (beta - 1) / 2;
  PATHEST_CHECK(ranked.size() >= singletons, "ranked frequency prefix short");
  std::vector<uint64_t> cuts;
  cuts.reserve(2 * singletons);
  for (size_t i = 0; i < singletons; ++i) {
    const uint64_t pos = ranked[i];
    if (pos > 0) cuts.push_back(pos);
    if (pos + 1 < n) cuts.push_back(pos + 1);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return Histogram::FromBoundaries(data, std::move(cuts));
}

}  // namespace

Result<Histogram> BuildEndBiased(const std::vector<uint64_t>& data,
                                 size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const size_t beta = std::min(num_buckets, data.size());
  const size_t singletons = beta > 1 ? (beta - 1) / 2 : 0;
  return EndBiasedFromRanked(data, beta,
                             TopFrequencyPositions(data, singletons));
}

Result<Histogram> BuildEndBiased(const DistributionStats& stats,
                                 size_t num_buckets) {
  return BuildEndBiased(stats.data(), num_buckets);
}

Result<std::vector<Histogram>> BuildEndBiasedSweep(
    const DistributionStats& stats, const std::vector<size_t>& betas) {
  if (stats.n() == 0) return Status::InvalidArgument("empty histogram domain");
  for (size_t b : betas) {
    if (b == 0) return Status::InvalidArgument("need >= 1 bucket");
  }
  const size_t n = stats.n();
  size_t max_singletons = 0;
  for (size_t b : betas) {
    const size_t beta = std::min(b, n);
    if (beta > 1) max_singletons = std::max(max_singletons, (beta - 1) / 2);
  }
  const std::vector<uint64_t> ranked =
      TopFrequencyPositions(stats.data(), max_singletons);
  std::vector<Histogram> out;
  out.reserve(betas.size());
  for (size_t b : betas) {
    auto h = EndBiasedFromRanked(stats.data(), std::min(b, n), ranked);
    if (!h.ok()) return h.status();
    out.push_back(std::move(*h));
  }
  return out;
}

}  // namespace pathest
