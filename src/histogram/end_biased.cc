#include <algorithm>
#include <numeric>

#include "histogram/builders.h"

namespace pathest {

Result<Histogram> BuildEndBiased(const std::vector<uint64_t>& data,
                                 size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const size_t n = data.size();
  const size_t beta = std::min(num_buckets, n);
  if (beta == 1 || n == 1) {
    return Histogram::FromBoundaries(data, {});
  }

  // Give the (beta - 1) / 2 highest-frequency positions singleton buckets;
  // every contiguous run between singletons becomes one bucket, keeping the
  // total bucket count <= beta.
  size_t singletons = (beta - 1) / 2;
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (singletons > 0) {
    std::nth_element(order.begin(), order.begin() + (singletons - 1),
                     order.end(), [&](uint64_t a, uint64_t b) {
                       if (data[a] != data[b]) return data[a] > data[b];
                       return a < b;
                     });
  }
  std::vector<uint64_t> cuts;
  for (size_t i = 0; i < singletons; ++i) {
    uint64_t pos = order[i];
    if (pos > 0) cuts.push_back(pos);
    if (pos + 1 < n) cuts.push_back(pos + 1);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return Histogram::FromBoundaries(data, std::move(cuts));
}

}  // namespace pathest
