// pathest: serial histograms over an ordered frequency domain.
//
// A histogram partitions the domain [0, n) — the ordered label-path indexes —
// into β contiguous buckets and stores, per bucket, the frequency sum (and
// sum of squares, for variance diagnostics). The point estimate for a domain
// position is its bucket's mean frequency, the standard uniform-frequency
// assumption for serial histograms.
//
// Histogram is the BUILD/diagnostic representation: an array of full Bucket
// structs (begin, end, sum, sumsq — 32 bytes each) that builders, SSE
// accounting, and serialization traffic in. The QUERY side never reads sum
// or sumsq; the serving path projects a Histogram into the
// structure-of-arrays FlatHistogram (histogram/flat_histogram.h): begin[] /
// mean[] / prefix_sum[] rows plus an Eytzinger-ordered boundary index, so a
// point lookup touches 8-byte boundary entries with cache-resident tree
// ancestors instead of striding 32-byte Buckets, and the mean division is
// paid once at build. Point estimates from the two are bit-identical.

#ifndef PATHEST_HISTOGRAM_HISTOGRAM_H_
#define PATHEST_HISTOGRAM_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace pathest {

/// \brief One histogram bucket over domain range [begin, end).
struct Bucket {
  uint64_t begin = 0;
  uint64_t end = 0;
  /// Sum of frequencies in the range.
  double sum = 0.0;
  /// Sum of squared frequencies (enables SSE computation).
  double sumsq = 0.0;

  uint64_t width() const { return end - begin; }
  double Mean() const { return width() == 0 ? 0.0 : sum / width(); }
  /// Within-bucket sum of squared errors around the mean.
  double Sse() const {
    return width() == 0 ? 0.0 : sumsq - (sum * sum) / width();
  }
};

/// \brief Immutable bucket sequence with O(log β) point estimation.
class Histogram {
 public:
  /// \brief Builds from explicit inner boundaries over `data`.
  /// `boundaries` are the begin positions of buckets 2..β, strictly
  /// increasing within (0, n).
  static Result<Histogram> FromBoundaries(const std::vector<uint64_t>& data,
                                          std::vector<uint64_t> boundaries);

  /// \brief Rebuilds from already-aggregated buckets (the deserialization
  /// path). Buckets must be non-empty, contiguous, and start at 0.
  static Result<Histogram> FromBuckets(std::vector<Bucket> buckets);

  /// \brief Number of buckets β.
  size_t num_buckets() const { return buckets_.size(); }

  /// \brief Domain size n.
  uint64_t domain_size() const {
    return buckets_.empty() ? 0 : buckets_.back().end;
  }

  /// \brief Estimated frequency at domain position `index` (< domain_size).
  double Estimate(uint64_t index) const;

  /// \brief Estimated SUM of frequencies over domain positions
  /// [begin, end) — the histogram range query (paper Section 2 mentions both
  /// point and range queries). Buckets fully inside the range contribute
  /// their exact sum; boundary buckets contribute pro-rata under the
  /// uniform-frequency assumption. `begin <= end <= domain_size()`.
  double EstimateRange(uint64_t begin, uint64_t end) const;

  /// \brief The bucket containing `index`.
  const Bucket& BucketFor(uint64_t index) const;

  /// \brief Total within-bucket SSE (the V-optimal objective).
  double TotalSse() const;

  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// \brief Diagnostic (build-side) storage footprint: the full Bucket
  /// array this object holds — begin, end, sum, AND sumsq, 32 bytes per
  /// bucket, which is also what core/serialize.cc writes per bucket. (This
  /// used to claim 16 bytes/bucket, silently halving every reported size.)
  /// The ESTIMATOR-resident footprint — what the serving side actually
  /// keeps per bucket — is FlatHistogram::ResidentBytes()
  /// (histogram/flat_histogram.h), reported next to this one in the
  /// Table 4 row so capacity planning can tell the query-path cost from
  /// the diagnostics cost.
  size_t ApproxBytes() const { return buckets_.size() * sizeof(Bucket); }

 private:
  explicit Histogram(std::vector<Bucket> buckets)
      : buckets_(std::move(buckets)) {}

  std::vector<Bucket> buckets_;
};

/// \brief Accumulates (sum, sumsq) over data[begin, end).
Bucket MakeBucket(const std::vector<uint64_t>& data, uint64_t begin,
                  uint64_t end);

}  // namespace pathest

#endif  // PATHEST_HISTOGRAM_HISTOGRAM_H_
