#include "histogram/flat_histogram.h"

namespace pathest {

namespace {

// Fills eytz[1..n] with the in-order traversal of sorted[0..n): the classic
// recursive Eytzinger construction, iterative cursor over the sorted array.
void BuildEytzinger(const std::vector<uint64_t>& sorted, size_t slot,
                    size_t* cursor, std::vector<uint64_t>* eytz,
                    std::vector<uint32_t>* rank) {
  if (slot >= eytz->size()) return;
  BuildEytzinger(sorted, 2 * slot, cursor, eytz, rank);
  (*eytz)[slot] = sorted[*cursor];
  (*rank)[slot] = static_cast<uint32_t>(*cursor);
  ++(*cursor);
  BuildEytzinger(sorted, 2 * slot + 1, cursor, eytz, rank);
}

}  // namespace

FlatHistogram::FlatHistogram(const Histogram& source) {
  const std::vector<Bucket>& buckets = source.buckets();
  PATHEST_CHECK(!buckets.empty(), "FlatHistogram needs at least one bucket");
  domain_size_ = source.domain_size();

  const size_t n = buckets.size();
  begin_.resize(n);
  mean_.resize(n);
  prefix_sum_.resize(n + 1);
  prefix_sum_[0] = 0.0;
  for (size_t b = 0; b < n; ++b) {
    begin_[b] = buckets[b].begin;
    mean_[b] = buckets[b].Mean();
    prefix_sum_[b + 1] = prefix_sum_[b] + buckets[b].sum;
  }

  eytz_begin_.assign(n + 1, 0);
  eytz_rank_.assign(n + 1, 0);
  size_t cursor = 0;
  BuildEytzinger(begin_, 1, &cursor, &eytz_begin_, &eytz_rank_);
  PATHEST_CHECK(cursor == n, "Eytzinger construction did not consume begins");
}

double FlatHistogram::EstimateRange(uint64_t begin, uint64_t end) const {
  PATHEST_CHECK(begin <= end, "range begin must be <= end");
  PATHEST_CHECK(end <= domain_size_, "range end out of domain");
  if (begin == end) return 0.0;
  const size_t first = FindBucket(begin);
  const size_t last = FindBucket(end - 1);
  if (first == last) {
    return mean_[first] * static_cast<double>(end - begin);
  }
  // End of bucket b is the begin of bucket b + 1 (or the domain end).
  const uint64_t first_end = begin_[first + 1];
  double total = mean_[first] * static_cast<double>(first_end - begin);
  total += prefix_sum_[last] - prefix_sum_[first + 1];
  total += mean_[last] * static_cast<double>(end - begin_[last]);
  return total;
}

size_t FlatHistogram::ResidentBytes() const {
  return begin_.size() * sizeof(uint64_t) + mean_.size() * sizeof(double) +
         prefix_sum_.size() * sizeof(double) +
         eytz_begin_.size() * sizeof(uint64_t) +
         eytz_rank_.size() * sizeof(uint32_t);
}

}  // namespace pathest
