#include "histogram/flat_histogram.h"

#include <utility>

namespace pathest {

namespace {

// Fills eytz[1..n] with the in-order traversal of sorted[0..n): the classic
// recursive Eytzinger construction, iterative cursor over the sorted array.
void BuildEytzinger(const std::vector<uint64_t>& sorted, size_t slot,
                    size_t* cursor, std::vector<uint64_t>* eytz,
                    std::vector<uint32_t>* rank) {
  if (slot >= eytz->size()) return;
  BuildEytzinger(sorted, 2 * slot, cursor, eytz, rank);
  (*eytz)[slot] = sorted[*cursor];
  (*rank)[slot] = static_cast<uint32_t>(*cursor);
  ++(*cursor);
  BuildEytzinger(sorted, 2 * slot + 1, cursor, eytz, rank);
}

}  // namespace

void FlatHistogram::PointAtOwned() {
  begin_ = begin_store_;
  mean_ = mean_store_;
  prefix_sum_ = prefix_store_;
  eytz_begin_ = eytz_begin_store_;
  eytz_rank_ = eytz_rank_store_;
}

FlatHistogram::FlatHistogram(const Histogram& source) {
  const std::vector<Bucket>& buckets = source.buckets();
  PATHEST_CHECK(!buckets.empty(), "FlatHistogram needs at least one bucket");
  domain_size_ = source.domain_size();

  const size_t n = buckets.size();
  begin_store_.resize(n);
  mean_store_.resize(n);
  prefix_store_.resize(n + 1);
  prefix_store_[0] = 0.0;
  for (size_t b = 0; b < n; ++b) {
    begin_store_[b] = buckets[b].begin;
    mean_store_[b] = buckets[b].Mean();
    prefix_store_[b + 1] = prefix_store_[b] + buckets[b].sum;
  }

  eytz_begin_store_.assign(n + 1, 0);
  eytz_rank_store_.assign(n + 1, 0);
  size_t cursor = 0;
  BuildEytzinger(begin_store_, 1, &cursor, &eytz_begin_store_,
                 &eytz_rank_store_);
  PATHEST_CHECK(cursor == n, "Eytzinger construction did not consume begins");
  PointAtOwned();
}

FlatHistogram FlatHistogram::FromBorrowedRows(const Rows& rows) {
  const size_t n = rows.begin.size();
  PATHEST_CHECK(n >= 1, "FlatHistogram needs at least one bucket");
  PATHEST_CHECK(rows.mean.size() == n && rows.prefix_sum.size() == n + 1 &&
                    rows.eytz_begin.size() == n + 1 &&
                    rows.eytz_rank.size() == n + 1,
                "borrowed row shapes inconsistent");
  PATHEST_CHECK(rows.begin[0] == 0, "borrowed begins must start at 0");
  PATHEST_CHECK(rows.domain_size > 0, "borrowed domain must be non-empty");
  FlatHistogram flat;
  flat.domain_size_ = rows.domain_size;
  flat.owned_ = false;
  flat.begin_ = rows.begin;
  flat.mean_ = rows.mean;
  flat.prefix_sum_ = rows.prefix_sum;
  flat.eytz_begin_ = rows.eytz_begin;
  flat.eytz_rank_ = rows.eytz_rank;
  return flat;
}

FlatHistogram::FlatHistogram(const FlatHistogram& other)
    : domain_size_(other.domain_size_),
      owned_(other.owned_),
      begin_store_(other.begin_store_),
      mean_store_(other.mean_store_),
      prefix_store_(other.prefix_store_),
      eytz_begin_store_(other.eytz_begin_store_),
      eytz_rank_store_(other.eytz_rank_store_) {
  if (owned_) {
    PointAtOwned();
  } else {
    begin_ = other.begin_;
    mean_ = other.mean_;
    prefix_sum_ = other.prefix_sum_;
    eytz_begin_ = other.eytz_begin_;
    eytz_rank_ = other.eytz_rank_;
  }
}

FlatHistogram& FlatHistogram::operator=(const FlatHistogram& other) {
  if (this == &other) return *this;
  *this = FlatHistogram(other);  // copy-construct, then move-assign
  return *this;
}

FlatHistogram::FlatHistogram(FlatHistogram&& other) noexcept
    : domain_size_(other.domain_size_),
      owned_(other.owned_),
      begin_store_(std::move(other.begin_store_)),
      mean_store_(std::move(other.mean_store_)),
      prefix_store_(std::move(other.prefix_store_)),
      eytz_begin_store_(std::move(other.eytz_begin_store_)),
      eytz_rank_store_(std::move(other.eytz_rank_store_)),
      // Moving a vector keeps its heap allocation, so spans into it stay
      // valid whether they view the stores or a caller's rows.
      begin_(other.begin_),
      mean_(other.mean_),
      prefix_sum_(other.prefix_sum_),
      eytz_begin_(other.eytz_begin_),
      eytz_rank_(other.eytz_rank_) {
  other.domain_size_ = 0;
  other.begin_ = {};
  other.mean_ = {};
  other.prefix_sum_ = {};
  other.eytz_begin_ = {};
  other.eytz_rank_ = {};
}

FlatHistogram& FlatHistogram::operator=(FlatHistogram&& other) noexcept {
  if (this == &other) return *this;
  domain_size_ = other.domain_size_;
  owned_ = other.owned_;
  begin_store_ = std::move(other.begin_store_);
  mean_store_ = std::move(other.mean_store_);
  prefix_store_ = std::move(other.prefix_store_);
  eytz_begin_store_ = std::move(other.eytz_begin_store_);
  eytz_rank_store_ = std::move(other.eytz_rank_store_);
  begin_ = other.begin_;
  mean_ = other.mean_;
  prefix_sum_ = other.prefix_sum_;
  eytz_begin_ = other.eytz_begin_;
  eytz_rank_ = other.eytz_rank_;
  other.domain_size_ = 0;
  other.begin_ = {};
  other.mean_ = {};
  other.prefix_sum_ = {};
  other.eytz_begin_ = {};
  other.eytz_rank_ = {};
  return *this;
}

double FlatHistogram::EstimateRange(uint64_t begin, uint64_t end) const {
  PATHEST_CHECK(begin <= end, "range begin must be <= end");
  PATHEST_CHECK(end <= domain_size_, "range end out of domain");
  if (begin == end) return 0.0;
  const size_t first = FindBucket(begin);
  const size_t last = FindBucket(end - 1);
  if (first == last) {
    return mean_[first] * static_cast<double>(end - begin);
  }
  // End of bucket b is the begin of bucket b + 1 (or the domain end).
  const uint64_t first_end = begin_[first + 1];
  double total = mean_[first] * static_cast<double>(first_end - begin);
  total += prefix_sum_[last] - prefix_sum_[first + 1];
  total += mean_[last] * static_cast<double>(end - begin_[last]);
  return total;
}

size_t FlatHistogram::ResidentBytes() const {
  return begin_store_.size() * sizeof(uint64_t) +
         mean_store_.size() * sizeof(double) +
         prefix_store_.size() * sizeof(double) +
         eytz_begin_store_.size() * sizeof(uint64_t) +
         eytz_rank_store_.size() * sizeof(uint32_t);
}

size_t FlatHistogram::MappedBytes() const {
  if (owned_) return 0;
  return begin_.size() * sizeof(uint64_t) + mean_.size() * sizeof(double) +
         prefix_sum_.size() * sizeof(double) +
         eytz_begin_.size() * sizeof(uint64_t) +
         eytz_rank_.size() * sizeof(uint32_t);
}

}  // namespace pathest
