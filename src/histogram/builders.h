// pathest: histogram construction policies.
//
// Every builder takes the frequency sequence in domain order (one value per
// label-path index under a chosen ordering) and a bucket budget β, and
// returns a Histogram. The V-optimal objective (minimum total within-bucket
// SSE) has two implementations:
//   * BuildVOptimalExact  — the exact DP with SSE-bound pruned split scans
//     and Hirschberg-style boundary recovery: O(n) memory (no parent
//     matrix), worst case O(n² β) but short measured scans on path
//     distributions (see v_optimal.cc for why the textbook monotone-split
//     divide-and-conquer is unsound for segment SSE); reference quality,
//     guarded by max_n;
//   * BuildVOptimalGreedy — bottom-up adjacent-bucket merging with a lazy
//     min-heap, O(n log n); the scalable builder used at paper scale
//     (n = 55 986 with β up to n/2), see DESIGN.md §3.
//
// Shared-stats engine: every builder also has an overload taking a
// DistributionStats (histogram/stats.h) — prefix sums of counts and squared
// counts, total-mass and max lookups, computed ONCE per distribution and
// reused by every build over it. With shared stats, equi-depth boundary
// construction is O(β log n) binary search on prefix mass, maxdiff and
// end-biased take their cut candidates via nth_element prefixes, and every
// SSE the V-optimal builders evaluate is an O(1) range lookup. The
// vector-based entry points remain and build a private DistributionStats
// where one is needed, so both spellings produce bit-identical histograms.
//
// Multi-β sweep contract: BuildHistogramSweep(type, stats, betas) returns
// one histogram per requested β (input order preserved; duplicates and
// unsorted inputs allowed; β > n clamps to n exactly like the per-β
// builders), and each returned histogram is BIT-IDENTICAL to the
// corresponding independent per-β build — same boundaries, same
// double-precision bucket sums (enforced by tests/histogram_sweep_test.cc).
// Where the policy has an incremental form the sweep shares the dominant
// work across all β:
//   * kVOptimal — BuildVOptimalGreedySweep runs the lazy-min-heap merge
//     ONCE from n singletons down to the smallest requested β and snapshots
//     boundaries every time the live-bucket count crosses a requested
//     level: the whole β = n/2 ... n/128 sweep costs one merge run instead
//     of seven.
//   * kMaxDiff / kEndBiased — one ranked top-k selection (largest gaps /
//     highest frequencies) serves every β as a prefix.
//   * kEquiWidth / kEquiDepth / kVOptimalExact — no incremental form; the
//     sweep falls back to per-β builds over the shared stats.

#ifndef PATHEST_HISTOGRAM_BUILDERS_H_
#define PATHEST_HISTOGRAM_BUILDERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "histogram/histogram.h"
#include "histogram/stats.h"
#include "util/status.h"

namespace pathest {

/// \brief Default domain-size ceiling for the exact V-optimal DP. The
/// pruned-scan + Hirschberg implementation (see v_optimal.cc) lifted the
/// seed's 4096 ceiling: memory is O(n) and measured build times on path
/// distributions stay in seconds well past 10⁴ values. The worst case is
/// still O(n² β), so callers probing adversarial data at large β should
/// pass their own budget.
inline constexpr size_t kVOptimalExactDefaultMaxN = 16384;

/// \brief Equal-width buckets: boundary positions evenly spaced.
Result<Histogram> BuildEquiWidth(const std::vector<uint64_t>& data,
                                 size_t num_buckets);
Result<Histogram> BuildEquiWidth(const DistributionStats& stats,
                                 size_t num_buckets);

/// \brief Equal-depth (equi-sum) buckets: each bucket holds ~1/β of the
/// total frequency mass. With shared stats, boundary construction is
/// O(β log n) binary search on prefix mass.
Result<Histogram> BuildEquiDepth(const std::vector<uint64_t>& data,
                                 size_t num_buckets);
Result<Histogram> BuildEquiDepth(const DistributionStats& stats,
                                 size_t num_buckets);

/// \brief Exact V-optimal via dynamic programming with SSE-bound pruned
/// split scans and Hirschberg-style boundary recovery: O(n) working
/// memory, no parent matrix. Rejects n > max_n to keep the cost bounded.
Result<Histogram> BuildVOptimalExact(const std::vector<uint64_t>& data,
                                     size_t num_buckets,
                                     size_t max_n = kVOptimalExactDefaultMaxN);
Result<Histogram> BuildVOptimalExact(const DistributionStats& stats,
                                     size_t num_buckets,
                                     size_t max_n = kVOptimalExactDefaultMaxN);

/// \brief Greedy approximate V-optimal: start from singleton buckets and
/// repeatedly merge the adjacent pair with the smallest SSE increase.
Result<Histogram> BuildVOptimalGreedy(const std::vector<uint64_t>& data,
                                      size_t num_buckets);
Result<Histogram> BuildVOptimalGreedy(const DistributionStats& stats,
                                      size_t num_buckets);

/// \brief MaxDiff: boundaries at the β-1 largest adjacent frequency gaps
/// (selected via nth_element, never a full sort).
Result<Histogram> BuildMaxDiff(const std::vector<uint64_t>& data,
                               size_t num_buckets);
Result<Histogram> BuildMaxDiff(const DistributionStats& stats,
                               size_t num_buckets);

/// \brief End-biased: singleton buckets for the ~β/2 highest-frequency
/// positions (selected via nth_element, never a full sort), remaining runs
/// bucketed contiguously. Total buckets <= β.
Result<Histogram> BuildEndBiased(const std::vector<uint64_t>& data,
                                 size_t num_buckets);
Result<Histogram> BuildEndBiased(const DistributionStats& stats,
                                 size_t num_buckets);

/// \brief Instrumentation of the greedy-merge engine: how many merge passes
/// were started and how many bucket merges they performed. Tests use this
/// to prove a whole sweep costs ONE pass.
struct GreedyMergeMetrics {
  size_t merge_runs = 0;
  size_t merges = 0;
};

/// \brief The incremental multi-β greedy V-optimal sweep: one merge run
/// from n singletons down to min(betas), snapshotting boundaries at every
/// requested level. Returns one histogram per input β (order preserved),
/// each bit-identical to the independent BuildVOptimalGreedy build.
/// `metrics`, when non-null, is incremented (not reset).
Result<std::vector<Histogram>> BuildVOptimalGreedySweep(
    const DistributionStats& stats, const std::vector<size_t>& betas,
    GreedyMergeMetrics* metrics = nullptr);

/// \brief Multi-β maxdiff: ONE ranked gap selection (for the largest β)
/// serves every smaller β as a prefix. Same alignment/identity contract as
/// BuildVOptimalGreedySweep.
Result<std::vector<Histogram>> BuildMaxDiffSweep(
    const DistributionStats& stats, const std::vector<size_t>& betas);

/// \brief Multi-β end-biased: ONE ranked top-frequency selection serves
/// every β as a prefix. Same alignment/identity contract.
Result<std::vector<Histogram>> BuildEndBiasedSweep(
    const DistributionStats& stats, const std::vector<size_t>& betas);

/// \brief Histogram construction policy selector.
enum class HistogramType {
  kEquiWidth,
  kEquiDepth,
  kVOptimal,       // greedy at any scale (paper-scale default)
  kVOptimalExact,  // DP, bounded domains (see kVOptimalExactDefaultMaxN)
  kMaxDiff,
  kEndBiased,
};

/// \brief Short names: "equi-width", "equi-depth", "v-optimal",
/// "v-optimal-exact", "maxdiff", "end-biased".
const char* HistogramTypeName(HistogramType type);

/// \brief Name -> type lookup.
Result<HistogramType> ParseHistogramType(const std::string& name);

/// \brief Dispatches to the matching builder.
Result<Histogram> BuildHistogram(HistogramType type,
                                 const std::vector<uint64_t>& data,
                                 size_t num_buckets);
Result<Histogram> BuildHistogram(HistogramType type,
                                 const DistributionStats& stats,
                                 size_t num_buckets);

/// \brief Builds the whole β sweep of one policy over shared stats (see
/// the multi-β sweep contract in the file comment). Policies with an
/// incremental form share their dominant work across all β; the rest fall
/// back to per-β builds over `stats`.
Result<std::vector<Histogram>> BuildHistogramSweep(
    HistogramType type, const DistributionStats& stats,
    const std::vector<size_t>& betas);

}  // namespace pathest

#endif  // PATHEST_HISTOGRAM_BUILDERS_H_
