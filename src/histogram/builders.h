// pathest: histogram construction policies.
//
// Every builder takes the frequency sequence in domain order (one value per
// label-path index under a chosen ordering) and a bucket budget β, and
// returns a Histogram. The V-optimal objective (minimum total within-bucket
// SSE) has two implementations:
//   * BuildVOptimalExact  — the O(n² β) dynamic program; reference quality,
//     guarded to small n (tests, ablations);
//   * BuildVOptimalGreedy — bottom-up adjacent-bucket merging with a lazy
//     min-heap, O(n log n); the scalable builder used at paper scale
//     (n = 55 986 with β up to n/2), see DESIGN.md §3.

#ifndef PATHEST_HISTOGRAM_BUILDERS_H_
#define PATHEST_HISTOGRAM_BUILDERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "histogram/histogram.h"
#include "util/status.h"

namespace pathest {

/// \brief Equal-width buckets: boundary positions evenly spaced.
Result<Histogram> BuildEquiWidth(const std::vector<uint64_t>& data,
                                 size_t num_buckets);

/// \brief Equal-depth (equi-sum) buckets: each bucket holds ~1/β of the total
/// frequency mass.
Result<Histogram> BuildEquiDepth(const std::vector<uint64_t>& data,
                                 size_t num_buckets);

/// \brief Exact V-optimal via dynamic programming. Rejects n > max_n to keep
/// the quadratic cost bounded.
Result<Histogram> BuildVOptimalExact(const std::vector<uint64_t>& data,
                                     size_t num_buckets,
                                     size_t max_n = 4096);

/// \brief Greedy approximate V-optimal: start from singleton buckets and
/// repeatedly merge the adjacent pair with the smallest SSE increase.
Result<Histogram> BuildVOptimalGreedy(const std::vector<uint64_t>& data,
                                      size_t num_buckets);

/// \brief MaxDiff: boundaries at the β-1 largest adjacent frequency gaps.
Result<Histogram> BuildMaxDiff(const std::vector<uint64_t>& data,
                               size_t num_buckets);

/// \brief End-biased: singleton buckets for the ~β/2 highest-frequency
/// positions, remaining runs bucketed contiguously. Total buckets <= β.
Result<Histogram> BuildEndBiased(const std::vector<uint64_t>& data,
                                 size_t num_buckets);

/// \brief Histogram construction policy selector.
enum class HistogramType {
  kEquiWidth,
  kEquiDepth,
  kVOptimal,       // greedy at any scale (paper-scale default)
  kVOptimalExact,  // DP, small domains only
  kMaxDiff,
  kEndBiased,
};

/// \brief Short names: "equi-width", "equi-depth", "v-optimal",
/// "v-optimal-exact", "maxdiff", "end-biased".
const char* HistogramTypeName(HistogramType type);

/// \brief Name -> type lookup.
Result<HistogramType> ParseHistogramType(const std::string& name);

/// \brief Dispatches to the matching builder.
Result<Histogram> BuildHistogram(HistogramType type,
                                 const std::vector<uint64_t>& data,
                                 size_t num_buckets);

}  // namespace pathest

#endif  // PATHEST_HISTOGRAM_BUILDERS_H_
