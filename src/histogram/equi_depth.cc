#include <algorithm>

#include "histogram/builders.h"

namespace pathest {

namespace {

// Boundary construction over a prefix-sum array (n + 1 entries, prefix[i] =
// sum of data[0, i)). Both entry points run through here — the stats
// overload with the shared array, the vector overload with a locally
// accumulated one built in the same order — so their boundaries are
// bit-identical.
Result<Histogram> EquiDepthFromPrefix(const std::vector<uint64_t>& data,
                                      const std::vector<double>& prefix,
                                      size_t num_buckets) {
  const uint64_t n = data.size();
  const uint64_t beta = std::min<uint64_t>(num_buckets, n);
  const double target = prefix.back() / static_cast<double>(beta);

  // The j-th cut closes bucket j at the first position whose prefix mass
  // reaches j * target — an O(log n) binary search — clamped so every
  // bucket is non-empty and enough positions remain for the cuts still to
  // place.
  std::vector<uint64_t> boundaries;
  boundaries.reserve(beta - 1);
  uint64_t last = 0;
  for (uint64_t j = 1; j < beta; ++j) {
    auto it = std::lower_bound(prefix.begin(), prefix.end(),
                               target * static_cast<double>(j));
    uint64_t p = static_cast<uint64_t>(it - prefix.begin());
    p = std::min<uint64_t>(p, n);
    p = std::max<uint64_t>(p, last + 1);
    p = std::min<uint64_t>(p, n - (beta - j));
    boundaries.push_back(p);
    last = p;
  }
  return Histogram::FromBoundaries(data, std::move(boundaries));
}

}  // namespace

Result<Histogram> BuildEquiDepth(const DistributionStats& stats,
                                 size_t num_buckets) {
  if (stats.n() == 0) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  return EquiDepthFromPrefix(stats.data(), stats.prefix_sums(), num_buckets);
}

Result<Histogram> BuildEquiDepth(const std::vector<uint64_t>& data,
                                 size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  // Only the mass prefix is needed here; skip the squared-count and max
  // aggregates a full DistributionStats would compute.
  std::vector<double> prefix(data.size() + 1, 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    prefix[i + 1] = prefix[i] + static_cast<double>(data[i]);
  }
  return EquiDepthFromPrefix(data, prefix, num_buckets);
}

}  // namespace pathest
