#include "histogram/builders.h"

namespace pathest {

Result<Histogram> BuildEquiDepth(const std::vector<uint64_t>& data,
                                 size_t num_buckets) {
  if (data.empty()) return Status::InvalidArgument("empty histogram domain");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  const uint64_t n = data.size();
  const uint64_t beta = std::min<uint64_t>(num_buckets, n);

  double total = 0.0;
  for (uint64_t v : data) total += static_cast<double>(v);
  const double target = total / static_cast<double>(beta);

  std::vector<uint64_t> boundaries;
  boundaries.reserve(beta - 1);
  double acc = 0.0;
  double next_cut = target;
  for (uint64_t i = 0; i < n && boundaries.size() + 1 < beta; ++i) {
    acc += static_cast<double>(data[i]);
    // Close the bucket once its mass reaches the target, but never create an
    // empty-width bucket and always leave room for the remaining cuts.
    uint64_t remaining_cuts = beta - 1 - boundaries.size();
    uint64_t last_start = boundaries.empty() ? 0 : boundaries.back();
    bool must_cut = (n - (i + 1)) == remaining_cuts;  // else cannot fit rest
    if ((acc >= next_cut && i + 1 > last_start && i + 1 < n) || must_cut) {
      boundaries.push_back(i + 1);
      next_cut += target;
    }
  }
  return Histogram::FromBoundaries(data, std::move(boundaries));
}

}  // namespace pathest
