// pathest: shared distribution statistics — the histogram engine's
// workspace.
//
// A histogram grid (ordering × β sweep, the paper's Figure 2 / Table 4
// experiments) rebuilds many histograms over the SAME frequency sequence.
// Every builder needs the same aggregates of that sequence, so computing
// them per (ordering, β) cell is pure waste. A DistributionStats is built
// once per distribution (O(n)) and handed to every builder and to the
// multi-β sweep API (histogram/builders.h):
//
//   * prefix sums of counts and squared counts — any range sum, mean, or
//     SSE is an O(1) lookup (RangeSse), which is what the exact V-optimal
//     DP and the greedy-merge seeding consume;
//   * total mass + binary search on the prefix-mass array — equi-depth
//     boundary construction becomes O(β log n) (LowerBoundMass);
//   * ranked top-k selections over frequencies and adjacent gaps
//     (TopFrequencyPositions / TopGapPositions, free functions) — maxdiff
//     and end-biased pick their cut candidates via nth_element, and the
//     ranked prefix property lets ONE selection serve every β of a sweep.
//
// The stats reference (do not copy) the caller's data vector; the vector
// must outlive the stats and must not be mutated while they are in use.

#ifndef PATHEST_HISTOGRAM_STATS_H_
#define PATHEST_HISTOGRAM_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathest {

/// \brief Precomputed aggregates of one frequency sequence, shared by every
/// histogram builder of a sweep.
class DistributionStats {
 public:
  /// \brief O(n) construction. Keeps a reference to `data`; see file
  /// comment for the lifetime contract.
  explicit DistributionStats(const std::vector<uint64_t>& data);

  /// \brief Domain size n.
  size_t n() const { return data_->size(); }

  /// \brief The backing frequency sequence.
  const std::vector<uint64_t>& data() const { return *data_; }

  /// \brief Total frequency mass (= PrefixSum(n)).
  double total() const { return prefix_sum_.back(); }

  /// \brief Largest frequency in the sequence.
  uint64_t max_value() const { return max_value_; }

  /// \brief Sum of data[0, i). `i <= n`.
  double PrefixSum(size_t i) const { return prefix_sum_[i]; }

  /// \brief Sum of data[begin, end). O(1).
  double RangeSum(size_t begin, size_t end) const {
    return prefix_sum_[end] - prefix_sum_[begin];
  }

  /// \brief Sum of squared frequencies over data[begin, end). O(1).
  double RangeSumSq(size_t begin, size_t end) const {
    return prefix_sumsq_[end] - prefix_sumsq_[begin];
  }

  /// \brief Within-range SSE around the range mean (the V-optimal bucket
  /// cost). O(1); 0 for an empty range. Clamped at 0: the algebraic value
  /// is non-negative, but floating-point cancellation of ss - s²/w can dip
  /// below it, and the exact-DP pruning (v_optimal.cc) relies on SSE being
  /// a sound non-negative lower bound.
  double RangeSse(size_t begin, size_t end) const {
    if (begin == end) return 0.0;
    const double s = RangeSum(begin, end);
    const double ss = RangeSumSq(begin, end);
    const double w = static_cast<double>(end - begin);
    return std::max(0.0, ss - (s * s) / w);
  }

  /// \brief Smallest position p in [0, n] with PrefixSum(p) >= mass
  /// (n when even the full mass falls short). O(log n) — the equi-depth
  /// boundary search.
  size_t LowerBoundMass(double mass) const;

  /// \brief The raw prefix-sum array (n + 1 entries, prefix_sums()[i] =
  /// PrefixSum(i)), for builders that binary-search it directly.
  const std::vector<double>& prefix_sums() const { return prefix_sum_; }

 private:
  const std::vector<uint64_t>* data_;
  std::vector<double> prefix_sum_;    // n + 1 entries
  std::vector<double> prefix_sumsq_;  // n + 1 entries
  uint64_t max_value_ = 0;
};

/// \brief Positions of the k largest frequencies under the total order
/// (frequency desc, position asc), returned in that ranked order. Because
/// the order is total, the first j entries are exactly the top-j selection
/// for EVERY j <= k — one call serves a whole β sweep (end-biased).
/// k is clamped to n. O(n + k log k) via nth_element.
std::vector<uint64_t> TopFrequencyPositions(const std::vector<uint64_t>& data,
                                            size_t k);

/// \brief Boundary positions p in [1, n) of the k largest adjacent gaps
/// |data[p] - data[p-1]| under (gap desc, position asc), in ranked order
/// with the same prefix property (maxdiff). k is clamped to n - 1.
std::vector<uint64_t> TopGapPositions(const std::vector<uint64_t>& data,
                                      size_t k);

}  // namespace pathest

#endif  // PATHEST_HISTOGRAM_STATS_H_
