#include "histogram/builders.h"

namespace pathest {

const char* HistogramTypeName(HistogramType type) {
  switch (type) {
    case HistogramType::kEquiWidth:
      return "equi-width";
    case HistogramType::kEquiDepth:
      return "equi-depth";
    case HistogramType::kVOptimal:
      return "v-optimal";
    case HistogramType::kVOptimalExact:
      return "v-optimal-exact";
    case HistogramType::kMaxDiff:
      return "maxdiff";
    case HistogramType::kEndBiased:
      return "end-biased";
  }
  return "?";
}

Result<HistogramType> ParseHistogramType(const std::string& name) {
  for (HistogramType type :
       {HistogramType::kEquiWidth, HistogramType::kEquiDepth,
        HistogramType::kVOptimal, HistogramType::kVOptimalExact,
        HistogramType::kMaxDiff, HistogramType::kEndBiased}) {
    if (name == HistogramTypeName(type)) return type;
  }
  return Status::NotFound("unknown histogram type: " + name);
}

Result<Histogram> BuildHistogram(HistogramType type,
                                 const std::vector<uint64_t>& data,
                                 size_t num_buckets) {
  switch (type) {
    case HistogramType::kEquiWidth:
      return BuildEquiWidth(data, num_buckets);
    case HistogramType::kEquiDepth:
      return BuildEquiDepth(data, num_buckets);
    case HistogramType::kVOptimal:
      return BuildVOptimalGreedy(data, num_buckets);
    case HistogramType::kVOptimalExact:
      return BuildVOptimalExact(data, num_buckets);
    case HistogramType::kMaxDiff:
      return BuildMaxDiff(data, num_buckets);
    case HistogramType::kEndBiased:
      return BuildEndBiased(data, num_buckets);
  }
  return Status::InvalidArgument("unknown histogram type");
}

Result<Histogram> BuildHistogram(HistogramType type,
                                 const DistributionStats& stats,
                                 size_t num_buckets) {
  switch (type) {
    case HistogramType::kEquiWidth:
      return BuildEquiWidth(stats, num_buckets);
    case HistogramType::kEquiDepth:
      return BuildEquiDepth(stats, num_buckets);
    case HistogramType::kVOptimal:
      return BuildVOptimalGreedy(stats, num_buckets);
    case HistogramType::kVOptimalExact:
      return BuildVOptimalExact(stats, num_buckets);
    case HistogramType::kMaxDiff:
      return BuildMaxDiff(stats, num_buckets);
    case HistogramType::kEndBiased:
      return BuildEndBiased(stats, num_buckets);
  }
  return Status::InvalidArgument("unknown histogram type");
}

Result<std::vector<Histogram>> BuildHistogramSweep(
    HistogramType type, const DistributionStats& stats,
    const std::vector<size_t>& betas) {
  switch (type) {
    case HistogramType::kVOptimal:
      return BuildVOptimalGreedySweep(stats, betas);
    case HistogramType::kMaxDiff:
      return BuildMaxDiffSweep(stats, betas);
    case HistogramType::kEndBiased:
      return BuildEndBiasedSweep(stats, betas);
    case HistogramType::kEquiWidth:
    case HistogramType::kEquiDepth:
    case HistogramType::kVOptimalExact: {
      // No incremental form; per-β builds over the shared stats.
      std::vector<Histogram> out;
      out.reserve(betas.size());
      for (size_t beta : betas) {
        auto h = BuildHistogram(type, stats, beta);
        if (!h.ok()) return h.status();
        out.push_back(std::move(*h));
      }
      return out;
    }
  }
  return Status::InvalidArgument("unknown histogram type");
}

}  // namespace pathest
