#include "histogram/builders.h"

namespace pathest {

const char* HistogramTypeName(HistogramType type) {
  switch (type) {
    case HistogramType::kEquiWidth:
      return "equi-width";
    case HistogramType::kEquiDepth:
      return "equi-depth";
    case HistogramType::kVOptimal:
      return "v-optimal";
    case HistogramType::kVOptimalExact:
      return "v-optimal-exact";
    case HistogramType::kMaxDiff:
      return "maxdiff";
    case HistogramType::kEndBiased:
      return "end-biased";
  }
  return "?";
}

Result<HistogramType> ParseHistogramType(const std::string& name) {
  for (HistogramType type :
       {HistogramType::kEquiWidth, HistogramType::kEquiDepth,
        HistogramType::kVOptimal, HistogramType::kVOptimalExact,
        HistogramType::kMaxDiff, HistogramType::kEndBiased}) {
    if (name == HistogramTypeName(type)) return type;
  }
  return Status::NotFound("unknown histogram type: " + name);
}

Result<Histogram> BuildHistogram(HistogramType type,
                                 const std::vector<uint64_t>& data,
                                 size_t num_buckets) {
  switch (type) {
    case HistogramType::kEquiWidth:
      return BuildEquiWidth(data, num_buckets);
    case HistogramType::kEquiDepth:
      return BuildEquiDepth(data, num_buckets);
    case HistogramType::kVOptimal:
      return BuildVOptimalGreedy(data, num_buckets);
    case HistogramType::kVOptimalExact:
      return BuildVOptimalExact(data, num_buckets);
    case HistogramType::kMaxDiff:
      return BuildMaxDiff(data, num_buckets);
    case HistogramType::kEndBiased:
      return BuildEndBiased(data, num_buckets);
  }
  return Status::InvalidArgument("unknown histogram type");
}

}  // namespace pathest
