#include "path/label_path.h"

#include <sstream>

namespace pathest {

LabelPath::LabelPath(std::initializer_list<LabelId> labels) {
  PATHEST_CHECK(labels.size() <= kMaxPathLength, "path exceeds kMaxPathLength");
  for (LabelId l : labels) PushBack(l);
}

LabelPath LabelPath::Extend(LabelId next) const {
  LabelPath out = *this;
  out.PushBack(next);
  return out;
}

LabelPath LabelPath::Prefix(size_t n) const {
  PATHEST_CHECK(n <= length_, "prefix longer than path");
  LabelPath out = *this;
  out.length_ = static_cast<uint8_t>(n);
  return out;
}

LabelPath LabelPath::Suffix(size_t n) const {
  PATHEST_CHECK(n <= length_, "suffix drop count longer than path");
  LabelPath out;
  for (size_t i = n; i < length_; ++i) out.PushBack(labels_[i]);
  return out;
}

void LabelPath::PushBack(LabelId next) {
  PATHEST_CHECK(length_ < kMaxPathLength, "path exceeds kMaxPathLength");
  PATHEST_CHECK(next <= UINT16_MAX, "label id exceeds 16 bits");
  labels_[length_++] = static_cast<uint16_t>(next);
}

void LabelPath::PopBack() {
  PATHEST_CHECK(length_ > 0, "PopBack on empty path");
  --length_;
}

bool LabelPath::operator==(const LabelPath& other) const {
  if (length_ != other.length_) return false;
  for (size_t i = 0; i < length_; ++i) {
    if (labels_[i] != other.labels_[i]) return false;
  }
  return true;
}

bool LabelPath::operator<(const LabelPath& other) const {
  if (length_ != other.length_) return length_ < other.length_;
  for (size_t i = 0; i < length_; ++i) {
    if (labels_[i] != other.labels_[i]) return labels_[i] < other.labels_[i];
  }
  return false;
}

std::string LabelPath::ToString(const LabelDictionary& dict) const {
  std::ostringstream out;
  for (size_t i = 0; i < length_; ++i) {
    if (i > 0) out << '/';
    out << dict.Name(labels_[i]);
  }
  return out.str();
}

std::string LabelPath::ToIdString() const {
  std::ostringstream out;
  for (size_t i = 0; i < length_; ++i) {
    if (i > 0) out << '/';
    out << labels_[i];
  }
  return out.str();
}

Result<LabelPath> LabelPath::Parse(const std::string& text,
                                   const LabelDictionary& dict) {
  LabelPath path;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, '/')) {
    if (token.empty()) {
      return Status::InvalidArgument("empty label in path: '" + text + "'");
    }
    auto id = dict.Find(token);
    if (!id.ok()) return id.status();
    if (path.length() == kMaxPathLength) {
      return Status::OutOfRange("path longer than kMaxPathLength: " + text);
    }
    path.PushBack(*id);
  }
  if (path.empty()) {
    return Status::InvalidArgument("empty label path: '" + text + "'");
  }
  return path;
}

size_t LabelPath::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  h = (h ^ length_) * 0x100000001B3ULL;
  for (size_t i = 0; i < length_; ++i) {
    h = (h ^ labels_[i]) * 0x100000001B3ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace pathest
