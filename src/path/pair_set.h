// pathest: the evaluator's scratch data structures — distinct pair sets and
// the epoch markers that deduplicate them.
//
// These types used to live inside selectivity.cc; they are exposed here so
// the engine layer (engine/eval_context.h) can own one instance of each per
// worker thread. They are scratch, not values: every structure is reusable
// across evaluations and none is thread-safe on its own — parallel callers
// get isolation by owning disjoint instances, one per worker.

#ifndef PATHEST_PATH_PAIR_SET_H_
#define PATHEST_PATH_PAIR_SET_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace pathest {

/// \brief Distinct pair set of one path prefix, grouped by source vertex.
///
/// targets[offsets[i] .. offsets[i+1]) are the distinct endpoints reachable
/// from srcs[i]; they are NOT sorted (the evaluator only needs counts and
/// further extension, both order-independent and deterministic).
struct PairSet {
  std::vector<VertexId> srcs;
  std::vector<uint64_t> offsets;  // size srcs.size() + 1
  std::vector<VertexId> targets;

  uint64_t size() const { return targets.size(); }
  void Clear() {
    srcs.clear();
    offsets.clear();
    targets.clear();
  }
};

/// \brief Epoch-based distinct-marking scratch, shared across a whole DFS.
///
/// O(1) reset between distinct-set scopes: bumping the epoch invalidates
/// every previous mark without touching memory.
class Marker {
 public:
  explicit Marker(size_t num_vertices) : epoch_of_(num_vertices, 0) {}

  /// \brief Starts a new distinct-set scope.
  void NextEpoch() { ++epoch_; }

  /// \brief Returns true the first time `v` is seen in the current scope.
  bool Mark(VertexId v) {
    if (epoch_of_[v] == epoch_) return false;
    epoch_of_[v] = epoch_;
    return true;
  }

 private:
  uint64_t epoch_ = 0;
  std::vector<uint64_t> epoch_of_;
};

/// \brief Fused leaf counter: computes the distinct-pair counts of ALL
/// single-label extensions of a parent in one pass.
///
/// Children at the deepest DFS level are never extended further, so their
/// pair sets need not be materialized — only counted. A per-vertex epoch
/// plus a per-label bitmask provides distinctness for every label
/// simultaneously. The leaf level holds the vast majority (a fraction
/// (|L|-1)/|L|) of all nodes, so this pass dominates evaluator cost.
class LeafCounter {
 public:
  LeafCounter(size_t num_vertices, size_t num_labels);

  /// \brief Adds, for each label l, the number of distinct (s, u) pairs of
  /// parent ⋈ l into counts[l].
  void CountExtensions(const Graph& graph, const PairSet& parent,
                       uint64_t* counts);

 private:
  size_t num_labels_;
  uint64_t epoch_ = 0;
  std::vector<uint64_t> epoch_of_;
  std::vector<uint64_t> mask_of_;
};

/// \brief Builds the level-1 pair set for label `l` directly from the CSR.
void InitialPairSet(const Graph& graph, LabelId l, PairSet* out);

/// \brief parent ⋈ label -> child: for every (s, t) in parent and t -l-> u,
/// emit the distinct (s, u). Uses the unchecked CSR view: this loop
/// dominates the cost of ComputeSelectivities.
void ExtendPairSet(const Graph& graph, const PairSet& parent, LabelId l,
                   Marker* marker, PairSet* child);

}  // namespace pathest

#endif  // PATHEST_PATH_PAIR_SET_H_
