// pathest: the evaluator's scratch data structures — distinct pair sets and
// the adaptive kernels that extend them.
//
// These types used to live inside selectivity.cc; they are exposed here so
// the engine layer (engine/eval_context.h) can own one instance of each per
// worker thread. They are scratch, not values: every structure is reusable
// across evaluations and none is thread-safe on its own — parallel callers
// get isolation by owning disjoint instances, one per worker.
//
// Kernels. Both extension passes (ExtendPairSet, LeafCounter) deduplicate
// the successors of one source group, and do so with one of two kernels
// chosen per (group, label) cell:
//   * sparse — the epoch-marker loop: each candidate successor probes a
//     per-vertex epoch word; first-seen vertices are emitted in discovery
//     order. Cost ~ O(emissions) with a branchy random 8-byte access each.
//   * dense  — the bitmap loop: candidates are blindly OR-ed into a
//     DynamicBitset (1 bit/vertex, branch-free), then drained by an
//     ascending word scan (ExtractAndClear / CountAndClear). Cost ~
//     O(emissions + |V|/64), with far better cache behavior per emission.
// kAuto picks dense exactly when the cell's expected emission count covers
// the word-scan term (see DenseGroupThreshold below). The choice depends
// only on the graph and the prefix's pair set — never on threads or prior
// scratch state — and both kernels produce the same distinct sets, so the
// computed SelectivityMap is bit-identical across kernels (test-enforced by
// tests/kernel_selectivity_test.cc).

#ifndef PATHEST_PATH_PAIR_SET_H_
#define PATHEST_PATH_PAIR_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace pathest {

/// \brief Extension-kernel selection for the pair-set joins.
enum class PairKernel : uint8_t {
  kAuto = 0,    ///< per-(group, label) cost-based choice (the default)
  kSparse = 1,  ///< force the epoch-marker kernel everywhere
  kDense = 2,   ///< force the bitmap kernel everywhere
};

/// \brief Stable lowercase name ("auto" / "sparse" / "dense").
const char* PairKernelName(PairKernel kernel);

/// \brief Inverse of PairKernelName; InvalidArgument on unknown names.
Result<PairKernel> ParsePairKernel(const std::string& name);

/// \brief Margin of the adaptive density test: the dense kernel must expect
/// this many candidate emissions per bitmap word before it is chosen. At 1
/// the word scan merely breaks even against the emission loop; requiring a
/// multiple keeps borderline cells — where the bitmap's per-emission edge
/// is smallest — on the sparse kernel (measured via bench_micro_selectivity
/// --json: small margins made auto lag the sparse kernel on skewed-label
/// graphs by ~15%).
inline constexpr uint64_t kDenseEmissionsPerWord = 4;

/// \brief The adaptive density test, precomputed per label: the smallest
/// source-group size for which the dense kernel is expected to win.
///
/// A cell's candidate emission count is estimated in O(1) as
///   group_size × mean out-degree of the label (cardinality / |V|),
/// i.e. the exact sum of candidate emissions is replaced by its
/// expectation — walking the group to add up true degrees costs about as
/// much as the sparse kernel itself on low-degree graphs, which is
/// exactly where the estimate must be cheap. The dense kernel is chosen
/// when that expectation covers scanning the whole bitmap (one word per
/// 64 vertices) kDenseEmissionsPerWord times over:
///   group_size × card / |V| >= margin × num_words
/// Returns the group-size threshold (never 0; ~0 cardinality labels never
/// go dense — they have next to no emissions to amortize a scan with).
/// Deterministic in the graph alone, so kernel choice can never depend on
/// scheduling.
inline uint64_t DenseGroupThreshold(uint64_t label_cardinality,
                                    size_t num_vertices, size_t num_words) {
  if (label_cardinality == 0) return UINT64_MAX;
  const uint64_t cost = kDenseEmissionsPerWord *
                        static_cast<uint64_t>(num_words) *
                        static_cast<uint64_t>(num_vertices);
  const uint64_t threshold =
      (cost + label_cardinality - 1) / label_cardinality;
  return threshold == 0 ? 1 : threshold;
}

/// \brief Distinct pair set of one path prefix, grouped by source vertex.
///
/// targets[offsets[i] .. offsets[i+1]) are the distinct endpoints reachable
/// from srcs[i]; their order is NOT specified (the dense kernel emits
/// ascending, the sparse kernel in discovery order — the evaluator only
/// needs counts and further extension, both order-independent).
struct PairSet {
  std::vector<VertexId> srcs;
  std::vector<uint64_t> offsets;  // size srcs.size() + 1
  std::vector<VertexId> targets;

  uint64_t size() const { return targets.size(); }
  void Clear() {
    srcs.clear();
    offsets.clear();
    targets.clear();
  }
};

/// \brief Epoch-based distinct-marking scratch, shared across a whole DFS.
///
/// O(1) reset between distinct-set scopes: bumping the epoch invalidates
/// every previous mark without touching memory.
class Marker {
 public:
  explicit Marker(size_t num_vertices) : epoch_of_(num_vertices, 0) {}

  /// \brief Starts a new distinct-set scope.
  void NextEpoch() { ++epoch_; }

  /// \brief Returns true the first time `v` is seen in the current scope.
  bool Mark(VertexId v) {
    if (epoch_of_[v] == epoch_) return false;
    epoch_of_[v] = epoch_;
    return true;
  }

 private:
  uint64_t epoch_ = 0;
  std::vector<uint64_t> epoch_of_;
};

/// \brief Fused leaf counter: computes the distinct-pair counts of ALL
/// single-label extensions of a parent in one pass over its groups.
///
/// Children at the deepest DFS level are never extended further, so their
/// pair sets need not be materialized — only counted. Each (group, label)
/// cell runs the sparse or dense kernel independently (labels differ wildly
/// in density under skewed label assignment, so per-label choice beats a
/// per-group one). The leaf level holds the vast majority (a fraction
/// (|L|-1)/|L|) of all path-tree nodes, so this pass dominates evaluator
/// cost. Any label count is supported — the former 64-label ceiling of the
/// per-vertex bitmask implementation is gone.
class LeafCounter {
 public:
  LeafCounter(size_t num_vertices, size_t num_labels);

  /// \brief Adds, for each label l, the number of distinct (s, u) pairs of
  /// parent ⋈ l into counts[l].
  ///
  /// `views` must hold one Graph::ForwardView per label — hoisted by the
  /// caller (see EvalContext::fwd_views) so this pass allocates nothing.
  /// `num_vertices`/`num_labels` are the CURRENT graph's counts; they may
  /// be smaller than the capacities this counter was constructed with (the
  /// EvalContext reuse contract), and bound which views are read and how
  /// mean degrees are computed.
  void CountExtensions(const Graph::CsrView* views, size_t num_vertices,
                       size_t num_labels, const PairSet& parent,
                       PairKernel kernel, uint64_t* counts);

 private:
  size_t num_labels_;
  Marker marker_;       // sparse-kernel scratch
  DynamicBitset bits_;  // dense-kernel scratch; all-zero between cells
  // Per-label group-size thresholds (DenseGroupThreshold), refreshed at the
  // top of each CountExtensions call — member scratch, not allocation.
  std::vector<uint64_t> dense_threshold_;
};

/// \brief Fused all-labels extension kernel: joins a parent pair set with
/// EVERY label in a single pass over its target lists.
///
/// The per-label kernels (ExtendPairSet, LeafCounter) re-walk the parent's
/// target lists once per label, paying |L| random CSR row accesses per
/// target. This kernel walks each target exactly once and reads its FULL
/// out-adjacency sequentially from the graph's vertex-major view
/// (Graph::VertexMajor), dispatching each label segment into a per-label
/// accumulator:
///   * dense cells (per-cell DenseGroupThreshold, same rule as the
///     per-label kernels) accumulate into a per-label DynamicBitset —
///     segments that carry enough edges union their PRECOMPUTED adjacency
///     bitmap row (Graph::AdjacencyBitmaps, stride vectorized word-ORs)
///     instead of one bit-RMW per edge; the bitset is drained per group by
///     CountAndClear / ExtractAndClear;
///   * sparse cells deduplicate INLINE through a per-label epoch Marker,
///     emitting straight into the child builder (or a per-label counter)
///     with no second pass; when |V|·|L| makes per-label markers too big
///     they fall back to per-label emission arenas deduplicated by one
///     shared marker after the pass.
/// All scratch (bitsets, markers, arenas) is owned by this object and
/// allocated once, so steady-state extension of |L| children allocates
/// nothing (arenas keep their high-water capacity).
///
/// Determinism: the per-cell kernel choice depends only on the graph and
/// the parent's group sizes (never on threads or prior scratch), and every
/// accumulator produces the same distinct sets, so maps computed through
/// this kernel are bit-identical to the per-label kernels' — test-enforced
/// by tests/fused_selectivity_test.cc.
class FusedExtender {
 public:
  /// Per-label-marker budget: inline sparse-cell dedup needs |V|·|L| epoch
  /// words per context; above this many entries the emission-arena
  /// fallback is used instead.
  static constexpr size_t kMaxMarkerEntries = 4u << 20;  // 32 MB of epochs

  /// A segment ORs its precomputed bitmap row (stride_words word-ORs)
  /// instead of its edge list (seg_len bit-RMWs) when
  /// seg_len * kRowWinFactor >= stride_words — word-ORs vectorize to
  /// roughly this many per bit-RMW. Shared with the graph layer: the hub
  /// plane's materialization floor (graph.h kPlaneRowWinFactor) is the
  /// same crossover, so every hub row that exists clears this bound.
  static constexpr uint64_t kRowWinFactor = kPlaneRowWinFactor;

  /// Capacities: reusable for any graph with at most `num_vertices`
  /// vertices and `num_labels` labels (the EvalContext reuse contract).
  /// Construction records the capacities only — the scratch itself is
  /// allocated by the first Bind, so contexts that never run the fused
  /// strategy pay nothing for it.
  FusedExtender(size_t num_vertices, size_t num_labels);

  /// \brief Binds the graph (and kernel policy) this extender reads:
  /// allocates the scratch on first call, caches the vertex-major view
  /// and adjacency plane, and refreshes the per-label density thresholds.
  /// Must be called before CountAll / ExtendAll whenever the graph or
  /// kernel changes; O(|L|) after the first call.
  void Bind(const Graph& graph, PairKernel kernel);

  /// \brief Fused leaf pass: adds, for each label l, the number of
  /// distinct (s, u) pairs of parent ⋈ l into counts[l].
  void CountAll(const PairSet& parent, uint64_t* counts);

  /// \brief Fused interior pass: children[l] = distinct pair set of
  /// parent ⋈ l, for every label l in one pass. `children` must point to
  /// at least the bound graph's label count of PairSets; prior contents
  /// are discarded.
  void ExtendAll(const PairSet& parent, PairSet* children);

 private:
  /// The bitmap row of vertex-major segment `s` (= cell (t, l)), or
  /// nullptr when the bound plane has none for it: direct addressing for
  /// dense planes, the seg_rows directory for hub planes (the caller is
  /// already holding the segment index, so the hub lookup is free).
  const uint64_t* RowFor(VertexId t, LabelId l, uint64_t s) const {
    switch (plane_.kind) {
      case PlaneKind::kDense:
        return plane_.rows + (static_cast<size_t>(t) * num_labels_ + l) *
                                 plane_.stride_words;
      case PlaneKind::kHub: {
        const uint32_t row = plane_.seg_rows[s];
        return row == kNoPlaneRow
                   ? nullptr
                   : plane_.rows +
                         static_cast<size_t>(row) * plane_.stride_words;
      }
      case PlaneKind::kNone:
      default:
        return nullptr;
    }
  }

  size_t cap_vertices_;
  size_t cap_labels_;
  size_t num_labels_ = 0;        // bound graph's label count
  Graph::VertexMajorView vm_{};  // bound graph's vertex-major adjacency
  Graph::AdjacencyPlane plane_{};  // bitmap rows (rows == nullptr if absent)
  Marker marker_{0};             // shared dedup scratch (arena fallback)
  std::vector<Marker> markers_;  // per-label inline dedup (may be empty)
  std::vector<DynamicBitset> bits_;          // per label; all-zero between groups
  std::vector<std::vector<VertexId>> emit_;  // per label arenas (fallback)
  /// ExtendAll's per-label group-size thresholds: the plain
  /// DenseGroupThreshold — materialization pays a position-extraction
  /// drain, so the bitset only wins where it did for the per-label kernel.
  std::vector<uint64_t> dense_threshold_;
  /// CountAll's thresholds: with the adjacency plane the drain is a bare
  /// popcount, so the crossover moves to the row-OR bound (see Bind).
  std::vector<uint64_t> count_threshold_;
  /// Slab fast-path bound: groups at least this large have EVERY
  /// (nonzero-cardinality) label dense under count_threshold_, so CountAll
  /// ORs each member's whole contiguous plane slab — all |L| rows, no
  /// segment directory — into slab_ and popcounts per label section.
  uint64_t slab_threshold_ = UINT64_MAX;
  std::vector<uint64_t> slab_;               // |L| · stride words, all-zero
  std::vector<uint64_t> sparse_counts_;      // CountAll inline counters
  std::vector<size_t> group_before_;         // ExtendAll per-label watermark
};

/// \brief Builds the level-1 pair set for label `l` directly from the CSR,
/// in one unchecked ForwardView sweep.
void InitialPairSet(const Graph& graph, LabelId l, PairSet* out);

/// \brief parent ⋈ label -> child: for every (s, t) in parent and t -l-> u,
/// emit the distinct (s, u). The dominant loop of ComputeSelectivities.
///
/// `marker` and `bits` are the sparse/dense kernel scratch (bits must be
/// sized to the graph's vertex count and all-zero, which the kernel
/// restores before returning); `kernel` follows DenseGroupThreshold.
void ExtendPairSet(const Graph& graph, const PairSet& parent, LabelId l,
                   Marker* marker, DynamicBitset* bits, PairKernel kernel,
                   PairSet* child);

}  // namespace pathest

#endif  // PATHEST_PATH_PAIR_SET_H_
