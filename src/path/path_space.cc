#include "path/path_space.h"

#include "util/combinatorics.h"

namespace pathest {

PathSpace::PathSpace(size_t num_labels, size_t k)
    : num_labels_(num_labels), k_(k) {
  PATHEST_CHECK(num_labels >= 1, "PathSpace requires >= 1 label");
  PATHEST_CHECK(k >= 1 && k <= kMaxPathLength, "PathSpace k out of range");
  uint64_t offset = 0;
  uint64_t pow = 1;
  offsets_[1] = 0;
  for (size_t len = 1; len <= k; ++len) {
    pow = CheckedMul(pow, num_labels);
    offset = CheckedAdd(offset, pow);
    offsets_[len + 1] = offset;
  }
  size_ = offset;
}

uint64_t PathSpace::CountWithLength(size_t len) const {
  PATHEST_CHECK(len >= 1 && len <= k_, "length out of range");
  return offsets_[len + 1] - offsets_[len];
}

uint64_t PathSpace::CanonicalIndex(const LabelPath& path) const {
  PATHEST_CHECK(Contains(path), "path outside this space");
  const size_t len = path.length();
  uint64_t radix = 0;
  for (size_t i = 0; i < len; ++i) {
    radix = radix * num_labels_ + path.label(i);
  }
  return offsets_[len] + radix;
}

LabelPath PathSpace::CanonicalPath(uint64_t index) const {
  PATHEST_CHECK(index < size_, "canonical index out of range");
  size_t len = 1;
  while (index >= offsets_[len + 1]) ++len;
  uint64_t radix = index - offsets_[len];
  LabelPath path;
  // Decode most-significant digit first.
  uint64_t pow = 1;
  for (size_t i = 1; i < len; ++i) pow *= num_labels_;
  for (size_t i = 0; i < len; ++i) {
    path.PushBack(static_cast<LabelId>(radix / pow));
    radix %= pow;
    pow /= num_labels_;
  }
  return path;
}

void PathSpace::ForEach(const std::function<void(const LabelPath&)>& fn) const {
  // Canonical order is length-major, radix-by-id within a length: run an
  // odometer over `len` base-|L| digits for each length.
  std::array<LabelId, kMaxPathLength> digits{};
  for (size_t len = 1; len <= k_; ++len) {
    digits.fill(0);
    bool done = false;
    while (!done) {
      LabelPath path;
      for (size_t i = 0; i < len; ++i) path.PushBack(digits[i]);
      fn(path);
      // Increment least-significant digit with carry.
      size_t pos = len;
      done = true;
      while (pos > 0) {
        --pos;
        if (++digits[pos] < num_labels_) {
          done = false;
          break;
        }
        digits[pos] = 0;
      }
    }
  }
}

}  // namespace pathest
