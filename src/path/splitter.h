// pathest: base label sets and the greedy splitting rule (paper Section 3.1).
//
// A base label set B ⊆ L_k must contain every length-1 path so that any
// label path decomposes into pieces from B. The greedy rule repeatedly cuts
// the longest prefix of the remaining path that is a member of B.

#ifndef PATHEST_PATH_SPLITTER_H_
#define PATHEST_PATH_SPLITTER_H_

#include <unordered_set>
#include <vector>

#include "path/label_path.h"
#include "path/path_space.h"
#include "util/status.h"

namespace pathest {

/// \brief A base label set with membership queries.
class BaseLabelSet {
 public:
  /// \brief B = L (all single labels); the base set used throughout the
  /// paper's main study.
  static BaseLabelSet SingleLabels(size_t num_labels);

  /// \brief B = L_m (all paths of length <= m) — the richer base sets the
  /// paper's Section 5 proposes, e.g. m = 2.
  static BaseLabelSet UpToLength(size_t num_labels, size_t m);

  /// \brief Custom base set; must contain every length-1 path.
  static Result<BaseLabelSet> Custom(size_t num_labels,
                                     std::vector<LabelPath> members);

  bool Contains(const LabelPath& piece) const;

  /// \brief Longest piece length present in the set.
  size_t max_piece_length() const { return max_piece_length_; }
  size_t num_labels() const { return num_labels_; }

  /// \brief Number of members |B|.
  size_t size() const { return members_.size(); }

  /// \brief Members in canonical order.
  std::vector<LabelPath> Members() const;

 private:
  BaseLabelSet(size_t num_labels, size_t max_piece_length);

  size_t num_labels_;
  size_t max_piece_length_;
  std::unordered_set<LabelPath, LabelPathHash> members_;
};

/// \brief Greedy longest-prefix decomposition of `path` into pieces of `base`
/// (paper Section 3.1: "at each split step always cuts a piece in B as long
/// as possible"). Always succeeds because B contains all single labels.
std::vector<LabelPath> GreedySplit(const LabelPath& path,
                                   const BaseLabelSet& base);

}  // namespace pathest

#endif  // PATHEST_PATH_SPLITTER_H_
