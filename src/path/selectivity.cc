#include "path/selectivity.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <utility>

#include "engine/schedule.h"
#include "engine/thread_pool.h"
#include "path/pair_set.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace pathest {

const char* ExtendStrategyName(ExtendStrategy strategy) {
  switch (strategy) {
    case ExtendStrategy::kPerLabel:
      return "per-label";
    case ExtendStrategy::kFused:
    default:
      return "fused";
  }
}

Result<ExtendStrategy> ParseExtendStrategy(const std::string& name) {
  if (name == "fused") return ExtendStrategy::kFused;
  if (name == "per-label") return ExtendStrategy::kPerLabel;
  return Status::InvalidArgument("unknown strategy '" + name +
                                 "' (expected fused|per-label)");
}

SelectivityMap::SelectivityMap(PathSpace space)
    : space_(space), values_(space.size(), 0) {}

uint64_t SelectivityMap::Get(const LabelPath& path) const {
  return values_[space_.CanonicalIndex(path)];
}

uint64_t SelectivityMap::GetByCanonicalIndex(uint64_t index) const {
  PATHEST_CHECK(index < values_.size(), "canonical index out of range");
  return values_[index];
}

void SelectivityMap::Set(const LabelPath& path, uint64_t value) {
  values_[space_.CanonicalIndex(path)] = value;
}

void SelectivityMap::ZeroRange(uint64_t index, uint64_t count) {
  PATHEST_CHECK(index <= values_.size() && count <= values_.size() - index,
                "zero range out of bounds");
  std::fill_n(values_.begin() + static_cast<ptrdiff_t>(index), count,
              uint64_t{0});
}

uint64_t SelectivityMap::Total() const {
  uint64_t total = 0;
  for (uint64_t v : values_) total += v;
  return total;
}

uint64_t SelectivityMap::CountNonZero() const {
  uint64_t count = 0;
  for (uint64_t v : values_) count += (v != 0);
  return count;
}

namespace {

Status PairLimitExceeded(const LabelPath& path) {
  return Status::ResourceExhausted(
      "pair set exceeds max_pairs_per_prefix at path " + path.ToIdString());
}

struct RootDfs {
  const Graph* graph;
  const SelectivityOptions* options;
  SelectivityMap* map;
  EvalContext* ctx;
  size_t k;
};

// Recursively evaluates all extensions of `path` (whose pair set is at
// ctx->levels[path.length()]) with the per-label kernels. `radix` is the
// canonical radix of `path` — the DFS maintains the canonical index
// incrementally (child = radix * |L| + l, offset by the child length's
// base) instead of recomputing the O(k) PathSpace::CanonicalIndex at every
// node; the assert checks agreement with the recomputed index in
// NDEBUG-off builds.
Status DfsExtend(RootDfs* r, LabelPath* path, uint64_t radix) {
  const size_t depth = path->length();
  if (depth == r->k) return Status::OK();
  const PairSet& parent = r->ctx->levels[depth];
  const size_t num_labels = r->graph->num_labels();
  const PathSpace& space = r->map->space();
  const uint64_t child_base =
      space.LengthOffset(depth + 1) + radix * num_labels;
  if (depth + 1 == r->k) {
    // Children are leaves: count all |L| extensions in one fused pass over
    // hoisted scratch (views + counts live in the context — no allocation).
    uint64_t* counts = r->ctx->leaf_counts.data();
    std::fill_n(counts, num_labels, uint64_t{0});
    r->ctx->leaf_counter.CountExtensions(r->ctx->fwd_views.data(),
                                         r->graph->num_vertices(), num_labels,
                                         parent, r->options->kernel, counts);
    for (LabelId l = 0; l < num_labels; ++l) {
#ifndef NDEBUG
      path->PushBack(l);
      assert(child_base + l == space.CanonicalIndex(*path));
      path->PopBack();
#endif
      r->map->SetByCanonicalIndex(child_base + l, counts[l]);
    }
    return Status::OK();
  }
  for (LabelId l = 0; l < num_labels; ++l) {
    PairSet* child = &r->ctx->levels[depth + 1];
    ExtendPairSet(*r->graph, parent, l, &r->ctx->marker, &r->ctx->extend_bits,
                  r->options->kernel, child);
    path->PushBack(l);
    assert(child_base + l == space.CanonicalIndex(*path));
    r->map->SetByCanonicalIndex(child_base + l, child->size());
    if (r->options->max_pairs_per_prefix != 0 &&
        child->size() > r->options->max_pairs_per_prefix) {
      return PairLimitExceeded(*path);
    }
    if (child->size() > 0) {
      PATHEST_RETURN_NOT_OK(DfsExtend(r, path, radix * num_labels + l));
    }
    // Empty child: all deeper extensions stay zero (already initialized).
    path->PopBack();
  }
  return Status::OK();
}

struct FusedDfs {
  const Graph* graph;
  const SelectivityOptions* options;
  SelectivityMap* map;
  EvalContext* ctx;
  size_t k;
};

// Recursively evaluates all extensions of `path` (whose non-empty pair set
// is `parent`) with the fused all-labels kernel: one ExtendAll/CountAll
// pass materializes or counts ALL |L| children of the node at once, then
// the interior children are visited depth-first. The canonical index is
// maintained incrementally exactly as in DfsExtend.
Status FusedDfsExtend(FusedDfs* r, LabelPath* path, const PairSet& parent,
                      uint64_t radix) {
  const size_t depth = path->length();
  const size_t num_labels = r->graph->num_labels();
  const PathSpace& space = r->map->space();
  const uint64_t child_base =
      space.LengthOffset(depth + 1) + radix * num_labels;
  if (depth + 1 == r->k) {
    uint64_t* counts = r->ctx->leaf_counts.data();
    std::fill_n(counts, num_labels, uint64_t{0});
    r->ctx->fused.CountAll(parent, counts);
    for (LabelId l = 0; l < num_labels; ++l) {
#ifndef NDEBUG
      path->PushBack(l);
      assert(child_base + l == space.CanonicalIndex(*path));
      path->PopBack();
#endif
      r->map->SetByCanonicalIndex(child_base + l, counts[l]);
    }
    return Status::OK();
  }
  // Interior: the whole child block at depth+1 is built in one pass; the
  // recursion below only ever writes blocks at depth+2 and deeper, so the
  // block stays intact while its members are visited.
  PairSet* children = r->ctx->blocks[depth + 1].data();
  r->ctx->fused.ExtendAll(parent, children);
  for (LabelId l = 0; l < num_labels; ++l) {
    const uint64_t child_size = children[l].size();
    path->PushBack(l);
    assert(child_base + l == space.CanonicalIndex(*path));
    r->map->SetByCanonicalIndex(child_base + l, child_size);
    if (r->options->max_pairs_per_prefix != 0 &&
        child_size > r->options->max_pairs_per_prefix) {
      return PairLimitExceeded(*path);
    }
    if (child_size > 0) {
      PATHEST_RETURN_NOT_OK(
          FusedDfsExtend(r, path, children[l], radix * num_labels + l));
    }
    path->PopBack();
  }
  return Status::OK();
}

// The fused-strategy build: a parallel per-root pre-pass (level-1 sets,
// fused extension into the shared level-2 blocks, exact task weights)
// followed by the depth-2 prefix tasks (root, l2), dispatched
// heaviest-first over the pool's atomic work queue so idle workers steal
// the next-heaviest pending task. Every write target (map slices, level-2
// block slices, per-root/per-cell status slots) is disjoint; the returned
// status is the DFS-order-first failure, exactly matching the per-label
// engine's "lowest failing root's first violation" semantics.
Result<SelectivityMap> ComputeSelectivitiesFused(
    const Graph& graph, size_t k, const SelectivityOptions& options) {
  const size_t num_labels = graph.num_labels();
  PathSpace space(num_labels, k);
  SelectivityMap map(space);
  const size_t num_threads = ResolvedNumThreads(options, num_labels, k);

  std::vector<Status> root_status(num_labels);  // level-1 guard violations
  const size_t num_cells = k >= 3 ? num_labels * num_labels : 0;
  std::vector<Status> cell_status(num_cells);
  // Shared level-2 pair sets, one slice of |L| cells per root. Holding the
  // whole level resident (instead of one branch) is what lets the tasks
  // start anywhere; total size is the level-2 selectivity mass, and the
  // max_pairs_per_prefix guard bounds each cell.
  std::vector<PairSet> level2(num_cells);
  std::vector<double> root_ms(num_labels, 0.0);
  std::vector<size_t> root_pending(num_labels, 0);
  std::mutex callback_mu;  // serializes progress/label_time + accounting

  std::unique_ptr<ThreadPool> pool;
  std::vector<EvalContext> contexts;
  if (num_threads > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
    contexts.reserve(pool->num_threads());
    for (size_t w = 0; w < pool->num_threads(); ++w) {
      contexts.emplace_back(graph.num_vertices(), num_labels, k);
    }
  } else {
    contexts.emplace_back(graph.num_vertices(), num_labels, k);
  }
  // Graph and kernel are fixed for the whole build: bind each worker's
  // fused extender once instead of per root/task.
  for (EvalContext& ctx : contexts) ctx.fused.Bind(graph, options.kernel);
  auto parallel_for = [&](size_t n, const ThreadPool::Task& task) {
    if (pool != nullptr) {
      pool->ParallelFor(n, task);
    } else {
      for (size_t i = 0; i < n; ++i) task(i, 0);
    }
  };

  // Fires the per-root callbacks; callback_mu must be held.
  auto fire_root_done = [&](size_t root) {
    if (options.label_time) {
      options.label_time(static_cast<LabelId>(root), root_ms[root]);
    }
    if (options.progress) options.progress(static_cast<LabelId>(root));
  };

  // ---- Phase A: per-root pre-pass. Builds the level-1 pair set, writes
  // the length-1 (and, via the fused kernel, length-2) map entries, and
  // materializes the root's level-2 block — the tasks' starting sets and
  // their exact weights.
  auto run_root = [&](size_t root, EvalContext& ctx) {
    Timer timer;
    root_status[root] = EvaluateFusedRootPrepass(
        graph, ctx, static_cast<LabelId>(root), k, options, &map,
        num_cells != 0 ? &level2[root * num_labels] : nullptr,
        num_cells != 0 ? &cell_status[root * num_labels] : nullptr);
    root_ms[root] += timer.ElapsedMillis();
  };

  // Roots are presented heaviest-first by label cardinality (the exact
  // level-1 pair-set size); presentation order never changes the result.
  std::vector<uint64_t> root_weights(num_labels);
  for (size_t root = 0; root < num_labels; ++root) {
    root_weights[root] = graph.LabelCardinality(static_cast<LabelId>(root));
  }
  const std::vector<size_t> root_order = HeaviestFirstOrder(root_weights);
  parallel_for(num_labels, [&](size_t slot, size_t worker) {
    run_root(root_order[slot], contexts[worker]);
  });

  // ---- Task construction: one (root, l2) prefix task per non-empty,
  // non-violating level-2 cell of a healthy root, heaviest-first by the
  // cell's exact pair count.
  std::vector<size_t> tasks;
  if (k >= 3) {
    std::vector<uint64_t> weights;
    for (size_t root = 0; root < num_labels; ++root) {
      if (!root_status[root].ok()) continue;
      for (size_t l2 = 0; l2 < num_labels; ++l2) {
        const size_t cell = root * num_labels + l2;
        if (!cell_status[cell].ok() || level2[cell].size() == 0) continue;
        tasks.push_back(cell);
        weights.push_back(level2[cell].size());
        ++root_pending[root];
      }
    }
    const std::vector<size_t> order = HeaviestFirstOrder(weights);
    std::vector<size_t> ordered(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) ordered[i] = tasks[order[i]];
    tasks = std::move(ordered);
  }

  // Roots whose subtree finished in the pre-pass (k <= 2, empty or
  // guard-failed roots, or all cells empty/violating) complete here.
  if (options.progress || options.label_time) {
    std::lock_guard<std::mutex> lock(callback_mu);
    for (size_t root = 0; root < num_labels; ++root) {
      if (root_pending[root] == 0) fire_root_done(root);
    }
  }

  // ---- Phase B: the prefix tasks.
  auto run_task = [&](size_t cell, EvalContext& ctx) {
    Timer timer;
    const size_t root = cell / num_labels;
    const LabelId l2 = static_cast<LabelId>(cell % num_labels);
    cell_status[cell] =
        EvaluateFusedPrefixTask(graph, ctx, static_cast<LabelId>(root), l2,
                                level2[cell], k, options, &map);
    level2[cell] = PairSet();  // release the consumed starting set
    const double ms = timer.ElapsedMillis();
    std::lock_guard<std::mutex> lock(callback_mu);
    root_ms[root] += ms;
    if (--root_pending[root] == 0 &&
        (options.progress || options.label_time)) {
      fire_root_done(root);
    }
  };
  parallel_for(tasks.size(), [&](size_t slot, size_t worker) {
    run_task(tasks[slot], contexts[worker]);
  });

  // DFS-order-first failure: for each root in ascending order, a level-1
  // violation precedes its cells'; within a root, cell l2's level-2 check
  // precedes any failure deeper inside l2's subtree, which precedes cell
  // l2+1 — exactly the per-label engine's pre-order.
  for (size_t root = 0; root < num_labels; ++root) {
    if (!root_status[root].ok()) return std::move(root_status[root]);
    for (size_t cell = root * num_labels;
         k >= 3 && cell < (root + 1) * num_labels; ++cell) {
      if (!cell_status[cell].ok()) return std::move(cell_status[cell]);
    }
  }
  return map;
}

}  // namespace

Status EvaluateFusedRootPrepass(const Graph& graph, EvalContext& ctx,
                                LabelId root, size_t k,
                                const SelectivityOptions& options,
                                SelectivityMap* map, PairSet* level2_cells,
                                Status* cell_status) {
  const size_t num_labels = graph.num_labels();
  const PathSpace& space = map->space();
  const uint64_t max_pairs = options.max_pairs_per_prefix;
  InitialPairSet(graph, root, &ctx.levels[1]);
  const uint64_t level1_size = ctx.levels[1].size();
  const uint64_t root_index = space.LengthOffset(1) + root;
  assert(root_index == space.CanonicalIndex(LabelPath{root}));
  map->SetByCanonicalIndex(root_index, level1_size);
  if (max_pairs != 0 && level1_size > max_pairs) {
    return PairLimitExceeded(LabelPath{root});
  }
  if (k >= 2 && level1_size > 0) {
    const uint64_t child_base = space.LengthOffset(2) + root * num_labels;
    if (k == 2) {
      uint64_t* counts = ctx.leaf_counts.data();
      std::fill_n(counts, num_labels, uint64_t{0});
      ctx.fused.CountAll(ctx.levels[1], counts);
      for (LabelId l = 0; l < num_labels; ++l) {
        map->SetByCanonicalIndex(child_base + l, counts[l]);
      }
    } else {
      ctx.fused.ExtendAll(ctx.levels[1], level2_cells);
      for (LabelId l = 0; l < num_labels; ++l) {
        const uint64_t size = level2_cells[l].size();
        map->SetByCanonicalIndex(child_base + l, size);
        if (max_pairs != 0 && size > max_pairs) {
          cell_status[l] = PairLimitExceeded(LabelPath{root, l});
        }
      }
    }
  }
  return Status::OK();
}

Status EvaluateFusedPrefixTask(const Graph& graph, EvalContext& ctx,
                               LabelId root, LabelId l2, const PairSet& level2,
                               size_t k, const SelectivityOptions& options,
                               SelectivityMap* map) {
  LabelPath path{root, l2};
  FusedDfs r{&graph, &options, map, &ctx, k};
  const uint64_t radix =
      static_cast<uint64_t>(root) * graph.num_labels() + l2;
  return FusedDfsExtend(&r, &path, level2, radix);
}

void ZeroPrefixSubtree(LabelId root, LabelId l2, SelectivityMap* map) {
  const PathSpace& space = map->space();
  const uint64_t num_labels = space.num_labels();
  const uint64_t cell = static_cast<uint64_t>(root) * num_labels + l2;
  // The prefix's digits are the most significant radix digits of the
  // canonical index, so its length-d descendants are one contiguous run of
  // |L|^(d-2) entries starting at cell * |L|^(d-2) within length d's block.
  uint64_t stride = 1;
  for (size_t d = 3; d <= space.k(); ++d) {
    stride *= num_labels;
    map->ZeroRange(space.LengthOffset(d) + cell * stride, stride);
  }
}

Status EvaluateRootSubtree(const Graph& graph, EvalContext& ctx, LabelId root,
                           size_t k, const SelectivityOptions& options,
                           SelectivityMap* map) {
  RootDfs r{&graph, &options, map, &ctx, k};
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    ctx.fwd_views[l] = graph.ForwardView(l);
  }
  InitialPairSet(graph, root, &ctx.levels[1]);
  LabelPath path{root};
  const uint64_t root_index = map->space().LengthOffset(1) + root;
  assert(root_index == map->space().CanonicalIndex(path));
  map->SetByCanonicalIndex(root_index, ctx.levels[1].size());
  if (options.max_pairs_per_prefix != 0 &&
      ctx.levels[1].size() > options.max_pairs_per_prefix) {
    return PairLimitExceeded(path);
  }
  if (ctx.levels[1].size() > 0) {
    PATHEST_RETURN_NOT_OK(DfsExtend(&r, &path, root));
  }
  return Status::OK();
}

size_t SelectivityTaskCount(size_t num_labels, size_t k,
                            ExtendStrategy strategy) {
  if (strategy == ExtendStrategy::kFused && k >= 3) {
    return num_labels * num_labels;
  }
  return num_labels;
}

size_t ResolvedNumThreads(const SelectivityOptions& options,
                          size_t num_labels, size_t k) {
  const size_t requested = options.num_threads == 0
                               ? ThreadPool::DefaultThreads()
                               : options.num_threads;
  // Tasks are the unit of fan-out; extra workers would idle.
  return std::min(requested,
                  SelectivityTaskCount(num_labels, k, options.strategy));
}

Result<SelectivityMap> ComputeSelectivities(const Graph& graph, size_t k,
                                            const SelectivityOptions& options) {
  if (graph.num_labels() == 0) {
    return Status::InvalidArgument("graph has no labels");
  }
  if (k < 1 || k > kMaxPathLength) {
    return Status::InvalidArgument("k out of range [1, kMaxPathLength]");
  }
  if (options.strategy == ExtendStrategy::kFused) {
    return ComputeSelectivitiesFused(graph, k, options);
  }
  const size_t num_labels = graph.num_labels();
  PathSpace space(num_labels, k);
  SelectivityMap map(space);

  const size_t num_threads = ResolvedNumThreads(options, num_labels, k);

  // Each root records its own status; the lowest-id failure is returned so
  // the outcome (map on success, status on failure) never depends on thread
  // count or scheduling.
  std::vector<Status> root_status(num_labels);
  std::mutex callback_mu;  // serializes options.progress / options.label_time

  auto run_root = [&](size_t root, EvalContext& ctx) {
    Timer timer;
    Status st = EvaluateRootSubtree(graph, ctx, static_cast<LabelId>(root), k,
                                    options, &map);
    const double elapsed_ms = timer.ElapsedMillis();
    root_status[root] = std::move(st);
    if (options.progress || options.label_time) {
      std::lock_guard<std::mutex> lock(callback_mu);
      if (options.label_time) {
        options.label_time(static_cast<LabelId>(root), elapsed_ms);
      }
      if (options.progress) options.progress(static_cast<LabelId>(root));
    }
  };

  if (num_threads <= 1) {
    EvalContext ctx(graph.num_vertices(), num_labels, k);
    for (size_t root = 0; root < num_labels; ++root) run_root(root, ctx);
  } else {
    ThreadPool pool(num_threads);
    std::vector<EvalContext> contexts;
    contexts.reserve(pool.num_threads());
    for (size_t w = 0; w < pool.num_threads(); ++w) {
      contexts.emplace_back(graph.num_vertices(), num_labels, k);
    }
    // Dispatch heaviest-first: a root's subtree cost scales with its
    // pair-set sizes, and its level-1 cardinality — exactly the label
    // cardinality, since the level-1 pair set IS the label's edge set — is
    // a free deterministic proxy. Presentation order changes only which
    // worker finishes when, never the result (disjoint slices).
    std::vector<uint64_t> weights(num_labels);
    for (size_t root = 0; root < num_labels; ++root) {
      weights[root] = graph.LabelCardinality(static_cast<LabelId>(root));
    }
    const std::vector<size_t> order = HeaviestFirstOrder(weights);
    pool.ParallelFor(num_labels, [&](size_t slot, size_t worker) {
      run_root(order[slot], contexts[worker]);
    });
  }

  for (size_t root = 0; root < num_labels; ++root) {
    if (!root_status[root].ok()) return std::move(root_status[root]);
  }
  return map;
}

Result<uint64_t> EvaluatePathSelectivity(const Graph& graph,
                                         const LabelPath& path) {
  auto pairs = EvaluatePathPairs(graph, path);
  if (!pairs.ok()) return pairs.status();
  return static_cast<uint64_t>(pairs->size());
}

Result<std::vector<uint64_t>> EvaluatePathPairs(const Graph& graph,
                                                const LabelPath& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  for (size_t i = 0; i < path.length(); ++i) {
    if (path.label(i) >= graph.num_labels()) {
      return Status::InvalidArgument("path uses unknown label id");
    }
  }
  Marker marker(graph.num_vertices());
  DynamicBitset bits(graph.num_vertices());
  PairSet current;
  PairSet next;
  InitialPairSet(graph, path.label(0), &current);
  for (size_t i = 1; i < path.length(); ++i) {
    ExtendPairSet(graph, current, path.label(i), &marker, &bits,
                  PairKernel::kAuto, &next);
    std::swap(current, next);
  }
  std::vector<uint64_t> packed;
  packed.reserve(current.size());
  for (size_t i = 0; i < current.srcs.size(); ++i) {
    for (uint64_t j = current.offsets[i]; j < current.offsets[i + 1]; ++j) {
      packed.push_back((static_cast<uint64_t>(current.srcs[i]) << 32) |
                       current.targets[j]);
    }
  }
  std::sort(packed.begin(), packed.end());
  return packed;
}

}  // namespace pathest
