#include "path/selectivity.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "engine/schedule.h"
#include "engine/thread_pool.h"
#include "path/pair_set.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace pathest {

SelectivityMap::SelectivityMap(PathSpace space)
    : space_(space), values_(space.size(), 0) {}

uint64_t SelectivityMap::Get(const LabelPath& path) const {
  return values_[space_.CanonicalIndex(path)];
}

uint64_t SelectivityMap::GetByCanonicalIndex(uint64_t index) const {
  PATHEST_CHECK(index < values_.size(), "canonical index out of range");
  return values_[index];
}

void SelectivityMap::Set(const LabelPath& path, uint64_t value) {
  values_[space_.CanonicalIndex(path)] = value;
}

uint64_t SelectivityMap::Total() const {
  uint64_t total = 0;
  for (uint64_t v : values_) total += v;
  return total;
}

uint64_t SelectivityMap::CountNonZero() const {
  uint64_t count = 0;
  for (uint64_t v : values_) count += (v != 0);
  return count;
}

namespace {

struct RootDfs {
  const Graph* graph;
  const SelectivityOptions* options;
  SelectivityMap* map;
  EvalContext* ctx;
  size_t k;
};

// Recursively evaluates all extensions of `path` (whose pair set is at
// ctx->levels[path.length()]).
Status DfsExtend(RootDfs* r, LabelPath* path) {
  const size_t depth = path->length();
  if (depth == r->k) return Status::OK();
  const PairSet& parent = r->ctx->levels[depth];
  if (depth + 1 == r->k) {
    // Children are leaves: count all |L| extensions in one fused pass over
    // hoisted scratch (views + counts live in the context — no allocation).
    const size_t num_labels = r->graph->num_labels();
    uint64_t* counts = r->ctx->leaf_counts.data();
    std::fill_n(counts, num_labels, uint64_t{0});
    r->ctx->leaf_counter.CountExtensions(r->ctx->fwd_views.data(),
                                         r->graph->num_vertices(), num_labels,
                                         parent, r->options->kernel, counts);
    for (LabelId l = 0; l < num_labels; ++l) {
      path->PushBack(l);
      r->map->Set(*path, counts[l]);
      path->PopBack();
    }
    return Status::OK();
  }
  for (LabelId l = 0; l < r->graph->num_labels(); ++l) {
    PairSet* child = &r->ctx->levels[depth + 1];
    ExtendPairSet(*r->graph, parent, l, &r->ctx->marker, &r->ctx->extend_bits,
                  r->options->kernel, child);
    path->PushBack(l);
    r->map->Set(*path, child->size());
    if (r->options->max_pairs_per_prefix != 0 &&
        child->size() > r->options->max_pairs_per_prefix) {
      return Status::ResourceExhausted(
          "pair set exceeds max_pairs_per_prefix at path " +
          path->ToIdString());
    }
    if (child->size() > 0) {
      PATHEST_RETURN_NOT_OK(DfsExtend(r, path));
    }
    // Empty child: all deeper extensions stay zero (already initialized).
    path->PopBack();
  }
  return Status::OK();
}

}  // namespace

Status EvaluateRootSubtree(const Graph& graph, EvalContext& ctx, LabelId root,
                           size_t k, const SelectivityOptions& options,
                           SelectivityMap* map) {
  RootDfs r{&graph, &options, map, &ctx, k};
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    ctx.fwd_views[l] = graph.ForwardView(l);
  }
  InitialPairSet(graph, root, &ctx.levels[1]);
  LabelPath path{root};
  map->Set(path, ctx.levels[1].size());
  if (options.max_pairs_per_prefix != 0 &&
      ctx.levels[1].size() > options.max_pairs_per_prefix) {
    return Status::ResourceExhausted(
        "pair set exceeds max_pairs_per_prefix at path " + path.ToIdString());
  }
  if (ctx.levels[1].size() > 0) {
    PATHEST_RETURN_NOT_OK(DfsExtend(&r, &path));
  }
  return Status::OK();
}

size_t ResolvedNumThreads(const SelectivityOptions& options,
                          size_t num_labels) {
  const size_t requested = options.num_threads == 0
                               ? ThreadPool::DefaultThreads()
                               : options.num_threads;
  // Roots are the only unit of fan-out; extra workers would idle.
  return std::min(requested, num_labels);
}

Result<SelectivityMap> ComputeSelectivities(const Graph& graph, size_t k,
                                            const SelectivityOptions& options) {
  if (graph.num_labels() == 0) {
    return Status::InvalidArgument("graph has no labels");
  }
  if (k < 1 || k > kMaxPathLength) {
    return Status::InvalidArgument("k out of range [1, kMaxPathLength]");
  }
  const size_t num_labels = graph.num_labels();
  PathSpace space(num_labels, k);
  SelectivityMap map(space);

  const size_t num_threads = ResolvedNumThreads(options, num_labels);

  // Each root records its own status; the lowest-id failure is returned so
  // the outcome (map on success, status on failure) never depends on thread
  // count or scheduling.
  std::vector<Status> root_status(num_labels);
  std::mutex callback_mu;  // serializes options.progress / options.label_time

  auto run_root = [&](size_t root, EvalContext& ctx) {
    Timer timer;
    Status st = EvaluateRootSubtree(graph, ctx, static_cast<LabelId>(root), k,
                                    options, &map);
    const double elapsed_ms = timer.ElapsedMillis();
    root_status[root] = std::move(st);
    if (options.progress || options.label_time) {
      std::lock_guard<std::mutex> lock(callback_mu);
      if (options.label_time) {
        options.label_time(static_cast<LabelId>(root), elapsed_ms);
      }
      if (options.progress) options.progress(static_cast<LabelId>(root));
    }
  };

  if (num_threads <= 1) {
    EvalContext ctx(graph.num_vertices(), num_labels, k);
    for (size_t root = 0; root < num_labels; ++root) run_root(root, ctx);
  } else {
    ThreadPool pool(num_threads);
    std::vector<EvalContext> contexts;
    contexts.reserve(pool.num_threads());
    for (size_t w = 0; w < pool.num_threads(); ++w) {
      contexts.emplace_back(graph.num_vertices(), num_labels, k);
    }
    // Dispatch heaviest-first: a root's subtree cost scales with its
    // pair-set sizes, and its level-1 cardinality — exactly the label
    // cardinality, since the level-1 pair set IS the label's edge set — is
    // a free deterministic proxy. Presentation order changes only which
    // worker finishes when, never the result (disjoint slices).
    std::vector<uint64_t> weights(num_labels);
    for (size_t root = 0; root < num_labels; ++root) {
      weights[root] = graph.LabelCardinality(static_cast<LabelId>(root));
    }
    const std::vector<size_t> order = HeaviestFirstOrder(weights);
    pool.ParallelFor(num_labels, [&](size_t slot, size_t worker) {
      run_root(order[slot], contexts[worker]);
    });
  }

  for (size_t root = 0; root < num_labels; ++root) {
    if (!root_status[root].ok()) return std::move(root_status[root]);
  }
  return map;
}

Result<uint64_t> EvaluatePathSelectivity(const Graph& graph,
                                         const LabelPath& path) {
  auto pairs = EvaluatePathPairs(graph, path);
  if (!pairs.ok()) return pairs.status();
  return static_cast<uint64_t>(pairs->size());
}

Result<std::vector<uint64_t>> EvaluatePathPairs(const Graph& graph,
                                                const LabelPath& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  for (size_t i = 0; i < path.length(); ++i) {
    if (path.label(i) >= graph.num_labels()) {
      return Status::InvalidArgument("path uses unknown label id");
    }
  }
  Marker marker(graph.num_vertices());
  DynamicBitset bits(graph.num_vertices());
  PairSet current;
  PairSet next;
  InitialPairSet(graph, path.label(0), &current);
  for (size_t i = 1; i < path.length(); ++i) {
    ExtendPairSet(graph, current, path.label(i), &marker, &bits,
                  PairKernel::kAuto, &next);
    std::swap(current, next);
  }
  std::vector<uint64_t> packed;
  packed.reserve(current.size());
  for (size_t i = 0; i < current.srcs.size(); ++i) {
    for (uint64_t j = current.offsets[i]; j < current.offsets[i + 1]; ++j) {
      packed.push_back((static_cast<uint64_t>(current.srcs[i]) << 32) |
                       current.targets[j]);
    }
  }
  std::sort(packed.begin(), packed.end());
  return packed;
}

}  // namespace pathest
