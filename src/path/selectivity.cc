#include "path/selectivity.h"

#include <algorithm>

namespace pathest {

SelectivityMap::SelectivityMap(PathSpace space)
    : space_(space), values_(space.size(), 0) {}

uint64_t SelectivityMap::Get(const LabelPath& path) const {
  return values_[space_.CanonicalIndex(path)];
}

uint64_t SelectivityMap::GetByCanonicalIndex(uint64_t index) const {
  PATHEST_CHECK(index < values_.size(), "canonical index out of range");
  return values_[index];
}

void SelectivityMap::Set(const LabelPath& path, uint64_t value) {
  values_[space_.CanonicalIndex(path)] = value;
}

uint64_t SelectivityMap::Total() const {
  uint64_t total = 0;
  for (uint64_t v : values_) total += v;
  return total;
}

uint64_t SelectivityMap::CountNonZero() const {
  uint64_t count = 0;
  for (uint64_t v : values_) count += (v != 0);
  return count;
}

namespace {

// Distinct pair set of one path prefix, grouped by source vertex.
// targets[offsets[i] .. offsets[i+1]) are the distinct endpoints reachable
// from srcs[i]; they are NOT sorted (the evaluator only needs counts and
// further extension, both order-independent and deterministic).
struct PairSet {
  std::vector<VertexId> srcs;
  std::vector<uint64_t> offsets;  // size srcs.size() + 1
  std::vector<VertexId> targets;

  uint64_t size() const { return targets.size(); }
  void Clear() {
    srcs.clear();
    offsets.clear();
    targets.clear();
  }
};

// Shared scratch for distinct-marking across the whole DFS.
class Marker {
 public:
  explicit Marker(size_t num_vertices) : epoch_of_(num_vertices, 0) {}

  // Starts a new distinct-set scope.
  void NextEpoch() { ++epoch_; }

  // Returns true the first time `v` is seen in the current scope.
  bool Mark(VertexId v) {
    if (epoch_of_[v] == epoch_) return false;
    epoch_of_[v] = epoch_;
    return true;
  }

 private:
  uint64_t epoch_ = 0;
  std::vector<uint64_t> epoch_of_;
};

// Builds the level-1 pair set for label `l` directly from the CSR.
void InitialPairSet(const Graph& graph, LabelId l, PairSet* out) {
  out->Clear();
  out->offsets.push_back(0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.OutNeighbors(v, l);
    if (nbrs.empty()) continue;
    out->srcs.push_back(v);
    // CSR targets can contain no duplicates (edge set semantics), so the
    // span is already a distinct target list.
    out->targets.insert(out->targets.end(), nbrs.begin(), nbrs.end());
    out->offsets.push_back(out->targets.size());
  }
}

// parent ⋈ label -> child: for every (s, t) in parent and t -l-> u, emit the
// distinct (s, u). Uses the unchecked CSR view: this loop dominates the cost
// of ComputeSelectivities.
void ExtendPairSet(const Graph& graph, const PairSet& parent, LabelId l,
                   Marker* marker, PairSet* child) {
  child->Clear();
  child->offsets.push_back(0);
  const Graph::CsrView adj = graph.ForwardView(l);
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    marker->NextEpoch();
    const size_t before = child->targets.size();
    for (uint64_t j = parent.offsets[i]; j < parent.offsets[i + 1]; ++j) {
      const VertexId t = parent.targets[j];
      for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
        const VertexId u = adj.targets[e];
        if (marker->Mark(u)) child->targets.push_back(u);
      }
    }
    if (child->targets.size() > before) {
      child->srcs.push_back(parent.srcs[i]);
      child->offsets.push_back(child->targets.size());
    }
  }
}

// Fused leaf counter: computes the distinct-pair counts of ALL single-label
// extensions of a parent in one pass. Children at the deepest DFS level are
// never extended further, so their pair sets need not be materialized —
// only counted. A per-vertex epoch plus a per-label bitmask provides
// distinctness for every label simultaneously. The leaf level holds the
// vast majority (a fraction (|L|-1)/|L|) of all nodes, so this pass
// dominates evaluator cost.
class LeafCounter {
 public:
  LeafCounter(size_t num_vertices, size_t num_labels)
      : num_labels_(num_labels),
        epoch_of_(num_vertices, 0),
        mask_of_(num_vertices, 0) {
    PATHEST_CHECK(num_labels <= 64, "LeafCounter supports <= 64 labels");
  }

  // Adds, for each label l, the number of distinct (s, u) pairs of
  // parent ⋈ l into counts[l].
  void CountExtensions(const Graph& graph, const PairSet& parent,
                       uint64_t* counts) {
    const size_t num_labels = num_labels_;
    std::vector<Graph::CsrView> views;
    views.reserve(num_labels);
    for (LabelId l = 0; l < num_labels; ++l) {
      views.push_back(graph.ForwardView(l));
    }
    for (size_t i = 0; i < parent.srcs.size(); ++i) {
      ++epoch_;
      for (uint64_t j = parent.offsets[i]; j < parent.offsets[i + 1]; ++j) {
        const VertexId t = parent.targets[j];
        for (LabelId l = 0; l < num_labels; ++l) {
          const Graph::CsrView& adj = views[l];
          const uint64_t mask_bit = 1ULL << l;
          for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
            const VertexId u = adj.targets[e];
            if (epoch_of_[u] != epoch_) {
              epoch_of_[u] = epoch_;
              mask_of_[u] = 0;
            }
            if ((mask_of_[u] & mask_bit) == 0) {
              mask_of_[u] |= mask_bit;
              ++counts[l];
            }
          }
        }
      }
    }
  }

 private:
  size_t num_labels_;
  uint64_t epoch_ = 0;
  std::vector<uint64_t> epoch_of_;
  std::vector<uint64_t> mask_of_;
};

struct DfsContext {
  const Graph* graph;
  const SelectivityOptions* options;
  SelectivityMap* map;
  Marker* marker;
  LeafCounter* leaf_counter;
  // One reusable PairSet per depth (1-based level).
  std::vector<PairSet>* levels;
  size_t k;
};

// Recursively evaluates all extensions of `path` (whose pair set is at
// levels[path.length()]).
Status DfsExtend(DfsContext* ctx, LabelPath* path) {
  const size_t depth = path->length();
  if (depth == ctx->k) return Status::OK();
  const PairSet& parent = (*ctx->levels)[depth];
  if (depth + 1 == ctx->k) {
    // Children are leaves: count all |L| extensions in one fused pass.
    const size_t num_labels = ctx->graph->num_labels();
    std::vector<uint64_t> counts(num_labels, 0);
    ctx->leaf_counter->CountExtensions(*ctx->graph, parent, counts.data());
    for (LabelId l = 0; l < num_labels; ++l) {
      path->PushBack(l);
      ctx->map->Set(*path, counts[l]);
      path->PopBack();
    }
    return Status::OK();
  }
  for (LabelId l = 0; l < ctx->graph->num_labels(); ++l) {
    PairSet* child = &(*ctx->levels)[depth + 1];
    ExtendPairSet(*ctx->graph, parent, l, ctx->marker, child);
    path->PushBack(l);
    ctx->map->Set(*path, child->size());
    if (ctx->options->max_pairs_per_prefix != 0 &&
        child->size() > ctx->options->max_pairs_per_prefix) {
      return Status::ResourceExhausted(
          "pair set exceeds max_pairs_per_prefix at path " +
          path->ToIdString());
    }
    if (child->size() > 0) {
      PATHEST_RETURN_NOT_OK(DfsExtend(ctx, path));
    }
    // Empty child: all deeper extensions stay zero (already initialized).
    path->PopBack();
  }
  return Status::OK();
}

}  // namespace

Result<SelectivityMap> ComputeSelectivities(const Graph& graph, size_t k,
                                            const SelectivityOptions& options) {
  if (graph.num_labels() == 0) {
    return Status::InvalidArgument("graph has no labels");
  }
  if (k < 1 || k > kMaxPathLength) {
    return Status::InvalidArgument("k out of range [1, kMaxPathLength]");
  }
  PathSpace space(graph.num_labels(), k);
  SelectivityMap map(space);
  Marker marker(graph.num_vertices());
  LeafCounter leaf_counter(graph.num_vertices(), graph.num_labels());
  std::vector<PairSet> levels(k + 1);

  DfsContext ctx{&graph, &options, &map, &marker, &leaf_counter, &levels, k};
  for (LabelId root = 0; root < graph.num_labels(); ++root) {
    InitialPairSet(graph, root, &levels[1]);
    LabelPath path{root};
    map.Set(path, levels[1].size());
    if (options.max_pairs_per_prefix != 0 &&
        levels[1].size() > options.max_pairs_per_prefix) {
      return Status::ResourceExhausted(
          "pair set exceeds max_pairs_per_prefix at path " +
          path.ToIdString());
    }
    if (levels[1].size() > 0) {
      Status st = DfsExtend(&ctx, &path);
      if (!st.ok()) return st;
    }
    if (options.progress) options.progress(root);
  }
  return map;
}

Result<uint64_t> EvaluatePathSelectivity(const Graph& graph,
                                         const LabelPath& path) {
  auto pairs = EvaluatePathPairs(graph, path);
  if (!pairs.ok()) return pairs.status();
  return static_cast<uint64_t>(pairs->size());
}

Result<std::vector<uint64_t>> EvaluatePathPairs(const Graph& graph,
                                                const LabelPath& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  for (size_t i = 0; i < path.length(); ++i) {
    if (path.label(i) >= graph.num_labels()) {
      return Status::InvalidArgument("path uses unknown label id");
    }
  }
  Marker marker(graph.num_vertices());
  PairSet current;
  PairSet next;
  InitialPairSet(graph, path.label(0), &current);
  for (size_t i = 1; i < path.length(); ++i) {
    ExtendPairSet(graph, current, path.label(i), &marker, &next);
    std::swap(current, next);
  }
  std::vector<uint64_t> packed;
  packed.reserve(current.size());
  for (size_t i = 0; i < current.srcs.size(); ++i) {
    for (uint64_t j = current.offsets[i]; j < current.offsets[i + 1]; ++j) {
      packed.push_back((static_cast<uint64_t>(current.srcs[i]) << 32) |
                       current.targets[j]);
    }
  }
  std::sort(packed.begin(), packed.end());
  return packed;
}

}  // namespace pathest
