// pathest: the path space L_k — all label paths of length 1..k over a label
// set — and its canonical dense indexing.
//
// The canonical index is length-major, then radix-by-label-id. It is the
// num-alph ordering applied to raw label ids and serves as the storage key
// for selectivity maps and distributions; every user-facing ordering is a
// bijection between [0, |L_k|) and canonical indexes.

#ifndef PATHEST_PATH_PATH_SPACE_H_
#define PATHEST_PATH_PATH_SPACE_H_

#include <cstdint>
#include <functional>

#include "path/label_path.h"
#include "util/status.h"

namespace pathest {

/// \brief The set L_k of label paths with length in [1, k] over `num_labels`
/// labels, with O(k) canonical (un)ranking.
class PathSpace {
 public:
  /// \param num_labels |L| >= 1.
  /// \param k maximum path length, 1 <= k <= kMaxPathLength.
  PathSpace(size_t num_labels, size_t k);

  size_t num_labels() const { return num_labels_; }
  size_t k() const { return k_; }

  /// \brief |L_k| = sum_{i=1..k} |L|^i.
  uint64_t size() const { return size_; }

  /// \brief Number of paths of exactly `len` labels: |L|^len.
  uint64_t CountWithLength(size_t len) const;

  /// \brief Canonical index of first path with `len` labels. Inline: on the
  /// Rank fast path of every length-major ordering.
  uint64_t LengthOffset(size_t len) const {
    PATHEST_CHECK(len >= 1 && len <= k_, "length out of range");
    return offsets_[len];
  }

  /// \brief Canonical index of `path`. Path labels must be < num_labels and
  /// length within [1, k].
  uint64_t CanonicalIndex(const LabelPath& path) const;

  /// \brief Inverse of CanonicalIndex. `index` must be < size().
  LabelPath CanonicalPath(uint64_t index) const;

  /// \brief True when `path` belongs to this space. Inline: every Rank
  /// implementation checks it per query.
  bool Contains(const LabelPath& path) const {
    if (path.empty() || path.length() > k_) return false;
    for (size_t i = 0; i < path.length(); ++i) {
      if (path.label(i) >= num_labels_) return false;
    }
    return true;
  }

  /// \brief Invokes `fn` for every path in canonical order.
  void ForEach(const std::function<void(const LabelPath&)>& fn) const;

 private:
  size_t num_labels_;
  size_t k_;
  uint64_t size_;
  // offsets_[len] = canonical index of the first length-(len) path;
  // offsets_[k_ + 1] = size().
  std::array<uint64_t, kMaxPathLength + 2> offsets_{};
};

}  // namespace pathest

#endif  // PATHEST_PATH_PATH_SPACE_H_
