#include "path/pair_set.h"

#include <algorithm>
#include <bit>

namespace pathest {

const char* PairKernelName(PairKernel kernel) {
  switch (kernel) {
    case PairKernel::kSparse:
      return "sparse";
    case PairKernel::kDense:
      return "dense";
    case PairKernel::kAuto:
    default:
      return "auto";
  }
}

Result<PairKernel> ParsePairKernel(const std::string& name) {
  if (name == "auto") return PairKernel::kAuto;
  if (name == "sparse") return PairKernel::kSparse;
  if (name == "dense") return PairKernel::kDense;
  return Status::InvalidArgument("unknown kernel '" + name +
                                 "' (expected auto|sparse|dense)");
}

namespace {

// Effective per-label group-size threshold for one evaluation: forced
// kernels degenerate to the all/none sentinels, kAuto to the graph-derived
// density bound. Every kernel decision is then one integer compare.
inline uint64_t EffectiveThreshold(PairKernel kernel, uint64_t label_cardinality,
                                   size_t num_vertices, size_t num_words) {
  switch (kernel) {
    case PairKernel::kSparse:
      return UINT64_MAX;
    case PairKernel::kDense:
      return 0;
    case PairKernel::kAuto:
    default:
      return DenseGroupThreshold(label_cardinality, num_vertices, num_words);
  }
}

}  // namespace

LeafCounter::LeafCounter(size_t num_vertices, size_t num_labels)
    : num_labels_(num_labels),
      marker_(num_vertices),
      bits_(num_vertices),
      dense_threshold_(num_labels, 0) {}

void LeafCounter::CountExtensions(const Graph::CsrView* views,
                                  size_t num_vertices, size_t num_labels,
                                  const PairSet& parent, PairKernel kernel,
                                  uint64_t* counts) {
  PATHEST_CHECK(num_vertices <= bits_.num_bits() && num_labels <= num_labels_,
                "graph exceeds LeafCounter capacity");
  // Scan cost is what the bitset actually walks — its full capacity, which
  // may exceed this graph's vertex count under EvalContext reuse.
  const size_t num_words = bits_.num_words();
  for (LabelId l = 0; l < num_labels; ++l) {
    dense_threshold_[l] = EffectiveThreshold(
        kernel, views[l].offsets[num_vertices], num_vertices, num_words);
  }
  const VertexId* targets = parent.targets.data();
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    const uint64_t begin = parent.offsets[i];
    const uint64_t end = parent.offsets[i + 1];
    const uint64_t group_size = end - begin;
    for (LabelId l = 0; l < num_labels; ++l) {
      const Graph::CsrView& adj = views[l];
      if (group_size >= dense_threshold_[l]) {
        for (uint64_t j = begin; j < end; ++j) {
          const VertexId t = targets[j];
          for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
            bits_.SetBitBlind(adj.targets[e]);
          }
        }
        counts[l] += bits_.CountAndClear();
      } else {
        marker_.NextEpoch();
        uint64_t distinct = 0;
        for (uint64_t j = begin; j < end; ++j) {
          const VertexId t = targets[j];
          for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
            distinct += marker_.Mark(adj.targets[e]);
          }
        }
        counts[l] += distinct;
      }
    }
  }
}

FusedExtender::FusedExtender(size_t num_vertices, size_t num_labels)
    : cap_vertices_(num_vertices), cap_labels_(num_labels) {}

void FusedExtender::Bind(const Graph& graph, PairKernel kernel) {
  const size_t num_vertices = graph.num_vertices();
  const size_t num_labels = graph.num_labels();
  PATHEST_CHECK(num_labels <= cap_labels_ && num_vertices <= cap_vertices_,
                "graph exceeds FusedExtender capacity");
  // The heavy scratch (|L| full-|V| bitsets, per-label epoch markers) is
  // allocated on FIRST Bind, not construction: every EvalContext owns a
  // FusedExtender, but only the fused strategy ever binds one — the
  // per-label engine must not pay for fused-only scratch.
  if (bits_.empty()) {
    marker_ = Marker(cap_vertices_);
    bits_.resize(cap_labels_);
    for (DynamicBitset& b : bits_) b.Reset(cap_vertices_);
    emit_.resize(cap_labels_);
    dense_threshold_.assign(cap_labels_, 0);
    count_threshold_.assign(cap_labels_, 0);
    sparse_counts_.assign(cap_labels_, 0);
    group_before_.assign(cap_labels_, 0);
    if (cap_labels_ > 0 && cap_vertices_ <= kMaxMarkerEntries / cap_labels_) {
      markers_.reserve(cap_labels_);
      for (size_t l = 0; l < cap_labels_; ++l) {
        markers_.emplace_back(cap_vertices_);
      }
    }
  }
  vm_ = graph.VertexMajor();
  plane_ = graph.AdjacencyBitmaps();
  num_labels_ = num_labels;
  slab_threshold_ = UINT64_MAX;
  uint64_t slab_bound = 0;
  bool any_edges = false;
  for (LabelId l = 0; l < num_labels; ++l) {
    // Scan cost is what each per-label bitset actually walks — its full
    // capacity, which may exceed this graph's vertex count under reuse.
    const uint64_t cardinality = graph.LabelCardinality(l);
    const uint64_t base = EffectiveThreshold(kernel, cardinality,
                                             num_vertices,
                                             bits_[l].num_words());
    dense_threshold_[l] = base;
    // Counting drains by bare popcount, and with the adjacency plane a
    // dense cell accumulates by vectorized row unions (~kRowWinFactor
    // words per bit-RMW equivalent) — so CountAll's bitset-vs-marker
    // crossover moves far left of DenseGroupThreshold: rows win once the
    // group's OR work, stride/kRowWinFactor words per member, undercuts
    // its ~group · mean-degree marker probes, i.e. from group sizes near
    // stride · |V| / cardinality. Still a pure function of the graph, so
    // kernel choice stays schedule-independent. ExtendAll keeps the plain
    // threshold: its drain extracts positions, which is what the sparse
    // path avoids. Dense planes only — a hub plane guarantees rows for
    // hub cells alone, and a lowered threshold would push rowless cells
    // onto per-edge bit-RMWs that lose to the marker.
    uint64_t count_threshold = base;
    if (kernel == PairKernel::kAuto && plane_.kind == PlaneKind::kDense &&
        cardinality > 0) {
      const uint64_t row_threshold = std::max<uint64_t>(
          2, plane_.stride_words * num_vertices / cardinality);
      count_threshold = std::min(base, row_threshold);
    }
    count_threshold_[l] = count_threshold;
    if (cardinality > 0) {
      any_edges = true;
      slab_bound = std::max(slab_bound, count_threshold);
    }
  }
  // Slab fast path: once a group is dense for EVERY label that has edges,
  // CountAll can union each member's whole plane slab (zero rows of
  // edgeless labels are no-ops) and skip the segment directory entirely.
  // Dense planes only: the slab union assumes the contiguous |L|·stride
  // per-vertex layout, which hub planes do not have.
  if (plane_.kind == PlaneKind::kDense && any_edges &&
      slab_bound != UINT64_MAX) {
    slab_threshold_ = slab_bound;
    slab_.assign(plane_.stride_words * num_labels, 0);
  } else {
    slab_.clear();
  }
}

void FusedExtender::CountAll(const PairSet& parent, uint64_t* counts) {
  const VertexId* targets = parent.targets.data();
  const bool inline_sparse = !markers_.empty();
  const uint64_t row_edge_min =
      plane_.rows != nullptr
          ? (plane_.stride_words + kRowWinFactor - 1) / kRowWinFactor
          : UINT64_MAX;
  const size_t slab_words = plane_.stride_words * num_labels_;
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    const uint64_t begin = parent.offsets[i];
    const uint64_t end = parent.offsets[i + 1];
    const uint64_t group_size = end - begin;
    if (group_size >= slab_threshold_) {
      // Slab fast path: every label is dense for this group, so each
      // member contributes its whole contiguous |L|·stride plane slab in
      // one vectorized union — no segment directory, no per-label branch.
      uint64_t* slab = slab_.data();
      for (uint64_t j = begin; j < end; ++j) {
        const uint64_t* row =
            plane_.rows +
            static_cast<size_t>(targets[j]) * num_labels_ *
                plane_.stride_words;
        for (size_t w = 0; w < slab_words; ++w) slab[w] |= row[w];
      }
      for (LabelId l = 0; l < num_labels_; ++l) {
        uint64_t distinct = 0;
        uint64_t* section = slab + l * plane_.stride_words;
        for (size_t w = 0; w < plane_.stride_words; ++w) {
          distinct += static_cast<uint64_t>(std::popcount(section[w]));
          section[w] = 0;
        }
        counts[l] += distinct;
      }
      continue;
    }
    if (inline_sparse) {
      for (LabelId l = 0; l < num_labels_; ++l) markers_[l].NextEpoch();
    }
    for (uint64_t j = begin; j < end; ++j) {
      const VertexId t = targets[j];
      const uint64_t seg_end = vm_.seg_offsets[t + 1];
      for (uint64_t s = vm_.seg_offsets[t]; s < seg_end; ++s) {
        const LabelId l = vm_.seg_labels[s];
        const uint64_t tgt_begin = vm_.tgt_offsets[s];
        const uint64_t tgt_end = vm_.tgt_offsets[s + 1];
        if (group_size >= count_threshold_[l]) {
          const uint64_t* row = tgt_end - tgt_begin >= row_edge_min
                                    ? RowFor(t, l, s)
                                    : nullptr;
          if (row != nullptr) {
            bits_[l].OrWords(row, plane_.stride_words);
          } else {
            DynamicBitset& bits = bits_[l];
            for (uint64_t e = tgt_begin; e < tgt_end; ++e) {
              bits.SetBitBlind(vm_.targets[e]);
            }
          }
        } else if (inline_sparse) {
          Marker& marker = markers_[l];
          uint64_t distinct = 0;
          for (uint64_t e = tgt_begin; e < tgt_end; ++e) {
            distinct += marker.Mark(vm_.targets[e]);
          }
          sparse_counts_[l] += distinct;
        } else {
          emit_[l].insert(emit_[l].end(), vm_.targets + tgt_begin,
                          vm_.targets + tgt_end);
        }
      }
    }
    for (LabelId l = 0; l < num_labels_; ++l) {
      if (group_size >= count_threshold_[l]) {
        counts[l] += bits_[l].CountAndClear();
      } else if (inline_sparse) {
        counts[l] += sparse_counts_[l];
        sparse_counts_[l] = 0;
      } else if (!emit_[l].empty()) {
        marker_.NextEpoch();
        uint64_t distinct = 0;
        for (VertexId u : emit_[l]) distinct += marker_.Mark(u);
        counts[l] += distinct;
        emit_[l].clear();
      }
    }
  }
}

void FusedExtender::ExtendAll(const PairSet& parent, PairSet* children) {
  for (LabelId l = 0; l < num_labels_; ++l) {
    children[l].Clear();
    children[l].offsets.push_back(0);
  }
  const VertexId* targets = parent.targets.data();
  const bool inline_sparse = !markers_.empty();
  const uint64_t row_edge_min =
      plane_.rows != nullptr
          ? (plane_.stride_words + kRowWinFactor - 1) / kRowWinFactor
          : UINT64_MAX;
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    const uint64_t begin = parent.offsets[i];
    const uint64_t end = parent.offsets[i + 1];
    const uint64_t group_size = end - begin;
    for (LabelId l = 0; l < num_labels_; ++l) {
      group_before_[l] = children[l].targets.size();
      if (inline_sparse) markers_[l].NextEpoch();
    }
    for (uint64_t j = begin; j < end; ++j) {
      const VertexId t = targets[j];
      const uint64_t seg_end = vm_.seg_offsets[t + 1];
      for (uint64_t s = vm_.seg_offsets[t]; s < seg_end; ++s) {
        const LabelId l = vm_.seg_labels[s];
        const uint64_t tgt_begin = vm_.tgt_offsets[s];
        const uint64_t tgt_end = vm_.tgt_offsets[s + 1];
        if (group_size >= dense_threshold_[l]) {
          const uint64_t* row = tgt_end - tgt_begin >= row_edge_min
                                    ? RowFor(t, l, s)
                                    : nullptr;
          if (row != nullptr) {
            bits_[l].OrWords(row, plane_.stride_words);
          } else {
            DynamicBitset& bits = bits_[l];
            for (uint64_t e = tgt_begin; e < tgt_end; ++e) {
              bits.SetBitBlind(vm_.targets[e]);
            }
          }
        } else if (inline_sparse) {
          // Inline dedup: first-seen targets go straight into the child
          // builder, in the same discovery order as the per-label kernel.
          Marker& marker = markers_[l];
          std::vector<VertexId>& out = children[l].targets;
          for (uint64_t e = tgt_begin; e < tgt_end; ++e) {
            const VertexId u = vm_.targets[e];
            if (marker.Mark(u)) out.push_back(u);
          }
        } else {
          emit_[l].insert(emit_[l].end(), vm_.targets + tgt_begin,
                          vm_.targets + tgt_end);
        }
      }
    }
    for (LabelId l = 0; l < num_labels_; ++l) {
      PairSet& child = children[l];
      if (group_size >= dense_threshold_[l]) {
        bits_[l].ExtractAndClear([&child](size_t u) {
          child.targets.push_back(static_cast<VertexId>(u));
        });
      } else if (!inline_sparse && !emit_[l].empty()) {
        marker_.NextEpoch();
        for (VertexId u : emit_[l]) {
          if (marker_.Mark(u)) child.targets.push_back(u);
        }
        emit_[l].clear();
      }
      if (child.targets.size() > group_before_[l]) {
        child.srcs.push_back(parent.srcs[i]);
        child.offsets.push_back(child.targets.size());
      }
    }
  }
}

void InitialPairSet(const Graph& graph, LabelId l, PairSet* out) {
  out->Clear();
  out->offsets.push_back(0);
  const Graph::CsrView adj = graph.ForwardView(l);
  const size_t num_vertices = graph.num_vertices();
  for (VertexId v = 0; v < num_vertices; ++v) {
    const uint64_t begin = adj.offsets[v];
    const uint64_t end = adj.offsets[v + 1];
    if (begin == end) continue;
    out->srcs.push_back(v);
    // CSR targets can contain no duplicates (edge set semantics), so the
    // row is already a distinct target list.
    out->targets.insert(out->targets.end(), adj.targets + begin,
                        adj.targets + end);
    out->offsets.push_back(out->targets.size());
  }
}

void ExtendPairSet(const Graph& graph, const PairSet& parent, LabelId l,
                   Marker* marker, DynamicBitset* bits, PairKernel kernel,
                   PairSet* child) {
  child->Clear();
  child->offsets.push_back(0);
  const Graph::CsrView adj = graph.ForwardView(l);
  const size_t num_vertices = graph.num_vertices();
  const uint64_t dense_threshold = EffectiveThreshold(
      kernel, adj.offsets[num_vertices], num_vertices, bits->num_words());
  const VertexId* targets = parent.targets.data();
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    const uint64_t begin = parent.offsets[i];
    const uint64_t end = parent.offsets[i + 1];
    const size_t before = child->targets.size();
    if (end - begin >= dense_threshold) {
      for (uint64_t j = begin; j < end; ++j) {
        const VertexId t = targets[j];
        for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
          bits->SetBitBlind(adj.targets[e]);
        }
      }
      bits->ExtractAndClear([child](size_t u) {
        child->targets.push_back(static_cast<VertexId>(u));
      });
    } else {
      marker->NextEpoch();
      for (uint64_t j = begin; j < end; ++j) {
        const VertexId t = targets[j];
        for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
          const VertexId u = adj.targets[e];
          if (marker->Mark(u)) child->targets.push_back(u);
        }
      }
    }
    if (child->targets.size() > before) {
      child->srcs.push_back(parent.srcs[i]);
      child->offsets.push_back(child->targets.size());
    }
  }
}

}  // namespace pathest
