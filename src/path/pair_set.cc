#include "path/pair_set.h"

namespace pathest {

LeafCounter::LeafCounter(size_t num_vertices, size_t num_labels)
    : num_labels_(num_labels),
      epoch_of_(num_vertices, 0),
      mask_of_(num_vertices, 0) {
  PATHEST_CHECK(num_labels <= 64, "LeafCounter supports <= 64 labels");
}

void LeafCounter::CountExtensions(const Graph& graph, const PairSet& parent,
                                  uint64_t* counts) {
  const size_t num_labels = num_labels_;
  std::vector<Graph::CsrView> views;
  views.reserve(num_labels);
  for (LabelId l = 0; l < num_labels; ++l) {
    views.push_back(graph.ForwardView(l));
  }
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    ++epoch_;
    for (uint64_t j = parent.offsets[i]; j < parent.offsets[i + 1]; ++j) {
      const VertexId t = parent.targets[j];
      for (LabelId l = 0; l < num_labels; ++l) {
        const Graph::CsrView& adj = views[l];
        const uint64_t mask_bit = 1ULL << l;
        for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
          const VertexId u = adj.targets[e];
          if (epoch_of_[u] != epoch_) {
            epoch_of_[u] = epoch_;
            mask_of_[u] = 0;
          }
          if ((mask_of_[u] & mask_bit) == 0) {
            mask_of_[u] |= mask_bit;
            ++counts[l];
          }
        }
      }
    }
  }
}

void InitialPairSet(const Graph& graph, LabelId l, PairSet* out) {
  out->Clear();
  out->offsets.push_back(0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.OutNeighbors(v, l);
    if (nbrs.empty()) continue;
    out->srcs.push_back(v);
    // CSR targets can contain no duplicates (edge set semantics), so the
    // span is already a distinct target list.
    out->targets.insert(out->targets.end(), nbrs.begin(), nbrs.end());
    out->offsets.push_back(out->targets.size());
  }
}

void ExtendPairSet(const Graph& graph, const PairSet& parent, LabelId l,
                   Marker* marker, PairSet* child) {
  child->Clear();
  child->offsets.push_back(0);
  const Graph::CsrView adj = graph.ForwardView(l);
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    marker->NextEpoch();
    const size_t before = child->targets.size();
    for (uint64_t j = parent.offsets[i]; j < parent.offsets[i + 1]; ++j) {
      const VertexId t = parent.targets[j];
      for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
        const VertexId u = adj.targets[e];
        if (marker->Mark(u)) child->targets.push_back(u);
      }
    }
    if (child->targets.size() > before) {
      child->srcs.push_back(parent.srcs[i]);
      child->offsets.push_back(child->targets.size());
    }
  }
}

}  // namespace pathest
