#include "path/pair_set.h"

namespace pathest {

const char* PairKernelName(PairKernel kernel) {
  switch (kernel) {
    case PairKernel::kSparse:
      return "sparse";
    case PairKernel::kDense:
      return "dense";
    case PairKernel::kAuto:
    default:
      return "auto";
  }
}

Result<PairKernel> ParsePairKernel(const std::string& name) {
  if (name == "auto") return PairKernel::kAuto;
  if (name == "sparse") return PairKernel::kSparse;
  if (name == "dense") return PairKernel::kDense;
  return Status::InvalidArgument("unknown kernel '" + name +
                                 "' (expected auto|sparse|dense)");
}

namespace {

// Effective per-label group-size threshold for one evaluation: forced
// kernels degenerate to the all/none sentinels, kAuto to the graph-derived
// density bound. Every kernel decision is then one integer compare.
inline uint64_t EffectiveThreshold(PairKernel kernel, uint64_t label_cardinality,
                                   size_t num_vertices, size_t num_words) {
  switch (kernel) {
    case PairKernel::kSparse:
      return UINT64_MAX;
    case PairKernel::kDense:
      return 0;
    case PairKernel::kAuto:
    default:
      return DenseGroupThreshold(label_cardinality, num_vertices, num_words);
  }
}

}  // namespace

LeafCounter::LeafCounter(size_t num_vertices, size_t num_labels)
    : num_labels_(num_labels),
      marker_(num_vertices),
      bits_(num_vertices),
      dense_threshold_(num_labels, 0) {}

void LeafCounter::CountExtensions(const Graph::CsrView* views,
                                  size_t num_vertices, size_t num_labels,
                                  const PairSet& parent, PairKernel kernel,
                                  uint64_t* counts) {
  PATHEST_CHECK(num_vertices <= bits_.num_bits() && num_labels <= num_labels_,
                "graph exceeds LeafCounter capacity");
  // Scan cost is what the bitset actually walks — its full capacity, which
  // may exceed this graph's vertex count under EvalContext reuse.
  const size_t num_words = bits_.num_words();
  for (LabelId l = 0; l < num_labels; ++l) {
    dense_threshold_[l] = EffectiveThreshold(
        kernel, views[l].offsets[num_vertices], num_vertices, num_words);
  }
  const VertexId* targets = parent.targets.data();
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    const uint64_t begin = parent.offsets[i];
    const uint64_t end = parent.offsets[i + 1];
    const uint64_t group_size = end - begin;
    for (LabelId l = 0; l < num_labels; ++l) {
      const Graph::CsrView& adj = views[l];
      if (group_size >= dense_threshold_[l]) {
        for (uint64_t j = begin; j < end; ++j) {
          const VertexId t = targets[j];
          for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
            bits_.SetBitBlind(adj.targets[e]);
          }
        }
        counts[l] += bits_.CountAndClear();
      } else {
        marker_.NextEpoch();
        uint64_t distinct = 0;
        for (uint64_t j = begin; j < end; ++j) {
          const VertexId t = targets[j];
          for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
            distinct += marker_.Mark(adj.targets[e]);
          }
        }
        counts[l] += distinct;
      }
    }
  }
}

void InitialPairSet(const Graph& graph, LabelId l, PairSet* out) {
  out->Clear();
  out->offsets.push_back(0);
  const Graph::CsrView adj = graph.ForwardView(l);
  const size_t num_vertices = graph.num_vertices();
  for (VertexId v = 0; v < num_vertices; ++v) {
    const uint64_t begin = adj.offsets[v];
    const uint64_t end = adj.offsets[v + 1];
    if (begin == end) continue;
    out->srcs.push_back(v);
    // CSR targets can contain no duplicates (edge set semantics), so the
    // row is already a distinct target list.
    out->targets.insert(out->targets.end(), adj.targets + begin,
                        adj.targets + end);
    out->offsets.push_back(out->targets.size());
  }
}

void ExtendPairSet(const Graph& graph, const PairSet& parent, LabelId l,
                   Marker* marker, DynamicBitset* bits, PairKernel kernel,
                   PairSet* child) {
  child->Clear();
  child->offsets.push_back(0);
  const Graph::CsrView adj = graph.ForwardView(l);
  const size_t num_vertices = graph.num_vertices();
  const uint64_t dense_threshold = EffectiveThreshold(
      kernel, adj.offsets[num_vertices], num_vertices, bits->num_words());
  const VertexId* targets = parent.targets.data();
  for (size_t i = 0; i < parent.srcs.size(); ++i) {
    const uint64_t begin = parent.offsets[i];
    const uint64_t end = parent.offsets[i + 1];
    const size_t before = child->targets.size();
    if (end - begin >= dense_threshold) {
      for (uint64_t j = begin; j < end; ++j) {
        const VertexId t = targets[j];
        for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
          bits->SetBitBlind(adj.targets[e]);
        }
      }
      bits->ExtractAndClear([child](size_t u) {
        child->targets.push_back(static_cast<VertexId>(u));
      });
    } else {
      marker->NextEpoch();
      for (uint64_t j = begin; j < end; ++j) {
        const VertexId t = targets[j];
        for (uint64_t e = adj.offsets[t]; e < adj.offsets[t + 1]; ++e) {
          const VertexId u = adj.targets[e];
          if (marker->Mark(u)) child->targets.push_back(u);
        }
      }
    }
    if (child->targets.size() > before) {
      child->srcs.push_back(parent.srcs[i]);
      child->offsets.push_back(child->targets.size());
    }
  }
}

}  // namespace pathest
