#include "path/splitter.h"

#include <algorithm>

namespace pathest {

BaseLabelSet::BaseLabelSet(size_t num_labels, size_t max_piece_length)
    : num_labels_(num_labels), max_piece_length_(max_piece_length) {}

BaseLabelSet BaseLabelSet::SingleLabels(size_t num_labels) {
  BaseLabelSet set(num_labels, 1);
  for (LabelId l = 0; l < num_labels; ++l) {
    set.members_.insert(LabelPath{l});
  }
  return set;
}

BaseLabelSet BaseLabelSet::UpToLength(size_t num_labels, size_t m) {
  PATHEST_CHECK(m >= 1 && m <= kMaxPathLength, "base length out of range");
  BaseLabelSet set(num_labels, m);
  PathSpace space(num_labels, m);
  space.ForEach([&](const LabelPath& p) { set.members_.insert(p); });
  return set;
}

Result<BaseLabelSet> BaseLabelSet::Custom(size_t num_labels,
                                          std::vector<LabelPath> members) {
  size_t max_len = 1;
  for (const LabelPath& p : members) {
    max_len = std::max(max_len, p.length());
  }
  BaseLabelSet set(num_labels, max_len);
  for (LabelPath& p : members) set.members_.insert(p);
  // Decomposability requires every single label to be present (paper §3.1,
  // footnote 2: "naturally L ⊆ B").
  for (LabelId l = 0; l < num_labels; ++l) {
    if (!set.Contains(LabelPath{l})) {
      return Status::InvalidArgument(
          "custom base set is missing single label id " + std::to_string(l));
    }
  }
  return set;
}

bool BaseLabelSet::Contains(const LabelPath& piece) const {
  return members_.find(piece) != members_.end();
}

std::vector<LabelPath> BaseLabelSet::Members() const {
  std::vector<LabelPath> out(members_.begin(), members_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<LabelPath> GreedySplit(const LabelPath& path,
                                   const BaseLabelSet& base) {
  std::vector<LabelPath> pieces;
  size_t pos = 0;
  while (pos < path.length()) {
    size_t remaining = path.length() - pos;
    size_t try_len = std::min(remaining, base.max_piece_length());
    for (; try_len >= 1; --try_len) {
      LabelPath piece;
      for (size_t i = 0; i < try_len; ++i) piece.PushBack(path.label(pos + i));
      if (base.Contains(piece)) {
        pieces.push_back(piece);
        pos += try_len;
        break;
      }
      PATHEST_CHECK(try_len > 1,
                    "base set misses a single label; Custom() must prevent this");
    }
  }
  return pieces;
}

}  // namespace pathest
