// pathest: exact path-selectivity computation (ground truth f(ℓ)).
//
// The selectivity f(ℓ) of a label path ℓ is the number of DISTINCT vertex
// pairs (vs, vt) connected by an ℓ-labeled path (paper Section 2). The
// evaluator walks the label-prefix trie depth-first; at each node it holds
// the distinct pair set of the prefix, grouped by source vertex, and joins
// it with the per-label adjacency to produce each child. Empty prefixes
// prune their whole subtree, which is what makes k = 6 tractable on sparse
// data. Only the <= k pair sets on the current DFS branch are resident.
//
// Parallelism: any two distinct label-path PREFIXES root independent
// subtrees — they read the same immutable Graph and write DISJOINT slices
// of the canonical index space (a prefix's digits are the most significant
// radix digits of the canonical index, so its descendants of each length
// form one contiguous run). The default (fused) strategy decomposes the
// build into depth-2 prefix tasks (root, l2): a parallel pre-pass builds
// every root's level-1 pair set and fused-extends it into all |L| level-2
// sets at once, then the |L|² tasks are dispatched heaviest-first (by their
// exact level-2 pair-set size) over the engine ThreadPool, whose atomic
// work queue lets idle workers steal the next-heaviest pending task. The
// legacy per-label strategy fans out whole root subtrees instead (|L|
// tasks, weighted by label cardinality). Either way there is one
// EvalContext per worker and the result is bit-identical for every
// num_threads value and both strategies.
//
// Kernels: each extension step deduplicates successors with either the
// sparse epoch-marker kernel or the dense bitmap kernel, chosen per
// (source group, label) by a cost estimate (see path/pair_set.h). The
// fused strategy additionally walks each pair ONCE for all labels via the
// graph's vertex-major view instead of once per label (FusedExtender).
// SelectivityOptions::kernel / ::strategy can force any combination for
// measurement; the contract is that the choice NEVER changes the computed
// map, only speed.

#ifndef PATHEST_PATH_SELECTIVITY_H_
#define PATHEST_PATH_SELECTIVITY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/eval_context.h"
#include "graph/graph.h"
#include "path/label_path.h"
#include "path/path_space.h"
#include "util/status.h"

namespace pathest {

/// \brief Evaluator decomposition + extension strategy.
enum class ExtendStrategy : uint8_t {
  /// Fused all-labels extension (vertex-major single pass, FusedExtender)
  /// with depth-2 prefix-task decomposition. The default.
  kFused = 0,
  /// Per-label ExtendPairSet/LeafCounter loops with per-root-label
  /// decomposition — the pre-fusion engine, kept as the measurable
  /// baseline and as an independently-derived oracle for the fused path.
  kPerLabel = 1,
};

/// \brief Stable lowercase name ("fused" / "per-label").
const char* ExtendStrategyName(ExtendStrategy strategy);

/// \brief Inverse of ExtendStrategyName; InvalidArgument on unknown names.
Result<ExtendStrategy> ParseExtendStrategy(const std::string& name);

/// \brief Dense map from every path in L_k to its exact selectivity.
class SelectivityMap {
 public:
  /// Builds an all-zero map over the given space.
  explicit SelectivityMap(PathSpace space);

  const PathSpace& space() const { return space_; }

  /// \brief f(ℓ). Path must be in the space.
  uint64_t Get(const LabelPath& path) const;

  /// \brief f of the path with the given canonical index.
  uint64_t GetByCanonicalIndex(uint64_t index) const;

  /// \brief Sets f(ℓ).
  void Set(const LabelPath& path, uint64_t value);

  /// \brief Sets f of the path with the given canonical index. Inline: the
  /// evaluator's DFS maintains the canonical index incrementally (push =
  /// radix·|L| + l) and writes one entry per visited path-tree node.
  void SetByCanonicalIndex(uint64_t index, uint64_t value) {
    PATHEST_CHECK(index < values_.size(), "canonical index out of range");
    values_[index] = value;
  }

  /// \brief Zeroes `count` entries starting at canonical index `index`.
  /// Used when patching a map in place (see ZeroPrefixSubtree).
  void ZeroRange(uint64_t index, uint64_t count);

  /// \brief Sum of all selectivities (diagnostics).
  uint64_t Total() const;

  /// \brief Number of paths with f > 0.
  uint64_t CountNonZero() const;

  /// \brief The raw canonical-indexed vector.
  const std::vector<uint64_t>& values() const { return values_; }

 private:
  PathSpace space_;
  std::vector<uint64_t> values_;
};

/// \brief Options for the exact evaluator.
struct SelectivityOptions {
  /// Abort with ResourceExhausted when a single prefix's distinct pair set
  /// exceeds this many pairs (0 = unlimited). Guards against dense graphs
  /// where |R| would approach |V|^2. Every root subtree is still evaluated
  /// (each aborting at its own first violation), and the error of the
  /// lowest-id failing root is returned — so the reported status is
  /// deterministic and independent of num_threads.
  uint64_t max_pairs_per_prefix = 0;

  /// Number of worker threads for the parallel fan-out. 1 (default) is
  /// fully serial and spawns no threads; 0 means one thread per hardware
  /// core. The computed SelectivityMap is bit-identical for every value:
  /// every task writes a disjoint slice of the map. Under the fused
  /// strategy the unit of fan-out is the depth-2 prefix task (root, l2),
  /// so useful parallelism reaches |L|² instead of the per-label
  /// strategy's |L| (see ResolvedNumThreads / SelectivityTaskCount).
  size_t num_threads = 1;

  /// Evaluator strategy (see ExtendStrategy). kFused (default) extends
  /// each interior DFS node into ALL |L| children in one pass over its
  /// pair set via the graph's vertex-major adjacency, and decomposes the
  /// build into depth-2 prefix tasks scheduled heaviest-first by exact
  /// level-2 pair-set size. kPerLabel is the pre-fusion engine (per-label
  /// extension loops, per-root decomposition), kept as the measurable
  /// baseline. Strategy-selection contract: the computed SelectivityMap
  /// (and, on failure, the returned status) is bit-identical across both
  /// strategies, every kernel, and every num_threads — only wall time
  /// differs. Enforced by tests/fused_selectivity_test.cc.
  ///
  /// Memory trade-off: for k >= 3 the fused pre-pass keeps the WHOLE
  /// level-2 layer of pair sets resident (the prefix tasks' starting
  /// sets; each is freed as its task completes), where the per-label
  /// engine holds at most k sets per worker. On graphs where the level-2
  /// selectivity mass is problematic, set max_pairs_per_prefix (which
  /// bounds every cell) or fall back to kPerLabel.
  ExtendStrategy strategy = ExtendStrategy::kFused;

  /// Extension-kernel selection (see path/pair_set.h). kAuto (default)
  /// decides per (source group, label) cell with an O(1) cost estimate:
  /// cells whose expected emission count (group size × the label's mean
  /// degree) covers the cost of a bitmap word scan with margin
  /// (DenseGroupThreshold) run the dense bitmap kernel, everything else
  /// the sparse epoch-marker kernel. kSparse / kDense force one kernel
  /// everywhere — useful only to measure each kernel in isolation
  /// (pathest_cli --kernel, benches via PATHEST_KERNEL).
  ///
  /// Kernel-selection contract: the computed SelectivityMap (and, on
  /// failure, the returned status) is bit-identical across all three values
  /// and across every num_threads — kAuto's choice depends only on the
  /// graph and the prefix's pair set, never on scheduling or prior scratch
  /// state. Only wall time differs. Enforced by
  /// tests/kernel_selectivity_test.cc.
  PairKernel kernel = PairKernel::kAuto;

  /// Optional progress callback invoked after each length-1 subtree
  /// completes (i.e., exactly num_labels times, failing roots included).
  ///
  /// Thread-safety guarantee: invocations are serialized behind an internal
  /// mutex (shared with `label_time`), so the callback may mutate shared
  /// state without its own locking. The COMPLETION ORDER of roots is
  /// unspecified, except with num_threads == 1 under the per-label
  /// strategy, where roots complete in ascending label order on the
  /// calling thread (the fused strategy dispatches a root's prefix tasks
  /// heaviest-first even serially, so its completion order follows task
  /// weights).
  std::function<void(LabelId done_root)> progress;

  /// Optional timing sink: receives each root label's subtree evaluation
  /// time in milliseconds, immediately before `progress` fires for that
  /// root. Under the per-label strategy this is the subtree's wall time;
  /// under the fused strategy it is the SUM of the root's pre-pass span
  /// and its prefix tasks' spans (which may overlap in wall time when
  /// parallel). Serialized behind the same mutex as `progress`.
  std::function<void(LabelId root, double millis)> label_time;
};

/// \brief The number of independent work items ComputeSelectivities fans
/// out for a (num_labels, k, strategy) build: num_labels roots for the
/// per-label strategy, num_labels² depth-2 prefix tasks for the fused
/// strategy when k >= 3 (below that there is nothing under the prefixes
/// and the fan-out stays per-root).
size_t SelectivityTaskCount(size_t num_labels, size_t k,
                            ExtendStrategy strategy);

/// \brief The worker count ComputeSelectivities actually uses for
/// `options` on a graph with `num_labels` labels at depth `k`: 0 resolves
/// to hardware concurrency, then clamps to SelectivityTaskCount (extra
/// workers would idle). The former min(threads, num_labels) cap applies
/// only to the per-label strategy; fused builds scale to |L|² workers.
size_t ResolvedNumThreads(const SelectivityOptions& options,
                          size_t num_labels, size_t k);

/// \brief Computes f(ℓ) for every ℓ in L_k on `graph`.
Result<SelectivityMap> ComputeSelectivities(
    const Graph& graph, size_t k,
    const SelectivityOptions& options = SelectivityOptions{});

/// \brief Evaluates the subtree of one root label: writes f(ℓ) for every
/// path ℓ in L_k whose FIRST label is `root` into `map`, leaving all other
/// entries untouched.
///
/// This is the per-label strategy's unit of work: a pure function of
/// (graph, ctx, root) whose writes are confined to the root's disjoint
/// canonical-index slices, making concurrent calls on distinct roots with
/// distinct contexts race-free. `ctx` must have been built for at least
/// this graph's vertex/label counts and depth k; its prior contents are
/// irrelevant. `map` must cover space (graph.num_labels(), k).
Status EvaluateRootSubtree(const Graph& graph, EvalContext& ctx, LabelId root,
                           size_t k, const SelectivityOptions& options,
                           SelectivityMap* map);

/// \brief Runs the fused strategy's per-root pre-pass for `root` (Phase A
/// of the depth-2 decomposition): builds the root's level-1 pair set into
/// `ctx.levels[1]`, writes the length-1 map entry, and — for k >= 2 with a
/// non-empty level — either counts the length-2 leaves directly (k == 2)
/// or fused-extends into `level2_cells` (an array of num_labels PairSets,
/// the prefix tasks' starting sets), writing every length-2 entry and
/// recording per-cell guard violations into `cell_status` (an array of
/// num_labels Status slots; only violating cells are written). Returns the
/// root's own guard status (a level-1 violation skips level 2 entirely).
///
/// Preconditions: `ctx.fused` is Bound to (graph, options.kernel); for
/// k >= 3, `level2_cells` and `cell_status` are non-null; `map` covers
/// space (graph.num_labels(), k). Writes are confined to the root's
/// disjoint canonical-index slices, so concurrent calls on distinct roots
/// with distinct contexts are race-free.
///
/// Exported (rather than kept a lambda of the fused build) so the
/// incremental maintenance engine (src/maint/incremental.h) re-runs
/// EXACTLY the code path of the full build on dirtied roots — bit-identity
/// of incremental and full rebuilds is by construction, not by parallel
/// implementation.
Status EvaluateFusedRootPrepass(const Graph& graph, EvalContext& ctx,
                                LabelId root, size_t k,
                                const SelectivityOptions& options,
                                SelectivityMap* map, PairSet* level2_cells,
                                Status* cell_status);

/// \brief Evaluates one depth-2 prefix task (root, l2) — Phase B of the
/// fused decomposition: the DFS over every extension of the length-2
/// prefix whose (non-empty) pair set is `level2`, writing each
/// length-3..k entry under the prefix. The subtree's map entries MUST be
/// zero on entry (the DFS prunes empty children without visiting them) —
/// guaranteed for a freshly-constructed map, restored by ZeroPrefixSubtree
/// when patching one in place. `ctx.fused` must be Bound to
/// (graph, options.kernel). Requires k >= 3.
Status EvaluateFusedPrefixTask(const Graph& graph, EvalContext& ctx,
                               LabelId root, LabelId l2, const PairSet& level2,
                               size_t k, const SelectivityOptions& options,
                               SelectivityMap* map);

/// \brief Zeroes every length-3..k entry under the depth-2 prefix
/// (root, l2) — exactly the write slices of EvaluateFusedPrefixTask. The
/// incremental engine calls this on every dirtied task before re-running
/// it against the patched graph.
void ZeroPrefixSubtree(LabelId root, LabelId l2, SelectivityMap* map);

/// \brief Evaluates a single path, returning its exact selectivity.
/// Convenience for spot checks and tests; does not share work across calls.
Result<uint64_t> EvaluatePathSelectivity(const Graph& graph,
                                         const LabelPath& path);

/// \brief Materializes the distinct pair set of one path (testing utility).
/// Pairs are returned as packed (src << 32 | dst), sorted ascending.
Result<std::vector<uint64_t>> EvaluatePathPairs(const Graph& graph,
                                                const LabelPath& path);

}  // namespace pathest

#endif  // PATHEST_PATH_SELECTIVITY_H_
