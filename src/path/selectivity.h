// pathest: exact path-selectivity computation (ground truth f(ℓ)).
//
// The selectivity f(ℓ) of a label path ℓ is the number of DISTINCT vertex
// pairs (vs, vt) connected by an ℓ-labeled path (paper Section 2). The
// evaluator walks the label-prefix trie depth-first; at each node it holds
// the distinct pair set of the prefix, grouped by source vertex, and joins
// it with the per-label adjacency to produce each child. Empty prefixes
// prune their whole subtree, which is what makes k = 6 tractable on sparse
// data. Only the <= k pair sets on the current DFS branch are resident.
//
// Parallelism: the |L| root-label subtrees are independent — they read the
// same immutable Graph and write DISJOINT slices of the canonical index
// space (the root label is the most significant radix digit of the
// canonical index, so each root's paths of each length form one contiguous
// run). ComputeSelectivities fans the roots out over an engine ThreadPool
// with one EvalContext per worker; roots are dispatched heaviest-first
// (by label cardinality, the level-1 pair-set size) so one monster root
// cannot serialize the tail of the build. The result is bit-identical for
// every num_threads value.
//
// Kernels: each extension step deduplicates successors with either the
// sparse epoch-marker kernel or the dense bitmap kernel, chosen per
// (source group, label) by a cost estimate (see path/pair_set.h).
// SelectivityOptions::kernel can force either kernel for measurement; the
// contract is that the choice NEVER changes the computed map, only speed.

#ifndef PATHEST_PATH_SELECTIVITY_H_
#define PATHEST_PATH_SELECTIVITY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/eval_context.h"
#include "graph/graph.h"
#include "path/label_path.h"
#include "path/path_space.h"
#include "util/status.h"

namespace pathest {

/// \brief Dense map from every path in L_k to its exact selectivity.
class SelectivityMap {
 public:
  /// Builds an all-zero map over the given space.
  explicit SelectivityMap(PathSpace space);

  const PathSpace& space() const { return space_; }

  /// \brief f(ℓ). Path must be in the space.
  uint64_t Get(const LabelPath& path) const;

  /// \brief f of the path with the given canonical index.
  uint64_t GetByCanonicalIndex(uint64_t index) const;

  /// \brief Sets f(ℓ).
  void Set(const LabelPath& path, uint64_t value);

  /// \brief Sum of all selectivities (diagnostics).
  uint64_t Total() const;

  /// \brief Number of paths with f > 0.
  uint64_t CountNonZero() const;

  /// \brief The raw canonical-indexed vector.
  const std::vector<uint64_t>& values() const { return values_; }

 private:
  PathSpace space_;
  std::vector<uint64_t> values_;
};

/// \brief Options for the exact evaluator.
struct SelectivityOptions {
  /// Abort with ResourceExhausted when a single prefix's distinct pair set
  /// exceeds this many pairs (0 = unlimited). Guards against dense graphs
  /// where |R| would approach |V|^2. Every root subtree is still evaluated
  /// (each aborting at its own first violation), and the error of the
  /// lowest-id failing root is returned — so the reported status is
  /// deterministic and independent of num_threads.
  uint64_t max_pairs_per_prefix = 0;

  /// Number of worker threads for the per-root-label fan-out. 1 (default)
  /// is fully serial and spawns no threads; 0 means one thread per hardware
  /// core. The computed SelectivityMap is bit-identical for every value:
  /// each root label's subtree writes a disjoint slice of the map.
  size_t num_threads = 1;

  /// Extension-kernel selection (see path/pair_set.h). kAuto (default)
  /// decides per (source group, label) cell with an O(1) cost estimate:
  /// cells whose expected emission count (group size × the label's mean
  /// degree) covers the cost of a bitmap word scan with margin
  /// (DenseGroupThreshold) run the dense bitmap kernel, everything else
  /// the sparse epoch-marker kernel. kSparse / kDense force one kernel
  /// everywhere — useful only to measure each kernel in isolation
  /// (pathest_cli --kernel, benches via PATHEST_KERNEL).
  ///
  /// Kernel-selection contract: the computed SelectivityMap (and, on
  /// failure, the returned status) is bit-identical across all three values
  /// and across every num_threads — kAuto's choice depends only on the
  /// graph and the prefix's pair set, never on scheduling or prior scratch
  /// state. Only wall time differs. Enforced by
  /// tests/kernel_selectivity_test.cc.
  PairKernel kernel = PairKernel::kAuto;

  /// Optional progress callback invoked after each length-1 subtree
  /// completes (i.e., exactly num_labels times, failing roots included).
  ///
  /// Thread-safety guarantee: invocations are serialized behind an internal
  /// mutex (shared with `label_time`), so the callback may mutate shared
  /// state without its own locking. With num_threads > 1 the COMPLETION
  /// ORDER of roots is unspecified; with num_threads == 1 roots complete in
  /// ascending label order on the calling thread.
  std::function<void(LabelId done_root)> progress;

  /// Optional timing sink: receives each root label's subtree evaluation
  /// wall time, immediately before `progress` fires for that root.
  /// Serialized behind the same mutex as `progress`.
  std::function<void(LabelId root, double millis)> label_time;
};

/// \brief The worker count ComputeSelectivities actually uses for
/// `options` on a graph with `num_labels` labels: 0 resolves to hardware
/// concurrency, then clamps to num_labels (roots are the unit of fan-out).
size_t ResolvedNumThreads(const SelectivityOptions& options,
                          size_t num_labels);

/// \brief Computes f(ℓ) for every ℓ in L_k on `graph`.
Result<SelectivityMap> ComputeSelectivities(
    const Graph& graph, size_t k,
    const SelectivityOptions& options = SelectivityOptions{});

/// \brief Evaluates the subtree of one root label: writes f(ℓ) for every
/// path ℓ in L_k whose FIRST label is `root` into `map`, leaving all other
/// entries untouched.
///
/// This is the parallel evaluator's unit of work: a pure function of
/// (graph, ctx, root) whose writes are confined to the root's disjoint
/// canonical-index slices, making concurrent calls on distinct roots with
/// distinct contexts race-free. `ctx` must have been built for at least
/// this graph's vertex/label counts and depth k; its prior contents are
/// irrelevant. `map` must cover space (graph.num_labels(), k).
Status EvaluateRootSubtree(const Graph& graph, EvalContext& ctx, LabelId root,
                           size_t k, const SelectivityOptions& options,
                           SelectivityMap* map);

/// \brief Evaluates a single path, returning its exact selectivity.
/// Convenience for spot checks and tests; does not share work across calls.
Result<uint64_t> EvaluatePathSelectivity(const Graph& graph,
                                         const LabelPath& path);

/// \brief Materializes the distinct pair set of one path (testing utility).
/// Pairs are returned as packed (src << 32 | dst), sorted ascending.
Result<std::vector<uint64_t>> EvaluatePathPairs(const Graph& graph,
                                                const LabelPath& path);

}  // namespace pathest

#endif  // PATHEST_PATH_SELECTIVITY_H_
