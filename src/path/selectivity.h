// pathest: exact path-selectivity computation (ground truth f(ℓ)).
//
// The selectivity f(ℓ) of a label path ℓ is the number of DISTINCT vertex
// pairs (vs, vt) connected by an ℓ-labeled path (paper Section 2). The
// evaluator walks the label-prefix trie depth-first; at each node it holds
// the distinct pair set of the prefix, grouped by source vertex, and joins
// it with the per-label adjacency to produce each child. Empty prefixes
// prune their whole subtree, which is what makes k = 6 tractable on sparse
// data. Only the <= k pair sets on the current DFS branch are resident.

#ifndef PATHEST_PATH_SELECTIVITY_H_
#define PATHEST_PATH_SELECTIVITY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "path/label_path.h"
#include "path/path_space.h"
#include "util/status.h"

namespace pathest {

/// \brief Dense map from every path in L_k to its exact selectivity.
class SelectivityMap {
 public:
  /// Builds an all-zero map over the given space.
  explicit SelectivityMap(PathSpace space);

  const PathSpace& space() const { return space_; }

  /// \brief f(ℓ). Path must be in the space.
  uint64_t Get(const LabelPath& path) const;

  /// \brief f of the path with the given canonical index.
  uint64_t GetByCanonicalIndex(uint64_t index) const;

  /// \brief Sets f(ℓ).
  void Set(const LabelPath& path, uint64_t value);

  /// \brief Sum of all selectivities (diagnostics).
  uint64_t Total() const;

  /// \brief Number of paths with f > 0.
  uint64_t CountNonZero() const;

  /// \brief The raw canonical-indexed vector.
  const std::vector<uint64_t>& values() const { return values_; }

 private:
  PathSpace space_;
  std::vector<uint64_t> values_;
};

/// \brief Options for the exact evaluator.
struct SelectivityOptions {
  /// Abort with ResourceExhausted when a single prefix's distinct pair set
  /// exceeds this many pairs (0 = unlimited). Guards against dense graphs
  /// where |R| would approach |V|^2.
  uint64_t max_pairs_per_prefix = 0;

  /// Optional progress callback invoked after each length-1 subtree
  /// completes (i.e., num_labels times).
  std::function<void(LabelId done_root)> progress;
};

/// \brief Computes f(ℓ) for every ℓ in L_k on `graph`.
Result<SelectivityMap> ComputeSelectivities(
    const Graph& graph, size_t k,
    const SelectivityOptions& options = SelectivityOptions{});

/// \brief Evaluates a single path, returning its exact selectivity.
/// Convenience for spot checks and tests; does not share work across calls.
Result<uint64_t> EvaluatePathSelectivity(const Graph& graph,
                                         const LabelPath& path);

/// \brief Materializes the distinct pair set of one path (testing utility).
/// Pairs are returned as packed (src << 32 | dst), sorted ascending.
Result<std::vector<uint64_t>> EvaluatePathPairs(const Graph& graph,
                                                const LabelPath& path);

}  // namespace pathest

#endif  // PATHEST_PATH_SELECTIVITY_H_
