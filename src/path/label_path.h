// pathest: the LabelPath value type — a k-label path l1/l2/.../lk
// (paper Section 2).
//
// Paths are small, fixed-capacity, copyable values: at most kMaxPathLength
// labels stored inline. Everything in the ordering framework traffics in
// LabelPath by value.

#ifndef PATHEST_PATH_LABEL_PATH_H_
#define PATHEST_PATH_LABEL_PATH_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace pathest {

/// Maximum supported path length k.
inline constexpr size_t kMaxPathLength = 16;

/// \brief A sequence of 1..kMaxPathLength edge labels.
class LabelPath {
 public:
  /// Empty path (length 0). Valid only as a building intermediate; the path
  /// spaces L_k contain paths of length >= 1.
  LabelPath() = default;

  /// From an explicit label list; aborts if longer than kMaxPathLength.
  LabelPath(std::initializer_list<LabelId> labels);

  /// \brief Number of labels |ℓ|.
  size_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// \brief Label at position i (0-based). i must be < length(). Inline:
  /// every Rank fast path reads all labels per query.
  LabelId label(size_t i) const {
    PATHEST_CHECK(i < length_, "label index out of range");
    return labels_[i];
  }

  /// \brief Returns a copy extended by one label. Aborts at capacity.
  LabelPath Extend(LabelId next) const;

  /// \brief Returns the prefix of the first `n` labels (n <= length()).
  LabelPath Prefix(size_t n) const;

  /// \brief Returns the suffix dropping the first `n` labels.
  LabelPath Suffix(size_t n) const;

  /// \brief In-place append. Aborts at capacity.
  void PushBack(LabelId next);

  /// \brief In-place removal of the last label. Path must be non-empty.
  void PopBack();

  bool operator==(const LabelPath& other) const;
  /// Length-major, then pairwise label-id comparison (the canonical order).
  bool operator<(const LabelPath& other) const;

  /// \brief Renders as "a/b/c" using the dictionary's label names.
  std::string ToString(const LabelDictionary& dict) const;

  /// \brief Renders label ids as "0/1/2" (debugging).
  std::string ToIdString() const;

  /// \brief Parses "a/b/c" against a dictionary.
  static Result<LabelPath> Parse(const std::string& text,
                                 const LabelDictionary& dict);

  /// \brief FNV-style hash for unordered containers.
  size_t Hash() const;

 private:
  uint8_t length_ = 0;
  std::array<uint16_t, kMaxPathLength> labels_{};
};

/// Hash functor for unordered containers keyed by LabelPath.
struct LabelPathHash {
  size_t operator()(const LabelPath& p) const { return p.Hash(); }
};

}  // namespace pathest

#endif  // PATHEST_PATH_LABEL_PATH_H_
