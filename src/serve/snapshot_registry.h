// pathest: versioned, immutable serving snapshots with atomic hot-swap —
// the state layer of the estimation service (serve/server.h).
//
// The serving idiom (after ytsaurus' tablet/Hydra snapshot machinery):
// readers never block writers and writers never block readers, because the
// whole registry state is ONE immutable value behind an atomic pointer.
//
//   * A ServingSnapshot is one catalog entry frozen for serving: the
//     deserialized PathHistogram (which owns the label dictionary the
//     entry's queries parse against) plus the Estimator fast-path facade
//     built over it. Snapshots are immutable after construction and shared
//     as shared_ptr<const ServingSnapshot>; a reader that pinned one keeps
//     it alive across any number of concurrent swaps.
//
//   * SnapshotRegistry holds shared_ptr<const RegistryState> (an immutable
//     name -> snapshot map) behind std::atomic. Readers do one atomic
//     shared_ptr load per request and then work on plain immutable data —
//     no registry lock is held while estimating. Publishing builds a fresh
//     RegistryState aside and swaps the pointer; in-flight requests finish
//     on whichever state they pinned. (libstdc++'s atomic<shared_ptr> uses
//     a tiny internal spinlock around the refcount handoff; readers still
//     never wait on a reload in progress, which is the property that
//     matters here.)
//
//   * LoadCatalogSnapshots is the reload path: it walks a catalog
//     directory with the same verify-and-quarantine semantics as
//     VerifyCatalogDir + StatisticsCatalog::LoadAll (core/catalog.h) in a
//     single pass, building a replacement snapshot per healthy entry and a
//     CatalogLoadReport naming every corrupt one. The caller (the server's
//     reload handler) then merges: healthy entries swap in, corrupt
//     entries KEEP their previous snapshot (degraded serving, not an
//     outage), entries whose file vanished are dropped.
//
// Thread safety: Get() and Publish() are safe from any thread. The
// merge-and-publish sequence in the server is serialized by the server's
// reload mutex — the registry itself never needs one.

#ifndef PATHEST_SERVE_SNAPSHOT_REGISTRY_H_
#define PATHEST_SERVE_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/catalog.h"
#include "core/catalog_cache.h"
#include "core/estimator.h"
#include "core/mapped_catalog.h"
#include "core/serialize.h"
#include "util/status.h"

// Under ThreadSanitizer, swap the lock-free atomic<shared_ptr> state
// holder for a mutex-guarded one: libstdc++ 12's _Sp_atomic guards its
// raw pointer with a spinlock bit TSan cannot model (no _GLIBCXX_TSAN
// annotations until later releases), so every Publish/Get pair reports a
// false race in library internals and drowns out the real signal — OUR
// publish/pin protocol, which is what the TSan job is there to check.
#if defined(__SANITIZE_THREAD__)
#define PATHEST_SERVE_TSAN_REGISTRY 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PATHEST_SERVE_TSAN_REGISTRY 1
#endif
#endif
#ifdef PATHEST_SERVE_TSAN_REGISTRY
#include <mutex>
#endif

namespace pathest {
namespace serve {

/// \brief One catalog entry frozen for concurrent serving. Two storage
/// forms behind the same accessors: COPIED (a deserialized
/// LoadedPathHistogram owning every row) and MAPPED (a pinned
/// MappedCatalogEntry serving the rows straight out of an mmap'ed binary
/// catalog v2 — the pin keeps the mapping alive across cache evictions).
class ServingSnapshot {
 public:
  /// \param name entry name (the file stem).
  /// \param loaded the deserialized estimator state; moved in. The
  ///   Estimator facade is built against the histogram at its FINAL
  ///   address inside this object (member-init order: loaded_ first).
  /// \param version registry version that installed this snapshot.
  ServingSnapshot(std::string name, LoadedPathHistogram loaded,
                  uint64_t version)
      : name_(std::move(name)),
        loaded_(std::move(loaded)),
        version_(version),
        created_(std::chrono::steady_clock::now()) {
    serving_.emplace(loaded_->estimator);
  }

  /// \brief Mapped form: serves through the entry's borrowed estimator;
  /// the shared_ptr pin is what keeps the mapping resident while ANY
  /// reader might still be estimating from it.
  ServingSnapshot(std::string name,
                  std::shared_ptr<const MappedCatalogEntry> mapped,
                  uint64_t version)
      : name_(std::move(name)),
        mapped_(std::move(mapped)),
        version_(version),
        created_(std::chrono::steady_clock::now()) {}

  ServingSnapshot(const ServingSnapshot&) = delete;
  ServingSnapshot& operator=(const ServingSnapshot&) = delete;

  const std::string& name() const { return name_; }
  uint64_t version() const { return version_; }
  /// \brief When this snapshot was built. A reload that keeps a stale
  /// snapshot keeps its original timestamp, so `stats` can report how old
  /// a kept_stale entry's statistics are.
  std::chrono::steady_clock::time_point created() const { return created_; }
  /// \brief The label dictionary request paths parse against.
  const LabelDictionary& labels() const {
    return mapped_ ? mapped_->labels() : loaded_->labels;
  }
  /// \brief The immutable fast-path serving facade (thread-safe for any
  /// number of concurrent readers, each with its own RankScratch).
  const Estimator& estimator() const {
    return mapped_ ? mapped_->estimator() : *serving_;
  }

  /// \brief True when this snapshot serves from an mmap'ed catalog v2.
  bool is_mapped() const { return mapped_ != nullptr; }
  /// \brief Bytes of the backing mapping (0 for the copied form).
  size_t mapped_bytes() const {
    return mapped_ ? mapped_->mapped_bytes() : 0;
  }
  /// \brief Heap bytes this snapshot owns: the full deserialized rows for
  /// the copied form, only parsed metadata for the mapped form — the gap
  /// is the zero-copy win `stats` reports per entry.
  size_t resident_bytes() const {
    return mapped_ ? mapped_->resident_bytes()
                   : serving_->ResidentBytes();
  }

 private:
  std::string name_;
  // Exactly one of loaded_/mapped_ is engaged (the storage form).
  std::optional<LoadedPathHistogram> loaded_;
  std::shared_ptr<const MappedCatalogEntry> mapped_;
  uint64_t version_;
  std::chrono::steady_clock::time_point created_;
  std::optional<Estimator> serving_;  // copied form only; borrows loaded_
};

/// \brief Immutable registry state: entry name -> snapshot, plus the
/// version that published it. Never mutated after Publish.
struct RegistryState {
  std::map<std::string, std::shared_ptr<const ServingSnapshot>> entries;
  uint64_t version = 0;
  /// True when the last reload quarantined at least one entry (some
  /// snapshots may be stale) — surfaced by health/stats.
  bool degraded = false;
};

/// \brief Atomic holder of the current RegistryState.
class SnapshotRegistry {
 public:
  SnapshotRegistry() : state_(std::make_shared<const RegistryState>()) {}

#ifndef PATHEST_SERVE_TSAN_REGISTRY
  /// \brief Pins the current state: one atomic load, then plain reads.
  std::shared_ptr<const RegistryState> Get() const {
    return state_.load(std::memory_order_acquire);
  }

  /// \brief Atomically swaps in `next`. In-flight readers keep the state
  /// they pinned; new requests see `next`.
  void Publish(std::shared_ptr<const RegistryState> next) {
    state_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const RegistryState>> state_;
#else
  // TSan build: same semantics, but the pointer handoff is a mutex held
  // only for the shared_ptr copy/swap — a model TSan understands (see the
  // include comment above). Never compiled into production binaries.
  std::shared_ptr<const RegistryState> Get() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return state_;
  }

  void Publish(std::shared_ptr<const RegistryState> next) {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(next);
  }

 private:
  mutable std::mutex state_mu_;
  std::shared_ptr<const RegistryState> state_;
#endif
};

/// \brief Result of walking a catalog directory for serving.
struct SnapshotLoadResult {
  /// One snapshot per healthy entry, keyed by entry name (file stem).
  std::map<std::string, std::shared_ptr<const ServingSnapshot>> snapshots;
  /// Verify walk outcome: healthy entry names + quarantined failures.
  CatalogLoadReport report;
};

/// \brief Verifies and loads every `<dir>/*.stats` entry into serving
/// snapshots stamped with `version`. Per-entry corruption quarantines that
/// entry into the report (checksum/parse failures — the same contract as
/// VerifyCatalogDir) and the rest still load; only an unreadable directory
/// fails the whole call.
///
/// With a non-null `mmap_cache`, binary-v2 entries are served ZERO-COPY
/// through the cache: an unchanged file re-pins its existing mapping (no
/// bytes re-read, no re-verification), a changed one is mapped and
/// admission-verified at the cache's tier. A v2 entry the cache rejects is
/// quarantined exactly like a corrupt copied entry. Text and v1 entries
/// always take the copying path.
Result<SnapshotLoadResult> LoadCatalogSnapshots(const std::string& dir,
                                                uint64_t version,
                                                CatalogCache* mmap_cache =
                                                    nullptr);

}  // namespace serve
}  // namespace pathest

#endif  // PATHEST_SERVE_SNAPSHOT_REGISTRY_H_
