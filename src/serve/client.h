// pathest: minimal client for the serve daemon's newline protocol
// (serve/protocol.h). One request line out, one response line back; used
// by `pathest_cli call`, the serve tests' oracle comparisons, and
// bench_serve_latency. Deliberately not a connection pool — callers that
// want concurrency open one ServeClient per thread.

#ifndef PATHEST_SERVE_CLIENT_H_
#define PATHEST_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/socket_io.h"
#include "util/status.h"

namespace pathest {
namespace serve {

class ServeClient {
 public:
  /// \brief Connects to the daemon at `socket_path`. `response_timeout_ms`
  /// bounds every later Call's wait for a response line (0 = wait forever).
  static Result<ServeClient> Connect(const std::string& socket_path,
                                     uint64_t response_timeout_ms = 30000);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;

  /// \brief Sends `request` (newline appended) and returns the one-line
  /// response verbatim — including protocol-level "err ..." lines, which
  /// are RESPONSES, not Call failures. Call fails only on transport
  /// problems: server gone (IOError) or response timeout
  /// (DeadlineExceeded, retriable on a fresh connection).
  Result<std::string> Call(const std::string& request);

  int fd() const { return fd_.get(); }

 private:
  ServeClient(UniqueFd fd, uint64_t response_timeout_ms)
      : fd_(std::move(fd)),
        reader_(fd_.get(), response_timeout_ms, kMaxResponseBytes) {}

  // Responses carry one value per requested path; 16 MiB bounds even
  // absurdly large batches.
  static constexpr size_t kMaxResponseBytes = 16u << 20;

  UniqueFd fd_;
  LineReader reader_;
};

/// \brief How a response line should be treated by a retrying caller,
/// per the protocol's error taxonomy (serve/protocol.h).
enum class ResponseClass {
  kOk,              ///< "ok ..." — done
  kRetriableError,  ///< "err CODE retriable ..." — safe to resend verbatim
  kFatalError,      ///< "err CODE fatal ..." (or unparseable) — do not retry
};

/// \brief Classifies one response line. Anything that is neither "ok" nor
/// a well-formed retriable error is fatal: garbage must not be retried.
ResponseClass ClassifyResponse(std::string_view response);

/// \brief Retry policy for CallWithRetry: truncated exponential backoff
/// with deterministic jitter.
struct RetryOptions {
  /// Total attempts, the first included (1 = no retrying).
  size_t max_attempts = 3;
  /// Backoff before the 2nd attempt; doubles each retry up to max.
  uint64_t initial_backoff_ms = 20;
  uint64_t max_backoff_ms = 2000;
  /// Jitter source (deterministic per seed: tests pick fixed seeds).
  /// Each wait is backoff/2 + uniform[0, backoff/2].
  uint64_t jitter_seed = 1;
  /// Per-attempt response timeout (ServeClient::Connect).
  uint64_t response_timeout_ms = 30000;
};

/// \brief Dials `socket_path` and sends `request`, retrying with backoff
/// on TRANSPORT failures (connect refused, connection lost, response
/// timeout — each retry reconnects from scratch) and on protocol errors
/// the taxonomy marks retriable (load shed, deadline, draining). Fatal
/// protocol errors and "ok" responses return immediately — a fatal error
/// line is a RESPONSE, not a Call failure, exactly as in ServeClient.
/// When attempts run out, returns the last retriable error line if one
/// was received, else the last transport status.
Result<std::string> CallWithRetry(const std::string& socket_path,
                                  const std::string& request,
                                  const RetryOptions& options = {});

}  // namespace serve
}  // namespace pathest

#endif  // PATHEST_SERVE_CLIENT_H_
