// pathest: minimal client for the serve daemon's newline protocol
// (serve/protocol.h). One request line out, one response line back; used
// by `pathest_cli call`, the serve tests' oracle comparisons, and
// bench_serve_latency. Deliberately not a connection pool — callers that
// want concurrency open one ServeClient per thread.

#ifndef PATHEST_SERVE_CLIENT_H_
#define PATHEST_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/socket_io.h"
#include "util/status.h"

namespace pathest {
namespace serve {

class ServeClient {
 public:
  /// \brief Connects to the daemon at `socket_path`. `response_timeout_ms`
  /// bounds every later Call's wait for a response line (0 = wait forever).
  static Result<ServeClient> Connect(const std::string& socket_path,
                                     uint64_t response_timeout_ms = 30000);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;

  /// \brief Sends `request` (newline appended) and returns the one-line
  /// response verbatim — including protocol-level "err ..." lines, which
  /// are RESPONSES, not Call failures. Call fails only on transport
  /// problems: server gone (IOError) or response timeout
  /// (DeadlineExceeded, retriable on a fresh connection).
  Result<std::string> Call(const std::string& request);

  int fd() const { return fd_.get(); }

 private:
  ServeClient(UniqueFd fd, uint64_t response_timeout_ms)
      : fd_(std::move(fd)),
        reader_(fd_.get(), response_timeout_ms, kMaxResponseBytes) {}

  // Responses carry one value per requested path; 16 MiB bounds even
  // absurdly large batches.
  static constexpr size_t kMaxResponseBytes = 16u << 20;

  UniqueFd fd_;
  LineReader reader_;
};

}  // namespace serve
}  // namespace pathest

#endif  // PATHEST_SERVE_CLIENT_H_
