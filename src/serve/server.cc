#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <utility>

#include "path/label_path.h"
#include "util/safe_io.h"
#include "util/timer.h"

namespace pathest {
namespace serve {

namespace {

// How often blocking loops re-check the stop flag.
constexpr int kAcceptPollMs = 100;
constexpr uint64_t kSlowopSliceMs = 10;

std::string BoolJson(bool b) { return b ? "true" : "false"; }

}  // namespace

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options)),
      mmap_cache_(CatalogCacheOptions{options_.mmap_cache_bytes,
                                      CatalogVerify::kChecksums}),
      pending_(options_.queue_capacity) {}

ServeServer::~ServeServer() {
  RequestStop();
  Wait();
}

Status ServeServer::Start() {
  PATHEST_CHECK(!started_, "ServeServer::Start called twice");
  // A dying client must never kill the daemon: sends also use
  // MSG_NOSIGNAL, but third-party code (e.g. stdio on a closed pipe)
  // could still raise SIGPIPE without this.
  IgnoreSigpipeForProcess();

  // Maintenance recovery runs BEFORE the catalog load: replaying the
  // edge-delta journal re-persists the entries, so the snapshots loaded
  // below already include every acknowledged pre-crash update.
  if (!options_.graph_path.empty()) {
    maint::MaintenanceOptions mopts;
    mopts.catalog_dir = options_.catalog_dir;
    mopts.graph_path = options_.graph_path;
    mopts.k = options_.maint_k;
    mopts.compact_every_records = options_.compact_every_records;
    maint_ = std::make_unique<maint::OnlineMaintenance>(std::move(mopts));
    maint::RecoveryReport recovery;
    PATHEST_RETURN_NOT_OK(maint_->Recover(&recovery));
    counters_.journal_replayed_records.fetch_add(recovery.replayed_records,
                                                 std::memory_order_relaxed);
    if (recovery.quarantined) {
      counters_.quarantined_journals.fetch_add(1, std::memory_order_relaxed);
      quarantine_generation_.fetch_add(1, std::memory_order_relaxed);
    }
    applied_epoch_.store(maint_->epoch(), std::memory_order_release);
    std::string json = "{\"type\":\"recovery\"";
    json += ",\"replayed_records\":" +
            std::to_string(recovery.replayed_records);
    json += ",\"replayed_edges\":" + std::to_string(recovery.replayed_edges);
    json += ",\"torn_tail_truncated\":" +
            BoolJson(recovery.torn_tail_truncated);
    json += ",\"torn_bytes\":" + std::to_string(recovery.torn_bytes);
    json += ",\"bootstrapped_base\":" + BoolJson(recovery.bootstrapped_base);
    json += ",\"quarantined\":" + BoolJson(recovery.quarantined);
    json += ",\"detail\":\"" + JsonEscape(recovery.detail) + "\"}";
    {
      std::lock_guard<std::mutex> lock(report_mu_);
      last_maintenance_json_ = std::move(json);
    }
  }

  // Initial load, with reload's degraded-mode semantics: quarantined
  // entries are reported and the healthy remainder serves. Only an
  // unreadable directory is fatal — a daemon that can start degraded
  // beats one that refuses to start.
  auto loaded =
      LoadCatalogSnapshots(options_.catalog_dir, /*version=*/1, &mmap_cache_);
  if (!loaded.ok()) return loaded.status();
  initial_report_ = std::move(loaded->report);
  auto state = std::make_shared<RegistryState>();
  state->entries = std::move(loaded->snapshots);
  state->version = 1;
  state->degraded = !initial_report_.fully_healthy();
  registry_.Publish(std::move(state));
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_reload_json_ =
        CatalogLoadReportToJson(initial_report_, options_.catalog_dir);
  }

  auto listener =
      ListenUnixSocket(options_.socket_path, options_.listen_backlog);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);

  started_ = true;
  accept_thread_ = std::thread(&ServeServer::AcceptLoop, this);
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&ServeServer::WorkerLoop, this, w);
  }
  if (maint_ != nullptr) {
    maint_thread_ = std::thread(&ServeServer::MaintenanceLoop, this);
  }
  return Status::OK();
}

void ServeServer::RequestStop() {
  stop_.store(true, std::memory_order_release);
  pending_.Stop();
  maint_cv_.notify_all();
}

void ServeServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (maint_thread_.joinable()) maint_thread_.join();
  listen_fd_.reset();
  ::unlink(options_.socket_path.c_str());
  joined_ = true;
}

void ServeServer::MaintenanceLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(maint_mu_);
      maint_cv_.wait(lock, [&] {
        return maint_work_ || stop_.load(std::memory_order_acquire);
      });
      if (stop_.load(std::memory_order_acquire)) break;
      maint_work_ = false;
    }
    RunRefresh();
  }
  // Drain: apply whatever is still pending so a graceful shutdown leaves
  // the catalog fresh. Best-effort — anything unapplied stays journaled
  // and replays on the next start.
  if (maint_->pending_count() > 0) RunRefresh();
  maint_cv_.notify_all();  // release any update wait=1 stragglers
}

void ServeServer::RunRefresh() {
  std::lock_guard<std::mutex> op_lock(maint_op_mu_);
  auto outcome = maint_->Refresh();
  std::string json;
  if (outcome.ok()) {
    if (outcome->applied_edges > 0) {
      counters_.incremental_refreshes.fetch_add(1, std::memory_order_relaxed);
      applied_epoch_.store(outcome->epoch, std::memory_order_release);
      // Republish through the same degraded-mode merge a reload uses.
      {
        std::lock_guard<std::mutex> reload_lock(reload_mu_);
        ReloadLocked(options_.catalog_dir);
      }
      json = "{\"type\":\"refresh\"";
      json += ",\"applied_edges\":" + std::to_string(outcome->applied_edges);
      json += ",\"epoch\":" + std::to_string(outcome->epoch);
      json += ",\"compacted\":" + BoolJson(outcome->compacted);
      json += ",\"touched_roots\":" +
              std::to_string(outcome->incremental.touched_roots);
      json += ",\"total_roots\":" +
              std::to_string(outcome->incremental.total_roots);
      json += ",\"dirty_tasks\":" +
              std::to_string(outcome->incremental.dirty_tasks);
      json += ",\"total_tasks\":" +
              std::to_string(outcome->incremental.total_tasks) + "}";
    }
  } else {
    // The pending batch cannot be applied (or persisted): quarantine the
    // journal and keep serving the last applied state.
    auto aside = maint_->QuarantineJournal(outcome.status().message());
    counters_.quarantined_journals.fetch_add(1, std::memory_order_relaxed);
    quarantine_generation_.fetch_add(1, std::memory_order_release);
    json = "{\"type\":\"quarantine\",\"error\":\"" +
           JsonEscape(outcome.status().message()) + "\"";
    if (aside.ok()) {
      json += ",\"quarantine_path\":\"" + JsonEscape(*aside) + "\"";
    }
    json += "}";
  }
  if (!json.empty()) {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_maintenance_json_ = std::move(json);
  }
  maint_cv_.notify_all();  // wake update wait=1 clients
}

void ServeServer::AcceptLoop() {
  // Shed connections linger briefly after the error is sent: closing the
  // fd while the client's (never-to-be-read) request sits in our receive
  // queue makes the kernel discard the buffered error line and hand the
  // client ECONNRESET instead. A short grace lets the client read the
  // typed error; the parked-fd count is capped so a shed storm cannot
  // hoard descriptors.
  struct ShedConn {
    UniqueFd fd;
    std::chrono::steady_clock::time_point close_at;
  };
  constexpr auto kShedLinger = std::chrono::milliseconds(250);
  constexpr size_t kMaxParked = 64;
  std::vector<ShedConn> parked;

  while (!stop_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    std::erase_if(parked,
                  [&](const ShedConn& s) { return s.close_at <= now; });
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kAcceptPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // listener is broken; drain what we have
    }
    if (rc == 0) continue;
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    UniqueFd conn(fd);
    if (!pending_.TryPush(std::move(conn))) {
      // TryPush moves only on success: conn still owns the fd here.
      counters_.connections_shed.fetch_add(1, std::memory_order_relaxed);
      SendAll(conn.get(),
              FormatErrorResponse(Status::ResourceExhausted(
                  "server overloaded: connection queue full, retry "
                  "later")) +
                  "\n");
      ::shutdown(conn.get(), SHUT_WR);
      if (parked.size() < kMaxParked) {
        parked.push_back(
            {std::move(conn), std::chrono::steady_clock::now() + kShedLinger});
      }
    }
  }
  // Parked fds close here; drained workers answer everything queued.
}

void ServeServer::WorkerLoop(size_t worker) {
  (void)worker;
  // The per-connection rank scratch: owned by the worker, re-warmed for
  // whichever entry each request targets, never shared across threads.
  RankScratch scratch;
  while (auto conn = pending_.Pop()) {
    HandleConnection(std::move(*conn), scratch);
  }
  // Pop returned nullopt: stopped AND drained (a stopped queue hands out
  // its remaining connections first, so queued clients get answered).
}

void ServeServer::HandleConnection(UniqueFd conn, RankScratch& scratch) {
  LineReader reader(conn.get(), options_.idle_timeout_ms, kMaxRequestBytes,
                    &stop_);
  std::string line;
  for (;;) {
    const ReadLineResult rc = reader.ReadLine(&line);
    switch (rc) {
      case ReadLineResult::kLine:
        break;
      case ReadLineResult::kOversized:
        counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
        SendAll(conn.get(),
                FormatErrorResponse(Status::InvalidArgument(
                    "request line exceeds " +
                    std::to_string(kMaxRequestBytes) + " bytes")) +
                    "\n");
        return;
      case ReadLineResult::kStopped:
        // Drain: every request that had fully arrived was already served
        // (the reader returns buffered lines before reporting a stop);
        // tell a still-connected client why the connection is going away.
        SendAll(conn.get(),
                FormatErrorResponse(
                    Status::Unavailable("server draining, retry elsewhere "
                                        "or later")) +
                    "\n");
        return;
      case ReadLineResult::kEof:
      case ReadLineResult::kTimeout:
      case ReadLineResult::kError:
        return;
    }
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    bool close_after = false;
    const std::string response = HandleRequest(line, scratch, &close_after);
    if (!SendAll(conn.get(), response + "\n")) return;
    if (close_after) return;
  }
}

std::string ServeServer::HandleRequest(const std::string& line,
                                       RankScratch& scratch,
                                       bool* close_after) {
  auto request = ParseRequest(line);
  if (!request.ok()) {
    counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
    return FormatErrorResponse(request.status());
  }
  const std::string& cmd = request->command;
  if (cmd == "estimate") return HandleEstimate(*request, scratch);
  if (cmd == "health") return HandleHealth();
  if (cmd == "stats") return "ok " + StatsJson();
  if (cmd == "reload") return HandleReload(*request);
  if (cmd == "update") return HandleUpdate(*request);
  if (cmd == "compact") return HandleCompact();
  if (cmd == "shutdown") {
    *close_after = true;
    RequestStop();
    return "ok draining";
  }
  if (cmd == "slowop" && options_.enable_test_commands) {
    auto ms = ParseU64Option("ms", request->Option("ms", "0"));
    if (!ms.ok()) return FormatErrorResponse(ms.status());
    // Sleeps in slices so a drain is never blocked behind a slowop.
    Timer timer;
    while (timer.ElapsedMillis() < static_cast<double>(*ms) &&
           !stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kSlowopSliceMs));
    }
    return "ok slept";
  }
  counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
  return FormatErrorResponse(
      Status::InvalidArgument("unknown command '" + cmd + "'"));
}

std::string ServeServer::HandleEstimate(const Request& request,
                                        RankScratch& scratch) {
  uint64_t deadline_ms = options_.default_deadline_ms;
  const std::string_view deadline_opt = request.Option("deadline_ms", "\x01");
  if (deadline_opt != "\x01") {
    auto parsed = ParseU64Option("deadline_ms", deadline_opt);
    if (!parsed.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      return FormatErrorResponse(parsed.status());
    }
    deadline_ms = *parsed;
  }
  if (request.args.size() < 2) {
    counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
    return FormatErrorResponse(Status::InvalidArgument(
        "estimate needs <entry> <path> [<path>...]"));
  }
  counters_.estimate_requests.fetch_add(1, std::memory_order_relaxed);

  Timer timer;
  // Pin ONE registry state for the whole request: every path below is
  // answered by the same catalog version even if a reload publishes now.
  auto state = registry_.Get();
  const auto it = state->entries.find(request.args[0]);
  if (it == state->entries.end()) {
    return FormatErrorResponse(
        Status::NotFound("no estimator named '" + request.args[0] + "'"));
  }
  const ServingSnapshot& snapshot = *it->second;
  const Estimator& estimator = snapshot.estimator();
  scratch.Reserve(estimator.num_labels());

  const size_t num_paths = request.args.size() - 1;
  std::string response = "ok";
  for (size_t i = 0; i < num_paths; ++i) {
    // Deadline enforcement between chunks: a request can exceed its
    // deadline by at most one stride of estimates (~microseconds), never
    // hold a worker unboundedly.
    if (i % options_.deadline_check_stride == 0 &&
        timer.ElapsedMillis() > static_cast<double>(deadline_ms)) {
      counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      return FormatErrorResponse(Status::DeadlineExceeded(
          "deadline of " + std::to_string(deadline_ms) + " ms exceeded after " +
          std::to_string(i) + "/" + std::to_string(num_paths) + " paths"));
    }
    const std::string& text = request.args[i + 1];
    auto path = LabelPath::Parse(text, snapshot.labels());
    if (!path.ok()) {
      return FormatErrorResponse(Status::InvalidArgument(
          "bad path '" + text + "': " + path.status().message()));
    }
    if (!estimator.ordering().space().Contains(*path)) {
      return FormatErrorResponse(Status::InvalidArgument(
          "path '" + text + "' outside the analyzed space"));
    }
    response += ' ';
    AppendEstimateValue(&response, estimator.Estimate(*path, scratch));
  }
  counters_.paths_estimated.fetch_add(num_paths, std::memory_order_relaxed);
  return response;
}

std::string ServeServer::HandleReload(const Request& request) {
  const std::string dir(request.Option("dir", options_.catalog_dir));
  std::unique_lock<std::mutex> lock(reload_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    counters_.reload_conflicts.fetch_add(1, std::memory_order_relaxed);
    return FormatErrorResponse(
        Status::Unavailable("reload already in progress"));
  }
  return ReloadLocked(dir);
}

std::string ServeServer::ReloadLocked(const std::string& dir) {
  const auto current = registry_.Get();
  const uint64_t next_version = current->version + 1;
  auto loaded = LoadCatalogSnapshots(dir, next_version, &mmap_cache_);
  if (!loaded.ok()) {
    // The directory itself was unreadable: nothing is swapped, every
    // previous snapshot keeps serving, and the failure is recorded.
    CatalogLoadReport failure_report;
    failure_report.failures.push_back(
        MakeCatalogLoadFailure(dir, loaded.status()));
    {
      std::lock_guard<std::mutex> report_lock(report_mu_);
      last_reload_json_ = CatalogLoadReportToJson(failure_report, dir);
    }
    return FormatErrorResponse(
        Status(loaded.status().code(),
               "reload failed, previous snapshots kept serving: " +
                   loaded.status().message()));
  }

  auto next = std::make_shared<RegistryState>();
  next->version = next_version;
  next->entries = std::move(loaded->snapshots);
  // Degradation, never an outage: a quarantined entry keeps its PREVIOUS
  // snapshot when one exists. Entries whose file vanished entirely are
  // dropped (deliberate removal), which is what keeps a retired entry
  // from serving forever.
  size_t kept_stale = 0;
  for (const CatalogLoadFailure& failure : loaded->report.failures) {
    const std::string name =
        std::filesystem::path(failure.path).stem().string();
    const auto previous = current->entries.find(name);
    if (previous != current->entries.end()) {
      next->entries[name] = previous->second;
      ++kept_stale;
    }
  }
  size_t removed = 0;
  for (const auto& [name, snapshot] : current->entries) {
    if (next->entries.find(name) == next->entries.end()) ++removed;
  }
  next->degraded = !loaded->report.fully_healthy();
  const size_t serving = next->entries.size();
  const bool degraded = next->degraded;
  registry_.Publish(std::move(next));
  counters_.reloads.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> report_lock(report_mu_);
    last_reload_json_ = CatalogLoadReportToJson(loaded->report, dir);
  }

  return "ok loaded=" + std::to_string(loaded->report.loaded.size()) +
         " quarantined=" + std::to_string(loaded->report.failures.size()) +
         " kept_stale=" + std::to_string(kept_stale) +
         " removed=" + std::to_string(removed) +
         " serving=" + std::to_string(serving) +
         " degraded=" + std::to_string(degraded ? 1 : 0) +
         " version=" + std::to_string(next_version);
}

std::string ServeServer::HandleUpdate(const Request& request) {
  if (maint_ == nullptr) {
    counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
    return FormatErrorResponse(Status::InvalidArgument(
        "updates disabled: daemon started without graph="));
  }
  if (request.args.empty() || request.args.size() % 4 != 0) {
    counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
    return FormatErrorResponse(Status::InvalidArgument(
        "update needs (add|remove <src> <dst> <label>)+"));
  }
  std::vector<maint::EdgeDelta> deltas;
  deltas.reserve(request.args.size() / 4);
  for (size_t i = 0; i < request.args.size(); i += 4) {
    maint::EdgeDelta delta;
    const std::string& op = request.args[i];
    if (op == "add") {
      delta.add = true;
    } else if (op == "remove") {
      delta.add = false;
    } else {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      return FormatErrorResponse(Status::InvalidArgument(
          "update op must be add or remove, got '" + op + "'"));
    }
    auto src = ParseU64Option("src", request.args[i + 1]);
    auto dst = ParseU64Option("dst", request.args[i + 2]);
    if (!src.ok() || !dst.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      return FormatErrorResponse((src.ok() ? dst : src).status());
    }
    if (*src > UINT32_MAX || *dst > UINT32_MAX) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      return FormatErrorResponse(
          Status::InvalidArgument("vertex id exceeds 32 bits"));
    }
    delta.src = static_cast<VertexId>(*src);
    delta.dst = static_cast<VertexId>(*dst);
    auto label = maint_->labels().Find(request.args[i + 3]);
    if (!label.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      return FormatErrorResponse(Status::NotFound(
          "unknown label '" + request.args[i + 3] +
          "' (new labels need an offline rebuild)"));
    }
    delta.label = *label;
    deltas.push_back(delta);
  }

  const uint64_t quarantine_before =
      quarantine_generation_.load(std::memory_order_acquire);
  auto ticket = maint_->JournalDeltas(deltas);
  if (!ticket.ok()) {
    // The journal could not be made durable — the one update error a
    // client may NOT assume was applied. Retriable: replay is idempotent.
    return FormatErrorResponse(Status(
        StatusCode::kUnavailable,
        "update not journaled: " + ticket.status().message()));
  }
  counters_.updates_journaled.fetch_add(deltas.size(),
                                        std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    maint_work_ = true;
  }
  maint_cv_.notify_all();

  if (request.Option("wait") != "1") {
    return "ok journaled=" + std::to_string(deltas.size()) +
           " pending=" + std::to_string(maint_->pending_count());
  }
  // wait=1: block until the batch is applied (ticket reached), dropped by
  // a quarantine, or the daemon drains. Safe to retry after any error:
  // applying an already-applied delta is a no-op.
  std::unique_lock<std::mutex> lock(maint_mu_);
  maint_cv_.wait(lock, [&] {
    return maint_->applied_ticket() >= *ticket ||
           quarantine_generation_.load(std::memory_order_acquire) !=
               quarantine_before ||
           stop_.load(std::memory_order_acquire);
  });
  if (maint_->applied_ticket() >= *ticket &&
      quarantine_generation_.load(std::memory_order_acquire) ==
          quarantine_before) {
    return "ok applied=" + std::to_string(deltas.size()) +
           " epoch=" +
           std::to_string(applied_epoch_.load(std::memory_order_acquire));
  }
  if (quarantine_generation_.load(std::memory_order_acquire) !=
      quarantine_before) {
    return FormatErrorResponse(Status::Unavailable(
        "journal quarantined before the update applied"));
  }
  return FormatErrorResponse(Status::Unavailable(
      "draining before the update applied (journaled; replays on restart)"));
}

std::string ServeServer::HandleCompact() {
  if (maint_ == nullptr) {
    counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
    return FormatErrorResponse(Status::InvalidArgument(
        "compaction disabled: daemon started without graph="));
  }
  std::lock_guard<std::mutex> op_lock(maint_op_mu_);
  Status st = maint_->Compact();
  if (!st.ok()) return FormatErrorResponse(st);
  return "ok compacted epoch=" +
         std::to_string(applied_epoch_.load(std::memory_order_acquire));
}

std::string ServeServer::HandleHealth() {
  const auto state = registry_.Get();
  return "ok serving entries=" + std::to_string(state->entries.size()) +
         " degraded=" + std::to_string(state->degraded ? 1 : 0) +
         " version=" + std::to_string(state->version);
}

std::string ServeServer::StatsJson() const {
  const auto state = registry_.Get();
  std::string out = "{\"version\":" + std::to_string(state->version);
  out += ",\"degraded\":" + BoolJson(state->degraded);
  out += ",\"entries\":[";
  bool first = true;
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [name, snapshot] : state->entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(name) + "\"";
    out += ",\"version\":" + std::to_string(snapshot->version());
    // Age since the snapshot was BUILT: a kept_stale entry (version older
    // than the registry's) shows how long its statistics have been stale.
    const auto age = std::chrono::duration_cast<std::chrono::seconds>(
        now - snapshot->created());
    out += ",\"age_s\":" + std::to_string(age.count());
    out += ",\"stale\":" + BoolJson(snapshot->version() < state->version);
    out += ",\"mapped\":" + BoolJson(snapshot->is_mapped());
    out += ",\"mapped_bytes\":" + std::to_string(snapshot->mapped_bytes());
    out += ",\"resident_bytes\":" + std::to_string(snapshot->resident_bytes());
    out += "}";
  }
  out += "],\"counters\":{";
  const ServeCounters& c = counters_;
  out += "\"connections_accepted\":" +
         std::to_string(c.connections_accepted.load(std::memory_order_relaxed));
  out += ",\"connections_shed\":" +
         std::to_string(c.connections_shed.load(std::memory_order_relaxed));
  out += ",\"requests\":" +
         std::to_string(c.requests.load(std::memory_order_relaxed));
  out += ",\"estimate_requests\":" +
         std::to_string(c.estimate_requests.load(std::memory_order_relaxed));
  out += ",\"paths_estimated\":" +
         std::to_string(c.paths_estimated.load(std::memory_order_relaxed));
  out += ",\"deadline_exceeded\":" +
         std::to_string(c.deadline_exceeded.load(std::memory_order_relaxed));
  out += ",\"invalid_requests\":" +
         std::to_string(c.invalid_requests.load(std::memory_order_relaxed));
  out += ",\"reloads\":" +
         std::to_string(c.reloads.load(std::memory_order_relaxed));
  out += ",\"reload_conflicts\":" +
         std::to_string(c.reload_conflicts.load(std::memory_order_relaxed));
  out += ",\"updates_journaled\":" +
         std::to_string(c.updates_journaled.load(std::memory_order_relaxed));
  out += ",\"journal_replayed_records\":" +
         std::to_string(
             c.journal_replayed_records.load(std::memory_order_relaxed));
  out += ",\"incremental_refreshes\":" +
         std::to_string(
             c.incremental_refreshes.load(std::memory_order_relaxed));
  out += ",\"quarantined_journals\":" +
         std::to_string(
             c.quarantined_journals.load(std::memory_order_relaxed));
  out += "},\"mmap_cache\":{";
  {
    const CatalogCacheStats cache = mmap_cache_.Stats();
    out += "\"entries\":" + std::to_string(cache.entries);
    out += ",\"mapped_bytes\":" + std::to_string(cache.mapped_bytes);
    out += ",\"byte_budget\":" + std::to_string(cache.byte_budget);
    out += ",\"hits\":" + std::to_string(cache.hits);
    out += ",\"misses\":" + std::to_string(cache.misses);
    out += ",\"evictions\":" + std::to_string(cache.evictions);
  }
  out += "},\"maintenance\":";
  if (maint_ == nullptr) {
    out += "{\"enabled\":false}";
  } else {
    out += "{\"enabled\":true";
    out += ",\"applied_epoch\":" +
           std::to_string(applied_epoch_.load(std::memory_order_acquire));
    out += ",\"pending\":" + std::to_string(maint_->pending_count());
    out += ",\"last_event\":";
    {
      std::lock_guard<std::mutex> lock(report_mu_);
      out += last_maintenance_json_.empty() ? "null" : last_maintenance_json_;
    }
    out += "}";
  }
  out += ",\"last_reload\":";
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    out += last_reload_json_.empty() ? "null" : last_reload_json_;
  }
  out += "}";
  return out;
}

}  // namespace serve
}  // namespace pathest
