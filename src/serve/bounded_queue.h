// pathest: a small bounded MPMC queue — the load-shedding admission queue
// of the estimation service.
//
// The shape the server needs, and nothing more:
//   * TryPush never blocks: a full queue returns false, and the caller
//     (the accept loop) sheds the connection with a typed retriable error
//     instead of queueing unboundedly — backpressure is explicit.
//   * Pop blocks until an item, Stop(), or the caller's deadline slice —
//     workers wake promptly on shutdown.
//   * Stop() wakes every waiter; subsequent Pops drain what remains and
//     then report stopped, so shutdown can flush the queue gracefully.

#ifndef PATHEST_SERVE_BOUNDED_QUEUE_H_
#define PATHEST_SERVE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pathest {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// \brief Enqueues unless full or stopped; never blocks. Takes an
  /// rvalue reference and moves ONLY on success — a shed caller still
  /// owns the item (e.g. the connection to answer with the shed error).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// \brief Dequeues, waiting until an item arrives or Stop() is called.
  /// Returns nullopt only when stopped AND empty (a stopped queue still
  /// drains its remaining items).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return stopped_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// \brief Non-blocking dequeue (shutdown drain).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// \brief Rejects future pushes and wakes every Pop waiter.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace pathest

#endif  // PATHEST_SERVE_BOUNDED_QUEUE_H_
