#include "serve/protocol.h"

#include <charconv>
#include <cstdio>

namespace pathest {
namespace serve {

Result<Request> ParseRequest(std::string_view line) {
  Request request;
  size_t pos = 0;
  bool in_args = false;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) break;
    size_t end = line.find(' ', pos);
    if (end == std::string_view::npos) end = line.size();
    std::string_view token = line.substr(pos, end - pos);
    pos = end;
    if (request.command.empty()) {
      request.command.assign(token);
      continue;
    }
    // Options are only recognized between the command and the first
    // positional argument, so a path named "x=y" can still be passed once
    // a real positional precedes it.
    const size_t eq = token.find('=');
    if (!in_args && eq == 0) {
      return Status::InvalidArgument("malformed option '" +
                                     std::string(token) + "' (empty key)");
    }
    if (!in_args && eq != std::string_view::npos) {
      request.options.emplace_back(std::string(token.substr(0, eq)),
                                   std::string(token.substr(eq + 1)));
      continue;
    }
    in_args = true;
    request.args.emplace_back(token);
  }
  if (request.command.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  return request;
}

bool IsRetriableCode(StatusCode code) {
  switch (code) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

std::string FormatErrorResponse(const Status& status) {
  std::string out = "err ";
  out += StatusCodeToString(status.code());
  out += IsRetriableCode(status.code()) ? " retriable " : " fatal ";
  for (const char c : status.message()) {
    out += (c == '\n' || c == '\r') ? ' ' : c;
  }
  return out;
}

void AppendEstimateValue(std::string* out, double value) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf, static_cast<size_t>(n));
}

Result<uint64_t> ParseU64Option(std::string_view key,
                                std::string_view value) {
  uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size() ||
      value.empty()) {
    return Status::InvalidArgument("invalid " + std::string(key) + "='" +
                                   std::string(value) +
                                   "' (expected a non-negative integer)");
  }
  return parsed;
}

}  // namespace serve
}  // namespace pathest
