#include "serve/socket_io.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace pathest {
namespace serve {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Fills sockaddr_un; InvalidArgument when the path does not fit sun_path
// (a 108-byte kernel limit the caller cannot see otherwise).
Status FillAddress(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument(
        "socket path too long (" + std::to_string(path.size()) +
        " bytes; the kernel limit is " +
        std::to_string(sizeof(addr->sun_path) - 1) + "): " + path);
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<UniqueFd> ConnectUnixSocket(const std::string& path) {
  sockaddr_un addr;
  PATHEST_RETURN_NOT_OK(FillAddress(path, &addr));
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IOError(ErrnoMessage("socket() failed"));
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno != EINTR) {
      return Status::IOError(ErrnoMessage("cannot connect to '" + path + "'"));
    }
  }
}

Result<UniqueFd> ListenUnixSocket(const std::string& path, int backlog) {
  sockaddr_un addr;
  PATHEST_RETURN_NOT_OK(FillAddress(path, &addr));
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Status::InvalidArgument(
          "socket path exists and is not a socket: " + path);
    }
    // A leftover socket from a crashed daemon; a LIVE daemon would still
    // hold the bind, which the bind() below reports as EADDRINUSE only on
    // an abstract address — for filesystem sockets the unlink wins, so
    // deployments must not point two daemons at one path.
    ::unlink(path.c_str());
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IOError(ErrnoMessage("socket() failed"));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(ErrnoMessage("cannot bind '" + path + "'"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError(ErrnoMessage("cannot listen on '" + path + "'"));
  }
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  const char* p = bytes.data();
  size_t n = bytes.size();
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: the peer is gone
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

ReadLineResult LineReader::ReadLine(std::string* out) {
  uint64_t idle_ms = 0;
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      // Tolerate CRLF clients.
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return ReadLineResult::kLine;
    }
    if (buffer_.size() > max_line_bytes_) return ReadLineResult::kOversized;
    if (peer_closed_) return ReadLineResult::kEof;
    if (stop_ != nullptr && stop_->load(std::memory_order_acquire)) {
      // One zero-timeout drain of bytes the kernel already delivered, so a
      // request that fully arrived before the stop is still served rather
      // than answered with the drain error.
      pollfd drain{fd_, POLLIN, 0};
      if (::poll(&drain, 1, 0) > 0) {
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
          buffer_.append(buf, static_cast<size_t>(n));
          continue;
        }
        if (n == 0) {
          peer_closed_ = true;
          continue;
        }
      }
      return ReadLineResult::kStopped;
    }
    // Wait in short slices so a raised stop flag interrupts the wait
    // within one slice, independent of the (much longer) idle timeout.
    constexpr uint64_t kSliceMs = 50;
    pollfd pfd{fd_, POLLIN, 0};
    const uint64_t slice =
        idle_timeout_ms_ > 0
            ? std::min<uint64_t>(kSliceMs, idle_timeout_ms_ - idle_ms)
            : kSliceMs;
    const int rc = ::poll(&pfd, 1, static_cast<int>(slice));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadLineResult::kError;
    }
    if (rc == 0) {
      idle_ms += slice;
      if (idle_timeout_ms_ > 0 && idle_ms >= idle_timeout_ms_) {
        return ReadLineResult::kTimeout;
      }
      continue;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ReadLineResult::kError;
    }
    if (n == 0) {
      peer_closed_ = true;  // deliver any final unterminated data as EOF
      continue;
    }
    buffer_.append(buf, static_cast<size_t>(n));
    idle_ms = 0;
  }
}

}  // namespace serve
}  // namespace pathest
