#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

namespace pathest {
namespace serve {

Result<ServeClient> ServeClient::Connect(const std::string& socket_path,
                                         uint64_t response_timeout_ms) {
  auto fd = ConnectUnixSocket(socket_path);
  if (!fd.ok()) return fd.status();
  return ServeClient(std::move(*fd), response_timeout_ms);
}

Result<std::string> ServeClient::Call(const std::string& request) {
  // A failed send does not short-circuit the read: a server that already
  // answered-and-closed (load shed, oversized line) leaves its error line
  // in the socket, and surfacing THAT beats a bare transport error.
  const bool sent = SendAll(fd_.get(), request + "\n");
  std::string line;
  if (!sent && reader_.ReadLine(&line) == ReadLineResult::kLine) {
    return line;
  }
  if (!sent) {
    return Status::IOError("send failed: server connection lost");
  }
  switch (reader_.ReadLine(&line)) {
    case ReadLineResult::kLine:
      return line;
    case ReadLineResult::kEof:
      return Status::IOError("server closed the connection before replying");
    case ReadLineResult::kTimeout:
      return Status::DeadlineExceeded("timed out waiting for a response");
    case ReadLineResult::kOversized:
      return Status::IOError("response line exceeded the client's limit");
    case ReadLineResult::kStopped:
    case ReadLineResult::kError:
      break;
  }
  return Status::IOError("socket error while reading the response");
}

ResponseClass ClassifyResponse(std::string_view response) {
  if (response == "ok" || response.rfind("ok ", 0) == 0) {
    return ResponseClass::kOk;
  }
  if (response.rfind("err ", 0) != 0) return ResponseClass::kFatalError;
  // "err CODE retriable|fatal message..." — the third token decides.
  std::string_view rest = response.substr(4);
  const size_t space = rest.find(' ');
  if (space == std::string_view::npos) return ResponseClass::kFatalError;
  rest = rest.substr(space + 1);
  if (rest == "retriable" || rest.rfind("retriable ", 0) == 0) {
    return ResponseClass::kRetriableError;
  }
  return ResponseClass::kFatalError;
}

Result<std::string> CallWithRetry(const std::string& socket_path,
                                  const std::string& request,
                                  const RetryOptions& options) {
  const size_t attempts = std::max<size_t>(options.max_attempts, 1);
  std::minstd_rand jitter_rng(
      static_cast<std::minstd_rand::result_type>(options.jitter_seed + 1));
  uint64_t backoff_ms = options.initial_backoff_ms;
  std::string last_retriable;
  Status last_status = Status::OK();

  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      // Half fixed + half jittered: retries spread out instead of
      // reconverging in lockstep after a shed storm.
      const uint64_t half = backoff_ms / 2;
      std::uniform_int_distribution<uint64_t> jitter(0, half);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_ms - half + jitter(jitter_rng)));
      backoff_ms = std::min(backoff_ms * 2, options.max_backoff_ms);
    }
    // Reconnect every attempt: the previous failure may have consumed the
    // connection (shed linger, drain close, daemon restart).
    auto client =
        ServeClient::Connect(socket_path, options.response_timeout_ms);
    if (!client.ok()) {
      last_status = client.status();
      continue;
    }
    auto response = client->Call(request);
    if (!response.ok()) {
      last_status = response.status();
      continue;
    }
    switch (ClassifyResponse(*response)) {
      case ResponseClass::kOk:
      case ResponseClass::kFatalError:
        return *response;
      case ResponseClass::kRetriableError:
        last_retriable = std::move(*response);
        break;
    }
  }
  if (!last_retriable.empty()) return last_retriable;
  if (!last_status.ok()) return last_status;
  return Status::Unavailable("retries exhausted without a response");
}

}  // namespace serve
}  // namespace pathest
