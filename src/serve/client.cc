#include "serve/client.h"

#include <utility>

namespace pathest {
namespace serve {

Result<ServeClient> ServeClient::Connect(const std::string& socket_path,
                                         uint64_t response_timeout_ms) {
  auto fd = ConnectUnixSocket(socket_path);
  if (!fd.ok()) return fd.status();
  return ServeClient(std::move(*fd), response_timeout_ms);
}

Result<std::string> ServeClient::Call(const std::string& request) {
  // A failed send does not short-circuit the read: a server that already
  // answered-and-closed (load shed, oversized line) leaves its error line
  // in the socket, and surfacing THAT beats a bare transport error.
  const bool sent = SendAll(fd_.get(), request + "\n");
  std::string line;
  if (!sent && reader_.ReadLine(&line) == ReadLineResult::kLine) {
    return line;
  }
  if (!sent) {
    return Status::IOError("send failed: server connection lost");
  }
  switch (reader_.ReadLine(&line)) {
    case ReadLineResult::kLine:
      return line;
    case ReadLineResult::kEof:
      return Status::IOError("server closed the connection before replying");
    case ReadLineResult::kTimeout:
      return Status::DeadlineExceeded("timed out waiting for a response");
    case ReadLineResult::kOversized:
      return Status::IOError("response line exceeded the client's limit");
    case ReadLineResult::kStopped:
    case ReadLineResult::kError:
      break;
  }
  return Status::IOError("socket error while reading the response");
}

}  // namespace serve
}  // namespace pathest
