// pathest: the concurrent estimation service — `pathest_cli serve`.
//
// A long-running daemon that answers cardinality probes over a Unix-domain
// socket (protocol in serve/protocol.h) while its statistics are refreshed
// underneath it. The robustness contract, piece by piece:
//
//   * Atomic snapshot hot-swap. All serving state lives in a
//     SnapshotRegistry (serve/snapshot_registry.h): every request pins the
//     registry state with one atomic load and serves entirely from that
//     immutable snapshot, so a multi-path estimate is answered by exactly
//     one catalog version even if a reload publishes mid-request — and the
//     torture suite proves responses are bit-identical to a serial oracle
//     of some published version, never a torn mix.
//
//   * Degraded-mode reload, never an outage. `reload` re-walks the catalog
//     directory off the serving threads' critical path (it runs on the one
//     worker that took the request; estimates on other workers proceed,
//     lock-free, on the old state). Healthy entries swap in; a corrupt or
//     truncated entry is quarantined into a CatalogLoadReport and its
//     PREVIOUS snapshot keeps serving; a reload whose directory is
//     unreadable changes nothing. Concurrent reloads do not queue: the
//     loser gets a typed retriable Unavailable.
//
//   * Load shedding. Accepted connections enter a bounded queue consumed
//     by the worker pool (each worker owns one connection at a time, with
//     a per-connection RankScratch). When the queue is full the daemon
//     immediately answers "err ResourceExhausted retriable ..." and closes
//     after a short linger (so the error line survives the close) —
//     explicit backpressure instead of unbounded queueing.
//
//   * Deadlines. Every estimate carries a deadline (request option
//     deadline_ms, default ServeOptions::default_deadline_ms) enforced
//     between fixed-size batch chunks; expiry yields a typed retriable
//     DeadlineExceeded. Idle connections are reaped by a read timeout.
//
//   * Online maintenance (opt-in via ServeOptions::graph_path). `update`
//     appends edge deltas to a crash-safe fsynced journal
//     (maint/delta_journal.h) — acknowledged only once durable — and a
//     background maintenance thread applies them with an INCREMENTAL
//     statistics rebuild (maint/incremental.h, bit-identical to a full
//     rebuild), re-persists the catalog entries, and republishes through
//     the same atomic snapshot swap a reload uses. Startup replays the
//     journal, so no acknowledged update is ever lost to a crash; an
//     unusable journal is quarantined aside and the last good state keeps
//     serving (degraded, visible in `stats`).
//
//   * Graceful drain. RequestStop() (the `shutdown` command, or SIGTERM in
//     the CLI) stops the accept loop, lets every in-flight request finish
//     and be answered, answers queued-but-unserved connections with a
//     retriable Unavailable, and joins every thread. A dying client never
//     kills the daemon (MSG_NOSIGNAL + SIGPIPE ignored).
//
// Lifecycle: construct -> Start() -> [serve] -> RequestStop() -> Wait().
// The destructor performs RequestStop + Wait if still running. Start
// performs the initial catalog load with the same degraded-mode semantics
// as reload (corrupt entries quarantined, healthy ones serve).

#ifndef PATHEST_SERVE_SERVER_H_
#define PATHEST_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "maint/online_maintenance.h"
#include "ordering/ordering.h"
#include "serve/bounded_queue.h"
#include "serve/protocol.h"
#include "serve/snapshot_registry.h"
#include "serve/socket_io.h"

namespace pathest {
namespace serve {

struct ServeOptions {
  /// Filesystem path of the Unix-domain socket (<= 107 bytes).
  std::string socket_path;
  /// Catalog directory loaded at startup and targeted by a bare `reload`.
  std::string catalog_dir;
  /// Worker threads; each owns one connection at a time.
  size_t num_workers = 4;
  /// Bounded admission queue: accepted connections waiting for a worker.
  /// A full queue sheds (typed retriable error) instead of growing.
  size_t queue_capacity = 64;
  /// Deadline for requests that do not carry deadline_ms. 0 means requests
  /// expire immediately unless they override it (useful only in tests).
  uint64_t default_deadline_ms = 10000;
  /// Idle read timeout per connection; 0 disables reaping.
  uint64_t idle_timeout_ms = 30000;
  /// Paths estimated between deadline checks within one request.
  size_t deadline_check_stride = 64;
  /// Enables the `slowop` test command (never in production).
  bool enable_test_commands = false;
  /// listen(2) backlog.
  int listen_backlog = 128;
  /// Bootstrap graph for online maintenance. Non-empty ENABLES the
  /// `update`/`compact` commands: Start() recovers the edge-delta journal
  /// under <catalog_dir>/maint (replaying acknowledged updates over the
  /// base snapshot) and spawns the maintenance thread. Empty (default)
  /// serves statically, exactly as before.
  std::string graph_path;
  /// Maintenance selectivity depth (0 = derive from the catalog entries).
  size_t maint_k = 0;
  /// Journal auto-compaction threshold (maint::MaintenanceOptions).
  uint64_t compact_every_records = 4096;
  /// Byte budget for the mmap snapshot cache (core/catalog_cache.h).
  /// Binary-v2 catalog entries are served zero-copy through this cache: a
  /// reload of an unchanged entry re-pins the existing mapping instead of
  /// re-reading bytes. Pinned (currently-serving) snapshots never count
  /// against eviction, so the budget bounds only UNPINNED residency.
  size_t mmap_cache_bytes = 256ull << 20;
};

/// \brief Monotonic counters exposed by `stats` (all atomics: written by
/// many workers, read by anyone).
struct ServeCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_shed{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> estimate_requests{0};
  std::atomic<uint64_t> paths_estimated{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> invalid_requests{0};
  std::atomic<uint64_t> reloads{0};
  std::atomic<uint64_t> reload_conflicts{0};
  /// Online maintenance (all zero when serving statically).
  std::atomic<uint64_t> updates_journaled{0};
  std::atomic<uint64_t> journal_replayed_records{0};
  std::atomic<uint64_t> incremental_refreshes{0};
  std::atomic<uint64_t> quarantined_journals{0};
};

class ServeServer {
 public:
  explicit ServeServer(ServeOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// \brief Loads the catalog (degraded mode allowed), binds the socket,
  /// and spawns the accept loop + worker pool. Fails only when the
  /// directory is unreadable or the socket cannot be bound.
  Status Start();

  /// \brief Begins a graceful drain (see file comment). Safe from any
  /// thread, including a worker handling `shutdown`; does NOT join.
  void RequestStop();

  /// \brief Joins every thread; idempotent. Returns once drained.
  void Wait();

  /// \brief True once RequestStop was called (drain begun).
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  const ServeOptions& options() const { return options_; }
  const ServeCounters& counters() const { return counters_; }
  /// \brief The initial catalog load's outcome (valid after Start).
  const CatalogLoadReport& initial_report() const { return initial_report_; }
  /// \brief Pins the current registry state (tests/benches).
  std::shared_ptr<const RegistryState> registry_state() const {
    return registry_.Get();
  }
  /// \brief The single-line JSON payload of the `stats` response.
  std::string StatsJson() const;
  /// \brief The maintenance engine, or nullptr when serving statically
  /// (tests poke recovery state through this).
  const maint::OnlineMaintenance* maintenance() const { return maint_.get(); }

 private:
  void AcceptLoop();
  void WorkerLoop(size_t worker);
  void MaintenanceLoop();
  void HandleConnection(UniqueFd conn, RankScratch& scratch);
  // Returns the response line (no terminator); sets *close_after for
  // requests that end the connection (shutdown).
  std::string HandleRequest(const std::string& line, RankScratch& scratch,
                            bool* close_after);
  std::string HandleEstimate(const Request& request, RankScratch& scratch);
  std::string HandleReload(const Request& request);
  std::string HandleUpdate(const Request& request);
  std::string HandleCompact();
  std::string HandleHealth();
  // The body of a reload against `dir`; caller holds reload_mu_.
  std::string ReloadLocked(const std::string& dir);
  // Runs one Refresh under maint_op_mu_, publishes the refreshed entries,
  // and wakes wait=1 update clients; quarantines the journal on failure.
  void RunRefresh();

  ServeOptions options_;
  SnapshotRegistry registry_;
  ServeCounters counters_;
  CatalogLoadReport initial_report_;
  // Bounded-residency mmap cache for binary-v2 entries (zero-copy path).
  // Declared before registry users touch it only through GetOrOpen/Stats,
  // both internally locked; safe from any thread.
  CatalogCache mmap_cache_;

  UniqueFd listen_fd_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  BoundedQueue<UniqueFd> pending_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool joined_ = false;
  std::mutex lifecycle_mu_;  // guards Wait()'s join against double-join

  std::mutex reload_mu_;          // at most one reload in flight
  mutable std::mutex report_mu_;  // guards the last_* JSON strings
  std::string last_reload_json_;
  std::string last_maintenance_json_;

  // Online maintenance (engaged only when options_.graph_path is set).
  // Workers call maint_->JournalDeltas concurrently (it locks internally);
  // state-mutating operations (Refresh, Compact, Quarantine) are
  // serialized by maint_op_mu_ between the maintenance thread and the
  // `compact` handler.
  std::unique_ptr<maint::OnlineMaintenance> maint_;
  std::thread maint_thread_;
  std::mutex maint_op_mu_;
  std::mutex maint_mu_;  // guards maint_work_ + the cv waits below
  std::condition_variable maint_cv_;
  bool maint_work_ = false;
  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<uint64_t> quarantine_generation_{0};
};

}  // namespace serve
}  // namespace pathest

#endif  // PATHEST_SERVE_SERVER_H_
