#include "serve/snapshot_registry.h"

#include <filesystem>
#include <utility>

namespace pathest {
namespace serve {

Result<SnapshotLoadResult> LoadCatalogSnapshots(const std::string& dir,
                                                uint64_t version) {
  auto entries = ListCatalogEntryPaths(dir);
  if (!entries.ok()) return entries.status();
  SnapshotLoadResult result;
  for (const std::string& path : *entries) {
    auto loaded = LoadPathHistogram(path);
    const std::string name = std::filesystem::path(path).stem().string();
    if (!loaded.ok()) {
      // Same quarantine shape as StatisticsCatalog::LoadAll: the failure
      // is recorded (path + implicated section + typed error) and the
      // remaining entries still become snapshots.
      result.report.failures.push_back(
          MakeCatalogLoadFailure(path, loaded.status()));
      continue;
    }
    result.snapshots[name] = std::make_shared<const ServingSnapshot>(
        name, std::move(*loaded), version);
    result.report.loaded.push_back(name);
  }
  return result;
}

}  // namespace serve
}  // namespace pathest
