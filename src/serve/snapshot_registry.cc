#include "serve/snapshot_registry.h"

#include <filesystem>
#include <utility>

namespace pathest {
namespace serve {

Result<SnapshotLoadResult> LoadCatalogSnapshots(const std::string& dir,
                                                uint64_t version,
                                                CatalogCache* mmap_cache) {
  auto entries = ListCatalogEntryPaths(dir);
  if (!entries.ok()) return entries.status();
  SnapshotLoadResult result;
  for (const std::string& path : *entries) {
    const std::string name = std::filesystem::path(path).stem().string();
    if (mmap_cache != nullptr) {
      auto is_v2 = SniffFileIsBinaryV2(path);
      if (is_v2.ok() && *is_v2) {
        // Zero-copy path: an unchanged file re-pins its cached mapping; a
        // changed one is mapped and admission-verified. Failures follow
        // the same quarantine contract as the copying path below.
        auto mapped = mmap_cache->GetOrOpen(path);
        if (!mapped.ok()) {
          result.report.failures.push_back(
              MakeCatalogLoadFailure(path, mapped.status()));
          continue;
        }
        result.snapshots[name] = std::make_shared<const ServingSnapshot>(
            name, std::move(*mapped), version);
        result.report.loaded.push_back(name);
        continue;
      }
      if (!is_v2.ok()) {
        result.report.failures.push_back(
            MakeCatalogLoadFailure(path, is_v2.status()));
        continue;
      }
    }
    auto loaded = LoadPathHistogram(path);
    if (!loaded.ok()) {
      // Same quarantine shape as StatisticsCatalog::LoadAll: the failure
      // is recorded (path + implicated section + typed error) and the
      // remaining entries still become snapshots.
      result.report.failures.push_back(
          MakeCatalogLoadFailure(path, loaded.status()));
      continue;
    }
    result.snapshots[name] = std::make_shared<const ServingSnapshot>(
        name, std::move(*loaded), version);
    result.report.loaded.push_back(name);
  }
  return result;
}

}  // namespace serve
}  // namespace pathest
