// pathest: low-level Unix-domain socket plumbing shared by the serve
// daemon (serve/server.h) and its client (serve/client.h).
//
// Everything here is EINTR-safe, and every send uses MSG_NOSIGNAL so a
// peer that died mid-response yields EPIPE (an error return) instead of a
// process-killing SIGPIPE — together with util/safe_io.h's
// IgnoreSigpipeForProcess, a dying client can never take the daemon down.

#ifndef PATHEST_SERVE_SOCKET_IO_H_
#define PATHEST_SERVE_SOCKET_IO_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pathest {
namespace serve {

/// \brief RAII file descriptor (close on destruction, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// \brief Connects to the Unix-domain stream socket at `path`.
/// InvalidArgument when the path exceeds sun_path; IOError on failure.
Result<UniqueFd> ConnectUnixSocket(const std::string& path);

/// \brief Binds and listens on `path`. A stale socket file (from a
/// crashed daemon) is replaced; a non-socket file at `path` is an error.
Result<UniqueFd> ListenUnixSocket(const std::string& path, int backlog);

/// \brief Writes all of `bytes` (EINTR-safe, MSG_NOSIGNAL). False on any
/// unrecoverable error — the caller treats the connection as gone.
bool SendAll(int fd, std::string_view bytes);

/// \brief Outcome of LineReader::ReadLine.
enum class ReadLineResult {
  kLine,       // *out holds one line (terminator stripped)
  kEof,        // peer closed cleanly with no pending line
  kTimeout,    // idle longer than the reader's timeout
  kStopped,    // the stop flag was raised while waiting for data
  kOversized,  // line exceeded max_line_bytes (protocol violation)
  kError,      // socket error
};

/// \brief Buffered newline-delimited reader over a socket.
///
/// Waits in short poll slices so it can notice `stop` (a server draining)
/// within ~50 ms even under a long idle timeout. A stop only interrupts
/// WAITING — a complete line that already arrived is still returned, which
/// is what lets a draining server answer every request it has already
/// received.
class LineReader {
 public:
  /// \param stop optional drain flag; nullptr means never stopped.
  LineReader(int fd, uint64_t idle_timeout_ms, size_t max_line_bytes,
             const std::atomic<bool>* stop = nullptr)
      : fd_(fd),
        idle_timeout_ms_(idle_timeout_ms),
        max_line_bytes_(max_line_bytes),
        stop_(stop) {}

  ReadLineResult ReadLine(std::string* out);

 private:
  int fd_;
  uint64_t idle_timeout_ms_;
  size_t max_line_bytes_;
  const std::atomic<bool>* stop_;
  std::string buffer_;
  bool peer_closed_ = false;
};

}  // namespace serve
}  // namespace pathest

#endif  // PATHEST_SERVE_SOCKET_IO_H_
