// pathest: the wire protocol of the estimation service — newline-delimited
// request/response lines over a Unix-domain stream socket.
//
// One request line in, exactly one response line out, both terminated by a
// single '\n'. Grammar (tokens separated by single spaces):
//
//   request  := command [option ...] [arg ...]
//   option   := key '=' value            (recognized only right after the
//                                         command; the first token without
//                                         '=' starts the positional args)
//   response := "ok" [payload...]
//             | "err" CODE ("retriable" | "fatal") message...
//
// Commands:
//   health                      -> ok serving entries=N degraded=0|1
//                                  version=V
//   stats                       -> ok {single-line JSON: counters, entries,
//                                  last_reload report}
//   estimate [deadline_ms=N] <entry> <path> [<path>...]
//                               -> ok <e1> <e2> ...   (one %.17g value per
//                                  path, bit-exact round-trippable — the
//                                  torture suite compares these strings
//                                  against a serial oracle)
//   reload [dir=PATH]           -> ok loaded=N quarantined=M kept_stale=K
//                                  removed=R serving=S degraded=0|1
//                                  version=V
//   update [wait=1] (add|remove <src> <dst> <label>)+
//                               -> ok journaled=N pending=P
//                                  (wait=1: blocks until the batch is
//                                  applied -> ok applied=N epoch=E)
//                                  Only when the daemon was started with
//                                  graph=. The response is sent AFTER the
//                                  batch is fsynced into the edge-delta
//                                  journal: an "ok" survives any crash.
//   compact                     -> ok compacted epoch=E   (folds the
//                                  journal into a fresh base snapshot)
//   shutdown                    -> ok draining   (then the daemon stops
//                                  accepting, drains, and exits)
//   slowop ms=N                 -> ok slept      (test builds only —
//                                  ServeOptions::enable_test_commands —
//                                  holds a worker to make shedding and
//                                  drain deterministic in tests)
//
// Error taxonomy: CODE is the StatusCodeToString name of a util/status
// code. A client may retry a "retriable" error verbatim (possibly after
// reconnecting); a "fatal" error means the request itself is wrong:
//
//   ResourceExhausted retriable   load shed: the bounded connection queue
//                                 was full at accept
//   DeadlineExceeded  retriable   the request's deadline expired between
//                                 batch chunks
//   Unavailable       retriable   reload already in progress / server
//                                 draining / update journaled but not yet
//                                 applied when the daemon drained or the
//                                 journal was quarantined (updates are
//                                 idempotent, so retrying is always safe)
//   NotFound          fatal       unknown entry name / unknown edge label
//                                 in an update
//   InvalidArgument   fatal       malformed request, unparseable path,
//                                 path outside the entry's space, oversized
//                                 line, update/compact without graph=
//
// Responses never contain '\n' in the middle (error messages are
// sanitized), so a line-oriented client can always parse them.

#ifndef PATHEST_SERVE_PROTOCOL_H_
#define PATHEST_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pathest {
namespace serve {

/// Hard cap on a request line (bytes, excluding the terminator). A line
/// that exceeds it draws a fatal InvalidArgument and closes the
/// connection.
inline constexpr size_t kMaxRequestBytes = 1 << 20;

/// \brief A tokenized request line: command, leading key=value options,
/// and positional arguments.
struct Request {
  std::string command;
  std::vector<std::pair<std::string, std::string>> options;
  std::vector<std::string> args;

  /// \brief The value of option `key`, or `absent` when not given.
  std::string_view Option(std::string_view key,
                          std::string_view absent = {}) const {
    for (const auto& [k, v] : options) {
      if (k == key) return v;
    }
    return absent;
  }
};

/// \brief Tokenizes one request line. InvalidArgument on an empty line or
/// malformed option.
Result<Request> ParseRequest(std::string_view line);

/// \brief True when a client may retry the failed request verbatim.
bool IsRetriableCode(StatusCode code);

/// \brief Renders the "err CODE retriable|fatal message" response line
/// (without the trailing '\n'; newlines in the message are sanitized).
std::string FormatErrorResponse(const Status& status);

/// \brief Appends one estimate value formatted %.17g — enough digits that
/// the decimal round-trips to the exact double, making responses
/// bit-comparable against a serial oracle.
void AppendEstimateValue(std::string* out, double value);

/// \brief Parses a non-negative integer option value ("", overflow, or
/// trailing junk fail). Used for deadline_ms= and friends.
Result<uint64_t> ParseU64Option(std::string_view key, std::string_view value);

}  // namespace serve
}  // namespace pathest

#endif  // PATHEST_SERVE_PROTOCOL_H_
