// pathest: common declarations for synthetic graph generators.

#ifndef PATHEST_GEN_GENERATOR_H_
#define PATHEST_GEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gen/label_assigner.h"
#include "graph/graph.h"
#include "util/status.h"

namespace pathest {

/// \brief Parameters for the Erdős–Rényi G(n, m) model with labels.
struct ErdosRenyiParams {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  uint64_t seed = 1;
  /// Disallow v -> v edges.
  bool forbid_self_loops = true;
};

/// \brief Directed labeled G(n, m): `num_edges` distinct (src, label, dst)
/// triples drawn uniformly; labels via `assigner`.
Result<Graph> GenerateErdosRenyi(const ErdosRenyiParams& params,
                                 LabelAssigner* assigner);

/// \brief Parameters for the Forest Fire model (Leskovec et al.).
struct ForestFireParams {
  size_t num_vertices = 0;
  /// Forward burning probability p; expected burn fan-out is p / (1 - p).
  double forward_prob = 0.35;
  /// Backward burn ratio r (probability scaling for in-edges).
  double backward_ratio = 0.32;
  uint64_t seed = 1;
  /// Cap on edges created per new vertex (keeps the burn from exploding on
  /// dense fire spreads); 0 = uncapped.
  size_t max_out_per_vertex = 32;
};

/// \brief Forest Fire: each new vertex picks an ambassador and recursively
/// "burns" through its neighborhood, linking to every burned vertex.
Result<Graph> GenerateForestFire(const ForestFireParams& params,
                                 LabelAssigner* assigner);

/// \brief Parameters for labeled preferential attachment.
struct PrefAttachmentParams {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  /// Probability that an endpoint is chosen preferentially (by in-degree)
  /// rather than uniformly. 0 = pure random, 1 = pure preferential.
  double pref_prob = 0.75;
  uint64_t seed = 1;
};

/// \brief Preferential attachment over a fixed vertex set: edges land on
/// high-in-degree targets with probability `pref_prob`, producing the
/// heavy-tailed degree profile of social/knowledge graphs.
Result<Graph> GeneratePrefAttachment(const PrefAttachmentParams& params,
                                     LabelAssigner* assigner);

/// \brief Default label names "1", "2", ..., `n` (paper convention).
std::vector<std::string> NumericLabelNames(size_t n);

}  // namespace pathest

#endif  // PATHEST_GEN_GENERATOR_H_
