#include "gen/label_assigner.h"

#include <algorithm>
#include <numeric>

#include "util/status.h"

namespace pathest {

UniformLabelAssigner::UniformLabelAssigner(size_t num_labels)
    : num_labels_(num_labels) {
  PATHEST_CHECK(num_labels >= 1, "need at least one label");
}

LabelId UniformLabelAssigner::Assign(VertexId, VertexId, Rng* rng) {
  return static_cast<LabelId>(rng->NextBounded(num_labels_));
}

ZipfLabelAssigner::ZipfLabelAssigner(size_t num_labels, double skew,
                                     uint64_t shuffle_seed)
    : zipf_(num_labels, skew), perm_(num_labels) {
  std::iota(perm_.begin(), perm_.end(), 0);
  Rng shuffle_rng(shuffle_seed);
  for (size_t i = perm_.size(); i > 1; --i) {
    std::swap(perm_[i - 1], perm_[shuffle_rng.NextBounded(i)]);
  }
}

LabelId ZipfLabelAssigner::Assign(VertexId, VertexId, Rng* rng) {
  return perm_[zipf_.Sample(rng)];
}

TypedLabelAssigner::TypedLabelAssigner(size_t num_labels, size_t num_types,
                                       uint64_t seed)
    : num_labels_(num_labels), num_types_(num_types), seed_(seed) {
  PATHEST_CHECK(num_labels >= 1, "need at least one label");
  PATHEST_CHECK(num_types >= 1, "need at least one vertex type");
  labels_by_type_pair_.resize(num_types * num_types);
  // Deterministically attach each label to one type pair. Label 0 is the
  // generic fallback and is valid everywhere.
  uint64_t h = seed;
  for (LabelId l = 1; l < num_labels; ++l) {
    uint64_t draw = SplitMix64(&h);
    size_t src_type = draw % num_types;
    size_t dst_type = (draw >> 16) % num_types;
    labels_by_type_pair_[src_type * num_types + dst_type].push_back(l);
  }
}

size_t TypedLabelAssigner::VertexType(VertexId v) const {
  uint64_t h = seed_ ^ (0x51ED2701A0B1C2D3ULL + v);
  return SplitMix64(&h) % num_types_;
}

LabelId TypedLabelAssigner::Assign(VertexId src, VertexId dst, Rng* rng) {
  const auto& candidates =
      labels_by_type_pair_[VertexType(src) * num_types_ + VertexType(dst)];
  if (candidates.empty()) return 0;  // generic label
  // Small chance of the generic label even when typed labels exist, so that
  // label 0 has high cardinality (a hub predicate, like rdf:type).
  if (rng->NextBool(0.2)) return 0;
  return candidates[rng->NextBounded(candidates.size())];
}

}  // namespace pathest
