#include <unordered_set>
#include <vector>

#include "gen/generator.h"
#include "graph/graph_builder.h"

namespace pathest {

Result<Graph> GeneratePrefAttachment(const PrefAttachmentParams& params,
                                     LabelAssigner* assigner) {
  if (params.num_vertices < 2) {
    return Status::InvalidArgument("PA: need at least 2 vertices");
  }
  if (params.pref_prob < 0.0 || params.pref_prob > 1.0) {
    return Status::InvalidArgument("PA: pref_prob must be in [0, 1]");
  }

  GraphBuilder builder;
  for (const std::string& name : NumericLabelNames(assigner->num_labels())) {
    builder.AddLabel(name);
  }
  builder.SetNumVertices(params.num_vertices);

  Rng rng(params.seed);
  // Repeated-endpoint list: picking a uniform element of `endpoints` is
  // equivalent to degree-proportional sampling (classic Barabási–Albert
  // trick). Seeded with every vertex once so all vertices are reachable.
  std::vector<VertexId> endpoints;
  endpoints.reserve(params.num_vertices + 2 * params.num_edges);
  for (VertexId v = 0; v < params.num_vertices; ++v) endpoints.push_back(v);

  std::unordered_set<uint64_t> seen;
  seen.reserve(params.num_edges * 2);
  size_t produced = 0;
  size_t attempts = 0;
  const size_t max_attempts = params.num_edges * 64 + 1024;
  while (produced < params.num_edges && attempts < max_attempts) {
    ++attempts;
    auto pick = [&]() -> VertexId {
      if (rng.NextBool(params.pref_prob)) {
        return endpoints[rng.NextBounded(endpoints.size())];
      }
      return static_cast<VertexId>(rng.NextBounded(params.num_vertices));
    };
    VertexId src = pick();
    VertexId dst = pick();
    if (src == dst) continue;
    LabelId label = assigner->Assign(src, dst, &rng);
    uint64_t key = (static_cast<uint64_t>(src) << 32) | dst;
    key ^= static_cast<uint64_t>(label) * 0x9E3779B97F4A7C15ULL;
    if (!seen.insert(key).second) continue;
    builder.AddEdge(src, label, dst);
    endpoints.push_back(src);
    endpoints.push_back(dst);
    ++produced;
  }
  if (produced < params.num_edges) {
    return Status::ResourceExhausted(
        "PA: could not place requested edges (graph too dense)");
  }
  return builder.Build();
}

}  // namespace pathest
