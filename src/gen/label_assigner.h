// pathest: label assignment policies for synthetic graph generators.
//
// Generators produce unlabeled directed edges; a LabelAssigner decides the
// edge label. Three policies cover the paper's datasets:
//   * Uniform  — every label equally likely (SNAP-ER / SNAP-FF style).
//   * Zipf     — skewed label frequencies (Moreno Health style; Figure 1 of
//                the paper shows strongly skewed per-label cardinalities).
//   * Typed    — labels constrained to (source-type, target-type) pairs,
//                emulating typed predicates in RDF/DBpedia data; this is what
//                produces the "edge-label cardinality correlations" the paper
//                observes in real-life data.

#ifndef PATHEST_GEN_LABEL_ASSIGNER_H_
#define PATHEST_GEN_LABEL_ASSIGNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace pathest {

/// \brief Strategy interface: pick a label for edge (src, dst).
class LabelAssigner {
 public:
  virtual ~LabelAssigner() = default;

  /// \brief Returns a label id in [0, num_labels).
  virtual LabelId Assign(VertexId src, VertexId dst, Rng* rng) = 0;

  /// \brief Number of labels this assigner draws from.
  virtual size_t num_labels() const = 0;
};

/// \brief Uniform over [0, num_labels).
class UniformLabelAssigner : public LabelAssigner {
 public:
  explicit UniformLabelAssigner(size_t num_labels);

  LabelId Assign(VertexId src, VertexId dst, Rng* rng) override;
  size_t num_labels() const override { return num_labels_; }

 private:
  size_t num_labels_;
};

/// \brief Zipf-skewed label frequencies with a deterministic label shuffle,
/// so label id order does not coincide with cardinality order (keeping the
/// alph vs card ranking distinction meaningful).
class ZipfLabelAssigner : public LabelAssigner {
 public:
  /// \param skew Zipf exponent; ~0.8-1.2 reproduces Moreno-like skew.
  /// \param shuffle_seed permutes which label id gets which frequency rank.
  ZipfLabelAssigner(size_t num_labels, double skew, uint64_t shuffle_seed);

  LabelId Assign(VertexId src, VertexId dst, Rng* rng) override;
  size_t num_labels() const override { return perm_.size(); }

 private:
  ZipfDistribution zipf_;
  std::vector<LabelId> perm_;
};

/// \brief Typed-predicate assigner.
///
/// Vertices are hashed into `num_types` disjoint types; each label is valid
/// only for one (src-type, dst-type) pair, chosen deterministically from the
/// label id. Assign picks uniformly among the labels valid for the edge's
/// type pair (falling back to a designated generic label when none is).
/// This yields structurally-correlated labels: the label of an edge predicts
/// which labels may follow it, exactly the real-data correlation that narrows
/// the accuracy gap between orderings in the paper's Figure 2.
class TypedLabelAssigner : public LabelAssigner {
 public:
  TypedLabelAssigner(size_t num_labels, size_t num_types, uint64_t seed);

  LabelId Assign(VertexId src, VertexId dst, Rng* rng) override;
  size_t num_labels() const override { return num_labels_; }

  /// \brief The type of a vertex under this assigner's hash.
  size_t VertexType(VertexId v) const;

 private:
  size_t num_labels_;
  size_t num_types_;
  uint64_t seed_;
  // labels_by_type_pair_[src_type * num_types_ + dst_type] -> candidate ids.
  std::vector<std::vector<LabelId>> labels_by_type_pair_;
};

}  // namespace pathest

#endif  // PATHEST_GEN_LABEL_ASSIGNER_H_
