#include <unordered_set>

#include "gen/generator.h"
#include "graph/graph_builder.h"

namespace pathest {

std::vector<std::string> NumericLabelNames(size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 1; i <= n; ++i) names.push_back(std::to_string(i));
  return names;
}

Result<Graph> GenerateErdosRenyi(const ErdosRenyiParams& params,
                                 LabelAssigner* assigner) {
  if (params.num_vertices == 0) {
    return Status::InvalidArgument("ER: num_vertices must be > 0");
  }
  if (params.forbid_self_loops && params.num_vertices < 2 &&
      params.num_edges > 0) {
    return Status::InvalidArgument("ER: cannot avoid self loops with |V| < 2");
  }
  const size_t num_labels = assigner->num_labels();
  // Capacity check: distinct triples available.
  __uint128_t pair_count =
      static_cast<__uint128_t>(params.num_vertices) * params.num_vertices;
  if (params.forbid_self_loops) pair_count -= params.num_vertices;
  if (static_cast<__uint128_t>(params.num_edges) > pair_count * num_labels) {
    return Status::InvalidArgument("ER: more edges requested than possible");
  }

  GraphBuilder builder;
  for (const std::string& name : NumericLabelNames(num_labels)) {
    builder.AddLabel(name);
  }
  builder.SetNumVertices(params.num_vertices);

  Rng rng(params.seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(params.num_edges * 2);
  size_t produced = 0;
  while (produced < params.num_edges) {
    VertexId src = static_cast<VertexId>(rng.NextBounded(params.num_vertices));
    VertexId dst = static_cast<VertexId>(rng.NextBounded(params.num_vertices));
    if (params.forbid_self_loops && src == dst) continue;
    LabelId label = assigner->Assign(src, dst, &rng);
    uint64_t key = (static_cast<uint64_t>(src) << 32) | dst;
    // Key on (src, dst, label): 32+32 bits won't fit the label too, so mix it.
    key ^= static_cast<uint64_t>(label) * 0x9E3779B97F4A7C15ULL;
    if (!seen.insert(key).second) continue;
    builder.AddEdge(src, label, dst);
    ++produced;
  }
  return builder.Build();
}

}  // namespace pathest
