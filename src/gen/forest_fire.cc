#include <algorithm>
#include <unordered_set>
#include <vector>

#include "gen/generator.h"
#include "graph/graph_builder.h"

namespace pathest {

namespace {

// Samples a geometric-like burn count: number of successes before failure
// with success probability p, capped at `cap`.
size_t BurnCount(double p, size_t cap, Rng* rng) {
  size_t n = 0;
  while (n < cap && rng->NextBool(p)) ++n;
  return n;
}

}  // namespace

Result<Graph> GenerateForestFire(const ForestFireParams& params,
                                 LabelAssigner* assigner) {
  if (params.num_vertices == 0) {
    return Status::InvalidArgument("FF: num_vertices must be > 0");
  }
  if (params.forward_prob < 0.0 || params.forward_prob >= 1.0) {
    return Status::InvalidArgument("FF: forward_prob must be in [0, 1)");
  }

  GraphBuilder builder;
  for (const std::string& name : NumericLabelNames(assigner->num_labels())) {
    builder.AddLabel(name);
  }
  builder.SetNumVertices(params.num_vertices);

  Rng rng(params.seed);
  // Adjacency kept during generation for the burn walk (both directions).
  std::vector<std::vector<VertexId>> out_adj(params.num_vertices);
  std::vector<std::vector<VertexId>> in_adj(params.num_vertices);

  const size_t out_cap = params.max_out_per_vertex == 0
                             ? params.num_vertices
                             : params.max_out_per_vertex;

  for (VertexId v = 1; v < params.num_vertices; ++v) {
    // Pick an ambassador among existing vertices and burn outward.
    std::unordered_set<VertexId> burned;
    std::vector<VertexId> frontier;
    VertexId ambassador = static_cast<VertexId>(rng.NextBounded(v));
    burned.insert(ambassador);
    frontier.push_back(ambassador);
    std::vector<VertexId> linked;
    linked.push_back(ambassador);

    while (!frontier.empty() && linked.size() < out_cap) {
      VertexId w = frontier.back();
      frontier.pop_back();
      // Burn forward through out-links and backward through in-links.
      size_t fwd = BurnCount(params.forward_prob, out_adj[w].size(), &rng);
      size_t bwd = BurnCount(params.forward_prob * params.backward_ratio,
                             in_adj[w].size(), &rng);
      auto burn_from = [&](const std::vector<VertexId>& nbrs, size_t want) {
        // Scan a random rotation so repeated burns don't always pick the
        // earliest neighbors.
        if (nbrs.empty() || want == 0) return;
        size_t start = rng.NextBounded(nbrs.size());
        for (size_t i = 0; i < nbrs.size() && want > 0; ++i) {
          VertexId u = nbrs[(start + i) % nbrs.size()];
          if (burned.insert(u).second) {
            frontier.push_back(u);
            linked.push_back(u);
            --want;
            if (linked.size() >= out_cap) return;
          }
        }
      };
      burn_from(out_adj[w], fwd);
      burn_from(in_adj[w], bwd);
    }

    for (VertexId target : linked) {
      LabelId label = assigner->Assign(v, target, &rng);
      builder.AddEdge(v, label, target);
      out_adj[v].push_back(target);
      in_adj[target].push_back(v);
    }
  }
  return builder.Build();
}

}  // namespace pathest
