#include "gen/datasets.h"

#include <algorithm>
#include <cstdlib>

#include "gen/generator.h"
#include "util/logging.h"

namespace pathest {

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec> kSpecs = {
      {DatasetId::kMorenoHealth, "moreno", 6, 2539, 12969, true},
      {DatasetId::kDbpedia, "dbpedia", 8, 37374, 209068, true},
      {DatasetId::kSnapEr, "snap-er", 6, 12333, 147996, false},
      {DatasetId::kSnapFf, "snap-ff", 8, 50000, 132673, false},
  };
  return kSpecs;
}

Result<DatasetSpec> FindDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

namespace {

const DatasetSpec& SpecFor(DatasetId id) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.id == id) return spec;
  }
  PATHEST_CHECK(false, "unreachable: unknown DatasetId");
  __builtin_unreachable();
}

size_t Scaled(size_t value, double scale, size_t floor_value) {
  return std::max(floor_value,
                  static_cast<size_t>(static_cast<double>(value) * scale));
}

}  // namespace

Result<Graph> BuildDataset(DatasetId id, double scale, uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const DatasetSpec& spec = SpecFor(id);
  const size_t v = Scaled(spec.num_vertices, scale, 16);
  const size_t e = Scaled(spec.num_edges, scale, 32);

  switch (id) {
    case DatasetId::kMorenoHealth: {
      // Adolescent friendship network: heavy-tailed degrees, strongly skewed
      // label frequencies (ranked friendship slots; see paper Figure 1).
      ZipfLabelAssigner labels(spec.num_labels, 1.0, seed ^ 0xA1);
      PrefAttachmentParams params;
      params.num_vertices = v;
      params.num_edges = e;
      params.pref_prob = 0.6;
      params.seed = seed;
      return GeneratePrefAttachment(params, &labels);
    }
    case DatasetId::kDbpedia: {
      // Knowledge-graph subgraph: hub entities + typed predicates, which
      // yields the label-correlation structure of real RDF data. Two vertex
      // types keep enough label-sequence overlap that a realistic fraction
      // of L_k is non-empty (five types prunes ~97 percent of the domain to
      // zero, which degenerates histogram behaviour).
      TypedLabelAssigner labels(spec.num_labels, /*num_types=*/2, seed ^ 0xB2);
      PrefAttachmentParams params;
      params.num_vertices = v;
      params.num_edges = e;
      params.pref_prob = 0.8;
      params.seed = seed;
      return GeneratePrefAttachment(params, &labels);
    }
    case DatasetId::kSnapEr: {
      // Mildly Zipf-skewed labels: with perfectly uniform labels every
      // same-length path has statistically identical selectivity and ALL
      // orderings collapse to the same accuracy by symmetry. The paper's
      // reported gaps on its SNAP data imply skewed label frequencies.
      ZipfLabelAssigner labels(spec.num_labels, 0.8, seed ^ 0xC3);
      ErdosRenyiParams params;
      params.num_vertices = v;
      params.num_edges = e;
      params.seed = seed;
      return GenerateErdosRenyi(params, &labels);
    }
    case DatasetId::kSnapFf: {
      // Zipf labels for the same reason as snap-er above.
      ZipfLabelAssigner labels(spec.num_labels, 0.8, seed ^ 0xD4);
      ForestFireParams params;
      params.num_vertices = v;
      // Forest Fire controls |E| only indirectly; this burn probability and
      // cap land within ~1% of the paper's 132 673 edges at full scale
      // (~2.65 edges per vertex), calibrated at seed 42.
      params.forward_prob = 0.445;
      params.backward_ratio = 0.3;
      params.seed = seed;
      params.max_out_per_vertex = 24;
      return GenerateForestFire(params, &labels);
    }
  }
  return Status::InvalidArgument("unknown DatasetId");
}

double ScaleFromEnv() {
  const char* env = std::getenv("PATHEST_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  double scale = std::strtod(env, &end);
  if (end == env || scale <= 0.0 || scale > 1.0) {
    PATHEST_LOG(Warn) << "ignoring invalid PATHEST_SCALE='" << env << "'";
    return 1.0;
  }
  return scale;
}

}  // namespace pathest
