// pathest: canned dataset configurations reproducing the paper's Table 3.
//
// The paper evaluates on Moreno Health (konect), a DBpedia subgraph, and two
// SNAP-generated synthetic graphs (Erdős–Rényi and Forest Fire). The real
// datasets are not redistributable/offline-available, so this module builds
// synthetic stand-ins with the same |V| / |E| / |L| and the structural
// properties the paper's analysis relies on (see DESIGN.md §5):
//   * moreno-like  — preferential attachment + Zipf-skewed labels,
//   * dbpedia-like — preferential attachment + typed-predicate labels
//                    (correlated labels, as in real RDF data),
//   * snap-er      — Erdős–Rényi, uniform labels (same model as the paper),
//   * snap-ff      — Forest Fire, uniform labels (same model as the paper).

#ifndef PATHEST_GEN_DATASETS_H_
#define PATHEST_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace pathest {

/// \brief Identifier of a canned dataset.
enum class DatasetId {
  kMorenoHealth,
  kDbpedia,
  kSnapEr,
  kSnapFf,
};

/// \brief Static description of a canned dataset (the row of Table 3).
struct DatasetSpec {
  DatasetId id;
  /// Short name used in reports ("moreno", "dbpedia", "snap-er", "snap-ff").
  std::string name;
  size_t num_labels;
  size_t num_vertices;
  size_t num_edges;
  /// Whether the paper's original is real-world data.
  bool real_world;
};

/// \brief All four paper datasets, in Table 3 order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// \brief Spec lookup by name; NotFound for unknown names.
Result<DatasetSpec> FindDatasetSpec(const std::string& name);

/// \brief Materializes a canned dataset.
///
/// \param scale shrinks |V| and |E| proportionally (0 < scale <= 1); 1.0
///   reproduces the paper's sizes. Useful for quick bench runs.
/// \param seed generator seed; fixed default keeps experiments reproducible.
Result<Graph> BuildDataset(DatasetId id, double scale = 1.0,
                           uint64_t seed = 42);

/// \brief Reads the PATHEST_SCALE environment variable (default 1.0).
double ScaleFromEnv();

}  // namespace pathest

#endif  // PATHEST_GEN_DATASETS_H_
