#include "maint/incremental.h"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "engine/eval_context.h"
#include "engine/schedule.h"
#include "graph/graph_builder.h"
#include "engine/thread_pool.h"
#include "path/pair_set.h"

namespace pathest {
namespace maint {

std::vector<EdgeDelta> EdgeDeltasFromRecords(
    const std::vector<DeltaRecord>& records) {
  std::vector<EdgeDelta> deltas;
  deltas.reserve(records.size());
  for (const DeltaRecord& rec : records) {
    if (!rec.is_edge()) continue;
    deltas.push_back(EdgeDelta{rec.kind == DeltaRecord::Kind::kAddEdge,
                               rec.src, rec.dst, rec.label});
  }
  return deltas;
}

Result<Graph> PatchGraph(const Graph& graph,
                         const std::vector<EdgeDelta>& deltas,
                         size_t num_threads) {
  const size_t num_labels = graph.num_labels();
  // Last-op-wins per triple: replaying the same delta sequence over a
  // graph that already folded a prefix of it converges (idempotence).
  std::map<std::array<uint32_t, 3>, bool> final_op;
  size_t num_vertices = graph.num_vertices();
  for (const EdgeDelta& d : deltas) {
    if (d.label >= num_labels) {
      return Status::InvalidArgument(
          "delta label id " + std::to_string(d.label) +
          " outside the graph dictionary (" + std::to_string(num_labels) +
          " labels)");
    }
    final_op[{d.src, d.dst, d.label}] = d.add;
    const size_t needed = static_cast<size_t>(std::max(d.src, d.dst)) + 1;
    if (d.add && needed > num_vertices) num_vertices = needed;
  }

  std::vector<Edge> edges = graph.CollectEdges();
  std::vector<Edge> patched;
  patched.reserve(edges.size() + final_op.size());
  for (const Edge& e : edges) {
    // Triples with a pending op are dropped here and re-added below when
    // the final op is an add — one code path for add/remove/no-op.
    if (final_op.count({e.src, e.dst, e.label}) != 0) continue;
    patched.push_back(e);
  }
  for (const auto& [triple, add] : final_op) {
    if (add) patched.push_back(Edge{triple[0], triple[2], triple[1]});
  }

  GraphBuilder builder;
  builder.Adopt(graph.labels(), std::move(patched), num_vertices);
  GraphBuildOptions build_options;
  build_options.with_reverse = graph.has_reverse();
  build_options.num_threads = num_threads;
  return builder.Build(build_options);
}

namespace {

// Backward reachability cones over the union graph (patched ∪ removed
// delta edges): out[j] holds C_j for j = 0..max_hops, where C_j is the set
// of vertices from which some delta source is reachable within <= j hops
// over any label. Level-synchronous, so each C_j is exact (the dirtiness
// tests want specific hop budgets, and under-approximating would be a
// correctness bug; over-approximating only wastes recomputation).
std::vector<std::vector<uint8_t>> ComputeCones(
    const Graph& patched, const std::vector<EdgeDelta>& deltas,
    const std::vector<uint8_t>& sources, size_t max_hops) {
  const size_t num_vertices = patched.num_vertices();
  const size_t num_labels = patched.num_labels();
  std::vector<std::vector<uint8_t>> cones;
  cones.push_back(sources);  // C_0 = U
  for (size_t hop = 1; hop <= max_hops; ++hop) {
    const std::vector<uint8_t>& prev = cones.back();
    std::vector<uint8_t> next = prev;
    for (LabelId l = 0; l < num_labels; ++l) {
      const Graph::CsrView view = patched.ForwardView(l);
      for (size_t v = 0; v < num_vertices; ++v) {
        if (next[v]) continue;
        for (uint64_t e = view.offsets[v]; e < view.offsets[v + 1]; ++e) {
          if (prev[view.targets[e]]) {
            next[v] = 1;
            break;
          }
        }
      }
    }
    for (const EdgeDelta& d : deltas) {
      if (!d.add && d.src < num_vertices && d.dst < num_vertices &&
          prev[d.dst]) {
        next[d.src] = 1;
      }
    }
    cones.push_back(std::move(next));
  }
  return cones;
}

}  // namespace

Result<SelectivityMap> IncrementalSelectivities(
    const Graph& patched, const SelectivityMap& old_map,
    const std::vector<EdgeDelta>& deltas, const SelectivityOptions& options,
    IncrementalStats* stats) {
  const PathSpace& space = old_map.space();
  const size_t k = space.k();
  const size_t num_labels = space.num_labels();
  const size_t num_vertices = patched.num_vertices();
  if (num_labels != patched.num_labels()) {
    return Status::InvalidArgument(
        "selectivity map covers " + std::to_string(num_labels) +
        " labels but the patched graph has " +
        std::to_string(patched.num_labels()));
  }
  if (stats != nullptr) {
    *stats = IncrementalStats{};
    stats->num_deltas = deltas.size();
    stats->total_roots = num_labels;
    stats->total_tasks = k >= 3 ? num_labels * num_labels : 0;
  }
  SelectivityMap map = old_map;  // clean slices survive verbatim
  if (deltas.empty()) return map;

  // D, U, and the per-source delta-label lists for the level-2 test.
  std::vector<uint8_t> delta_label(num_labels, 0);
  std::vector<uint8_t> delta_source(num_vertices, 0);
  std::unordered_map<VertexId, std::vector<LabelId>> source_labels;
  for (const EdgeDelta& d : deltas) {
    if (d.label >= num_labels) {
      return Status::InvalidArgument("delta label id " +
                                     std::to_string(d.label) +
                                     " outside the graph dictionary");
    }
    if (d.src >= num_vertices || d.dst >= num_vertices) {
      return Status::InvalidArgument(
          "delta endpoint outside the patched graph's vertex range — was "
          "the graph patched with these deltas?");
    }
    delta_label[d.label] = 1;
    delta_source[d.src] = 1;
    std::vector<LabelId>& labels = source_labels[d.src];
    if (std::find(labels.begin(), labels.end(), d.label) == labels.end()) {
      labels.push_back(d.label);
    }
  }

  // C_0..C_{k-2}; the root test reads C_{k-2}, the task test C_{k-3}.
  const size_t max_hops = k >= 2 ? k - 2 : 0;
  const std::vector<std::vector<uint8_t>> cones =
      ComputeCones(patched, deltas, delta_source, max_hops);
  const std::vector<uint8_t>& cone_root = cones[max_hops];
  const std::vector<uint8_t>* cone_task =
      k >= 3 ? &cones[k - 3] : nullptr;
  if (stats != nullptr) {
    for (uint8_t bit : cone_root) stats->cone_vertices += bit;
  }

  std::vector<size_t> touched;
  for (size_t root = 0; root < num_labels; ++root) {
    bool is_touched = delta_label[root] != 0;
    if (!is_touched && k >= 2) {
      const Graph::CsrView view =
          patched.ForwardView(static_cast<LabelId>(root));
      const uint64_t num_targets = view.offsets[num_vertices];
      for (uint64_t e = 0; e < num_targets && !is_touched; ++e) {
        is_touched = cone_root[view.targets[e]] != 0;
      }
    }
    if (is_touched) touched.push_back(root);
  }
  if (stats != nullptr) stats->touched_roots = touched.size();
  if (touched.empty()) return map;

  const size_t num_cells = k >= 3 ? num_labels * num_labels : 0;
  std::vector<Status> root_status(num_labels);
  std::vector<Status> cell_status(num_cells);
  std::vector<PairSet> level2(num_cells);
  // Per-root task lists: written only by the root's own Phase A worker.
  std::vector<std::vector<size_t>> root_tasks(num_labels);

  const size_t requested = options.num_threads == 0
                               ? ThreadPool::DefaultThreads()
                               : options.num_threads;
  const size_t num_threads = std::min(
      requested, SelectivityTaskCount(num_labels, k, ExtendStrategy::kFused));

  std::unique_ptr<ThreadPool> pool;
  std::vector<EvalContext> contexts;
  if (num_threads > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
    contexts.reserve(pool->num_threads());
    for (size_t w = 0; w < pool->num_threads(); ++w) {
      contexts.emplace_back(num_vertices, num_labels, k);
    }
  } else {
    contexts.emplace_back(num_vertices, num_labels, k);
  }
  for (EvalContext& ctx : contexts) ctx.fused.Bind(patched, options.kernel);
  auto parallel_for = [&](size_t n, const ThreadPool::Task& task) {
    if (pool != nullptr) {
      pool->ParallelFor(n, task);
    } else {
      for (size_t i = 0; i < n; ++i) task(i, 0);
    }
  };

  // ---- Phase A: re-run the pre-pass of every touched root through the
  // full build's own primitive, then decide which of its cells are dirty.
  auto run_root = [&](size_t root, EvalContext& ctx) {
    root_status[root] = EvaluateFusedRootPrepass(
        patched, ctx, static_cast<LabelId>(root), k, options, &map,
        num_cells != 0 ? &level2[root * num_labels] : nullptr,
        num_cells != 0 ? &cell_status[root * num_labels] : nullptr);
    if (!root_status[root].ok()) return;
    const uint64_t level1_size =
        map.GetByCanonicalIndex(space.LengthOffset(1) + root);
    if (k >= 2 && level1_size == 0) {
      // The pre-pass skips level 2 for an empty root; when a removal just
      // EMPTIED the root, the stale entries must be zeroed by hand.
      map.ZeroRange(space.LengthOffset(2) + root * num_labels, num_labels);
      for (LabelId l2 = 0; l2 < num_labels; ++l2) {
        ZeroPrefixSubtree(static_cast<LabelId>(root), l2, &map);
      }
      return;
    }
    if (k < 3) return;
    std::vector<uint8_t> dirty(num_labels, delta_label[root]);
    if (!delta_label[root]) {
      // (a) an l2-labeled delta departs a level-1 target: the cell's
      // level-2 SET may have changed.
      const Graph::CsrView view =
          patched.ForwardView(static_cast<LabelId>(root));
      const uint64_t num_targets = view.offsets[num_vertices];
      for (uint64_t e = 0; e < num_targets; ++e) {
        const VertexId t = view.targets[e];
        if (!delta_source[t]) continue;
        // at(): concurrent Phase A workers read this map, never insert.
        for (LabelId lab : source_labels.at(t)) dirty[lab] = 1;
      }
      // (b) a level-2 target reaches a delta source within k-3 hops: the
      // cell's DEEPER slices may have changed.
      for (size_t l2 = 0; l2 < num_labels; ++l2) {
        if (dirty[l2]) continue;
        for (VertexId t : level2[root * num_labels + l2].targets) {
          if ((*cone_task)[t]) {
            dirty[l2] = 1;
            break;
          }
        }
      }
    }
    for (size_t l2 = 0; l2 < num_labels; ++l2) {
      if (!dirty[l2]) continue;
      const size_t cell = root * num_labels + l2;
      ZeroPrefixSubtree(static_cast<LabelId>(root),
                        static_cast<LabelId>(l2), &map);
      if (cell_status[cell].ok() && level2[cell].size() > 0) {
        root_tasks[root].push_back(cell);
      }
    }
  };
  parallel_for(touched.size(), [&](size_t slot, size_t worker) {
    run_root(touched[slot], contexts[worker]);
  });

  // ---- Phase B: the dirty prefix tasks, heaviest-first like the full
  // build (presentation order never changes the result).
  std::vector<size_t> tasks;
  std::vector<uint64_t> weights;
  for (size_t root = 0; root < num_labels; ++root) {
    for (size_t cell : root_tasks[root]) {
      tasks.push_back(cell);
      weights.push_back(level2[cell].size());
    }
  }
  if (stats != nullptr) stats->dirty_tasks = tasks.size();
  const std::vector<size_t> order = HeaviestFirstOrder(weights);
  auto run_task = [&](size_t cell, EvalContext& ctx) {
    const size_t root = cell / num_labels;
    const LabelId l2 = static_cast<LabelId>(cell % num_labels);
    cell_status[cell] =
        EvaluateFusedPrefixTask(patched, ctx, static_cast<LabelId>(root), l2,
                                level2[cell], k, options, &map);
    level2[cell] = PairSet();
  };
  parallel_for(tasks.size(), [&](size_t slot, size_t worker) {
    run_task(tasks[order[slot]], contexts[worker]);
  });

  // DFS-order-first failure, exactly like the full build (clean slots
  // default to OK, so only re-evaluated work can report).
  for (size_t root = 0; root < num_labels; ++root) {
    if (!root_status[root].ok()) return std::move(root_status[root]);
    for (size_t cell = root * num_labels;
         k >= 3 && cell < (root + 1) * num_labels; ++cell) {
      if (!cell_status[cell].ok()) return std::move(cell_status[cell]);
    }
  }
  return map;
}

}  // namespace maint
}  // namespace pathest
