// pathest: the online-maintenance state machine — owns everything under
// `<catalog_dir>/maint/` and turns journaled edge deltas into refreshed
// catalog entries the serve daemon republishes.
//
// On-disk state (all writes atomic or append+fsync):
//
//   <catalog_dir>/maint/base.graph     text graph, the compaction base
//   <catalog_dir>/maint/base.map       checksummed binary SelectivityMap of
//                                      base.graph at depth k
//   <catalog_dir>/maint/deltas.journal edge-delta WAL (delta_journal.h)
//   <catalog_dir>/*.stats              the served entries, re-persisted
//                                      after every refresh
//
// Invariant: base.map == ComputeSelectivities(base.graph, k), and the
// journal holds every acknowledged delta since base.graph. The current
// in-memory state is base ⊕ journal. Because replay is idempotent
// (set-semantics graph, last-op-wins per triple), compaction needs no
// cross-file transaction: publish base.graph, then base.map, then reset
// the journal — a crash between any two steps leaves a state whose
// recovery converges to the same (graph, map): already-folded records
// replay as no-ops, and a stale base.map is detected (it stamps the CRC
// of the exact base.graph bytes it was computed from) and falls back to
// a full bootstrap rebuild.
//
// Recovery (daemon startup): load or bootstrap the base, recover the
// journal (torn tails amputated — the expected crash artifact), replay
// its deltas through PatchGraph + IncrementalSelectivities, re-persist
// every entry, and hand the daemon a fresh-statistics catalog. A journal
// with MID-FILE corruption, or a replay/rebuild failure, quarantines the
// journal to `<journal>.quarantine` and serves the base state — degraded,
// observable in `stats`, never an outage.
//
// Threading: JournalDeltas and pending_count are internally synchronized
// (request workers call them concurrently).
// Recover / Refresh / Compact / QuarantineJournal mutate the graph+map
// state and must be serialized by the caller (the daemon runs them on its
// single maintenance thread). labels() and k() are immutable after
// Recover and safe from any thread.

#ifndef PATHEST_MAINT_ONLINE_MAINTENANCE_H_
#define PATHEST_MAINT_ONLINE_MAINTENANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "graph/graph.h"
#include "histogram/builders.h"
#include "maint/delta_journal.h"
#include "maint/incremental.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {
namespace maint {

struct MaintenanceOptions {
  /// Catalog directory: entries at `<dir>/*.stats`, state at `<dir>/maint`.
  std::string catalog_dir;
  /// Bootstrap graph file. Required the first time (no base.graph yet);
  /// ignored once a base exists.
  std::string graph_path;
  /// Selectivity depth of the maintained map. 0 derives the maximum k over
  /// the healthy catalog entries; entries with a smaller k are rebuilt
  /// from a prefix of the map (the canonical layout nests spaces).
  size_t k = 0;
  /// Rebuild engine knobs (threads, kernel, pair guard).
  /// max_pairs_per_prefix must not shrink between builds of the same base.
  SelectivityOptions selectivity;
  /// Format for re-persisted entries.
  CatalogFormat save_format = CatalogFormat::kBinary;
  /// Auto-compact when the journal holds at least this many records
  /// (0 = only explicit Compact calls).
  uint64_t compact_every_records = 4096;
};

/// \brief How one catalog entry is rebuilt from the maintained map
/// (recovered from the entry itself at startup — the .stats formats store
/// ordering name, histogram type, β, and k).
struct EntryConfig {
  std::string name;  ///< file stem, also the serving key
  std::string ordering;
  HistogramType histogram_type = HistogramType::kEquiWidth;
  size_t num_buckets = 0;
  size_t k = 0;
};

/// \brief What Recover found and did (surfaced through serve `stats`).
struct RecoveryReport {
  uint64_t replayed_records = 0;  ///< valid journal records replayed
  uint64_t replayed_edges = 0;    ///< edge records among them
  bool torn_tail_truncated = false;
  uint64_t torn_bytes = 0;
  bool bootstrapped_base = false;  ///< base.map rebuilt from scratch
  bool quarantined = false;        ///< journal moved aside, serving base
  std::string quarantine_path;
  std::string detail;  ///< human-readable quarantine / bootstrap reason
};

/// \brief One applied refresh batch.
struct RefreshOutcome {
  uint64_t applied_edges = 0;
  uint64_t epoch = 0;
  bool compacted = false;
  IncrementalStats incremental;
  std::vector<std::string> refreshed_entries;
};

class OnlineMaintenance {
 public:
  explicit OnlineMaintenance(MaintenanceOptions options);

  OnlineMaintenance(const OnlineMaintenance&) = delete;
  OnlineMaintenance& operator=(const OnlineMaintenance&) = delete;

  /// \brief Startup recovery (see file comment). Fails hard only when the
  /// BASE state is unusable (no graph, unreadable catalog dir); journal
  /// trouble degrades into `report->quarantined` instead.
  Status Recover(RecoveryReport* report);

  bool recovered() const { return recovered_; }

  /// \brief Durably journals `deltas` (one fsynced batch). OK means every
  /// record survived to disk and the batch MAY be acknowledged; the deltas
  /// join the pending set the next Refresh applies. Returns the batch's
  /// TICKET — the cumulative count of deltas journaled this process; the
  /// batch is applied once applied_ticket() reaches it. Thread-safe.
  Result<uint64_t> JournalDeltas(const std::vector<EdgeDelta>& deltas);

  /// \brief Applies every pending delta: patches the graph, incrementally
  /// rebuilds the map, re-persists every maintained entry, appends an
  /// epoch barrier, and auto-compacts past the journal threshold. On
  /// failure the in-memory state is unchanged and the caller should
  /// QuarantineJournal. Maintenance-thread only.
  Result<RefreshOutcome> Refresh();

  /// \brief Folds the current state into a new base (graph, then map,
  /// then journal reset — see the crash-safety argument in the file
  /// comment). Maintenance-thread only.
  Status Compact();

  /// \brief Moves the journal aside to `<journal>.quarantine` (dropping
  /// pending deltas) so the daemon keeps serving the last APPLIED state,
  /// then rebases: the current in-memory state becomes the new base and a
  /// fresh journal is opened, so nothing already applied is lost across a
  /// restart — only the pending records of the quarantined journal are.
  /// Returns the quarantine path. Maintenance-thread only.
  Result<std::string> QuarantineJournal(const std::string& reason);

  /// \brief Label dictionary updates resolve names against. Immutable
  /// after Recover; safe from any thread.
  const LabelDictionary& labels() const { return labels_; }
  size_t k() const { return k_; }
  /// \brief Entries being maintained (recovered at startup).
  const std::vector<EntryConfig>& entries() const { return entries_; }
  /// \brief Refresh epochs applied so far.
  uint64_t epoch() const { return epoch_; }
  /// \brief Deltas journaled but not yet applied. Thread-safe.
  size_t pending_count() const;
  /// \brief Cumulative deltas applied (or dropped by a quarantine) this
  /// process — compare against a JournalDeltas ticket to learn whether a
  /// batch has been resolved. Thread-safe.
  uint64_t applied_ticket() const {
    return applied_ticket_.load(std::memory_order_acquire);
  }
  /// \brief Current graph (maintenance-thread only; tests).
  const Graph& graph() const { return *graph_; }
  /// \brief Current map (maintenance-thread only; tests).
  const SelectivityMap& map() const { return *map_; }

  std::string MaintDir() const { return options_.catalog_dir + "/maint"; }
  std::string JournalPath() const { return MaintDir() + "/deltas.journal"; }
  std::string BaseGraphPath() const { return MaintDir() + "/base.graph"; }
  std::string BaseMapPath() const { return MaintDir() + "/base.map"; }

 private:
  Status DiscoverEntries();
  // Loads <maint>/base.graph (or bootstraps it from options.graph_path on
  // first run), canonicalized through WriteGraphText so the in-memory
  // graph is bit-identical to what a restart will reload. Sets
  // base_graph_crc_ to the CRC32C of the on-disk bytes.
  Status LoadOrBootstrapBaseGraph(std::unique_ptr<Graph>* base_graph);
  // Rebuilds every EntryConfig from (graph, map) and atomically persists
  // them to <catalog_dir>/<name>.stats.
  Status PersistEntriesFor(const Graph& graph, const SelectivityMap& map,
                           std::vector<std::string>* refreshed);
  Status SaveBaseMap(const SelectivityMap& map);
  Result<SelectivityMap> LoadBaseMap();
  // The shared tail of Compact and QuarantineJournal: current state →
  // base.graph + base.map, journal reset to a compaction marker, pending
  // deltas re-journaled.
  Status RebaseAndResetJournal();

  MaintenanceOptions options_;
  bool recovered_ = false;
  size_t k_ = 0;
  LabelDictionary labels_;  // stable copy for cross-thread name resolution
  std::vector<EntryConfig> entries_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<SelectivityMap> map_;
  uint32_t base_graph_crc_ = 0;  // CRC32C of the on-disk base.graph bytes
  uint64_t epoch_ = 0;

  mutable std::mutex journal_mu_;  // guards writer_, pending_, the tickets
  DeltaJournalWriter writer_;
  std::vector<EdgeDelta> pending_;
  uint64_t journal_records_ = 0;
  uint64_t journaled_ticket_ = 0;
  std::atomic<uint64_t> applied_ticket_{0};
};

/// \brief Copies the length <= `new_k` prefix of `map` into a map over
/// PathSpace(num_labels, new_k) — exact because the canonical layout nests
/// smaller spaces as prefixes. Requires new_k <= map.space().k().
SelectivityMap ShrinkMapToK(const SelectivityMap& map, size_t new_k);

}  // namespace maint
}  // namespace pathest

#endif  // PATHEST_MAINT_ONLINE_MAINTENANCE_H_
