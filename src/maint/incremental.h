// pathest: incremental statistics rebuild — re-evaluate ONLY the
// selectivity-map slices an edge delta can have changed.
//
// The full build (path/selectivity.h, fused strategy) decomposes into a
// per-root pre-pass plus |L|² depth-2 prefix tasks (root, l₂), each
// writing a disjoint canonical-index slice. That decomposition is exactly
// what makes maintenance incremental: a batch of edge deltas dirties a
// computable subset of roots and tasks, and re-running just those —
// through the SAME exported primitives the full build uses
// (EvaluateFusedRootPrepass / EvaluateFusedPrefixTask) — patches an old
// map into precisely the map a full rebuild on the patched graph would
// produce. Equality is exact (the map holds exact uint64 counts), and the
// oracle test grid (tests/incremental_test.cc) enforces it bit-for-bit
// across kernels × strategies × thread counts.
//
// Dirtiness analysis. Let D = the set of labels carried by some delta
// edge, and U = the set of delta-edge SOURCE vertices. Define the
// backward cone C_j = vertices from which some u ∈ U is reachable within
// ≤ j hops over ANY label, computed on the UNION graph (patched graph
// plus the removed delta edges) so it covers paths that existed only
// before a removal as well as paths that exist only after an addition.
//
//   * A path of length ≤ k changes selectivity only if it can route
//     through a delta edge. If its root label r ∉ D, the delta edge sits
//     at position ≥ 2, so some level-1 target of r must reach a delta
//     source within ≤ k-2 hops: root r is TOUCHED iff r ∈ D or
//     targets(r) ∩ C_{k-2} ≠ ∅. Untouched roots are skipped entirely.
//   * Within a touched root with r ∉ D, the level-1 pair set is unchanged
//     (it is label r's edge list), and cell (r, l₂)'s level-2 set is
//     unchanged unless an l₂-labeled delta starts at a level-1 target.
//     The cell's DEEPER slices change only if the delta edge sits at
//     position ≥ 3: targets(level2(r,l₂)) ∩ C_{k-3} ≠ ∅. A cell failing
//     both tests is CLEAN and keeps its old subtree verbatim.
//   * r ∈ D dirties the whole root (its level-1 set changed, hence every
//     level-2 set derived from it).
//
// Each dirty task's subtree slice is zeroed (ZeroPrefixSubtree — the DFS
// prunes empty children assuming zeroed entries) and re-run against the
// patched graph; dirty cells whose new level-2 set is empty stay zeroed.
// The cone tests over-approximate (a vertex may reach U without any
// actual path using the delta edge), which costs redundant recomputation,
// never correctness.

#ifndef PATHEST_MAINT_INCREMENTAL_H_
#define PATHEST_MAINT_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "maint/delta_journal.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {
namespace maint {

/// \brief One edge mutation, label already resolved against the graph's
/// dictionary.
struct EdgeDelta {
  bool add = true;  ///< false = remove
  VertexId src = 0;
  VertexId dst = 0;
  LabelId label = 0;

  bool operator==(const EdgeDelta&) const = default;
};

/// \brief Extracts the edge mutations from a journal record stream, in
/// order (barriers and compaction markers are skipped).
std::vector<EdgeDelta> EdgeDeltasFromRecords(
    const std::vector<DeltaRecord>& records);

/// \brief Applies `deltas` (in order, last-op-wins per edge triple, set
/// semantics) to `graph` and builds the patched graph with the same
/// reverse-CSR setting. New vertices referenced by added edges grow the
/// vertex range; a delta naming a label id outside the dictionary is
/// InvalidArgument (new labels would change the PathSpace dimensions —
/// callers resolve label NAMES before journaling). Replay is idempotent:
/// adding a present edge or removing an absent one is a no-op.
Result<Graph> PatchGraph(const Graph& graph,
                         const std::vector<EdgeDelta>& deltas,
                         size_t num_threads = 1);

/// \brief Work accounting of one incremental rebuild (observability; the
/// serve daemon folds these into `stats`).
struct IncrementalStats {
  size_t num_deltas = 0;
  size_t touched_roots = 0;   ///< roots whose pre-pass re-ran
  size_t total_roots = 0;     ///< |L|
  size_t dirty_tasks = 0;     ///< depth-2 prefix tasks re-evaluated
  size_t total_tasks = 0;     ///< |L|² when k >= 3, else 0
  size_t cone_vertices = 0;   ///< |C_{k-2}| — the dirtiness frontier
};

/// \brief Rebuilds the selectivity map after `deltas`, re-evaluating only
/// dirtied slices of `old_map` (see file comment). `patched` MUST be the
/// graph `old_map` was computed on with `deltas` applied (PatchGraph), and
/// `options.max_pairs_per_prefix` must match the original build (a clean
/// task is never re-checked against a smaller guard). The result equals a
/// full ComputeSelectivities(patched, k, options) bit-for-bit — including,
/// on guard violations, returning the same DFS-order-first error.
///
/// `options.strategy` is ignored: the incremental engine IS the fused
/// depth-2 decomposition. `options.num_threads` parallelizes the touched
/// roots and dirty tasks exactly like the full build (bit-identical at
/// every thread count).
Result<SelectivityMap> IncrementalSelectivities(
    const Graph& patched, const SelectivityMap& old_map,
    const std::vector<EdgeDelta>& deltas, const SelectivityOptions& options,
    IncrementalStats* stats = nullptr);

}  // namespace maint
}  // namespace pathest

#endif  // PATHEST_MAINT_INCREMENTAL_H_
