// pathest: the crash-safe edge-delta journal — the write-ahead log of the
// online maintenance subsystem (maint/online_maintenance.h).
//
// An `update` is acknowledged to the client only after its record is
// appended AND fsynced here (util/safe_io.h DurableAppendFile), so an
// acknowledged delta survives any crash; on restart the daemon replays the
// journal over the base graph and rebuilds statistics incrementally
// (maint/incremental.h). The journal-then-snapshot shape follows the
// ytsaurus hydra changelog and couchbase-lite-core storage idiom:
// checksummed frames, idempotent replay, periodic compaction into a fresh
// base snapshot.
//
// File layout (all integers little-endian):
//
//   header   8 bytes: 0x89 'P' 'E' 'J' '1' 0x0A 0x00 0x00
//   frames, back to back:
//     u32 payload_length        in [1, kMaxJournalPayload]
//     u32 masked CRC32C         Crc32cMask(Crc32c(payload)) — masked like
//                               the catalog sections so a journal embedded
//                               in other checksummed data stays detectable
//     payload:
//       u8  kind               DeltaRecord::Kind
//       kAddEdge / kRemoveEdge:            u32 src, u32 dst, u32 label
//       kEpochBarrier / kCompactionMarker: u64 epoch
//
// Recovery contract (the changelog torn-tail rule):
//
//   * A bad frame with NO valid frame after it is a TORN TAIL — the
//     expected artifact of a crash mid-append. The scan returns every
//     record before it and RecoverDeltaJournal amputates the tail with a
//     durable truncate; nothing acknowledged is lost (acknowledgement
//     happens after fsync, and fsynced frames precede the tear).
//
//   * A bad frame with ANY structurally-valid frame after it is MID-FILE
//     corruption: truncating at the bad frame would drop the acknowledged
//     records behind it. That is a hard IOError — the caller quarantines
//     the journal (renames it aside) and serves the last good snapshot.
//
// Replay is idempotent: the graph has set semantics (duplicate edges
// dedup at build), so adding a present edge or removing an absent one is a
// no-op, and replaying records that a compaction already folded into the
// base converges to the same state. This is what makes the compaction
// sequence crash-safe with no cross-file transaction (see
// maint/online_maintenance.h).

#ifndef PATHEST_MAINT_DELTA_JOURNAL_H_
#define PATHEST_MAINT_DELTA_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/safe_io.h"
#include "util/status.h"

namespace pathest {
namespace maint {

/// \brief Hard cap on a frame's payload length. A length field above this
/// is corruption by definition — the validation that keeps a forged length
/// from driving a huge allocation or a bogus skip.
inline constexpr size_t kMaxJournalPayload = 64;

/// \brief The journal file header.
inline constexpr char kJournalMagic[8] = {'\x89', 'P',    'E',    'J',
                                          '1',    '\x0A', '\x00', '\x00'};

/// \brief One journaled event.
struct DeltaRecord {
  enum class Kind : uint8_t {
    kAddEdge = 1,
    kRemoveEdge = 2,
    /// Marks the end of one applied refresh batch (observability only;
    /// replay semantics do not depend on barriers).
    kEpochBarrier = 3,
    /// First record of a freshly-reset journal: everything before `epoch`
    /// is folded into the base snapshot.
    kCompactionMarker = 4,
  };

  Kind kind = Kind::kAddEdge;
  VertexId src = 0;
  VertexId dst = 0;
  LabelId label = 0;
  uint64_t epoch = 0;

  static DeltaRecord AddEdge(VertexId src, VertexId dst, LabelId label) {
    return DeltaRecord{Kind::kAddEdge, src, dst, label, 0};
  }
  static DeltaRecord RemoveEdge(VertexId src, VertexId dst, LabelId label) {
    return DeltaRecord{Kind::kRemoveEdge, src, dst, label, 0};
  }
  static DeltaRecord Barrier(uint64_t epoch) {
    return DeltaRecord{Kind::kEpochBarrier, 0, 0, 0, epoch};
  }
  static DeltaRecord Compaction(uint64_t epoch) {
    return DeltaRecord{Kind::kCompactionMarker, 0, 0, 0, epoch};
  }

  bool is_edge() const {
    return kind == Kind::kAddEdge || kind == Kind::kRemoveEdge;
  }
  bool operator==(const DeltaRecord&) const = default;
};

/// \brief Serializes one frame (length + masked CRC + payload) onto `out`.
/// Exposed for the fault-injection suite, which forges frames byte by
/// byte; production code goes through DeltaJournalWriter.
void AppendJournalFrame(std::string* out, const DeltaRecord& rec);

/// \brief Append-side handle. Every Append is frame + fsync: when it
/// returns OK the record is durable and may be acknowledged.
///
/// Precondition: an existing file must have been through
/// RecoverDeltaJournal (torn tail amputated) — appending after a tear
/// would strand the new frames behind garbage and turn a recoverable tail
/// into hard mid-file corruption. The daemon recovers before opening.
class DeltaJournalWriter {
 public:
  /// \brief Opens `path` for appending, writing + syncing the header if
  /// the file is new or empty; validates the header of an existing file.
  Status Open(const std::string& path);

  /// \brief Appends one record and fsyncs. OK == durable.
  Status Append(const DeltaRecord& rec);

  /// \brief Appends a batch under ONE fsync (amortized group commit).
  Status AppendBatch(const std::vector<DeltaRecord>& recs);

  /// \brief Closes the handle (no sync; everything acknowledged already
  /// was). Idempotent.
  void Close() { file_.Close(); }

  bool is_open() const { return file_.is_open(); }
  /// \brief Current end-of-file offset (header included).
  uint64_t offset() const { return file_.offset(); }

 private:
  DurableAppendFile file_;
};

/// \brief Outcome of a journal scan.
struct JournalScanResult {
  /// Every valid record, in append order (barriers and markers included).
  std::vector<DeltaRecord> records;
  /// File offset just past the last valid frame (== header size for an
  /// empty journal). A torn tail begins here.
  uint64_t last_good_offset = 0;
  /// Total file size at scan time.
  uint64_t file_bytes = 0;
  /// True when bytes past last_good_offset were a torn tail (no valid
  /// frame among them).
  bool torn_tail = false;
  /// Number of torn bytes (file_bytes - last_good_offset).
  uint64_t tail_bytes = 0;
};

/// \brief Scans `path` without modifying it. NotFound when the file does
/// not exist; IOError on a bad header or mid-file corruption (see the
/// recovery contract above); a torn tail is OK with torn_tail set.
Result<JournalScanResult> ScanDeltaJournal(const std::string& path);

/// \brief Scan + amputation: like ScanDeltaJournal, but a torn tail is
/// durably truncated away (truncate + fsync) so subsequent appends land on
/// a clean frame boundary. Idempotent — a crash mid-truncate just re-runs.
Result<JournalScanResult> RecoverDeltaJournal(const std::string& path);

/// \brief Atomically replaces the journal at `path` with a fresh one
/// holding only the header and one compaction marker for `epoch` — the
/// last step of a compaction (safe_io atomic tmp + fsync + rename). A
/// crash BEFORE this step leaves already-folded records in the journal;
/// replaying them over the new base is idempotent, so recovery converges.
Status ResetDeltaJournal(const std::string& path, uint64_t epoch);

}  // namespace maint
}  // namespace pathest

#endif  // PATHEST_MAINT_DELTA_JOURNAL_H_
