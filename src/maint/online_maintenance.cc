#include "maint/online_maintenance.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/catalog.h"
#include "graph/graph_io.h"
#include "ordering/factory.h"
#include "util/crc32c.h"

namespace pathest {
namespace maint {

namespace {

// base.map: magic | u32 L | u32 k | u32 masked CRC of the base.graph bytes
// it was computed from | u64 value count | values | u32 masked CRC of all
// preceding bytes. The graph CRC is the consistency stamp: a crash between
// the base.graph and base.map steps of a compaction leaves a stamp that no
// longer matches the graph file, which recovery treats as "no usable base
// map" and rebuilds from scratch.
constexpr char kBaseMapMagic[8] = {'\x89', 'P', 'E', 'S', 'T', 'M', '1',
                                   '\x0A'};

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError("mkdir '" + path + "': " + std::strerror(errno));
}

// File stem of a catalog entry path: ".../name.stats" -> "name".
std::string EntryNameFromPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string stem =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem.resize(dot);
  return stem;
}

std::vector<DeltaRecord> RecordsFromDeltas(
    const std::vector<EdgeDelta>& deltas) {
  std::vector<DeltaRecord> records;
  records.reserve(deltas.size());
  for (const EdgeDelta& d : deltas) {
    records.push_back(d.add ? DeltaRecord::AddEdge(d.src, d.dst, d.label)
                            : DeltaRecord::RemoveEdge(d.src, d.dst, d.label));
  }
  return records;
}

}  // namespace

SelectivityMap ShrinkMapToK(const SelectivityMap& map, size_t new_k) {
  PATHEST_CHECK(new_k <= map.space().k(),
                "ShrinkMapToK target exceeds source depth");
  SelectivityMap out(PathSpace(map.space().num_labels(), new_k));
  // Canonical layout nests spaces: LengthOffset is k-independent, so the
  // smaller space's entries are exactly the first size() values.
  const uint64_t n = out.space().size();
  const std::vector<uint64_t>& src = map.values();
  for (uint64_t i = 0; i < n; ++i) out.SetByCanonicalIndex(i, src[i]);
  return out;
}

OnlineMaintenance::OnlineMaintenance(MaintenanceOptions options)
    : options_(std::move(options)) {}

Status OnlineMaintenance::DiscoverEntries() {
  auto paths = ListCatalogEntryPaths(options_.catalog_dir);
  PATHEST_RETURN_NOT_OK(paths.status());
  for (const std::string& path : *paths) {
    auto loaded = LoadPathHistogram(path);
    if (!loaded.ok()) continue;  // unhealthy entries stay serve's concern
    EntryConfig config;
    config.name = EntryNameFromPath(path);
    config.ordering = loaded->estimator.ordering().name();
    config.histogram_type = loaded->estimator.histogram_type();
    config.num_buckets = loaded->estimator.histogram().num_buckets();
    config.k = loaded->estimator.ordering().space().k();
    entries_.push_back(std::move(config));
  }
  return Status::OK();
}

Status OnlineMaintenance::LoadOrBootstrapBaseGraph(
    std::unique_ptr<Graph>* base_graph) {
  std::string text;
  Status read = ReadFileToString(BaseGraphPath(), &text);
  if (!read.ok()) {
    // First run: canonicalize the bootstrap graph through WriteGraphText
    // and persist it, so the bytes on disk, their CRC stamp, and the
    // in-memory graph all describe the same edge list.
    if (options_.graph_path.empty()) {
      return Status::InvalidArgument(
          "no base graph at '" + BaseGraphPath() +
          "' and MaintenanceOptions.graph_path is empty");
    }
    GraphLoadOptions load;
    load.num_threads = options_.selectivity.num_threads;
    auto loaded = LoadGraphFile(options_.graph_path, load);
    PATHEST_RETURN_NOT_OK(loaded.status());
    std::ostringstream canonical;
    PATHEST_RETURN_NOT_OK(WriteGraphText(*loaded, &canonical));
    text = std::move(canonical).str();
    PATHEST_RETURN_NOT_OK(AtomicWriteFile(BaseGraphPath(), text));
  }
  base_graph_crc_ = Crc32c(text.data(), text.size());
  std::istringstream in(text);
  GraphLoadOptions load;
  load.num_threads = options_.selectivity.num_threads;
  auto graph = ReadGraphText(&in, load);
  if (!graph.ok()) {
    return Status::IOError("base graph '" + BaseGraphPath() +
                           "' unreadable: " + graph.status().message());
  }
  *base_graph = std::make_unique<Graph>(std::move(*graph));
  return Status::OK();
}

Status OnlineMaintenance::SaveBaseMap(const SelectivityMap& map) {
  std::string bytes(kBaseMapMagic, sizeof(kBaseMapMagic));
  AppendU32(&bytes, static_cast<uint32_t>(map.space().num_labels()));
  AppendU32(&bytes, static_cast<uint32_t>(map.space().k()));
  AppendU32(&bytes, Crc32cMask(base_graph_crc_));
  AppendU64(&bytes, map.space().size());
  for (uint64_t v : map.values()) AppendU64(&bytes, v);
  AppendU32(&bytes, Crc32cMask(Crc32c(bytes.data(), bytes.size())));
  return AtomicWriteFile(BaseMapPath(), bytes);
}

Result<SelectivityMap> OnlineMaintenance::LoadBaseMap() {
  std::string bytes;
  PATHEST_RETURN_NOT_OK(ReadFileToString(BaseMapPath(), &bytes));
  constexpr size_t kHeader = sizeof(kBaseMapMagic) + 4 + 4 + 4 + 8;
  if (bytes.size() < kHeader + 4 ||
      std::memcmp(bytes.data(), kBaseMapMagic, sizeof(kBaseMapMagic)) != 0) {
    return Status::IOError("'" + BaseMapPath() +
                           "' is not a base selectivity map");
  }
  BoundedReader trailer(
      std::string_view(bytes.data() + bytes.size() - 4, 4));
  uint32_t masked_file_crc = 0;
  PATHEST_RETURN_NOT_OK(trailer.ReadU32(&masked_file_crc, "file crc"));
  if (Crc32cUnmask(masked_file_crc) !=
      Crc32c(bytes.data(), bytes.size() - 4)) {
    return Status::IOError("'" + BaseMapPath() + "' failed its checksum");
  }
  BoundedReader reader(std::string_view(bytes.data() + sizeof(kBaseMapMagic),
                                        bytes.size() - sizeof(kBaseMapMagic) -
                                            4));
  uint32_t num_labels = 0, k = 0, masked_graph_crc = 0;
  uint64_t count = 0;
  PATHEST_RETURN_NOT_OK(reader.ReadU32(&num_labels, "label count"));
  PATHEST_RETURN_NOT_OK(reader.ReadU32(&k, "path depth"));
  PATHEST_RETURN_NOT_OK(reader.ReadU32(&masked_graph_crc, "graph crc"));
  PATHEST_RETURN_NOT_OK(reader.ReadU64(&count, "value count"));
  if (Crc32cUnmask(masked_graph_crc) != base_graph_crc_) {
    return Status::IOError(
        "'" + BaseMapPath() +
        "' was computed from a different base graph (stale compaction)");
  }
  if (num_labels != graph_->num_labels() || k != k_) {
    return Status::IOError("'" + BaseMapPath() + "' has dimensions (" +
                           std::to_string(num_labels) + ", " +
                           std::to_string(k) + "), expected (" +
                           std::to_string(graph_->num_labels()) + ", " +
                           std::to_string(k_) + ")");
  }
  SelectivityMap map(PathSpace(num_labels, k));
  if (count != map.space().size()) {
    return Status::IOError("'" + BaseMapPath() + "' value count mismatch");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    PATHEST_RETURN_NOT_OK(reader.ReadU64(&v, "selectivity value"));
    map.SetByCanonicalIndex(i, v);
  }
  if (!reader.AtEnd()) {
    return Status::IOError("'" + BaseMapPath() + "' has trailing bytes");
  }
  return map;
}

Status OnlineMaintenance::Recover(RecoveryReport* report) {
  PATHEST_CHECK(!recovered_, "Recover called twice");
  *report = RecoveryReport{};
  PATHEST_RETURN_NOT_OK(EnsureDir(MaintDir()));
  PATHEST_RETURN_NOT_OK(DiscoverEntries());

  k_ = options_.k;
  for (const EntryConfig& e : entries_) k_ = std::max(k_, e.k);
  if (k_ == 0) {
    return Status::InvalidArgument(
        "maintenance depth unknown: no loadable catalog entries and "
        "MaintenanceOptions.k == 0");
  }

  std::unique_ptr<Graph> base_graph;
  PATHEST_RETURN_NOT_OK(LoadOrBootstrapBaseGraph(&base_graph));
  graph_ = std::move(base_graph);  // LoadBaseMap checks dims against graph_

  SelectivityMap base_map{PathSpace(1, 1)};  // placeholder, assigned below
  {
    auto loaded = LoadBaseMap();
    if (loaded.ok()) {
      base_map = std::move(*loaded);
    } else {
      report->bootstrapped_base = true;
      report->detail = "base map rebuilt: " + loaded.status().message();
      auto built = ComputeSelectivities(*graph_, k_, options_.selectivity);
      PATHEST_RETURN_NOT_OK(built.status());
      base_map = std::move(*built);
      PATHEST_RETURN_NOT_OK(SaveBaseMap(base_map));
    }
  }

  // Journal: recover (amputating a torn tail), or quarantine it on hard
  // corruption and serve the base state.
  std::vector<DeltaRecord> records;
  auto quarantine_now = [&](const std::string& why) -> Status {
    const std::string aside = JournalPath() + ".quarantine";
    if (std::rename(JournalPath().c_str(), aside.c_str()) != 0) {
      return Status::IOError("quarantine rename '" + JournalPath() +
                             "': " + std::strerror(errno));
    }
    report->quarantined = true;
    report->quarantine_path = aside;
    report->detail = why;
    records.clear();
    return Status::OK();
  };
  auto recovered_scan = RecoverDeltaJournal(JournalPath());
  if (recovered_scan.ok()) {
    records = std::move(recovered_scan->records);
    report->torn_tail_truncated = recovered_scan->torn_tail;
    report->torn_bytes = recovered_scan->tail_bytes;
  } else if (recovered_scan.status().code() != StatusCode::kNotFound) {
    PATHEST_RETURN_NOT_OK(quarantine_now(recovered_scan.status().message()));
  }

  for (const DeltaRecord& rec : records) {
    epoch_ = std::max(epoch_, rec.epoch);
  }

  // Replay. A journal that recovers but will not apply (a record naming an
  // unknown label, a rebuild blowing the pair guard) quarantines the same
  // way hard corruption does; the base state keeps serving.
  const std::vector<EdgeDelta> deltas = EdgeDeltasFromRecords(records);
  bool applied_deltas = false;
  if (!deltas.empty()) {
    Status replay = [&]() -> Status {
      auto patched =
          PatchGraph(*graph_, deltas, options_.selectivity.num_threads);
      PATHEST_RETURN_NOT_OK(patched.status());
      auto new_map = IncrementalSelectivities(*patched, base_map, deltas,
                                              options_.selectivity);
      PATHEST_RETURN_NOT_OK(new_map.status());
      graph_ = std::make_unique<Graph>(std::move(*patched));
      map_ = std::make_unique<SelectivityMap>(std::move(*new_map));
      return Status::OK();
    }();
    if (replay.ok()) {
      applied_deltas = true;
      report->replayed_records = records.size();
      report->replayed_edges = deltas.size();
    } else {
      PATHEST_RETURN_NOT_OK(
          quarantine_now("journal replay failed: " + replay.message()));
    }
  }
  if (!applied_deltas) {
    map_ = std::make_unique<SelectivityMap>(std::move(base_map));
    report->replayed_records = records.size();  // barriers / markers only
  }

  if (report->quarantined) {
    PATHEST_RETURN_NOT_OK(ResetDeltaJournal(JournalPath(), epoch_));
    records.clear();
  }
  PATHEST_RETURN_NOT_OK(writer_.Open(JournalPath()));
  journal_records_ = report->quarantined ? 1 : records.size();

  labels_ = graph_->labels();
  recovered_ = true;

  // Re-persist the entries whenever the recovered statistics can differ
  // from what is on disk (deltas replayed, base rebuilt, or a journal
  // quarantined whose pre-crash refreshes had already been persisted).
  if (applied_deltas || report->bootstrapped_base || report->quarantined) {
    std::vector<std::string> refreshed;
    PATHEST_RETURN_NOT_OK(PersistEntriesFor(*graph_, *map_, &refreshed));
  }
  return Status::OK();
}

Result<uint64_t> OnlineMaintenance::JournalDeltas(
    const std::vector<EdgeDelta>& deltas) {
  PATHEST_CHECK(recovered_, "JournalDeltas before Recover");
  for (const EdgeDelta& d : deltas) {
    if (d.label >= labels_.size()) {
      return Status::InvalidArgument(
          "delta label id " + std::to_string(d.label) +
          " outside the dictionary (new labels need a full rebuild)");
    }
  }
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (deltas.empty()) return journaled_ticket_;
  PATHEST_RETURN_NOT_OK(writer_.AppendBatch(RecordsFromDeltas(deltas)));
  // Durable past this point: the batch may be acknowledged even if the
  // process dies before the next Refresh — restart replays it.
  pending_.insert(pending_.end(), deltas.begin(), deltas.end());
  journal_records_ += deltas.size();
  journaled_ticket_ += deltas.size();
  return journaled_ticket_;
}

size_t OnlineMaintenance::pending_count() const {
  std::lock_guard<std::mutex> lock(journal_mu_);
  return pending_.size();
}

Result<RefreshOutcome> OnlineMaintenance::Refresh() {
  PATHEST_CHECK(recovered_, "Refresh before Recover");
  std::vector<EdgeDelta> batch;
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    batch.swap(pending_);
  }
  RefreshOutcome outcome;
  outcome.epoch = epoch_;
  if (batch.empty()) return outcome;

  // Any failure below restores the batch to the FRONT of the pending queue
  // (later deltas may have arrived meanwhile) and leaves the served state
  // untouched; the records stay in the journal either way.
  auto restore = [&]() {
    std::lock_guard<std::mutex> lock(journal_mu_);
    pending_.insert(pending_.begin(), batch.begin(), batch.end());
  };

  auto patched = PatchGraph(*graph_, batch, options_.selectivity.num_threads);
  if (!patched.ok()) {
    restore();
    return patched.status();
  }
  auto new_map = IncrementalSelectivities(*patched, *map_, batch,
                                          options_.selectivity,
                                          &outcome.incremental);
  if (!new_map.ok()) {
    restore();
    return new_map.status();
  }
  Status persisted =
      PersistEntriesFor(*patched, *new_map, &outcome.refreshed_entries);
  if (!persisted.ok()) {
    restore();
    return persisted;
  }

  graph_ = std::make_unique<Graph>(std::move(*patched));
  map_ = std::make_unique<SelectivityMap>(std::move(*new_map));
  labels_ = graph_->labels();
  epoch_ += 1;
  outcome.epoch = epoch_;
  outcome.applied_edges = batch.size();
  applied_ticket_.fetch_add(batch.size(), std::memory_order_release);
  {
    // Observability only — replay does not depend on barriers, so a
    // failed barrier append degrades to a missing marker, not a failed
    // refresh.
    std::lock_guard<std::mutex> lock(journal_mu_);
    if (writer_.Append(DeltaRecord::Barrier(epoch_)).ok()) {
      journal_records_ += 1;
    }
  }

  uint64_t records_now;
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    records_now = journal_records_;
  }
  if (options_.compact_every_records > 0 &&
      records_now >= options_.compact_every_records) {
    PATHEST_RETURN_NOT_OK(Compact());
    outcome.compacted = true;
  }
  return outcome;
}

Status OnlineMaintenance::RebaseAndResetJournal() {
  std::ostringstream canonical;
  PATHEST_RETURN_NOT_OK(WriteGraphText(*graph_, &canonical));
  const std::string text = std::move(canonical).str();
  PATHEST_RETURN_NOT_OK(AtomicWriteFile(BaseGraphPath(), text));
  base_graph_crc_ = Crc32c(text.data(), text.size());
  PATHEST_RETURN_NOT_OK(SaveBaseMap(*map_));

  std::lock_guard<std::mutex> lock(journal_mu_);
  writer_.Close();
  PATHEST_RETURN_NOT_OK(ResetDeltaJournal(JournalPath(), epoch_));
  PATHEST_RETURN_NOT_OK(writer_.Open(JournalPath()));
  journal_records_ = 1;  // the compaction marker
  if (!pending_.empty()) {
    // Deltas journaled during the compaction (acknowledged, not yet
    // applied) must survive the reset: re-journal them into the fresh
    // file before anything else lands.
    PATHEST_RETURN_NOT_OK(writer_.AppendBatch(RecordsFromDeltas(pending_)));
    journal_records_ += pending_.size();
  }
  return Status::OK();
}

Status OnlineMaintenance::Compact() {
  PATHEST_CHECK(recovered_, "Compact before Recover");
  return RebaseAndResetJournal();
}

Result<std::string> OnlineMaintenance::QuarantineJournal(
    const std::string& reason) {
  PATHEST_CHECK(recovered_, "QuarantineJournal before Recover");
  (void)reason;  // callers log it; the journal content speaks for itself
  const std::string aside = JournalPath() + ".quarantine";
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    writer_.Close();
    if (std::rename(JournalPath().c_str(), aside.c_str()) != 0) {
      return Status::IOError("quarantine rename '" + JournalPath() +
                             "': " + std::strerror(errno));
    }
    pending_.clear();
    // Every journaled ticket is now RESOLVED (applied earlier, or dropped
    // just now) — without this, waiters on dropped batches and every
    // later ticket would lag behind forever.
    applied_ticket_.store(journaled_ticket_, std::memory_order_release);
  }
  // Rebase so a restart recovers exactly the state we keep serving —
  // quarantine loses the journal's pending records, never applied ones.
  PATHEST_RETURN_NOT_OK(RebaseAndResetJournal());
  return aside;
}

Status OnlineMaintenance::PersistEntriesFor(
    const Graph& graph, const SelectivityMap& map,
    std::vector<std::string>* refreshed) {
  for (const EntryConfig& entry : entries_) {
    const SelectivityMap* source = &map;
    SelectivityMap shrunk{PathSpace(1, 1)};  // placeholder, assigned below
    if (entry.k < map.space().k()) {
      shrunk = ShrinkMapToK(map, entry.k);
      source = &shrunk;
    }
    auto ordering =
        MakeOrderingWithSelectivities(entry.ordering, graph, entry.k, *source);
    PATHEST_RETURN_NOT_OK(ordering.status());
    auto estimator = PathHistogram::Build(*source, std::move(*ordering),
                                          entry.histogram_type,
                                          entry.num_buckets);
    PATHEST_RETURN_NOT_OK(estimator.status());
    PATHEST_RETURN_NOT_OK(SavePathHistogram(
        *estimator, graph, options_.catalog_dir + "/" + entry.name + ".stats",
        options_.save_format));
    if (refreshed != nullptr) refreshed->push_back(entry.name);
  }
  return Status::OK();
}

}  // namespace maint
}  // namespace pathest
