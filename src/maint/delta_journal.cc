#include "maint/delta_journal.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "util/crc32c.h"

namespace pathest {
namespace maint {

namespace {

constexpr size_t kHeaderBytes = sizeof(kJournalMagic);
constexpr size_t kFrameOverhead = 8;  // u32 length + u32 masked CRC

void AppendPayload(std::string* out, const DeltaRecord& rec) {
  out->push_back(static_cast<char>(rec.kind));
  switch (rec.kind) {
    case DeltaRecord::Kind::kAddEdge:
    case DeltaRecord::Kind::kRemoveEdge:
      AppendU32(out, rec.src);
      AppendU32(out, rec.dst);
      AppendU32(out, rec.label);
      break;
    case DeltaRecord::Kind::kEpochBarrier:
    case DeltaRecord::Kind::kCompactionMarker:
      AppendU64(out, rec.epoch);
      break;
  }
}

// Parses one CRC-valid payload. A failure here is NOT a torn tail — the
// frame's checksum passed, so the content itself is wrong (unknown kind,
// wrong field width): hard corruption either way.
Status ParsePayload(std::string_view payload, DeltaRecord* out) {
  BoundedReader reader(payload);
  uint8_t kind_byte = 0;
  PATHEST_RETURN_NOT_OK(reader.ReadBytes(&kind_byte, 1, "record kind"));
  DeltaRecord rec;
  switch (kind_byte) {
    case static_cast<uint8_t>(DeltaRecord::Kind::kAddEdge):
    case static_cast<uint8_t>(DeltaRecord::Kind::kRemoveEdge):
      rec.kind = static_cast<DeltaRecord::Kind>(kind_byte);
      PATHEST_RETURN_NOT_OK(reader.ReadU32(&rec.src, "edge src"));
      PATHEST_RETURN_NOT_OK(reader.ReadU32(&rec.dst, "edge dst"));
      PATHEST_RETURN_NOT_OK(reader.ReadU32(&rec.label, "edge label"));
      break;
    case static_cast<uint8_t>(DeltaRecord::Kind::kEpochBarrier):
    case static_cast<uint8_t>(DeltaRecord::Kind::kCompactionMarker):
      rec.kind = static_cast<DeltaRecord::Kind>(kind_byte);
      PATHEST_RETURN_NOT_OK(reader.ReadU64(&rec.epoch, "record epoch"));
      break;
    default:
      return Status::IOError("unknown journal record kind " +
                             std::to_string(kind_byte));
  }
  if (!reader.AtEnd()) {
    return Status::IOError("journal record has trailing payload bytes");
  }
  *out = rec;
  return Status::OK();
}

uint32_t ReadLE32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // build targets are little-endian (same contract as safe_io)
}

// True when a structurally-valid frame starts at `offset` (length in
// range, fits in the file, checksum matches). Used to distinguish a torn
// tail (no valid frame past the bad one) from mid-file corruption.
bool ValidFrameAt(std::string_view bytes, size_t offset) {
  if (bytes.size() - offset < kFrameOverhead) return false;
  const uint32_t len = ReadLE32(bytes.data() + offset);
  if (len < 1 || len > kMaxJournalPayload) return false;
  if (bytes.size() - offset - kFrameOverhead < len) return false;
  const uint32_t masked = ReadLE32(bytes.data() + offset + 4);
  const uint32_t crc = Crc32c(bytes.data() + offset + kFrameOverhead, len);
  return Crc32cUnmask(masked) == crc;
}

Status ScanBytes(std::string_view bytes, const std::string& path,
                 JournalScanResult* out) {
  out->file_bytes = bytes.size();
  // Header. A file shorter than the header that is a PREFIX of the magic
  // is a crash during creation (torn tail at offset 0); anything else that
  // mismatches is not a journal at all.
  if (bytes.size() < kHeaderBytes) {
    if (std::memcmp(bytes.data(), kJournalMagic, bytes.size()) != 0) {
      return Status::IOError("'" + path + "' is not an edge-delta journal");
    }
    out->last_good_offset = 0;
    out->torn_tail = bytes.size() > 0;
    out->tail_bytes = bytes.size();
    return Status::OK();
  }
  if (std::memcmp(bytes.data(), kJournalMagic, kHeaderBytes) != 0) {
    return Status::IOError("'" + path + "' is not an edge-delta journal");
  }

  size_t offset = kHeaderBytes;
  while (offset < bytes.size()) {
    if (!ValidFrameAt(bytes, offset)) {
      // First bad frame. If ANY later offset begins a valid frame, the
      // damage is mid-file: truncating here would drop the acknowledged
      // records behind it — hard error. Otherwise it is the torn tail of
      // a crashed append.
      for (size_t probe = offset + 1;
           probe + kFrameOverhead <= bytes.size(); ++probe) {
        if (ValidFrameAt(bytes, probe)) {
          return Status::IOError(
              "'" + path + "': corrupt frame at offset " +
              std::to_string(offset) +
              " followed by a valid frame — mid-file corruption, not a "
              "torn tail");
        }
      }
      out->torn_tail = true;
      out->tail_bytes = bytes.size() - offset;
      out->last_good_offset = offset;
      return Status::OK();
    }
    const uint32_t len = ReadLE32(bytes.data() + offset);
    DeltaRecord rec;
    Status st = ParsePayload(
        std::string_view(bytes.data() + offset + kFrameOverhead, len), &rec);
    if (!st.ok()) {
      return Status::IOError("'" + path + "': frame at offset " +
                             std::to_string(offset) + ": " + st.message());
    }
    out->records.push_back(rec);
    offset += kFrameOverhead + len;
  }
  out->last_good_offset = offset;
  return Status::OK();
}

}  // namespace

void AppendJournalFrame(std::string* out, const DeltaRecord& rec) {
  std::string payload;
  AppendPayload(&payload, rec);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32cMask(Crc32c(payload.data(), payload.size())));
  out->append(payload);
}

Status DeltaJournalWriter::Open(const std::string& path) {
  PATHEST_RETURN_NOT_OK(file_.Open(path));
  if (file_.offset() == 0) {
    PATHEST_RETURN_NOT_OK(
        file_.Append(std::string_view(kJournalMagic, sizeof(kJournalMagic))));
    PATHEST_RETURN_NOT_OK(file_.Sync());
    return Status::OK();
  }
  // Existing file: validate the header (the record frames were validated
  // by the recovery scan this handle's contract requires).
  std::string head;
  Status st = ReadFileToString(path, &head);
  if (!st.ok()) {
    file_.Close();
    return st;
  }
  if (head.size() < kHeaderBytes ||
      std::memcmp(head.data(), kJournalMagic, kHeaderBytes) != 0) {
    file_.Close();
    return Status::IOError("'" + path + "' is not an edge-delta journal");
  }
  return Status::OK();
}

Status DeltaJournalWriter::Append(const DeltaRecord& rec) {
  std::string frame;
  AppendJournalFrame(&frame, rec);
  PATHEST_RETURN_NOT_OK(file_.Append(frame));
  return file_.Sync();
}

Status DeltaJournalWriter::AppendBatch(const std::vector<DeltaRecord>& recs) {
  if (recs.empty()) return Status::OK();
  std::string frames;
  for (const DeltaRecord& rec : recs) AppendJournalFrame(&frames, rec);
  PATHEST_RETURN_NOT_OK(file_.Append(frames));
  return file_.Sync();
}

Result<JournalScanResult> ScanDeltaJournal(const std::string& path) {
  struct stat sb;
  if (::stat(path.c_str(), &sb) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no journal at '" + path + "'");
    }
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(errno));
  }
  std::string bytes;
  PATHEST_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  JournalScanResult result;
  PATHEST_RETURN_NOT_OK(ScanBytes(bytes, path, &result));
  return result;
}

Result<JournalScanResult> RecoverDeltaJournal(const std::string& path) {
  auto scan = ScanDeltaJournal(path);
  if (!scan.ok()) return scan.status();
  if (scan->torn_tail) {
    PATHEST_RETURN_NOT_OK(TruncateFileDurable(path, scan->last_good_offset));
    scan->file_bytes = scan->last_good_offset;
  }
  return scan;
}

Status ResetDeltaJournal(const std::string& path, uint64_t epoch) {
  std::string bytes(kJournalMagic, sizeof(kJournalMagic));
  AppendJournalFrame(&bytes, DeltaRecord::Compaction(epoch));
  return AtomicWriteFile(path, bytes);
}

}  // namespace maint
}  // namespace pathest
