#include "core/error.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace pathest {

double SignedErrorRate(double estimate, double truth) {
  if (estimate == truth) return 0.0;
  return (estimate - truth) / std::max(estimate, truth);
}

double AbsoluteErrorRate(double estimate, double truth) {
  return std::abs(SignedErrorRate(estimate, truth));
}

double QError(double estimate, double truth) {
  double lo = std::min(estimate, truth);
  double hi = std::max(estimate, truth);
  if (hi == 0.0) return 1.0;
  if (lo == 0.0) return hi;
  return hi / lo;
}

ErrorSummary SummarizeErrors(std::vector<double> abs_errors) {
  ErrorSummary summary;
  summary.num_queries = abs_errors.size();
  if (abs_errors.empty()) return summary;
  double sum = 0.0;
  uint64_t exact = 0;
  for (double e : abs_errors) {
    PATHEST_CHECK(e >= 0.0, "absolute error must be non-negative");
    sum += e;
    if (e == 0.0) ++exact;
    summary.max_abs_error = std::max(summary.max_abs_error, e);
  }
  summary.mean_abs_error = sum / static_cast<double>(abs_errors.size());
  summary.exact_fraction =
      static_cast<double>(exact) / static_cast<double>(abs_errors.size());
  std::sort(abs_errors.begin(), abs_errors.end());
  auto quantile = [&](double q) {
    size_t pos = static_cast<size_t>(q * static_cast<double>(
                                             abs_errors.size() - 1));
    return abs_errors[pos];
  };
  summary.median_abs_error = quantile(0.5);
  summary.p90_abs_error = quantile(0.9);
  return summary;
}

}  // namespace pathest
