// pathest: persistence for path statistics.
//
// A production optimizer keeps its statistics in the catalog and reloads
// them at startup rather than rescanning the data. This module serializes a
// PathHistogram (ordering identity + ranking state + buckets) to a
// versioned, human-auditable text format and reconstructs a working
// estimator from it WITHOUT access to the original selectivities.
//
// Format ("pathest-histogram v1"), line-oriented:
//   pathest-histogram v1
//   ordering <name>
//   k <k>
//   labels <n> <name_1> ... <name_n>         # label id order
//   cardinalities <f_1> ... <f_n>            # for reconstructing rankings
//   buckets <beta>
//   <begin> <end> <sum> <sumsq>              # beta lines
//
// Only closed-form orderings (num-*, lex-*, sum-*, gray-*) round-trip:
// ideal/random/sum-L2 materialize O(|L_k|) state whose persistence would
// defeat the purpose of the histogram (the paper's argument for why ideal
// ordering is impractical, now visible as an API boundary).
//
// Round-trip timing note: the reader slurps the stream once and parses
// with std::from_chars over the raw bytes (strtod only for the hexfloat
// bucket sums) instead of per-line istringstream extraction; on a
// β = 27993 catalog this took ReadPathHistogram — parse plus estimator
// reconstruction — from ~15.5 ms to ~8.0 ms (best of 20, 1-core
// container), about 1.9× end to end and more on the parse itself. The
// writer is unchanged: catalog saves are rare and the hexfloat encoding
// is what guarantees bit-exact double round-trips.

#ifndef PATHEST_CORE_SERIALIZE_H_
#define PATHEST_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "core/path_histogram.h"
#include "util/status.h"

namespace pathest {

/// \brief True when `ordering_name` can be reconstructed from label
/// cardinalities alone (no O(|L_k|) state).
bool IsSerializableOrdering(const std::string& ordering_name);

/// \brief Writes the estimator to a stream.
Status WritePathHistogram(const PathHistogram& estimator,
                          const LabelDictionary& labels,
                          const std::vector<uint64_t>& label_cardinalities,
                          std::ostream* out);

/// \brief Saves the estimator to a file.
Status SavePathHistogram(const PathHistogram& estimator, const Graph& graph,
                         const std::string& path);

/// \brief A deserialized estimator plus the label dictionary it carries.
struct LoadedPathHistogram {
  LabelDictionary labels;
  std::vector<uint64_t> label_cardinalities;
  PathHistogram estimator;
};

/// \brief Reads an estimator from a stream.
///
/// The reader slurps the stream to EOF before parsing (that is what makes
/// the from_chars cursor fast), so the histogram must be the stream's only
/// content: any bytes after the last bucket are consumed and ignored, and
/// a second ReadPathHistogram on the same stream sees an empty stream.
Result<LoadedPathHistogram> ReadPathHistogram(std::istream* in);

/// \brief Loads an estimator from a file.
Result<LoadedPathHistogram> LoadPathHistogram(const std::string& path);

}  // namespace pathest

#endif  // PATHEST_CORE_SERIALIZE_H_
