// pathest: persistence for path statistics.
//
// A production optimizer keeps its statistics in the catalog and reloads
// them at startup rather than rescanning the data. This module serializes a
// PathHistogram (ordering identity + ranking state + buckets) in two
// formats and reconstructs a working estimator WITHOUT access to the
// original selectivities:
//
//   - a versioned, human-auditable TEXT format (the interchange/debug
//     path), and
//   - a versioned, checksummed BINARY catalog (format v1, below) — the
//     serving format, whose section layout is designed so a future tier
//     can mmap it and fix up pointers instead of parsing.
//
// LoadPathHistogram sniffs the leading magic and dispatches, so every
// caller (CLI, catalog, benches) reads both formats transparently.
//
// ---------------------------------------------------------------------------
// Text format ("pathest-histogram v1"), line-oriented:
//   pathest-histogram v1
//   ordering <name>
//   type <histogram-type>
//   k <k>
//   labels <n> <name_1> ... <name_n>         # label id order
//   cardinalities <f_1> ... <f_n>            # for reconstructing rankings
//   buckets <beta>
//   <begin> <end> <sum> <sumsq>              # beta lines, sums in hexfloat
//
// ---------------------------------------------------------------------------
// Binary catalog format v1 ("PESTB1"). All fields little-endian,
// fixed-width; doubles travel as their IEEE-754 bit pattern in a u64
// (bit-exact round trips, no locale, no hexfloat parsing).
//
// Header (32 bytes):
//   offset  size  field
//   0       8     magic: 89 'P' 'E' 'S' 'T' 'B' '1' 0A
//                 (high-bit lead byte + trailing \n, PNG-style: a text
//                 transfer that mangles either is caught at the magic)
//   8       4     u32 format version (= 1)
//   12      4     u32 section count
//   16      8     u64 total file size (must equal the actual byte count —
//                 truncation and padding are caught before any section CRC)
//   24      4     u32 CRC32C over header bytes [0, 24)
//   28      4     u32 CRC32C over the section table bytes
//
// Section table (24 bytes per entry, immediately after the header):
//   u32 section id      u32 CRC32C of the payload
//   u64 absolute offset u64 payload length
// Entries are sorted by ascending id; ids must be unique and known.
// Payloads follow the table back to back, but readers MUST navigate via
// the table (offset/length), never by accumulation — that is what makes
// the layout extensible and each section independently verifiable.
//
// Section payloads (every CRC is verified BEFORE its payload is parsed;
// every count is bounds-checked against the payload size before any
// allocation — see util/safe_io.h BoundedReader):
//   1 ordering       lpstr ordering-name, lpstr histogram-type, u32 k,
//                    u32 reserved(0)          (lpstr = u32 length + bytes)
//   2 labels         u32 n, then n lpstr names in label-id order
//   3 cardinalities  u32 n (== labels n), u32 reserved(0), n × u64 f(l)
//   4 histogram      u64 beta, then FOUR structure-of-arrays rows of beta
//                    u64s each: begin[], end[], sum-bits[], sumsq-bits[]
//                    (column-major — the serving FlatHistogram layout, so
//                    the future mmap tier can point straight at the rows)
//   5 composition    u32 |L|, u32 k, u64 value-count, then for each
//                    m in [1, k] the row Count(sum, m) for
//                    sum in [m, m·|L|] — the sum-based ordering's stage-2
//                    CompositionTable. Present iff the ordering is of the
//                    sum family; verified against a freshly built table on
//                    load (semantic integrity beyond the CRC).
//
// ---------------------------------------------------------------------------
// Binary catalog format v2 ("PESTB2") — the mmap serving format. Same
// 32-byte header and 24-byte section-table layout as v1 (only the magic
// byte '1' -> '2' and the version field differ), but the body is laid out
// for zero-copy consumption:
//
//   * Every section OFFSET is a multiple of kPageBytes (4096). The gap
//     between a section's end and the next section's page-aligned start is
//     zero padding that belongs to NO section: it is outside every CRC and
//     provably ignored by readers (payload lengths are exact).
//   * Every interior ARRAY starts at a multiple of kArrayAlignBytes (64)
//     relative to its payload start. Since page >> 64, the arrays are also
//     64-aligned in absolute file (and therefore mapping) addresses.
//     Padding between a payload's prolog and its arrays is INSIDE the
//     payload, hence covered by the section CRC — a flip there is detected.
//   * Bulk data travels as full little-endian u64 / IEEE-754-bit rows that
//     a mapped reader can point spans at with zero parsing.
//
// v2 section payloads (1-3 are byte-identical to v1):
//   4 histogram    u64 beta, u64 domain_size, then 64-aligned rows
//                  begin u64[beta], end u64[beta], sum-bits u64[beta],
//                  sumsq-bits u64[beta]  (the v1 diagnostic rows), plus the
//                  PRECOMPUTED serving rows of histogram/flat_histogram.h:
//                  mean f64[beta], prefix f64[beta+1],
//                  eytz-begin u64[beta+1], eytz-rank u32[beta+1]
//   5 composition  u32 |L|, u32 k, u64 value-count, then 64-aligned rows
//                  counts u64[value-count]  (v1's m-major rows) and
//                  prefix u64[value-count + k]  (the stage-2 prefix rows
//                  the sum-based Rank fast path reads)
//   6 sum-index    u32 key-scheme (ordering/sum_based.h SumKeyScheme),
//                  u32 key-bits, u64 num-cells, u64 total-blocks, then
//                  64-aligned rows cell-starts u64[num-cells + 1],
//                  keys / offsets / nops u64[total-blocks] each — the flat
//                  stage-3 index exactly as SumBasedOrdering consumes it.
//                  Under scheme kNone: num-cells = total-blocks = 0 and the
//                  payload is the 24-byte prolog alone.
// Sections 5 and 6 are present iff the ordering is of the sum family.
//
// Because the serving rows are persisted rather than derived, constructing
// an Estimator from a mapped v2 file is pure pointer fixup
// (core/mapped_catalog.h) — microseconds and O(1) allocations, with the
// row bytes faulted lazily by the kernel. The copying loader
// (ReadPathHistogramBinaryV2) instead verifies the derived rows against a
// fresh rebuild (full-tier semantics) and returns an owned estimator.
//
// Versioning/compat rules: the major version in the header is bumped on
// ANY layout change to existing sections; readers reject versions they do
// not know. New OPTIONAL sections may be added under new ids without a
// version bump only once readers skip unknown ids — v1 readers do NOT
// (unknown ids are an error), so v1 writers must emit exactly the sections
// above. The committed golden catalog (tests/golden/) pins this layout
// byte-for-byte against accidental drift.
//
// Corruption contract (enforced by tests/fault_injection_test.cc): any
// truncation, bit flip, or forged length/count in a catalog file yields a
// typed Status from the loader — never a crash, hang, unbounded
// allocation, or silently wrong estimator.
//
// Only closed-form orderings (num-*, lex-*, sum-*, gray-*) round-trip:
// ideal/random/sum-L2 materialize O(|L_k|) state whose persistence would
// defeat the purpose of the histogram (the paper's argument for why ideal
// ordering is impractical, now visible as an API boundary).
//
// Timing note (β = 27993 catalog, 1-core container): the text reader —
// slurp + from_chars cursor — costs ~8 ms end to end; the binary reader
// replaces parsing with CRC walks plus memcpy and is the reason the
// serving path prefers this format (see BENCH_catalog_io.json).

#ifndef PATHEST_CORE_SERIALIZE_H_
#define PATHEST_CORE_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/path_histogram.h"
#include "util/status.h"

namespace pathest {

/// \brief On-disk representation of a persisted estimator.
enum class CatalogFormat {
  kText,      // line-oriented, human-auditable (interchange/debug)
  kBinary,    // checksummed section-table binary v1 (serving)
  kBinaryV2,  // page-aligned binary v2 (mmap zero-copy serving)
};

const char* CatalogFormatName(CatalogFormat format);
Result<CatalogFormat> ParseCatalogFormat(const std::string& name);

/// \brief How much of a binary catalog v2 to verify before serving it.
///
/// Every tier ALWAYS verifies the header, the section table, page
/// alignment, and the metadata sections (ordering/labels/cardinalities,
/// CRC + full parse) plus the shape prologs of the bulk sections. The
/// tiers differ in how the BULK bytes are treated:
///
///   kTrusted   no bulk CRC, no scans — O(metadata) work, the fast-restart
///              mode. Safe ONLY for files this process (or its cache) has
///              already admitted at kChecksums or better: a flipped bulk
///              byte would serve wrong estimates undetected.
///   kChecksums CRC32C over every bulk section plus structural scans
///              (monotone begins, Eytzinger consistency, prefix-row
///              consistency, ascending index keys). The CatalogCache
///              admission tier — every byte generation is checked once.
///   kFull      kChecksums plus semantic rebuild comparisons: serving rows
///              vs a fresh FlatHistogram, composition rows vs a fresh
///              CompositionTable, stage-3 index vs BuildSumStage3Index.
///              What `catalog verify` and the copying loader use.
enum class CatalogVerify {
  kTrusted,
  kChecksums,
  kFull,
};

const char* CatalogVerifyName(CatalogVerify verify);

/// Binary-format layout constants, exported so the fault-injection harness
/// (util/fault_injection.h) and the format tests can compute section
/// boundaries without a parallel definition of the layout.
namespace binfmt {

inline constexpr size_t kMagicBytes = 8;
inline constexpr unsigned char kMagic[kMagicBytes] = {0x89, 'P',  'E', 'S',
                                                      'T',  'B',  '1', 0x0A};
inline constexpr unsigned char kMagicV2[kMagicBytes] = {0x89, 'P',  'E', 'S',
                                                        'T',  'B',  '2', 0x0A};
inline constexpr uint32_t kVersion = 1;
inline constexpr uint32_t kVersionV2 = 2;
inline constexpr size_t kHeaderBytes = 32;
inline constexpr size_t kSectionEntryBytes = 24;
/// Hard ceiling on the section count a reader will consider (v1 writes at
/// most 5, v2 at most 6); anything larger is a forged header.
inline constexpr uint32_t kMaxSections = 64;

/// v2 alignment rules: section offsets are page multiples; interior arrays
/// are 64-byte multiples relative to their payload start (and, page being
/// a multiple of 64, in absolute mapped addresses too).
inline constexpr uint64_t kPageBytes = 4096;
inline constexpr uint64_t kArrayAlignBytes = 64;

enum SectionId : uint32_t {
  kSectionOrdering = 1,
  kSectionLabels = 2,
  kSectionCardinalities = 3,
  kSectionHistogram = 4,
  kSectionComposition = 5,
  kSectionSumIndex = 6,  // v2 only
};

/// \brief Stable name of a section id ("ordering", ...; "?" if unknown).
const char* SectionName(uint32_t id);

inline constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

/// v2 payload geometry, computed from the shape prologs alone — the ONE
/// definition of every interior-array offset, shared by the writer, the
/// copying reader, the mapped reader, and the layout tests. All offsets
/// are relative to the payload start; payload_bytes is the exact (unpadded)
/// payload length the section-table entry must carry.
struct HistogramLayoutV2 {
  uint64_t begin_off, end_off, sum_off, sumsq_off;       // u64[beta] each
  uint64_t mean_off, prefix_off;                         // f64[beta], [beta+1]
  uint64_t eytz_begin_off;                               // u64[beta+1]
  uint64_t eytz_rank_off;                                // u32[beta+1]
  uint64_t payload_bytes;
};
HistogramLayoutV2 HistogramLayout(uint64_t beta);

struct CompositionLayoutV2 {
  uint64_t counts_off;  // u64[num_values]
  uint64_t prefix_off;  // u64[num_values + max_len]
  uint64_t payload_bytes;
};
CompositionLayoutV2 CompositionLayout(uint64_t num_values, uint64_t max_len);

struct SumIndexLayoutV2 {
  uint64_t cell_starts_off;  // u64[num_cells + 1]
  uint64_t keys_off, offsets_off, nops_off;  // u64[total_blocks] each
  uint64_t payload_bytes;
};
/// Under scheme kNone pass (0, 0): the payload is the 24-byte prolog.
SumIndexLayoutV2 SumIndexLayout(uint64_t num_cells, uint64_t total_blocks);

}  // namespace binfmt

/// \brief True when `ordering_name` can be reconstructed from label
/// cardinalities alone (no O(|L_k|) state).
bool IsSerializableOrdering(const std::string& ordering_name);

/// \brief Writes the estimator to a stream in the text format.
Status WritePathHistogram(const PathHistogram& estimator,
                          const LabelDictionary& labels,
                          const std::vector<uint64_t>& label_cardinalities,
                          std::ostream* out);

/// \brief Serializes the estimator into `*out` in binary catalog v1.
Status WritePathHistogramBinary(const PathHistogram& estimator,
                                const LabelDictionary& labels,
                                const std::vector<uint64_t>& cardinalities,
                                std::string* out);

/// \brief Serializes the estimator into `*out` in page-aligned binary
/// catalog v2 (precomputed serving rows + stage-2/3 tables — see the
/// format spec above).
Status WritePathHistogramBinaryV2(const PathHistogram& estimator,
                                  const LabelDictionary& labels,
                                  const std::vector<uint64_t>& cardinalities,
                                  std::string* out);

/// \brief Saves the estimator to a file via an atomic write (temp + fsync +
/// rename; util/safe_io.h): a crashed or failed save leaves any previous
/// file at `path` byte-identical.
Status SavePathHistogram(const PathHistogram& estimator, const Graph& graph,
                         const std::string& path,
                         CatalogFormat format = CatalogFormat::kText);

/// \brief A deserialized estimator plus the label dictionary it carries.
struct LoadedPathHistogram {
  LabelDictionary labels;
  std::vector<uint64_t> label_cardinalities;
  PathHistogram estimator;
};

/// \brief True when `bytes` begins with either binary catalog magic
/// (v1 or v2).
bool LooksLikeBinaryCatalog(std::string_view bytes);

/// \brief True when `bytes` begins with the v2 magic specifically.
bool BytesAreBinaryV2(std::string_view bytes);

/// \brief Reads only the leading magic of `path` (no slurp) and reports
/// whether it is a binary catalog v2 — the serving loader's cheap dispatch
/// between the mmap path and the copying path. NotFound/IOError propagate;
/// a file shorter than the magic is simply `false`.
Result<bool> SniffFileIsBinaryV2(const std::string& path);

/// \brief Classifies `path` by its leading magic (no slurp): binary v2,
/// binary v1, or — for anything without a binary magic — text. Behind
/// `catalog verify`'s per-entry format report and `catalog convert`'s
/// skip-if-already-target check. NotFound/IOError propagate.
Result<CatalogFormat> SniffCatalogFormat(const std::string& path);

/// \brief Parses a binary catalog v1 from an in-memory byte buffer,
/// verifying every checksum before interpreting any section.
Result<LoadedPathHistogram> ReadPathHistogramBinary(std::string_view bytes);

/// \brief Parses a binary catalog v2 from an in-memory byte buffer at
/// CatalogVerify::kFull (every CRC, every structural scan, every semantic
/// rebuild comparison) and returns an OWNED estimator. `bytes.data()` must
/// be at least 8-byte aligned (heap buffers always are).
Result<LoadedPathHistogram> ReadPathHistogramBinaryV2(std::string_view bytes);

/// \brief Re-serializes an already-loaded estimator to `path` in `format`
/// through an atomic write — the engine of `pathest_cli catalog convert`.
/// The loaded entry carries everything the writers need (labels,
/// cardinalities, estimator), so no graph is required.
Status SaveLoadedPathHistogram(const LoadedPathHistogram& loaded,
                               const std::string& path, CatalogFormat format);

/// \brief Reads an estimator from a stream, sniffing the format.
///
/// The reader slurps the stream to EOF before parsing (that is what makes
/// both the from_chars text cursor and the checksum walk fast), so the
/// histogram must be the stream's only content: any bytes after the end
/// are consumed, and a second ReadPathHistogram on the same stream sees an
/// empty stream. Streams carrying a binary catalog must have been opened
/// in binary mode.
Result<LoadedPathHistogram> ReadPathHistogram(std::istream* in);

/// \brief Loads an estimator from a file (either format, sniffed).
Result<LoadedPathHistogram> LoadPathHistogram(const std::string& path);

}  // namespace pathest

#endif  // PATHEST_CORE_SERIALIZE_H_
