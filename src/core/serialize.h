// pathest: persistence for path statistics.
//
// A production optimizer keeps its statistics in the catalog and reloads
// them at startup rather than rescanning the data. This module serializes a
// PathHistogram (ordering identity + ranking state + buckets) in two
// formats and reconstructs a working estimator WITHOUT access to the
// original selectivities:
//
//   - a versioned, human-auditable TEXT format (the interchange/debug
//     path), and
//   - a versioned, checksummed BINARY catalog (format v1, below) — the
//     serving format, whose section layout is designed so a future tier
//     can mmap it and fix up pointers instead of parsing.
//
// LoadPathHistogram sniffs the leading magic and dispatches, so every
// caller (CLI, catalog, benches) reads both formats transparently.
//
// ---------------------------------------------------------------------------
// Text format ("pathest-histogram v1"), line-oriented:
//   pathest-histogram v1
//   ordering <name>
//   type <histogram-type>
//   k <k>
//   labels <n> <name_1> ... <name_n>         # label id order
//   cardinalities <f_1> ... <f_n>            # for reconstructing rankings
//   buckets <beta>
//   <begin> <end> <sum> <sumsq>              # beta lines, sums in hexfloat
//
// ---------------------------------------------------------------------------
// Binary catalog format v1 ("PESTB1"). All fields little-endian,
// fixed-width; doubles travel as their IEEE-754 bit pattern in a u64
// (bit-exact round trips, no locale, no hexfloat parsing).
//
// Header (32 bytes):
//   offset  size  field
//   0       8     magic: 89 'P' 'E' 'S' 'T' 'B' '1' 0A
//                 (high-bit lead byte + trailing \n, PNG-style: a text
//                 transfer that mangles either is caught at the magic)
//   8       4     u32 format version (= 1)
//   12      4     u32 section count
//   16      8     u64 total file size (must equal the actual byte count —
//                 truncation and padding are caught before any section CRC)
//   24      4     u32 CRC32C over header bytes [0, 24)
//   28      4     u32 CRC32C over the section table bytes
//
// Section table (24 bytes per entry, immediately after the header):
//   u32 section id      u32 CRC32C of the payload
//   u64 absolute offset u64 payload length
// Entries are sorted by ascending id; ids must be unique and known.
// Payloads follow the table back to back, but readers MUST navigate via
// the table (offset/length), never by accumulation — that is what makes
// the layout extensible and each section independently verifiable.
//
// Section payloads (every CRC is verified BEFORE its payload is parsed;
// every count is bounds-checked against the payload size before any
// allocation — see util/safe_io.h BoundedReader):
//   1 ordering       lpstr ordering-name, lpstr histogram-type, u32 k,
//                    u32 reserved(0)          (lpstr = u32 length + bytes)
//   2 labels         u32 n, then n lpstr names in label-id order
//   3 cardinalities  u32 n (== labels n), u32 reserved(0), n × u64 f(l)
//   4 histogram      u64 beta, then FOUR structure-of-arrays rows of beta
//                    u64s each: begin[], end[], sum-bits[], sumsq-bits[]
//                    (column-major — the serving FlatHistogram layout, so
//                    the future mmap tier can point straight at the rows)
//   5 composition    u32 |L|, u32 k, u64 value-count, then for each
//                    m in [1, k] the row Count(sum, m) for
//                    sum in [m, m·|L|] — the sum-based ordering's stage-2
//                    CompositionTable. Present iff the ordering is of the
//                    sum family; verified against a freshly built table on
//                    load (semantic integrity beyond the CRC).
//
// Versioning/compat rules: the major version in the header is bumped on
// ANY layout change to existing sections; readers reject versions they do
// not know. New OPTIONAL sections may be added under new ids without a
// version bump only once readers skip unknown ids — v1 readers do NOT
// (unknown ids are an error), so v1 writers must emit exactly the sections
// above. The committed golden catalog (tests/golden/) pins this layout
// byte-for-byte against accidental drift.
//
// Corruption contract (enforced by tests/fault_injection_test.cc): any
// truncation, bit flip, or forged length/count in a catalog file yields a
// typed Status from the loader — never a crash, hang, unbounded
// allocation, or silently wrong estimator.
//
// Only closed-form orderings (num-*, lex-*, sum-*, gray-*) round-trip:
// ideal/random/sum-L2 materialize O(|L_k|) state whose persistence would
// defeat the purpose of the histogram (the paper's argument for why ideal
// ordering is impractical, now visible as an API boundary).
//
// Timing note (β = 27993 catalog, 1-core container): the text reader —
// slurp + from_chars cursor — costs ~8 ms end to end; the binary reader
// replaces parsing with CRC walks plus memcpy and is the reason the
// serving path prefers this format (see BENCH_catalog_io.json).

#ifndef PATHEST_CORE_SERIALIZE_H_
#define PATHEST_CORE_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/path_histogram.h"
#include "util/status.h"

namespace pathest {

/// \brief On-disk representation of a persisted estimator.
enum class CatalogFormat {
  kText,    // line-oriented, human-auditable (interchange/debug)
  kBinary,  // checksummed section-table binary v1 (serving)
};

const char* CatalogFormatName(CatalogFormat format);
Result<CatalogFormat> ParseCatalogFormat(const std::string& name);

/// Binary-format layout constants, exported so the fault-injection harness
/// (util/fault_injection.h) and the format tests can compute section
/// boundaries without a parallel definition of the layout.
namespace binfmt {

inline constexpr size_t kMagicBytes = 8;
inline constexpr unsigned char kMagic[kMagicBytes] = {0x89, 'P',  'E', 'S',
                                                      'T',  'B',  '1', 0x0A};
inline constexpr uint32_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 32;
inline constexpr size_t kSectionEntryBytes = 24;
/// Hard ceiling on the section count a reader will consider (v1 writes at
/// most 5); anything larger is a forged header.
inline constexpr uint32_t kMaxSections = 64;

enum SectionId : uint32_t {
  kSectionOrdering = 1,
  kSectionLabels = 2,
  kSectionCardinalities = 3,
  kSectionHistogram = 4,
  kSectionComposition = 5,
};

/// \brief Stable name of a section id ("ordering", ...; "?" if unknown).
const char* SectionName(uint32_t id);

}  // namespace binfmt

/// \brief True when `ordering_name` can be reconstructed from label
/// cardinalities alone (no O(|L_k|) state).
bool IsSerializableOrdering(const std::string& ordering_name);

/// \brief Writes the estimator to a stream in the text format.
Status WritePathHistogram(const PathHistogram& estimator,
                          const LabelDictionary& labels,
                          const std::vector<uint64_t>& label_cardinalities,
                          std::ostream* out);

/// \brief Serializes the estimator into `*out` in binary catalog v1.
Status WritePathHistogramBinary(const PathHistogram& estimator,
                                const LabelDictionary& labels,
                                const std::vector<uint64_t>& cardinalities,
                                std::string* out);

/// \brief Saves the estimator to a file via an atomic write (temp + fsync +
/// rename; util/safe_io.h): a crashed or failed save leaves any previous
/// file at `path` byte-identical.
Status SavePathHistogram(const PathHistogram& estimator, const Graph& graph,
                         const std::string& path,
                         CatalogFormat format = CatalogFormat::kText);

/// \brief A deserialized estimator plus the label dictionary it carries.
struct LoadedPathHistogram {
  LabelDictionary labels;
  std::vector<uint64_t> label_cardinalities;
  PathHistogram estimator;
};

/// \brief True when `bytes` begins with the binary catalog magic.
bool LooksLikeBinaryCatalog(std::string_view bytes);

/// \brief Parses a binary catalog v1 from an in-memory byte buffer,
/// verifying every checksum before interpreting any section.
Result<LoadedPathHistogram> ReadPathHistogramBinary(std::string_view bytes);

/// \brief Reads an estimator from a stream, sniffing the format.
///
/// The reader slurps the stream to EOF before parsing (that is what makes
/// both the from_chars text cursor and the checksum walk fast), so the
/// histogram must be the stream's only content: any bytes after the end
/// are consumed, and a second ReadPathHistogram on the same stream sees an
/// empty stream. Streams carrying a binary catalog must have been opened
/// in binary mode.
Result<LoadedPathHistogram> ReadPathHistogram(std::istream* in);

/// \brief Loads an estimator from a file (either format, sniffed).
Result<LoadedPathHistogram> LoadPathHistogram(const std::string& path);

}  // namespace pathest

#endif  // PATHEST_CORE_SERIALIZE_H_
