#include "core/estimator.h"

#include <algorithm>
#include <vector>

#include "engine/thread_pool.h"

namespace pathest {

namespace {

// Queries per ParallelFor chunk: large enough to amortize the work-queue
// pop, small enough that a skewed tail still load-balances.
constexpr size_t kBatchChunk = 1024;

}  // namespace

Estimator::Estimator(const PathHistogram& source)
    : source_(&source),
      ordering_(&source.ordering()),
      kind_(source.ordering().kind()),
      flat_(source.histogram()) {}

Estimator::Estimator(const Ordering& ordering, const Histogram& histogram)
    : source_(nullptr),
      ordering_(&ordering),
      kind_(ordering.kind()),
      flat_(histogram) {
  PATHEST_CHECK(histogram.domain_size() == ordering.size(),
                "histogram domain size does not match ordering domain");
}

Estimator::Estimator(const Ordering& ordering, FlatHistogram flat)
    : source_(nullptr),
      ordering_(&ordering),
      kind_(ordering.kind()),
      flat_(std::move(flat)) {
  PATHEST_CHECK(flat_.domain_size() == ordering.size(),
                "flat histogram domain size does not match ordering domain");
}

void Estimator::EstimateBatch(std::span<const LabelPath> paths,
                              std::span<double> out) const {
  PATHEST_CHECK(paths.size() == out.size(),
                "EstimateBatch output span size mismatch");
  RankScratch scratch;
  scratch.Reserve(num_labels());
  for (size_t i = 0; i < paths.size(); ++i) {
    out[i] = Estimate(paths[i], scratch);
  }
}

void Estimator::EstimateBatchParallel(std::span<const LabelPath> paths,
                                      std::span<double> out,
                                      size_t num_threads) const {
  PATHEST_CHECK(paths.size() == out.size(),
                "EstimateBatch output span size mismatch");
  const size_t n = paths.size();
  const size_t chunks = (n + kBatchChunk - 1) / kBatchChunk;
  const size_t requested =
      num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads;
  const size_t threads = std::min(requested, std::max<size_t>(chunks, 1));
  if (threads <= 1 || chunks <= 1) {
    EstimateBatch(paths, out);
    return;
  }
  ThreadPool pool(threads);
  std::vector<RankScratch> scratches(pool.num_threads());
  for (RankScratch& s : scratches) s.Reserve(num_labels());
  pool.ParallelFor(chunks, [&](size_t chunk, size_t worker) {
    RankScratch& scratch = scratches[worker];
    const size_t begin = chunk * kBatchChunk;
    const size_t end = std::min(begin + kBatchChunk, n);
    for (size_t i = begin; i < end; ++i) {
      out[i] = Estimate(paths[i], scratch);
    }
  });
}

}  // namespace pathest
