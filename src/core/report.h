// pathest: fixed-width table rendering + CSV persistence for the bench
// harness, so every bench prints paper-shaped rows and leaves a CSV behind.

#ifndef PATHEST_CORE_REPORT_H_
#define PATHEST_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace pathest {

/// \brief A simple column-aligned text table.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header);

  /// \brief Appends a row; must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// \brief Renders with column alignment and a header rule.
  std::string ToString() const;

  /// \brief Writes the table as CSV.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a double with `digits` significant digits.
std::string FormatDouble(double value, int digits = 4);

}  // namespace pathest

#endif  // PATHEST_CORE_REPORT_H_
