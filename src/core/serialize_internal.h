// pathest: the shared binary-catalog-v2 parse layer.
//
// ParseCatalogV2 is the ONE implementation of "open a v2 byte image":
// header + section-table authentication, page-alignment enforcement,
// metadata parsing, shape validation of the bulk sections, and the tiered
// bulk verification of core/serialize.h's CatalogVerify. Its product is a
// CatalogV2View — owned metadata plus spans into the caller's bytes for
// every bulk row — from which the copying loader builds an owned estimator
// (ReadPathHistogramBinaryV2) and the mmap tier builds a borrowed one
// (core/mapped_catalog.h). Internal header: not installed, no stability
// promise.

#ifndef PATHEST_CORE_SERIALIZE_INTERNAL_H_
#define PATHEST_CORE_SERIALIZE_INTERNAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/serialize.h"
#include "graph/graph.h"
#include "histogram/builders.h"
#include "ordering/sum_based.h"
#include "util/status.h"

namespace pathest {
namespace internal {

/// \brief Everything a v2 file holds, parsed and (per the requested tier)
/// verified. Metadata is owned; bulk rows are spans into the input bytes,
/// valid only while that buffer (or mapping) lives.
struct CatalogV2View {
  // Section 1: ordering identity.
  std::string ordering_name;
  HistogramType histogram_type = HistogramType::kEquiWidth;
  uint64_t k = 0;
  // Sections 2-3.
  LabelDictionary labels;
  std::vector<uint64_t> cards;

  // Section 4: shape prolog + diagnostic and serving rows.
  uint64_t beta = 0;
  uint64_t domain_size = 0;
  std::span<const uint64_t> begin, end, sum_bits, sumsq_bits;
  std::span<const double> mean, prefix;
  std::span<const uint64_t> eytz_begin;
  std::span<const uint32_t> eytz_rank;

  // Sections 5-6, present iff the ordering is of the sum family.
  bool has_sum_sections = false;
  std::span<const uint64_t> comp_counts, comp_prefix;
  SumKeyScheme sum_scheme = SumKeyScheme::kNone;
  uint32_t sum_key_bits = 0;
  std::span<const uint64_t> cell_starts, keys, offsets, nops;
};

/// \brief Parses + verifies a v2 byte image at tier `verify` (see
/// CatalogVerify in core/serialize.h for exactly what each tier checks).
/// `bytes.data()` must be 8-byte aligned — true of every heap buffer and
/// every mmap base; the page-aligned section offsets then make all row
/// spans naturally aligned. Never throws, never allocates from untrusted
/// counts, never reads out of bounds: corruption is a typed Status.
Result<CatalogV2View> ParseCatalogV2(std::string_view bytes,
                                     CatalogVerify verify);

}  // namespace internal
}  // namespace pathest

#endif  // PATHEST_CORE_SERIALIZE_INTERNAL_H_
