#include "core/distribution.h"

#include <cmath>

namespace pathest {

Result<std::vector<uint64_t>> BuildDistribution(
    const SelectivityMap& selectivities, const Ordering& ordering) {
  const PathSpace& target = ordering.space();
  const PathSpace& source = selectivities.space();
  if (source.num_labels() != target.num_labels()) {
    return Status::InvalidArgument(
        "selectivity map and ordering use different label sets");
  }
  if (source.k() < target.k()) {
    return Status::InvalidArgument(
        "selectivity map covers k=" + std::to_string(source.k()) +
        " but ordering needs k=" + std::to_string(target.k()));
  }
  std::vector<uint64_t> dist(target.size());
  for (uint64_t i = 0; i < target.size(); ++i) {
    dist[i] = selectivities.Get(ordering.Unrank(i));
  }
  return dist;
}

DistributionProfile ProfileDistribution(const std::vector<uint64_t>& dist) {
  DistributionProfile profile;
  profile.n = dist.size();
  if (dist.empty()) return profile;
  double sum = 0.0;
  double sumsq = 0.0;
  for (size_t i = 0; i < dist.size(); ++i) {
    uint64_t v = dist[i];
    profile.total += v;
    profile.max_value = std::max(profile.max_value, v);
    profile.num_zero += (v == 0);
    sum += static_cast<double>(v);
    sumsq += static_cast<double>(v) * static_cast<double>(v);
    if (i > 0) {
      profile.total_variation +=
          std::abs(static_cast<double>(v) - static_cast<double>(dist[i - 1]));
    }
  }
  double n = static_cast<double>(dist.size());
  profile.mean = sum / n;
  profile.variance = sumsq / n - profile.mean * profile.mean;
  return profile;
}

}  // namespace pathest
