// pathest: the experiment runner — shared machinery behind the paper-table
// benches and the examples.

#ifndef PATHEST_CORE_EXPERIMENT_H_
#define PATHEST_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/path_histogram.h"
#include "graph/graph.h"
#include "histogram/builders.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief The paper's bucket-budget sweep: n/2, n/4, ..., halving for
/// `levels` steps (Table 4 uses n = 55 996 -> 27993 ... 437 with 7 levels).
std::vector<size_t> BetaSweep(uint64_t domain_size, size_t levels);

/// \brief One accuracy measurement (a point of the paper's Figure 2).
struct AccuracyResult {
  std::string ordering;
  size_t k = 0;
  size_t beta = 0;
  /// Aggregated |err| over every path in L_k (Formula 6).
  ErrorSummary errors;
  /// Total within-bucket SSE of the built histogram (V-optimal objective).
  double sse = 0.0;
  /// Histogram construction time, milliseconds.
  double build_ms = 0.0;
};

/// \brief Accuracy of one (ordering, k, beta, histogram type) cell.
///
/// `selectivities` must cover k. Ordering names accepted by
/// MakeOrderingWithSelectivities are allowed ("ideal", "sum-L2" included).
Result<AccuracyResult> MeasureAccuracy(const Graph& graph,
                                       const SelectivityMap& selectivities,
                                       const std::string& ordering_name,
                                       size_t k, size_t beta,
                                       HistogramType histogram_type);

/// \brief One timing measurement (a cell of the paper's Table 4).
struct TimingResult {
  std::string ordering;
  size_t beta = 0;
  /// Mean wall-clock time of a single Estimate() call, microseconds.
  double avg_estimate_us = 0.0;
  /// Number of estimate calls measured.
  uint64_t calls = 0;
};

/// \brief Average per-query estimation time for one (ordering, beta) cell,
/// replaying every path in L_k `repetitions` times.
Result<TimingResult> MeasureEstimationTime(const Graph& graph,
                                           const SelectivityMap& selectivities,
                                           const std::string& ordering_name,
                                           size_t k, size_t beta,
                                           HistogramType histogram_type,
                                           size_t repetitions);

}  // namespace pathest

#endif  // PATHEST_CORE_EXPERIMENT_H_
