// pathest: the experiment runner — shared machinery behind the paper-table
// benches and the examples.

#ifndef PATHEST_CORE_EXPERIMENT_H_
#define PATHEST_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/path_histogram.h"
#include "core/report.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "histogram/builders.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief Renders one graph load's profile (GraphLoadStats) as a report
/// table: one row per ingest stage — stream read, chunked parse, and each
/// Build phase (partition, CSRs, vertex-major, plane, reverse) — with its
/// share of the end-to-end wall time, plus a plane row (kind, rows,
/// bytes, hub threshold) and a total row with the thread count.
ReportTable GraphIngestReport(const GraphLoadStats& stats);

/// \brief Build-time profile of one exact-selectivity computation: the
/// ground-truth map plus where the wall-clock went (total and per root
/// label). This is the instrumented front door the benches and the CLI use
/// instead of calling ComputeSelectivities directly.
struct SelectivityBuildResult {
  size_t k = 0;
  /// Worker threads the engine actually used (ResolvedNumThreads: 0 ->
  /// hardware concurrency, then clamped to the build's task count — |L|
  /// roots for the per-label strategy, |L|² prefix tasks for fused).
  size_t num_threads = 1;
  /// Extension-kernel mode the build ran under (auto/sparse/dense). The
  /// map is identical across modes; this records what was measured.
  PairKernel kernel = PairKernel::kAuto;
  /// Evaluator strategy the build ran under (fused/per-label). The map is
  /// identical across strategies; this records what was measured.
  ExtendStrategy strategy = ExtendStrategy::kFused;
  /// End-to-end wall time of ComputeSelectivities, milliseconds.
  double wall_ms = 0.0;
  /// Per-root-label subtree evaluation time, indexed by LabelId. Under
  /// num_threads > 1 these overlap, so they sum to more than wall_ms (and
  /// under the fused strategy each entry is itself the sum of the root's
  /// pre-pass and prefix-task spans).
  std::vector<double> per_label_ms;
  SelectivityMap map;
};

/// \brief Runs ComputeSelectivities with timing instrumentation.
///
/// `options.label_time` is chained, not replaced: a caller-supplied sink
/// still fires after the internal recorder.
Result<SelectivityBuildResult> MeasureSelectivityBuild(
    const Graph& graph, size_t k,
    SelectivityOptions options = SelectivityOptions{});

/// \brief Renders a build profile as a report table: one row per root label
/// (name, cardinality, subtree ms, share of summed label time) plus a total
/// row with the wall time and thread count.
ReportTable SelectivityBuildReport(const Graph& graph,
                                   const SelectivityBuildResult& result);

/// \brief The paper's bucket-budget sweep: n/2, n/4, ..., halving for
/// `levels` steps (Table 4 uses n = 55 996 -> 27993 ... 437 with 7 levels).
std::vector<size_t> BetaSweep(uint64_t domain_size, size_t levels);

/// \brief |err| summary of one histogram over its own distribution: walks
/// buckets in domain order and scores every position's bucket-mean estimate
/// against dist[i] (Formula 6). The error multiset equals per-path
/// estimation, since D[i] = f(Unrank(i)). Shared by MeasureAccuracySweep
/// and the examples.
ErrorSummary SummarizeHistogramErrors(const Histogram& histogram,
                                      const std::vector<uint64_t>& dist);

/// \brief One accuracy measurement (a point of the paper's Figure 2).
struct AccuracyResult {
  std::string ordering;
  size_t k = 0;
  size_t beta = 0;
  /// Aggregated |err| over every path in L_k (Formula 6).
  ErrorSummary errors;
  /// Total within-bucket SSE of the built histogram (V-optimal objective).
  double sse = 0.0;
  /// Histogram construction time, milliseconds.
  double build_ms = 0.0;
};

/// \brief Accuracy of one (ordering, k, beta, histogram type) cell.
///
/// `selectivities` must cover k. Ordering names accepted by
/// MakeOrderingWithSelectivities are allowed ("ideal", "sum-L2" included).
Result<AccuracyResult> MeasureAccuracy(const Graph& graph,
                                       const SelectivityMap& selectivities,
                                       const std::string& ordering_name,
                                       size_t k, size_t beta,
                                       HistogramType histogram_type);

/// \brief Batched accuracy grid — the whole (ordering × β) block of the
/// paper's Figure 2 in one call, through the shared-stats sweep engine
/// (histogram/builders.h): per ordering, the distribution and its
/// DistributionStats are materialized ONCE and every β's histogram comes
/// from one BuildHistogramSweep call (one greedy-merge run for the whole β
/// sweep under kVOptimal).
///
/// Returns the grid row-major: result[o * betas.size() + b] is ordering
/// `ordering_names[o]` at `betas[b]`. Independent orderings fan out on an
/// engine ThreadPool (`num_threads` follows SelectivityOptions semantics:
/// 1 = serial, 0 = hardware); every cell is a pure function of its
/// (ordering, β), so the grid is bit-identical at any thread count, and on
/// failure the lowest-index failing ordering's status is returned. In sweep
/// results `build_ms` holds the ordering's sweep build time amortized
/// equally over its β cells (summing a row gives the true total).
Result<std::vector<AccuracyResult>> MeasureAccuracySweep(
    const Graph& graph, const SelectivityMap& selectivities,
    const std::vector<std::string>& ordering_names, size_t k,
    const std::vector<size_t>& betas, HistogramType histogram_type,
    size_t num_threads = 1);

/// \brief One timing measurement (a cell of the paper's Table 4).
struct TimingResult {
  std::string ordering;
  size_t beta = 0;
  /// Mean wall-clock time of a single Estimate() call, microseconds.
  double avg_estimate_us = 0.0;
  /// Number of estimate calls measured.
  uint64_t calls = 0;
  /// Serving-resident footprint of the estimator answering the cell's
  /// queries (Estimator::ResidentBytes — the flat bucket index), surfaced
  /// in the Table 4 report. 0 when the cell was measured on the legacy
  /// path (MeasureEstimationTime).
  size_t estimator_bytes = 0;
};

/// \brief Average per-query estimation time for one (ordering, beta) cell,
/// replaying every path in L_k `repetitions` times — on the LEGACY path
/// (virtual Rank + diagnostic bucket binary search,
/// PathHistogram::Estimate). Kept as the reference the fast path is
/// measured against (bench/bench_micro_estimation.cc).
Result<TimingResult> MeasureEstimationTime(const Graph& graph,
                                           const SelectivityMap& selectivities,
                                           const std::string& ordering_name,
                                           size_t k, size_t beta,
                                           HistogramType histogram_type,
                                           size_t repetitions);

/// \brief Batched timing grid — the paper's Table 4 block in one call.
/// Histograms come from the shared-stats sweep engine (one build pass per
/// ordering); the estimation replay of each cell is timed on the SERVING
/// fast path (core/estimator.h: type-tagged scratch Rank + flat bucket
/// lookup), which is what a deployed estimator pays per query. Row-major
/// like MeasureAccuracySweep.
///
/// `num_threads` fans orderings out on an engine ThreadPool; keep the
/// default 1 when the measured times matter — concurrent rows contend for
/// cores and pollute per-query wall times. Parallel runs are still valid
/// for smoke/coverage passes.
Result<std::vector<TimingResult>> MeasureTimingSweep(
    const Graph& graph, const SelectivityMap& selectivities,
    const std::vector<std::string>& ordering_names, size_t k,
    const std::vector<size_t>& betas, HistogramType histogram_type,
    size_t repetitions, size_t num_threads = 1);

}  // namespace pathest

#endif  // PATHEST_CORE_EXPERIMENT_H_
