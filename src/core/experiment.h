// pathest: the experiment runner — shared machinery behind the paper-table
// benches and the examples.

#ifndef PATHEST_CORE_EXPERIMENT_H_
#define PATHEST_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/path_histogram.h"
#include "core/report.h"
#include "graph/graph.h"
#include "histogram/builders.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief Build-time profile of one exact-selectivity computation: the
/// ground-truth map plus where the wall-clock went (total and per root
/// label). This is the instrumented front door the benches and the CLI use
/// instead of calling ComputeSelectivities directly.
struct SelectivityBuildResult {
  size_t k = 0;
  /// Worker threads the engine actually used (ResolvedNumThreads: 0 ->
  /// hardware concurrency, then clamped to the graph's label count).
  size_t num_threads = 1;
  /// Extension-kernel mode the build ran under (auto/sparse/dense). The
  /// map is identical across modes; this records what was measured.
  PairKernel kernel = PairKernel::kAuto;
  /// End-to-end wall time of ComputeSelectivities, milliseconds.
  double wall_ms = 0.0;
  /// Per-root-label subtree evaluation time, indexed by LabelId. Under
  /// num_threads > 1 these overlap, so they sum to more than wall_ms.
  std::vector<double> per_label_ms;
  SelectivityMap map;
};

/// \brief Runs ComputeSelectivities with timing instrumentation.
///
/// `options.label_time` is chained, not replaced: a caller-supplied sink
/// still fires after the internal recorder.
Result<SelectivityBuildResult> MeasureSelectivityBuild(
    const Graph& graph, size_t k,
    SelectivityOptions options = SelectivityOptions{});

/// \brief Renders a build profile as a report table: one row per root label
/// (name, cardinality, subtree ms, share of summed label time) plus a total
/// row with the wall time and thread count.
ReportTable SelectivityBuildReport(const Graph& graph,
                                   const SelectivityBuildResult& result);

/// \brief The paper's bucket-budget sweep: n/2, n/4, ..., halving for
/// `levels` steps (Table 4 uses n = 55 996 -> 27993 ... 437 with 7 levels).
std::vector<size_t> BetaSweep(uint64_t domain_size, size_t levels);

/// \brief One accuracy measurement (a point of the paper's Figure 2).
struct AccuracyResult {
  std::string ordering;
  size_t k = 0;
  size_t beta = 0;
  /// Aggregated |err| over every path in L_k (Formula 6).
  ErrorSummary errors;
  /// Total within-bucket SSE of the built histogram (V-optimal objective).
  double sse = 0.0;
  /// Histogram construction time, milliseconds.
  double build_ms = 0.0;
};

/// \brief Accuracy of one (ordering, k, beta, histogram type) cell.
///
/// `selectivities` must cover k. Ordering names accepted by
/// MakeOrderingWithSelectivities are allowed ("ideal", "sum-L2" included).
Result<AccuracyResult> MeasureAccuracy(const Graph& graph,
                                       const SelectivityMap& selectivities,
                                       const std::string& ordering_name,
                                       size_t k, size_t beta,
                                       HistogramType histogram_type);

/// \brief One timing measurement (a cell of the paper's Table 4).
struct TimingResult {
  std::string ordering;
  size_t beta = 0;
  /// Mean wall-clock time of a single Estimate() call, microseconds.
  double avg_estimate_us = 0.0;
  /// Number of estimate calls measured.
  uint64_t calls = 0;
};

/// \brief Average per-query estimation time for one (ordering, beta) cell,
/// replaying every path in L_k `repetitions` times.
Result<TimingResult> MeasureEstimationTime(const Graph& graph,
                                           const SelectivityMap& selectivities,
                                           const std::string& ordering_name,
                                           size_t k, size_t beta,
                                           HistogramType histogram_type,
                                           size_t repetitions);

}  // namespace pathest

#endif  // PATHEST_CORE_EXPERIMENT_H_
