#include "core/workload.h"

#include "util/random.h"

namespace pathest {

std::vector<LabelPath> AllPathsWorkload(const PathSpace& space) {
  std::vector<LabelPath> paths;
  paths.reserve(space.size());
  space.ForEach([&](const LabelPath& p) { paths.push_back(p); });
  return paths;
}

std::vector<LabelPath> SampledWorkload(const PathSpace& space, size_t count,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<LabelPath> paths;
  paths.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    paths.push_back(space.CanonicalPath(rng.NextBounded(space.size())));
  }
  return paths;
}

std::vector<LabelPath> NonEmptyWorkload(const SelectivityMap& selectivities) {
  std::vector<LabelPath> paths;
  selectivities.space().ForEach([&](const LabelPath& p) {
    if (selectivities.Get(p) > 0) paths.push_back(p);
  });
  return paths;
}

std::vector<LabelPath> FixedLengthWorkload(const PathSpace& space,
                                           size_t length) {
  std::vector<LabelPath> paths;
  paths.reserve(space.CountWithLength(length));
  space.ForEach([&](const LabelPath& p) {
    if (p.length() == length) paths.push_back(p);
  });
  return paths;
}

}  // namespace pathest
