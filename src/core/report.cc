#include "core/report.h"

#include <cstdio>
#include <sstream>

#include "util/csv.h"
#include "util/status.h"

namespace pathest {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  PATHEST_CHECK(cells.size() == header_.size(),
                "report row width mismatch with header");
  rows_.push_back(std::move(cells));
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

Status ReportTable::WriteCsv(const std::string& path) const {
  CsvWriter writer;
  PATHEST_RETURN_NOT_OK(writer.Open(path, header_));
  for (const auto& row : rows_) {
    PATHEST_RETURN_NOT_OK(writer.WriteRow(row));
  }
  return writer.Close();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return std::string(buf);
}

}  // namespace pathest
