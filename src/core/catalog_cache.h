// pathest: bounded-residency cache of mapped catalog snapshots
// (core/mapped_catalog.h).
//
// The serving reload path opens the SAME catalog files over and over —
// most reloads change one entry out of many. Re-mapping (and re-verifying)
// an unchanged file is pure waste, so the cache keys mappings by path and
// revalidates with a single stat(2): under the atomic-rename publish
// discipline an unchanged FileId (device, inode, size, mtime) proves the
// bytes are unchanged, and the reload re-pins the EXISTING mapping — a
// version swap without re-reading a byte.
//
// Residency is bounded by a byte budget over mapped (not resident) bytes:
// when inserting pushes the total over budget, unpinned entries — those
// whose only reference is the cache's own — are evicted in LRU order.
// PINNED entries (shared_ptrs still held by serving snapshots or in-flight
// estimates) are NEVER evicted and may hold the total over budget; the
// budget squeezes the reclaimable tail only, so correctness never depends
// on the budget being generous.
//
// All operations are safe for concurrent callers (one mutex; the expensive
// Open runs under it by design — concurrent opens of the same file would
// each map it, and admission-time verification is the corruption gate, so
// serializing opens is both simpler and cheaper than duplicate mappings).

#ifndef PATHEST_CORE_CATALOG_CACHE_H_
#define PATHEST_CORE_CATALOG_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/mapped_catalog.h"
#include "core/serialize.h"
#include "util/status.h"

namespace pathest {

struct CatalogCacheOptions {
  /// Mapped-byte budget; 0 means "evict everything unpinned eagerly".
  size_t byte_budget = 256ull << 20;
  /// Admission verification tier. kChecksums (default) CRCs every bulk
  /// byte once per file generation, which is what makes serving estimates
  /// off the mapping safe; kTrusted is for benchmarks and pre-verified
  /// restarts only.
  CatalogVerify verify = CatalogVerify::kChecksums;
};

/// \brief Per-entry snapshot of cache state (serve `stats` reporting).
struct CatalogCacheEntryStats {
  std::string path;
  size_t mapped_bytes = 0;
  size_t resident_bytes = 0;
  /// True when references beyond the cache's own exist right now.
  bool pinned = false;
  /// Monotonic LRU clock value of the last GetOrOpen touch.
  uint64_t last_use = 0;
};

struct CatalogCacheStats {
  size_t entries = 0;
  size_t mapped_bytes = 0;
  size_t byte_budget = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  std::vector<CatalogCacheEntryStats> per_entry;
};

/// \brief Thread-safe LRU cache of MappedCatalogEntry by path.
class CatalogCache {
 public:
  explicit CatalogCache(CatalogCacheOptions options = {});

  /// \brief Returns the cached mapping for `path` if its FileId still
  /// matches the file on disk (a HIT — re-pin, no I/O beyond one stat);
  /// otherwise maps and verifies the current generation, replacing any
  /// stale entry (a MISS). Insertion may evict LRU unpinned entries to
  /// respect the budget. Errors (missing file, corrupt bytes, non-v2
  /// input) propagate and leave the cache unchanged except that a stale
  /// same-path entry is dropped (its bytes are gone from disk; pinned
  /// holders keep their mapping alive independently).
  Result<std::shared_ptr<const MappedCatalogEntry>> GetOrOpen(
      const std::string& path);

  /// \brief Drops the entry for `path` if present (regardless of budget);
  /// pinned holders keep the mapping alive. Returns true if found.
  bool Invalidate(const std::string& path);

  CatalogCacheStats Stats() const;

  size_t byte_budget() const { return options_.byte_budget; }

 private:
  struct Slot {
    std::shared_ptr<const MappedCatalogEntry> entry;
    uint64_t last_use = 0;
  };

  // Evicts LRU unpinned slots until the mapped total fits the budget or
  // nothing unpinned remains. Caller holds mu_.
  void EvictLocked();
  size_t MappedTotalLocked() const;

  CatalogCacheOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_CORE_CATALOG_CACHE_H_
