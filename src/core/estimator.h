// pathest: the query-time serving facade — allocation-free single-path
// estimation and a batched, thread-safe estimation API over a built
// PathHistogram.
//
// PathHistogram::Estimate is the reference path: a virtual Rank() plus a
// binary search over the 32-byte diagnostic Bucket array. That is fine for
// experiments, but a production estimator answers millions of queries per
// second, where the per-call costs — virtual dispatch, the legacy sum-based
// allocations, cold bucket cache lines — dominate. Estimator removes them:
//
//   * Rank goes through a type-tagged dispatch on Ordering::kind(): the
//     closed-form orderings (numerical / lexicographic / gray) are called
//     via their non-virtual inline RankFast bodies, sum-based via its
//     counts-based scratch fast path, and only the explicit-permutation
//     baselines stay on the virtual call.
//   * Bucket lookup goes through the SoA FlatHistogram
//     (histogram/flat_histogram.h) built once at construction.
//   * EstimateBatch amortizes everything across a span of queries;
//     EstimateBatchParallel fans fixed-size chunks out on an engine
//     ThreadPool with one RankScratch per worker.
//
// Every estimate is bit-identical to PathHistogram::Estimate (enforced by
// tests/estimator_test.cc), and out[i] depends only on paths[i], so the
// parallel batch is bit-identical to the serial one at any thread count.
//
// Thread safety: an Estimator is immutable after construction and safe to
// share across any number of concurrent readers, each holding its own
// RankScratch. The source PathHistogram must outlive the Estimator.

#ifndef PATHEST_CORE_ESTIMATOR_H_
#define PATHEST_CORE_ESTIMATOR_H_

#include <cstdint>
#include <span>

#include "core/path_histogram.h"
#include "histogram/flat_histogram.h"
#include "ordering/gray.h"
#include "ordering/lexicographic.h"
#include "ordering/numerical.h"
#include "ordering/ordering.h"
#include "ordering/sum_based.h"

namespace pathest {

/// \brief Immutable, concurrently-shareable serving facade over a
/// PathHistogram.
class Estimator {
 public:
  /// \param source built estimator state; borrowed, must outlive this
  ///   object. The flat bucket index is projected here, once.
  explicit Estimator(const PathHistogram& source);

  /// \brief Serves a bare (ordering, histogram) pair — the sweep-engine
  /// path, where one ordering backs many histograms. Both are borrowed and
  /// must outlive this object; the histogram's domain must equal the
  /// ordering's |L_k|. source() is unavailable on this form.
  Estimator(const Ordering& ordering, const Histogram& histogram);

  /// \brief Serves a pre-projected flat index — the mmap zero-copy path,
  /// where `flat` is a FlatHistogram::FromBorrowedRows over a mapped binary
  /// catalog v2 (core/mapped_catalog.h). The ordering is borrowed and must
  /// outlive this object, as must the flat index's backing memory when it
  /// is a borrowed form. source() is unavailable on this form.
  Estimator(const Ordering& ordering, FlatHistogram flat);

  /// \brief index(ℓ) through the type-tagged fast path. Allocation-free
  /// once `scratch` is warmed (see the scratch contract in
  /// ordering/ordering.h); bit-identical to source().ordering().Rank(path).
  uint64_t Rank(const LabelPath& path, RankScratch& scratch) const {
    switch (kind_) {
      case OrderingKind::kNumerical:
        return static_cast<const NumericalOrdering*>(ordering_)
            ->RankFast(path);
      case OrderingKind::kLexicographic:
        return static_cast<const LexicographicOrdering*>(ordering_)
            ->RankFast(path);
      case OrderingKind::kGray:
        return static_cast<const GrayOrdering*>(ordering_)->RankFast(path);
      case OrderingKind::kSumBased:
        return static_cast<const SumBasedOrdering*>(ordering_)
            ->Rank(path, scratch);
      case OrderingKind::kGeneric:
        break;
    }
    return ordering_->Rank(path, scratch);
  }

  /// \brief e(ℓ): fast-path point estimate. Bit-identical to
  /// source().Estimate(path).
  double Estimate(const LabelPath& path, RankScratch& scratch) const {
    return flat_.EstimatePoint(Rank(path, scratch));
  }

  /// \brief Serial batch estimation: out[i] = e(paths[i]), one internal
  /// scratch reused across the whole span. paths.size() == out.size().
  void EstimateBatch(std::span<const LabelPath> paths,
                     std::span<double> out) const;

  /// \brief Parallel batch estimation on an engine ThreadPool: fixed-size
  /// chunks of the span are distributed over `num_threads` workers
  /// (0 = one per hardware core), each with its own pre-warmed RankScratch.
  /// out[i] is a pure function of paths[i], so the result is bit-identical
  /// to EstimateBatch at every thread count (test-enforced).
  void EstimateBatchParallel(std::span<const LabelPath> paths,
                             std::span<double> out, size_t num_threads) const;

  /// \brief e over an index RANGE of the ordered domain, through the flat
  /// prefix sums (see FlatHistogram::EstimateRange for the FP caveat vs the
  /// diagnostic Histogram path).
  double EstimateIndexRange(uint64_t begin, uint64_t end) const {
    return flat_.EstimateRange(begin, end);
  }

  /// \brief Serving-resident footprint in bytes: the flat bucket index (the
  /// diagnostic Histogram's footprint is source().histogram().ApproxBytes()).
  size_t ResidentBytes() const { return flat_.ResidentBytes(); }

  /// \brief Bytes the flat index views in a mapped file (0 when its rows
  /// are owned) — the complement of ResidentBytes on the mmap path.
  size_t MappedBytes() const { return flat_.MappedBytes(); }

  /// \brief The backing PathHistogram; only valid for estimators built from
  /// one.
  const PathHistogram& source() const {
    PATHEST_CHECK(source_ != nullptr,
                  "Estimator was built from a bare ordering + histogram");
    return *source_;
  }
  const FlatHistogram& flat() const { return flat_; }
  const Ordering& ordering() const { return *ordering_; }

  /// \brief Label-set size to pre-warm external scratches with
  /// (RankScratch::Reserve).
  size_t num_labels() const { return ordering_->space().num_labels(); }

 private:
  const PathHistogram* source_;
  const Ordering* ordering_;
  OrderingKind kind_;
  FlatHistogram flat_;
};

}  // namespace pathest

#endif  // PATHEST_CORE_ESTIMATOR_H_
