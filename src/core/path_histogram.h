// pathest: the label-path histogram — ordering + histogram, the estimator
// the whole library exists to provide (paper Section 2).
//
// Construction: materialize the distribution D[i] = f(Unrank(i)) under the
// chosen ordering, then bucket D with the chosen histogram policy. At query
// time only Rank() and the bucket array are touched; the full distribution
// is NOT retained — the estimator's memory footprint is the histogram plus
// the ordering's O(1)/O(|L|) state, which is the whole point of the
// exercise.

#ifndef PATHEST_CORE_PATH_HISTOGRAM_H_
#define PATHEST_CORE_PATH_HISTOGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "histogram/builders.h"
#include "ordering/ordering.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief A path-selectivity estimator backed by a histogram over an ordered
/// label-path domain.
class PathHistogram {
 public:
  /// \brief Builds a histogram of `num_buckets` buckets of the given type
  /// over the distribution induced by `ordering`.
  ///
  /// \param selectivities exact f over a space covering the ordering's.
  /// \param ordering domain ordering; ownership is shared with the caller's
  ///   OrderingPtr (moved in).
  static Result<PathHistogram> Build(const SelectivityMap& selectivities,
                                     OrderingPtr ordering,
                                     HistogramType histogram_type,
                                     size_t num_buckets);

  /// \brief Assembles an estimator from pre-built parts (deserialization).
  /// The histogram's domain size must equal the ordering's |L_k|.
  static Result<PathHistogram> FromParts(OrderingPtr ordering,
                                         Histogram histogram,
                                         HistogramType histogram_type);

  /// \brief e(ℓ): estimated selectivity of `path`.
  double Estimate(const LabelPath& path) const;

  /// \brief The underlying ordering method.
  const Ordering& ordering() const { return *ordering_; }

  /// \brief The underlying bucket structure.
  const Histogram& histogram() const { return histogram_; }

  /// \brief The construction policy of the underlying histogram.
  HistogramType histogram_type() const { return histogram_type_; }

  /// \brief e over an index RANGE of the ordered domain: estimated total
  /// selectivity of all paths with index in [begin, end).
  double EstimateIndexRange(uint64_t begin, uint64_t end) const {
    return histogram_.EstimateRange(begin, end);
  }

  /// \brief Method name, e.g. "sum-based/v-optimal(437)".
  std::string Describe() const;

 private:
  PathHistogram(OrderingPtr ordering, Histogram histogram,
                HistogramType histogram_type)
      : ordering_(std::move(ordering)),
        histogram_(std::move(histogram)),
        histogram_type_(histogram_type) {}

  OrderingPtr ordering_;
  Histogram histogram_;
  HistogramType histogram_type_;
};

}  // namespace pathest

#endif  // PATHEST_CORE_PATH_HISTOGRAM_H_
