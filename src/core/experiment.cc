#include "core/experiment.h"

#include <utility>

#include "core/workload.h"
#include "ordering/factory.h"
#include "util/timer.h"

namespace pathest {

Result<SelectivityBuildResult> MeasureSelectivityBuild(
    const Graph& graph, size_t k, SelectivityOptions options) {
  std::vector<double> per_label_ms(graph.num_labels(), 0.0);
  auto user_label_time = std::move(options.label_time);
  // The recorder runs inside the evaluator's callback mutex, so plain
  // writes to per_label_ms are safe; each root fires exactly once.
  options.label_time = [&per_label_ms, &user_label_time](LabelId root,
                                                         double millis) {
    per_label_ms[root] = millis;
    if (user_label_time) user_label_time(root, millis);
  };
  const size_t num_threads =
      ResolvedNumThreads(options, graph.num_labels());
  Timer timer;
  auto map = ComputeSelectivities(graph, k, options);
  const double wall_ms = timer.ElapsedMillis();
  if (!map.ok()) return map.status();
  return SelectivityBuildResult{k,       num_threads,           options.kernel,
                                wall_ms, std::move(per_label_ms),
                                std::move(*map)};
}

ReportTable SelectivityBuildReport(const Graph& graph,
                                   const SelectivityBuildResult& result) {
  ReportTable table({"label", "card", "eval_ms", "share_%"});
  double label_total_ms = 0.0;
  for (double ms : result.per_label_ms) label_total_ms += ms;
  for (LabelId l = 0; l < result.per_label_ms.size(); ++l) {
    const double ms = result.per_label_ms[l];
    const double share = label_total_ms > 0.0 ? 100.0 * ms / label_total_ms
                                              : 0.0;
    table.AddRow({graph.labels().Name(l), std::to_string(graph.LabelCardinality(l)),
                  FormatDouble(ms, 4), FormatDouble(share, 3)});
  }
  table.AddRow({"total(wall, " + std::to_string(result.num_threads) +
                    " thread" + (result.num_threads == 1 ? "" : "s") + ", " +
                    PairKernelName(result.kernel) + " kernel)",
                std::to_string(graph.num_edges()),
                FormatDouble(result.wall_ms, 4), "100"});
  return table;
}

std::vector<size_t> BetaSweep(uint64_t domain_size, size_t levels) {
  std::vector<size_t> betas;
  uint64_t beta = domain_size;
  for (size_t i = 0; i < levels; ++i) {
    beta /= 2;
    if (beta == 0) break;
    betas.push_back(static_cast<size_t>(beta));
  }
  return betas;
}

Result<AccuracyResult> MeasureAccuracy(const Graph& graph,
                                       const SelectivityMap& selectivities,
                                       const std::string& ordering_name,
                                       size_t k, size_t beta,
                                       HistogramType histogram_type) {
  auto ordering =
      MakeOrderingWithSelectivities(ordering_name, graph, k, selectivities);
  if (!ordering.ok()) return ordering.status();

  Timer build_timer;
  auto estimator = PathHistogram::Build(selectivities, std::move(*ordering),
                                        histogram_type, beta);
  if (!estimator.ok()) return estimator.status();
  double build_ms = build_timer.ElapsedMillis();

  AccuracyResult result;
  result.ordering = estimator->ordering().name();
  result.k = k;
  result.beta = beta;
  result.sse = estimator->histogram().TotalSse();
  result.build_ms = build_ms;

  PathSpace space(graph.num_labels(), k);
  std::vector<double> abs_errors;
  abs_errors.reserve(space.size());
  space.ForEach([&](const LabelPath& path) {
    double e = estimator->Estimate(path);
    double f = static_cast<double>(selectivities.Get(path));
    abs_errors.push_back(AbsoluteErrorRate(e, f));
  });
  result.errors = SummarizeErrors(std::move(abs_errors));
  return result;
}

Result<TimingResult> MeasureEstimationTime(const Graph& graph,
                                           const SelectivityMap& selectivities,
                                           const std::string& ordering_name,
                                           size_t k, size_t beta,
                                           HistogramType histogram_type,
                                           size_t repetitions) {
  auto ordering =
      MakeOrderingWithSelectivities(ordering_name, graph, k, selectivities);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::Build(selectivities, std::move(*ordering),
                                        histogram_type, beta);
  if (!estimator.ok()) return estimator.status();

  PathSpace space(graph.num_labels(), k);
  std::vector<LabelPath> workload = AllPathsWorkload(space);

  TimingResult result;
  result.ordering = estimator->ordering().name();
  result.beta = beta;

  // Accumulate estimates into a sink so the calls cannot be optimized away.
  double sink = 0.0;
  Timer timer;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    for (const LabelPath& path : workload) {
      sink += estimator->Estimate(path);
    }
  }
  double total_us = timer.ElapsedMicros();
  result.calls = static_cast<uint64_t>(repetitions) * workload.size();
  result.avg_estimate_us =
      result.calls == 0 ? 0.0 : total_us / static_cast<double>(result.calls);
  // Fold the sink into the result in a way that never changes it, defeating
  // dead-code elimination without affecting output.
  if (sink == -1.0) result.calls += 1;
  return result;
}

}  // namespace pathest
