#include "core/experiment.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/distribution.h"
#include "core/estimator.h"
#include "core/workload.h"
#include "engine/thread_pool.h"
#include "histogram/stats.h"
#include "ordering/factory.h"
#include "util/timer.h"

namespace pathest {

namespace {

// Worker count for the per-ordering grid fan-out, following
// SelectivityOptions semantics (0 = hardware) clamped to the job count.
size_t GridThreads(size_t num_threads, size_t num_orderings) {
  const size_t requested =
      num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads;
  return std::min(requested, num_orderings);
}

// Runs `row(o)` for every ordering index, serially or on a pool, and
// returns the lowest-index failure so the outcome never depends on thread
// count (same pattern as ComputeSelectivities).
Status RunOrderingRows(size_t num_orderings, size_t num_threads,
                       const std::function<Status(size_t)>& row) {
  std::vector<Status> row_status(num_orderings);
  const size_t threads = GridThreads(num_threads, num_orderings);
  if (threads <= 1) {
    for (size_t o = 0; o < num_orderings; ++o) row_status[o] = row(o);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(num_orderings,
                     [&](size_t o, size_t /*worker*/) { row_status[o] = row(o); });
  }
  for (size_t o = 0; o < num_orderings; ++o) {
    if (!row_status[o].ok()) return std::move(row_status[o]);
  }
  return Status::OK();
}

}  // namespace

Result<SelectivityBuildResult> MeasureSelectivityBuild(
    const Graph& graph, size_t k, SelectivityOptions options) {
  std::vector<double> per_label_ms(graph.num_labels(), 0.0);
  auto user_label_time = std::move(options.label_time);
  // The recorder runs inside the evaluator's callback mutex, so plain
  // writes to per_label_ms are safe; each root fires exactly once.
  options.label_time = [&per_label_ms, &user_label_time](LabelId root,
                                                         double millis) {
    per_label_ms[root] = millis;
    if (user_label_time) user_label_time(root, millis);
  };
  const size_t num_threads =
      ResolvedNumThreads(options, graph.num_labels(), k);
  Timer timer;
  auto map = ComputeSelectivities(graph, k, options);
  const double wall_ms = timer.ElapsedMillis();
  if (!map.ok()) return map.status();
  return SelectivityBuildResult{k,
                                num_threads,
                                options.kernel,
                                options.strategy,
                                wall_ms,
                                std::move(per_label_ms),
                                std::move(*map)};
}

ReportTable GraphIngestReport(const GraphLoadStats& stats) {
  ReportTable table({"stage", "ms", "share_%"});
  const double total = stats.total_ms;
  const auto add_stage = [&table, total](const std::string& stage,
                                         double ms) {
    const double share = total > 0.0 ? 100.0 * ms / total : 0.0;
    table.AddRow({stage, FormatDouble(ms, 4), FormatDouble(share, 3)});
  };
  add_stage("read", stats.read_ms);
  add_stage("parse(" + std::to_string(stats.num_chunks) + " chunks)",
            stats.parse_ms);
  add_stage("build/partition", stats.build.partition_ms);
  add_stage("build/csr", stats.build.csr_ms);
  add_stage("build/vertex-major", stats.build.vm_ms);
  add_stage("build/plane", stats.build.plane_ms);
  if (stats.build.reverse_ms > 0.0) {
    add_stage("build/reverse", stats.build.reverse_ms);
  }
  std::string plane = std::string("plane(") +
                      PlaneKindName(stats.build.plane_kind) + ", " +
                      std::to_string(stats.build.plane_rows) + " rows, " +
                      std::to_string(stats.build.plane_bytes) + " B";
  if (stats.build.plane_kind == PlaneKind::kHub) {
    plane += ", deg>=" + std::to_string(stats.build.hub_degree_threshold);
  }
  plane += ")";
  table.AddRow({plane, "", ""});
  table.AddRow({"total(wall, " + std::to_string(stats.num_threads) +
                    " thread" + (stats.num_threads == 1 ? "" : "s") + ")",
                FormatDouble(stats.total_ms, 4), "100"});
  return table;
}

ReportTable SelectivityBuildReport(const Graph& graph,
                                   const SelectivityBuildResult& result) {
  ReportTable table({"label", "card", "eval_ms", "share_%"});
  double label_total_ms = 0.0;
  for (double ms : result.per_label_ms) label_total_ms += ms;
  for (LabelId l = 0; l < result.per_label_ms.size(); ++l) {
    const double ms = result.per_label_ms[l];
    const double share = label_total_ms > 0.0 ? 100.0 * ms / label_total_ms
                                              : 0.0;
    table.AddRow({graph.labels().Name(l), std::to_string(graph.LabelCardinality(l)),
                  FormatDouble(ms, 4), FormatDouble(share, 3)});
  }
  table.AddRow({"total(wall, " + std::to_string(result.num_threads) +
                    " thread" + (result.num_threads == 1 ? "" : "s") + ", " +
                    PairKernelName(result.kernel) + " kernel, " +
                    ExtendStrategyName(result.strategy) + " strategy)",
                std::to_string(graph.num_edges()),
                FormatDouble(result.wall_ms, 4), "100"});
  return table;
}

ErrorSummary SummarizeHistogramErrors(const Histogram& histogram,
                                      const std::vector<uint64_t>& dist) {
  std::vector<double> abs_errors;
  abs_errors.reserve(dist.size());
  // Walk buckets in domain order instead of binary-searching per index.
  for (const Bucket& bucket : histogram.buckets()) {
    const double mean = bucket.Mean();
    for (uint64_t i = bucket.begin; i < bucket.end; ++i) {
      abs_errors.push_back(
          AbsoluteErrorRate(mean, static_cast<double>(dist[i])));
    }
  }
  return SummarizeErrors(std::move(abs_errors));
}

std::vector<size_t> BetaSweep(uint64_t domain_size, size_t levels) {
  std::vector<size_t> betas;
  uint64_t beta = domain_size;
  for (size_t i = 0; i < levels; ++i) {
    beta /= 2;
    if (beta == 0) break;
    betas.push_back(static_cast<size_t>(beta));
  }
  return betas;
}

Result<AccuracyResult> MeasureAccuracy(const Graph& graph,
                                       const SelectivityMap& selectivities,
                                       const std::string& ordering_name,
                                       size_t k, size_t beta,
                                       HistogramType histogram_type) {
  auto ordering =
      MakeOrderingWithSelectivities(ordering_name, graph, k, selectivities);
  if (!ordering.ok()) return ordering.status();

  Timer build_timer;
  auto estimator = PathHistogram::Build(selectivities, std::move(*ordering),
                                        histogram_type, beta);
  if (!estimator.ok()) return estimator.status();
  double build_ms = build_timer.ElapsedMillis();

  AccuracyResult result;
  result.ordering = estimator->ordering().name();
  result.k = k;
  result.beta = beta;
  result.sse = estimator->histogram().TotalSse();
  result.build_ms = build_ms;

  PathSpace space(graph.num_labels(), k);
  std::vector<double> abs_errors;
  abs_errors.reserve(space.size());
  space.ForEach([&](const LabelPath& path) {
    double e = estimator->Estimate(path);
    double f = static_cast<double>(selectivities.Get(path));
    abs_errors.push_back(AbsoluteErrorRate(e, f));
  });
  result.errors = SummarizeErrors(std::move(abs_errors));
  return result;
}

Result<std::vector<AccuracyResult>> MeasureAccuracySweep(
    const Graph& graph, const SelectivityMap& selectivities,
    const std::vector<std::string>& ordering_names, size_t k,
    const std::vector<size_t>& betas, HistogramType histogram_type,
    size_t num_threads) {
  const size_t num_betas = betas.size();
  std::vector<AccuracyResult> grid(ordering_names.size() * num_betas);

  auto row = [&](size_t o) -> Status {
    auto ordering = MakeOrderingWithSelectivities(ordering_names[o], graph, k,
                                                  selectivities);
    if (!ordering.ok()) return ordering.status();
    auto dist = BuildDistribution(selectivities, **ordering);
    if (!dist.ok()) return dist.status();
    DistributionStats stats(*dist);

    Timer build_timer;
    auto histograms = BuildHistogramSweep(histogram_type, stats, betas);
    if (!histograms.ok()) return histograms.status();
    const double amortized_ms =
        num_betas == 0 ? 0.0
                       : build_timer.ElapsedMillis() /
                             static_cast<double>(num_betas);

    for (size_t b = 0; b < num_betas; ++b) {
      const Histogram& h = (*histograms)[b];
      AccuracyResult& cell = grid[o * num_betas + b];
      cell.ordering = (*ordering)->name();
      cell.k = k;
      cell.beta = betas[b];
      cell.errors = SummarizeHistogramErrors(h, *dist);
      cell.sse = h.TotalSse();
      cell.build_ms = amortized_ms;
    }
    return Status::OK();
  };

  PATHEST_RETURN_NOT_OK(RunOrderingRows(ordering_names.size(), num_threads,
                                        row));
  return grid;
}

Result<TimingResult> MeasureEstimationTime(const Graph& graph,
                                           const SelectivityMap& selectivities,
                                           const std::string& ordering_name,
                                           size_t k, size_t beta,
                                           HistogramType histogram_type,
                                           size_t repetitions) {
  auto ordering =
      MakeOrderingWithSelectivities(ordering_name, graph, k, selectivities);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::Build(selectivities, std::move(*ordering),
                                        histogram_type, beta);
  if (!estimator.ok()) return estimator.status();

  PathSpace space(graph.num_labels(), k);
  std::vector<LabelPath> workload = AllPathsWorkload(space);

  TimingResult result;
  result.ordering = estimator->ordering().name();
  result.beta = beta;

  // Accumulate estimates into a sink so the calls cannot be optimized away.
  double sink = 0.0;
  Timer timer;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    for (const LabelPath& path : workload) {
      sink += estimator->Estimate(path);
    }
  }
  double total_us = timer.ElapsedMicros();
  result.calls = static_cast<uint64_t>(repetitions) * workload.size();
  result.avg_estimate_us =
      result.calls == 0 ? 0.0 : total_us / static_cast<double>(result.calls);
  // Fold the sink into the result in a way that never changes it, defeating
  // dead-code elimination without affecting output.
  if (sink == -1.0) result.calls += 1;
  return result;
}

Result<std::vector<TimingResult>> MeasureTimingSweep(
    const Graph& graph, const SelectivityMap& selectivities,
    const std::vector<std::string>& ordering_names, size_t k,
    const std::vector<size_t>& betas, HistogramType histogram_type,
    size_t repetitions, size_t num_threads) {
  const size_t num_betas = betas.size();
  std::vector<TimingResult> grid(ordering_names.size() * num_betas);

  PathSpace space(graph.num_labels(), k);
  const std::vector<LabelPath> workload = AllPathsWorkload(space);

  auto row = [&](size_t o) -> Status {
    auto ordering = MakeOrderingWithSelectivities(ordering_names[o], graph, k,
                                                  selectivities);
    if (!ordering.ok()) return ordering.status();
    auto dist = BuildDistribution(selectivities, **ordering);
    if (!dist.ok()) return dist.status();
    DistributionStats stats(*dist);
    auto histograms = BuildHistogramSweep(histogram_type, stats, betas);
    if (!histograms.ok()) return histograms.status();

    RankScratch scratch;
    for (size_t b = 0; b < num_betas; ++b) {
      const Histogram& h = (*histograms)[b];
      TimingResult& cell = grid[o * num_betas + b];
      cell.ordering = (*ordering)->name();
      cell.beta = betas[b];
      // The serving fast path: type-tagged scratch Rank + flat bucket
      // lookup (core/estimator.h), i.e. what a deployed estimator pays.
      const Estimator estimator(**ordering, h);
      cell.estimator_bytes = estimator.ResidentBytes();
      double sink = 0.0;
      Timer timer;
      for (size_t rep = 0; rep < repetitions; ++rep) {
        for (const LabelPath& path : workload) {
          sink += estimator.Estimate(path, scratch);
        }
      }
      const double total_us = timer.ElapsedMicros();
      cell.calls = static_cast<uint64_t>(repetitions) * workload.size();
      cell.avg_estimate_us =
          cell.calls == 0 ? 0.0
                          : total_us / static_cast<double>(cell.calls);
      if (sink == -1.0) cell.calls += 1;  // defeat dead-code elimination
    }
    return Status::OK();
  };

  PATHEST_RETURN_NOT_OK(RunOrderingRows(ordering_names.size(), num_threads,
                                        row));
  return grid;
}

}  // namespace pathest
