#include "core/experiment.h"

#include "core/workload.h"
#include "ordering/factory.h"
#include "util/timer.h"

namespace pathest {

std::vector<size_t> BetaSweep(uint64_t domain_size, size_t levels) {
  std::vector<size_t> betas;
  uint64_t beta = domain_size;
  for (size_t i = 0; i < levels; ++i) {
    beta /= 2;
    if (beta == 0) break;
    betas.push_back(static_cast<size_t>(beta));
  }
  return betas;
}

Result<AccuracyResult> MeasureAccuracy(const Graph& graph,
                                       const SelectivityMap& selectivities,
                                       const std::string& ordering_name,
                                       size_t k, size_t beta,
                                       HistogramType histogram_type) {
  auto ordering =
      MakeOrderingWithSelectivities(ordering_name, graph, k, selectivities);
  if (!ordering.ok()) return ordering.status();

  Timer build_timer;
  auto estimator = PathHistogram::Build(selectivities, std::move(*ordering),
                                        histogram_type, beta);
  if (!estimator.ok()) return estimator.status();
  double build_ms = build_timer.ElapsedMillis();

  AccuracyResult result;
  result.ordering = estimator->ordering().name();
  result.k = k;
  result.beta = beta;
  result.sse = estimator->histogram().TotalSse();
  result.build_ms = build_ms;

  PathSpace space(graph.num_labels(), k);
  std::vector<double> abs_errors;
  abs_errors.reserve(space.size());
  space.ForEach([&](const LabelPath& path) {
    double e = estimator->Estimate(path);
    double f = static_cast<double>(selectivities.Get(path));
    abs_errors.push_back(AbsoluteErrorRate(e, f));
  });
  result.errors = SummarizeErrors(std::move(abs_errors));
  return result;
}

Result<TimingResult> MeasureEstimationTime(const Graph& graph,
                                           const SelectivityMap& selectivities,
                                           const std::string& ordering_name,
                                           size_t k, size_t beta,
                                           HistogramType histogram_type,
                                           size_t repetitions) {
  auto ordering =
      MakeOrderingWithSelectivities(ordering_name, graph, k, selectivities);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::Build(selectivities, std::move(*ordering),
                                        histogram_type, beta);
  if (!estimator.ok()) return estimator.status();

  PathSpace space(graph.num_labels(), k);
  std::vector<LabelPath> workload = AllPathsWorkload(space);

  TimingResult result;
  result.ordering = estimator->ordering().name();
  result.beta = beta;

  // Accumulate estimates into a sink so the calls cannot be optimized away.
  double sink = 0.0;
  Timer timer;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    for (const LabelPath& path : workload) {
      sink += estimator->Estimate(path);
    }
  }
  double total_us = timer.ElapsedMicros();
  result.calls = static_cast<uint64_t>(repetitions) * workload.size();
  result.avg_estimate_us =
      result.calls == 0 ? 0.0 : total_us / static_cast<double>(result.calls);
  // Fold the sink into the result in a way that never changes it, defeating
  // dead-code elimination without affecting output.
  if (sink == -1.0) result.calls += 1;
  return result;
}

}  // namespace pathest
