// pathest: zero-copy estimator construction over a memory-mapped binary
// catalog v2 (core/serialize.h).
//
// A MappedCatalogEntry owns exactly one mapping (util/mmap_file.h) and the
// small OWNED metadata parsed out of it (label dictionary, cardinalities,
// ordering identity); every bulk row the serving fast paths read — the
// histogram serving rows, the stage-2 composition rows, the stage-3 index —
// stays IN the mapping, borrowed through spans:
//
//   FlatHistogram::FromBorrowedRows   over the histogram section,
//   CompositionTable::Borrowed        over the composition section,
//   SumBasedOrdering's borrowed form  over the sum-index section.
//
// Construction is therefore header authentication + (per the chosen
// CatalogVerify tier) checksums/scans + O(k) pointer fixup — microseconds
// and O(1) allocations where the copying loader spends milliseconds
// rebuilding tables, with the row bytes themselves faulted lazily by the
// kernel on first use.
//
// Lifetime: the entry is handed out as shared_ptr<const>; the mapping, the
// ordering, and the estimator all live and die together, so any estimate
// served from a copy of the pointer is safe for as long as that copy is
// held — CatalogCache (core/catalog_cache.h) relies on exactly this to
// evict entries that are still in flight elsewhere.

#ifndef PATHEST_CORE_MAPPED_CATALOG_H_
#define PATHEST_CORE_MAPPED_CATALOG_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/serialize.h"
#include "graph/graph.h"
#include "ordering/ordering.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace pathest {

/// \brief One mapped catalog v2 file, served zero-copy. Immutable after
/// Open; safe to share across any number of concurrent readers.
class MappedCatalogEntry {
 public:
  /// \brief Maps `path` and builds the borrowed estimator over it at
  /// verification tier `verify` (core/serialize.h — kChecksums is the
  /// cache's admission default; kTrusted is for bytes this process already
  /// verified this file generation and is UNSAFE on anything else).
  /// Fails (never aborts) on any malformed, truncated, corrupt, or
  /// non-v2 input.
  static Result<std::shared_ptr<const MappedCatalogEntry>> Open(
      const std::string& path, CatalogVerify verify);

  const Estimator& estimator() const { return *estimator_; }
  const LabelDictionary& labels() const { return labels_; }
  const std::vector<uint64_t>& label_cardinalities() const { return cards_; }
  const std::string& ordering_name() const { return ordering_name_; }
  HistogramType histogram_type() const { return histogram_type_; }

  const std::string& path() const { return file_.path(); }
  /// \brief Identity of the mapped generation (device, inode, size,
  /// mtime) — under the atomic-rename publish discipline a changed file is
  /// a changed id, which is how CatalogCache detects staleness.
  const FileId& file_id() const { return file_.id(); }

  /// \brief Bytes of the file mapping (budget currency of CatalogCache).
  size_t mapped_bytes() const { return file_.size(); }
  /// \brief Heap bytes OWNED by this entry: parsed metadata plus the
  /// ordering's small owned tables — everything NOT served from the
  /// mapping. The gap between this and mapped_bytes() is the zero-copy
  /// win, reported per entry by serve `stats`.
  size_t resident_bytes() const { return resident_bytes_; }

  MappedCatalogEntry(const MappedCatalogEntry&) = delete;
  MappedCatalogEntry& operator=(const MappedCatalogEntry&) = delete;

 private:
  MappedCatalogEntry() = default;

  MappedFile file_;
  std::string ordering_name_;
  HistogramType histogram_type_ = HistogramType::kEquiWidth;
  LabelDictionary labels_;
  std::vector<uint64_t> cards_;
  // The estimator holds a pointer into ordering_ and spans into file_ —
  // neither moves once Open returns (the entry lives behind shared_ptr).
  std::unique_ptr<Ordering> ordering_;
  std::optional<Estimator> estimator_;
  size_t resident_bytes_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_CORE_MAPPED_CATALOG_H_
