#include "core/serialize.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string_view>

#include "core/serialize_internal.h"
#include "histogram/flat_histogram.h"
#include "ordering/factory.h"
#include "ordering/sum_based.h"
#include "path/path_space.h"
#include "util/combinatorics.h"
#include "util/crc32c.h"
#include "util/safe_io.h"

namespace pathest {

namespace {

constexpr const char* kTextMagic = "pathest-histogram v1";

// Caps shared by both formats: a label dictionary or path length outside
// these is a corrupt or forged file, not a real catalog.
constexpr uint64_t kMaxLabels = 4096;
constexpr uint64_t kMaxLabelNameBytes = 4096;

// The sum-based family carries a composition section (stage-2 table);
// sum-L2 never reaches serialization (IsSerializableOrdering rejects it).
bool IsSumFamilyOrdering(const std::string& name) {
  return name.rfind("sum-", 0) == 0;
}

// The v2 bulk rows are written and mapped as raw little-endian u64/f64
// images; both directions assume the host matches.
static_assert(std::endian::native == std::endian::little,
              "binary catalog v2 bulk rows assume a little-endian host");

// Metadata payload builders shared verbatim by the v1 and v2 writers
// (sections 1-3 are byte-identical across versions).
std::string BuildOrderingPayload(const std::string& ordering_name,
                                 const char* type_name, size_t k) {
  std::string payload;
  AppendLengthPrefixedString(&payload, ordering_name);
  AppendLengthPrefixedString(&payload, type_name);
  AppendU32(&payload, static_cast<uint32_t>(k));
  AppendU32(&payload, 0);
  return payload;
}

std::string BuildLabelsPayload(const LabelDictionary& labels) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(labels.size()));
  for (const std::string& name : labels.names()) {
    AppendLengthPrefixedString(&payload, name);
  }
  return payload;
}

std::string BuildCardsPayload(const std::vector<uint64_t>& cardinalities) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(cardinalities.size()));
  AppendU32(&payload, 0);
  for (uint64_t f : cardinalities) AppendU64(&payload, f);
  return payload;
}

// Zero-pads `out` up to offset `off` (v2 interior alignment padding —
// inside the payload, hence covered by the section CRC).
void PadTo(std::string* out, uint64_t off) {
  PATHEST_CHECK(out->size() <= off, "v2 writer overshot a layout offset");
  out->resize(off, '\0');
}

// Raw little-endian row append (the static_assert above licenses memcpy).
template <typename T>
void AppendRow(std::string* out, const T* data, size_t n) {
  out->append(reinterpret_cast<const char*>(data), n * sizeof(T));
}

}  // namespace

const char* CatalogFormatName(CatalogFormat format) {
  switch (format) {
    case CatalogFormat::kText:
      return "text";
    case CatalogFormat::kBinary:
      return "binary";
    case CatalogFormat::kBinaryV2:
      return "binary-v2";
  }
  return "?";
}

Result<CatalogFormat> ParseCatalogFormat(const std::string& name) {
  if (name == "text") return CatalogFormat::kText;
  if (name == "binary") return CatalogFormat::kBinary;
  if (name == "binary-v2") return CatalogFormat::kBinaryV2;
  return Status::InvalidArgument("unknown catalog format '" + name +
                                 "' (expected text|binary|binary-v2)");
}

const char* CatalogVerifyName(CatalogVerify verify) {
  switch (verify) {
    case CatalogVerify::kTrusted:
      return "trusted";
    case CatalogVerify::kChecksums:
      return "checksums";
    case CatalogVerify::kFull:
      return "full";
  }
  return "?";
}

namespace binfmt {

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionOrdering:
      return "ordering";
    case kSectionLabels:
      return "labels";
    case kSectionCardinalities:
      return "cardinalities";
    case kSectionHistogram:
      return "histogram";
    case kSectionComposition:
      return "composition";
    case kSectionSumIndex:
      return "sum-index";
  }
  return "?";
}

HistogramLayoutV2 HistogramLayout(uint64_t beta) {
  HistogramLayoutV2 l;
  uint64_t at = 16;  // u64 beta + u64 domain_size
  l.begin_off = AlignUp(at, kArrayAlignBytes);
  l.end_off = AlignUp(l.begin_off + 8 * beta, kArrayAlignBytes);
  l.sum_off = AlignUp(l.end_off + 8 * beta, kArrayAlignBytes);
  l.sumsq_off = AlignUp(l.sum_off + 8 * beta, kArrayAlignBytes);
  l.mean_off = AlignUp(l.sumsq_off + 8 * beta, kArrayAlignBytes);
  l.prefix_off = AlignUp(l.mean_off + 8 * beta, kArrayAlignBytes);
  l.eytz_begin_off =
      AlignUp(l.prefix_off + 8 * (beta + 1), kArrayAlignBytes);
  l.eytz_rank_off =
      AlignUp(l.eytz_begin_off + 8 * (beta + 1), kArrayAlignBytes);
  l.payload_bytes = l.eytz_rank_off + 4 * (beta + 1);
  return l;
}

CompositionLayoutV2 CompositionLayout(uint64_t num_values, uint64_t max_len) {
  CompositionLayoutV2 l;
  l.counts_off = AlignUp(16, kArrayAlignBytes);  // u32 |L|, u32 k, u64 count
  l.prefix_off = AlignUp(l.counts_off + 8 * num_values, kArrayAlignBytes);
  l.payload_bytes = l.prefix_off + 8 * (num_values + max_len);
  return l;
}

SumIndexLayoutV2 SumIndexLayout(uint64_t num_cells, uint64_t total_blocks) {
  SumIndexLayoutV2 l;
  if (num_cells == 0 && total_blocks == 0) {
    // Scheme kNone: prolog only.
    l.cell_starts_off = l.keys_off = l.offsets_off = l.nops_off = 24;
    l.payload_bytes = 24;
    return l;
  }
  l.cell_starts_off = AlignUp(24, kArrayAlignBytes);
  l.keys_off =
      AlignUp(l.cell_starts_off + 8 * (num_cells + 1), kArrayAlignBytes);
  l.offsets_off = AlignUp(l.keys_off + 8 * total_blocks, kArrayAlignBytes);
  l.nops_off = AlignUp(l.offsets_off + 8 * total_blocks, kArrayAlignBytes);
  l.payload_bytes = l.nops_off + 8 * total_blocks;
  return l;
}

}  // namespace binfmt

bool IsSerializableOrdering(const std::string& ordering_name) {
  for (const char* name :
       {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based",
        "sum-card", "sum-alph", "gray-alph", "gray-card"}) {
    if (ordering_name == name) return true;
  }
  return false;
}

// ------------------------------------------------------------- text writer

Status WritePathHistogram(const PathHistogram& estimator,
                          const LabelDictionary& labels,
                          const std::vector<uint64_t>& label_cardinalities,
                          std::ostream* out) {
  const std::string& ordering_name = estimator.ordering().name();
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::InvalidArgument(
        "ordering '" + ordering_name +
        "' materializes O(|L_k|) state and cannot be serialized compactly");
  }
  if (labels.size() != label_cardinalities.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  (*out) << kTextMagic << "\n";
  (*out) << "ordering " << ordering_name << "\n";
  (*out) << "type " << HistogramTypeName(estimator.histogram_type()) << "\n";
  (*out) << "k " << estimator.ordering().space().k() << "\n";
  (*out) << "labels " << labels.size();
  for (const std::string& name : labels.names()) (*out) << ' ' << name;
  (*out) << "\n";
  (*out) << "cardinalities";
  for (uint64_t f : label_cardinalities) (*out) << ' ' << f;
  (*out) << "\n";
  const auto& buckets = estimator.histogram().buckets();
  (*out) << "buckets " << buckets.size() << "\n";
  // Hex double encoding is lossless and locale-independent.
  (*out).precision(17);
  for (const Bucket& b : buckets) {
    (*out) << b.begin << ' ' << b.end << ' ' << std::hexfloat << b.sum << ' '
           << b.sumsq << std::defaultfloat << "\n";
  }
  if (!out->good()) return Status::IOError("histogram write failed");
  return Status::OK();
}

// ----------------------------------------------------------- binary writer

Status WritePathHistogramBinary(const PathHistogram& estimator,
                                const LabelDictionary& labels,
                                const std::vector<uint64_t>& cardinalities,
                                std::string* out) {
  const std::string& ordering_name = estimator.ordering().name();
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::InvalidArgument(
        "ordering '" + ordering_name +
        "' materializes O(|L_k|) state and cannot be serialized compactly");
  }
  if (labels.size() != cardinalities.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  const size_t k = estimator.ordering().space().k();
  const size_t num_labels = labels.size();

  // Section payloads, in id order.
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.emplace_back(
      binfmt::kSectionOrdering,
      BuildOrderingPayload(ordering_name,
                           HistogramTypeName(estimator.histogram_type()), k));
  sections.emplace_back(binfmt::kSectionLabels, BuildLabelsPayload(labels));
  sections.emplace_back(binfmt::kSectionCardinalities,
                        BuildCardsPayload(cardinalities));

  // Structure-of-arrays bucket rows: the column layout the serving
  // FlatHistogram wants, so an mmap tier can point at whole rows.
  const auto& buckets = estimator.histogram().buckets();
  std::string hist_payload;
  hist_payload.reserve(8 + buckets.size() * 32);
  AppendU64(&hist_payload, buckets.size());
  for (const Bucket& b : buckets) AppendU64(&hist_payload, b.begin);
  for (const Bucket& b : buckets) AppendU64(&hist_payload, b.end);
  for (const Bucket& b : buckets) AppendDouble(&hist_payload, b.sum);
  for (const Bucket& b : buckets) AppendDouble(&hist_payload, b.sumsq);
  sections.emplace_back(binfmt::kSectionHistogram, std::move(hist_payload));

  if (IsSumFamilyOrdering(ordering_name)) {
    // The sum-based stage-2 CompositionTable rows, exactly as the ordering
    // rebuilds them from (|L|, k). Carrying them on disk (a) lets the load
    // path cross-check a semantic invariant no CRC can, and (b) is the row
    // layout the mmap serving tier will consume directly.
    CompositionTable table(num_labels, k);
    std::string comp_payload;
    AppendU32(&comp_payload, static_cast<uint32_t>(num_labels));
    AppendU32(&comp_payload, static_cast<uint32_t>(k));
    uint64_t num_values = 0;
    for (uint64_t m = 1; m <= k; ++m) {
      num_values += m * num_labels - m + 1;
    }
    AppendU64(&comp_payload, num_values);
    for (uint64_t m = 1; m <= k; ++m) {
      for (uint64_t sum = m; sum <= m * num_labels; ++sum) {
        AppendU64(&comp_payload, table.Count(sum, m));
      }
    }
    sections.emplace_back(binfmt::kSectionComposition,
                          std::move(comp_payload));
  }

  // Assemble: header, table, payloads. Offsets are absolute.
  const size_t table_bytes = sections.size() * binfmt::kSectionEntryBytes;
  uint64_t offset = binfmt::kHeaderBytes + table_bytes;
  std::string table;
  table.reserve(table_bytes);
  uint64_t total_size = offset;
  for (const auto& [id, payload] : sections) {
    AppendU32(&table, id);
    AppendU32(&table, Crc32c(payload.data(), payload.size()));
    AppendU64(&table, offset);
    AppendU64(&table, payload.size());
    offset += payload.size();
    total_size += payload.size();
  }

  std::string header;
  header.reserve(binfmt::kHeaderBytes);
  header.append(reinterpret_cast<const char*>(binfmt::kMagic),
                binfmt::kMagicBytes);
  AppendU32(&header, binfmt::kVersion);
  AppendU32(&header, static_cast<uint32_t>(sections.size()));
  AppendU64(&header, total_size);
  AppendU32(&header, Crc32c(header.data(), header.size()));
  AppendU32(&header, Crc32c(table.data(), table.size()));

  out->clear();
  out->reserve(total_size);
  out->append(header);
  out->append(table);
  for (const auto& [id, payload] : sections) out->append(payload);
  return Status::OK();
}

Status WritePathHistogramBinaryV2(const PathHistogram& estimator,
                                  const LabelDictionary& labels,
                                  const std::vector<uint64_t>& cardinalities,
                                  std::string* out) {
  const std::string& ordering_name = estimator.ordering().name();
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::InvalidArgument(
        "ordering '" + ordering_name +
        "' materializes O(|L_k|) state and cannot be serialized compactly");
  }
  if (labels.size() != cardinalities.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  const size_t k = estimator.ordering().space().k();
  const size_t num_labels = labels.size();

  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.emplace_back(
      binfmt::kSectionOrdering,
      BuildOrderingPayload(ordering_name,
                           HistogramTypeName(estimator.histogram_type()), k));
  sections.emplace_back(binfmt::kSectionLabels, BuildLabelsPayload(labels));
  sections.emplace_back(binfmt::kSectionCardinalities,
                        BuildCardsPayload(cardinalities));

  // Section 4: diagnostic bucket rows plus the PRECOMPUTED serving rows,
  // each at its layout offset so a mapped reader points spans at them.
  const auto& buckets = estimator.histogram().buckets();
  const uint64_t beta = buckets.size();
  const FlatHistogram flat(estimator.histogram());
  const binfmt::HistogramLayoutV2 hl = binfmt::HistogramLayout(beta);
  std::string hist;
  hist.reserve(hl.payload_bytes);
  AppendU64(&hist, beta);
  AppendU64(&hist, estimator.histogram().domain_size());
  {
    std::vector<uint64_t> row(beta);
    for (uint64_t b = 0; b < beta; ++b) row[b] = buckets[b].begin;
    PadTo(&hist, hl.begin_off);
    AppendRow(&hist, row.data(), row.size());
    for (uint64_t b = 0; b < beta; ++b) row[b] = buckets[b].end;
    PadTo(&hist, hl.end_off);
    AppendRow(&hist, row.data(), row.size());
  }
  {
    std::vector<double> row(beta);
    for (uint64_t b = 0; b < beta; ++b) row[b] = buckets[b].sum;
    PadTo(&hist, hl.sum_off);
    AppendRow(&hist, row.data(), row.size());
    for (uint64_t b = 0; b < beta; ++b) row[b] = buckets[b].sumsq;
    PadTo(&hist, hl.sumsq_off);
    AppendRow(&hist, row.data(), row.size());
  }
  PadTo(&hist, hl.mean_off);
  AppendRow(&hist, flat.means().data(), flat.means().size());
  PadTo(&hist, hl.prefix_off);
  AppendRow(&hist, flat.prefix_sums().data(), flat.prefix_sums().size());
  PadTo(&hist, hl.eytz_begin_off);
  AppendRow(&hist, flat.eytz_begins().data(), flat.eytz_begins().size());
  PadTo(&hist, hl.eytz_rank_off);
  AppendRow(&hist, flat.eytz_ranks().data(), flat.eytz_ranks().size());
  PATHEST_CHECK(hist.size() == hl.payload_bytes,
                "v2 histogram payload does not match its layout");
  sections.emplace_back(binfmt::kSectionHistogram, std::move(hist));

  if (IsSumFamilyOrdering(ordering_name)) {
    // Persist the ordering's own stage-2/3 tables (built once at its
    // construction) rather than rebuilding them for the write.
    PATHEST_CHECK(estimator.ordering().kind() == OrderingKind::kSumBased,
                  "sum-family ordering name without a SumBasedOrdering");
    const auto& sum =
        static_cast<const SumBasedOrdering&>(estimator.ordering());
    const CompositionTable& comps = sum.compositions();
    const uint64_t num_values =
        CompositionTable::FlatCountValues(num_labels, k);
    const binfmt::CompositionLayoutV2 cl =
        binfmt::CompositionLayout(num_values, k);
    std::string comp;
    comp.reserve(cl.payload_bytes);
    AppendU32(&comp, static_cast<uint32_t>(num_labels));
    AppendU32(&comp, static_cast<uint32_t>(k));
    AppendU64(&comp, num_values);
    PadTo(&comp, cl.counts_off);
    AppendRow(&comp, comps.flat_counts().data(), comps.flat_counts().size());
    PadTo(&comp, cl.prefix_off);
    AppendRow(&comp, comps.flat_prefix().data(), comps.flat_prefix().size());
    PATHEST_CHECK(comp.size() == cl.payload_bytes,
                  "v2 composition payload does not match its layout");
    sections.emplace_back(binfmt::kSectionComposition, std::move(comp));

    const SumStage3View view = sum.stage3_view();
    const uint64_t num_cells = view.scheme == SumKeyScheme::kNone
                                   ? 0
                                   : SumStage3CellCount(num_labels, k);
    const uint64_t total_blocks = view.keys.size();
    const binfmt::SumIndexLayoutV2 sl =
        binfmt::SumIndexLayout(num_cells, total_blocks);
    std::string index;
    index.reserve(sl.payload_bytes);
    AppendU32(&index, static_cast<uint32_t>(view.scheme));
    AppendU32(&index, view.key_bits);
    AppendU64(&index, num_cells);
    AppendU64(&index, total_blocks);
    if (view.scheme != SumKeyScheme::kNone) {
      PadTo(&index, sl.cell_starts_off);
      AppendRow(&index, view.cell_starts.data(), view.cell_starts.size());
      PadTo(&index, sl.keys_off);
      AppendRow(&index, view.keys.data(), view.keys.size());
      PadTo(&index, sl.offsets_off);
      AppendRow(&index, view.offsets.data(), view.offsets.size());
      PadTo(&index, sl.nops_off);
      AppendRow(&index, view.nops.data(), view.nops.size());
    }
    PATHEST_CHECK(index.size() == sl.payload_bytes,
                  "v2 sum-index payload does not match its layout");
    sections.emplace_back(binfmt::kSectionSumIndex, std::move(index));
  }

  // Assemble: header, table, payloads at page-aligned offsets. The gaps
  // are zero padding outside every CRC.
  const size_t table_bytes = sections.size() * binfmt::kSectionEntryBytes;
  std::vector<uint64_t> offsets(sections.size());
  uint64_t cursor =
      binfmt::AlignUp(binfmt::kHeaderBytes + table_bytes, binfmt::kPageBytes);
  uint64_t total_size = binfmt::kHeaderBytes + table_bytes;
  std::string table;
  table.reserve(table_bytes);
  for (size_t i = 0; i < sections.size(); ++i) {
    const auto& [id, payload] = sections[i];
    offsets[i] = cursor;
    AppendU32(&table, id);
    AppendU32(&table, Crc32c(payload.data(), payload.size()));
    AppendU64(&table, cursor);
    AppendU64(&table, payload.size());
    total_size = cursor + payload.size();
    cursor = binfmt::AlignUp(total_size, binfmt::kPageBytes);
  }

  std::string header;
  header.reserve(binfmt::kHeaderBytes);
  header.append(reinterpret_cast<const char*>(binfmt::kMagicV2),
                binfmt::kMagicBytes);
  AppendU32(&header, binfmt::kVersionV2);
  AppendU32(&header, static_cast<uint32_t>(sections.size()));
  AppendU64(&header, total_size);
  AppendU32(&header, Crc32c(header.data(), header.size()));
  AppendU32(&header, Crc32c(table.data(), table.size()));

  out->clear();
  out->reserve(total_size);
  out->append(header);
  out->append(table);
  for (size_t i = 0; i < sections.size(); ++i) {
    PadTo(out, offsets[i]);
    out->append(sections[i].second);
  }
  return Status::OK();
}

Status SavePathHistogram(const PathHistogram& estimator, const Graph& graph,
                         const std::string& path, CatalogFormat format) {
  std::vector<uint64_t> cards(graph.num_labels());
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards[l] = graph.LabelCardinality(l);
  }
  std::string bytes;
  switch (format) {
    case CatalogFormat::kBinary:
      PATHEST_RETURN_NOT_OK(
          WritePathHistogramBinary(estimator, graph.labels(), cards, &bytes));
      break;
    case CatalogFormat::kBinaryV2:
      PATHEST_RETURN_NOT_OK(WritePathHistogramBinaryV2(
          estimator, graph.labels(), cards, &bytes));
      break;
    case CatalogFormat::kText: {
      std::ostringstream out;
      PATHEST_RETURN_NOT_OK(
          WritePathHistogram(estimator, graph.labels(), cards, &out));
      bytes = out.str();
      break;
    }
  }
  // Atomic publication: a crashed or failed save never leaves a partial
  // catalog at `path`, and any previous file there survives byte-identical.
  return AtomicWriteFile(path, bytes);
}

Status SaveLoadedPathHistogram(const LoadedPathHistogram& loaded,
                               const std::string& path, CatalogFormat format) {
  std::string bytes;
  switch (format) {
    case CatalogFormat::kBinary:
      PATHEST_RETURN_NOT_OK(WritePathHistogramBinary(
          loaded.estimator, loaded.labels, loaded.label_cardinalities,
          &bytes));
      break;
    case CatalogFormat::kBinaryV2:
      PATHEST_RETURN_NOT_OK(WritePathHistogramBinaryV2(
          loaded.estimator, loaded.labels, loaded.label_cardinalities,
          &bytes));
      break;
    case CatalogFormat::kText: {
      std::ostringstream out;
      PATHEST_RETURN_NOT_OK(WritePathHistogram(
          loaded.estimator, loaded.labels, loaded.label_cardinalities, &out));
      bytes = out.str();
      break;
    }
  }
  return AtomicWriteFile(path, bytes);
}

// ------------------------------------------------------------- text reader

namespace {

Result<LoadedPathHistogram> ReadPathHistogramText(const std::string& content) {
  // The buffer is parsed with a cursor over the raw bytes: integers via
  // std::from_chars, doubles via strtod (hexfloat). The previous reader
  // paid an istringstream construction plus locale-aware operator>>
  // extraction per line, which dominated large-beta catalog loads (see the
  // timing note in serialize.h).
  const char* cur = content.data();
  const char* const end = content.data() + content.size();

  // The magic is a whole line, not a token (it contains a space).
  const char* nl = std::find(cur, end, '\n');
  if (std::string_view(cur, static_cast<size_t>(nl - cur)) != kTextMagic) {
    return Status::IOError("bad magic: expected '" + std::string(kTextMagic) +
                           "'");
  }
  cur = nl == end ? end : nl + 1;

  auto next_token = [&cur, end]() -> std::string_view {
    while (cur < end && std::isspace(static_cast<unsigned char>(*cur))) ++cur;
    const char* begin = cur;
    while (cur < end && !std::isspace(static_cast<unsigned char>(*cur))) ++cur;
    return {begin, static_cast<size_t>(cur - begin)};
  };
  auto expect_key = [&next_token](const char* key) -> Status {
    const std::string_view tok = next_token();
    if (tok.empty()) {
      return Status::IOError(std::string("truncated file before '") + key +
                             "'");
    }
    if (tok != key) {
      return Status::IOError("expected key '" + std::string(key) +
                             "', found '" + std::string(tok) + "'");
    }
    return Status::OK();
  };
  auto parse_u64 = [&next_token](uint64_t* out) -> bool {
    const std::string_view tok = next_token();
    if (tok.empty()) return false;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), *out);
    return ec == std::errc() && ptr == tok.data() + tok.size();
  };
  // Hexfloat ("0x1.8p+4") parsing stays on strtod: std::from_chars's hex
  // format rejects the "0x" prefix the writer emits. Tokens point into
  // `content`, which is null-terminated past its last byte, and strtod
  // stops at the token-ending whitespace on its own.
  auto parse_double = [&next_token](double* out) -> bool {
    const std::string_view tok = next_token();
    if (tok.empty()) return false;
    char* parse_end = nullptr;
    *out = std::strtod(tok.data(), &parse_end);
    return parse_end == tok.data() + tok.size();
  };

  PATHEST_RETURN_NOT_OK(expect_key("ordering"));
  std::string ordering_name{next_token()};
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::IOError("unknown serialized ordering: " + ordering_name);
  }

  PATHEST_RETURN_NOT_OK(expect_key("type"));
  auto type = ParseHistogramType(std::string{next_token()});
  if (!type.ok()) return type.status();

  PATHEST_RETURN_NOT_OK(expect_key("k"));
  uint64_t k = 0;
  if (!parse_u64(&k) || k < 1 || k > kMaxPathLength) {
    return Status::IOError("bad k");
  }

  PATHEST_RETURN_NOT_OK(expect_key("labels"));
  uint64_t num_labels = 0;
  if (!parse_u64(&num_labels) || num_labels == 0 || num_labels > kMaxLabels) {
    return Status::IOError("bad label count");
  }
  // A parsed count sizes allocations below, so it must be plausible
  // against the bytes that actually remain (each label name plus its
  // separator needs at least 2 bytes) — a forged huge count is an IOError
  // here, never an unbounded reserve.
  if (num_labels > static_cast<uint64_t>(end - cur) / 2) {
    return Status::IOError("implausible label count " +
                           std::to_string(num_labels) + " for " +
                           std::to_string(end - cur) + " remaining bytes");
  }
  LabelDictionary labels;
  for (size_t i = 0; i < num_labels; ++i) {
    const std::string_view name = next_token();
    if (name.empty()) return Status::IOError("truncated label list");
    if (labels.Intern(std::string{name}) != i) {
      return Status::IOError("duplicate label name: " + std::string{name});
    }
  }

  PATHEST_RETURN_NOT_OK(expect_key("cardinalities"));
  std::vector<uint64_t> cards;
  cards.reserve(num_labels);
  for (size_t i = 0; i < num_labels; ++i) {
    uint64_t f = 0;
    if (!parse_u64(&f)) return Status::IOError("truncated cardinalities");
    cards.push_back(f);
  }

  PATHEST_RETURN_NOT_OK(expect_key("buckets"));
  uint64_t num_buckets = 0;
  if (!parse_u64(&num_buckets) || num_buckets == 0) {
    return Status::IOError("bad bucket count");
  }
  // Same plausibility gate as the label count: a bucket line is at least 8
  // bytes ("0 1 0 0\n"), so a count past remaining/8 cannot be satisfied
  // by the file and must not drive the reserve below.
  if (num_buckets > static_cast<uint64_t>(end - cur) / 8 + 1) {
    return Status::IOError("implausible bucket count " +
                           std::to_string(num_buckets) + " for " +
                           std::to_string(end - cur) + " remaining bytes");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    Bucket b;
    if (!parse_u64(&b.begin) || !parse_u64(&b.end) || !parse_double(&b.sum) ||
        !parse_double(&b.sumsq)) {
      return Status::IOError("truncated or malformed bucket " +
                             std::to_string(i));
    }
    buckets.push_back(b);
  }

  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return Status::IOError("invalid buckets: " +
                           histogram.status().message());
  }
  auto ordering = MakeOrderingFromStats(ordering_name, labels, cards, k);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::FromParts(std::move(*ordering),
                                            std::move(*histogram), *type);
  if (!estimator.ok()) return estimator.status();
  return LoadedPathHistogram{std::move(labels), std::move(cards),
                             std::move(*estimator)};
}

}  // namespace

// ----------------------------------------------------------- binary reader

bool LooksLikeBinaryCatalog(std::string_view bytes) {
  return bytes.size() >= binfmt::kMagicBytes &&
         (std::memcmp(bytes.data(), binfmt::kMagic, binfmt::kMagicBytes) ==
              0 ||
          std::memcmp(bytes.data(), binfmt::kMagicV2, binfmt::kMagicBytes) ==
              0);
}

bool BytesAreBinaryV2(std::string_view bytes) {
  return bytes.size() >= binfmt::kMagicBytes &&
         std::memcmp(bytes.data(), binfmt::kMagicV2, binfmt::kMagicBytes) == 0;
}

Result<bool> SniffFileIsBinaryV2(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!std::filesystem::exists(path)) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError("cannot open " + path);
  }
  char head[binfmt::kMagicBytes];
  in.read(head, sizeof head);
  if (in.gcount() < static_cast<std::streamsize>(sizeof head)) return false;
  return std::memcmp(head, binfmt::kMagicV2, binfmt::kMagicBytes) == 0;
}

Result<CatalogFormat> SniffCatalogFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (!std::filesystem::exists(path)) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError("cannot open " + path);
  }
  char head[binfmt::kMagicBytes];
  in.read(head, sizeof head);
  if (in.gcount() < static_cast<std::streamsize>(sizeof head)) {
    return CatalogFormat::kText;  // too short for any binary magic
  }
  if (std::memcmp(head, binfmt::kMagicV2, binfmt::kMagicBytes) == 0) {
    return CatalogFormat::kBinaryV2;
  }
  if (std::memcmp(head, binfmt::kMagic, binfmt::kMagicBytes) == 0) {
    return CatalogFormat::kBinary;
  }
  return CatalogFormat::kText;
}

namespace {

Status SectionError(uint32_t id, const std::string& detail) {
  return Status::IOError(std::string("section ") + binfmt::SectionName(id) +
                         ": " + detail);
}

struct SectionEntry {
  uint32_t id = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

}  // namespace

Result<LoadedPathHistogram> ReadPathHistogramBinary(std::string_view bytes) {
  using namespace binfmt;  // NOLINT — layout constants
  // ---- header: every check happens before the field it gates is used.
  if (bytes.size() < kHeaderBytes) {
    return Status::IOError("binary catalog: truncated header (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  if (!LooksLikeBinaryCatalog(bytes)) {
    return Status::IOError("binary catalog: bad magic");
  }
  BoundedReader header(bytes.data(), kHeaderBytes);
  PATHEST_RETURN_NOT_OK(header.Skip(kMagicBytes, "magic"));
  uint32_t version = 0, section_count = 0, header_crc = 0, table_crc = 0;
  uint64_t file_size = 0;
  PATHEST_RETURN_NOT_OK(header.ReadU32(&version, "version"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&section_count, "section count"));
  PATHEST_RETURN_NOT_OK(header.ReadU64(&file_size, "file size"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&header_crc, "header crc"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&table_crc, "table crc"));
  if (Crc32c(bytes.data(), kHeaderBytes - 8) != header_crc) {
    return Status::IOError("binary catalog: header checksum mismatch");
  }
  // Post-CRC: the header fields are authentic; now validate them.
  if (version != kVersion) {
    return Status::IOError("binary catalog: unsupported format version " +
                           std::to_string(version) + " (reader knows " +
                           std::to_string(kVersion) + ")");
  }
  if (file_size != bytes.size()) {
    return Status::IOError("binary catalog: file is " +
                           std::to_string(bytes.size()) +
                           " bytes but the header expects " +
                           std::to_string(file_size) + " (truncated copy?)");
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::IOError("binary catalog: implausible section count " +
                           std::to_string(section_count));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  if (kHeaderBytes + table_bytes > bytes.size()) {
    return Status::IOError("binary catalog: truncated section table");
  }
  if (Crc32c(bytes.data() + kHeaderBytes, table_bytes) != table_crc) {
    return Status::IOError("binary catalog: section table checksum mismatch");
  }

  // ---- section table: offsets/lengths bounds-checked before any access.
  BoundedReader table(bytes.data() + kHeaderBytes, table_bytes);
  std::vector<SectionEntry> entries(section_count);
  uint32_t prev_id = 0;
  for (SectionEntry& e : entries) {
    PATHEST_RETURN_NOT_OK(table.ReadU32(&e.id, "section id"));
    PATHEST_RETURN_NOT_OK(table.ReadU32(&e.crc, "section crc"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&e.offset, "section offset"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&e.length, "section length"));
    if (e.id <= prev_id) {
      return Status::IOError(
          "binary catalog: section ids not strictly ascending");
    }
    prev_id = e.id;
    if (e.id > kSectionComposition) {
      return Status::IOError("binary catalog: unknown section id " +
                             std::to_string(e.id));
    }
    if (e.offset < kHeaderBytes + table_bytes ||
        e.offset > bytes.size() || e.length > bytes.size() - e.offset) {
      return SectionError(e.id, "extent [" + std::to_string(e.offset) +
                                    ", +" + std::to_string(e.length) +
                                    ") outside the file");
    }
  }

  auto find_section = [&entries](uint32_t id) -> const SectionEntry* {
    for (const SectionEntry& e : entries) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  for (uint32_t id : {kSectionOrdering, kSectionLabels,
                      kSectionCardinalities, kSectionHistogram}) {
    if (find_section(id) == nullptr) {
      return SectionError(id, "required section missing");
    }
  }

  // Payload accessor: the CRC is verified before the first byte of a
  // section is interpreted.
  auto open_section = [&](const SectionEntry& e,
                          std::string_view* out) -> Status {
    *out = bytes.substr(e.offset, e.length);
    if (Crc32c(out->data(), out->size()) != e.crc) {
      return SectionError(e.id, "checksum mismatch over " +
                                    std::to_string(e.length) + " bytes");
    }
    return Status::OK();
  };

  // ---- section 1: ordering identity.
  std::string_view payload;
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionOrdering),
                                     &payload));
  BoundedReader ord(payload);
  std::string ordering_name, type_name;
  uint32_t k32 = 0, reserved = 0;
  PATHEST_RETURN_NOT_OK(
      ord.ReadLengthPrefixedString(&ordering_name, 64, "ordering name"));
  PATHEST_RETURN_NOT_OK(
      ord.ReadLengthPrefixedString(&type_name, 64, "histogram type"));
  PATHEST_RETURN_NOT_OK(ord.ReadU32(&k32, "k"));
  PATHEST_RETURN_NOT_OK(ord.ReadU32(&reserved, "ordering reserved"));
  if (!ord.AtEnd()) {
    return SectionError(kSectionOrdering, "trailing bytes");
  }
  if (!IsSerializableOrdering(ordering_name)) {
    return SectionError(kSectionOrdering,
                        "unknown serialized ordering: " + ordering_name);
  }
  auto type = ParseHistogramType(type_name);
  if (!type.ok()) {
    return SectionError(kSectionOrdering, type.status().message());
  }
  const uint64_t k = k32;
  if (k < 1 || k > kMaxPathLength) {
    return SectionError(kSectionOrdering, "bad k " + std::to_string(k));
  }

  // ---- section 2: label dictionary.
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionLabels),
                                     &payload));
  BoundedReader lab(payload);
  uint32_t num_labels = 0;
  PATHEST_RETURN_NOT_OK(lab.ReadU32(&num_labels, "label count"));
  if (num_labels == 0 || num_labels > kMaxLabels) {
    return SectionError(kSectionLabels, "implausible label count " +
                                            std::to_string(num_labels));
  }
  // Each label costs at least its 4-byte length prefix.
  PATHEST_RETURN_NOT_OK(lab.ValidateCount(num_labels, 4, "labels"));
  LabelDictionary labels;
  for (uint32_t i = 0; i < num_labels; ++i) {
    std::string name;
    PATHEST_RETURN_NOT_OK(
        lab.ReadLengthPrefixedString(&name, kMaxLabelNameBytes, "label name"));
    if (name.empty()) {
      return SectionError(kSectionLabels, "empty label name");
    }
    if (labels.Intern(name) != i) {
      return SectionError(kSectionLabels, "duplicate label name: " + name);
    }
  }
  if (!lab.AtEnd()) return SectionError(kSectionLabels, "trailing bytes");

  // ---- section 3: cardinalities.
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionCardinalities),
                                     &payload));
  BoundedReader car(payload);
  uint32_t card_count = 0;
  PATHEST_RETURN_NOT_OK(car.ReadU32(&card_count, "cardinality count"));
  PATHEST_RETURN_NOT_OK(car.ReadU32(&reserved, "cardinalities reserved"));
  if (card_count != num_labels) {
    return SectionError(kSectionCardinalities,
                        "count " + std::to_string(card_count) +
                            " does not match " + std::to_string(num_labels) +
                            " labels");
  }
  PATHEST_RETURN_NOT_OK(car.ValidateCount(card_count, 8, "cardinalities"));
  std::vector<uint64_t> cards;
  cards.reserve(card_count);
  for (uint32_t i = 0; i < card_count; ++i) {
    uint64_t f = 0;
    PATHEST_RETURN_NOT_OK(car.ReadU64(&f, "cardinality"));
    cards.push_back(f);
  }
  if (!car.AtEnd()) {
    return SectionError(kSectionCardinalities, "trailing bytes");
  }

  // ---- section 4: histogram SoA rows.
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionHistogram),
                                     &payload));
  BoundedReader his(payload);
  uint64_t num_buckets = 0;
  PATHEST_RETURN_NOT_OK(his.ReadU64(&num_buckets, "bucket count"));
  if (num_buckets == 0) {
    return SectionError(kSectionHistogram, "zero buckets");
  }
  // Four u64 rows of num_buckets each — validated as a whole before the
  // bucket vector is sized from the untrusted count.
  PATHEST_RETURN_NOT_OK(his.ValidateCount(num_buckets, 32, "buckets"));
  std::vector<Bucket> buckets(num_buckets);
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadU64(&b.begin, "bucket begins"));
  }
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadU64(&b.end, "bucket ends"));
  }
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadDouble(&b.sum, "bucket sums"));
  }
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadDouble(&b.sumsq, "bucket sumsqs"));
  }
  if (!his.AtEnd()) return SectionError(kSectionHistogram, "trailing bytes");

  // ---- section 5: composition table (sum family only).
  const SectionEntry* comp_entry = find_section(kSectionComposition);
  if (IsSumFamilyOrdering(ordering_name) != (comp_entry != nullptr)) {
    return SectionError(kSectionComposition,
                        comp_entry == nullptr
                            ? "missing for sum-family ordering"
                            : "present for non-sum ordering");
  }
  if (comp_entry != nullptr) {
    PATHEST_RETURN_NOT_OK(open_section(*comp_entry, &payload));
    BoundedReader com(payload);
    uint32_t comp_labels = 0, comp_k = 0;
    uint64_t num_values = 0;
    PATHEST_RETURN_NOT_OK(com.ReadU32(&comp_labels, "composition |L|"));
    PATHEST_RETURN_NOT_OK(com.ReadU32(&comp_k, "composition k"));
    PATHEST_RETURN_NOT_OK(com.ReadU64(&num_values, "composition count"));
    if (comp_labels != num_labels || comp_k != k) {
      return SectionError(kSectionComposition,
                          "shape (|L|=" + std::to_string(comp_labels) +
                              ", k=" + std::to_string(comp_k) +
                              ") does not match the catalog");
    }
    uint64_t expected_values = 0;
    for (uint64_t m = 1; m <= k; ++m) {
      expected_values += m * num_labels - m + 1;
    }
    if (num_values != expected_values) {
      return SectionError(kSectionComposition,
                          "value count " + std::to_string(num_values) +
                              " (expected " + std::to_string(expected_values) +
                              ")");
    }
    PATHEST_RETURN_NOT_OK(
        com.ValidateCount(num_values, 8, "composition values"));
    // Semantic integrity beyond the CRC: the persisted stage-2 rows must be
    // exactly what the ordering will rebuild from (|L|, k) — a mismatch
    // means a wrong-but-well-formed file, the one corruption class a
    // checksum of the file alone cannot see.
    CompositionTable expected(num_labels, k);
    for (uint64_t m = 1; m <= k; ++m) {
      for (uint64_t sum = m; sum <= m * num_labels; ++sum) {
        uint64_t v = 0;
        PATHEST_RETURN_NOT_OK(com.ReadU64(&v, "composition value"));
        if (v != expected.Count(sum, m)) {
          return SectionError(
              kSectionComposition,
              "value mismatch at (m=" + std::to_string(m) +
                  ", sum=" + std::to_string(sum) + "): file has " +
                  std::to_string(v) + ", recomputed " +
                  std::to_string(expected.Count(sum, m)));
        }
      }
    }
    if (!com.AtEnd()) {
      return SectionError(kSectionComposition, "trailing bytes");
    }
  }

  // ---- assembly (shared semantic validation with the text path).
  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return SectionError(kSectionHistogram,
                        "invalid buckets: " + histogram.status().message());
  }
  auto ordering = MakeOrderingFromStats(ordering_name, labels, cards, k);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::FromParts(std::move(*ordering),
                                            std::move(*histogram), *type);
  if (!estimator.ok()) return estimator.status();
  return LoadedPathHistogram{std::move(labels), std::move(cards),
                             std::move(*estimator)};
}

// -------------------------------------------------- v2 parse layer (shared)

namespace internal {

namespace {

template <typename T>
std::span<const T> RowSpan(std::string_view payload, uint64_t off,
                           uint64_t n) {
  return {reinterpret_cast<const T*>(payload.data() + off),
          static_cast<size_t>(n)};
}

// Bit-exact row comparison (doubles compared as raw bytes: the full tier
// demands the persisted serving rows be EXACTLY what a rebuild produces).
template <typename T>
bool RowsIdentical(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

}  // namespace

Result<CatalogV2View> ParseCatalogV2(std::string_view bytes,
                                     CatalogVerify verify) {
  using namespace binfmt;  // NOLINT — layout constants
  if (reinterpret_cast<uintptr_t>(bytes.data()) % 8 != 0) {
    return Status::InvalidArgument(
        "catalog v2 buffer must be 8-byte aligned");
  }
  // ---- header: same authentication discipline as v1.
  if (bytes.size() < kHeaderBytes) {
    return Status::IOError("binary catalog: truncated header (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  if (!BytesAreBinaryV2(bytes)) {
    return Status::IOError("binary catalog: bad magic");
  }
  BoundedReader header(bytes.data(), kHeaderBytes);
  PATHEST_RETURN_NOT_OK(header.Skip(kMagicBytes, "magic"));
  uint32_t version = 0, section_count = 0, header_crc = 0, table_crc = 0;
  uint64_t file_size = 0;
  PATHEST_RETURN_NOT_OK(header.ReadU32(&version, "version"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&section_count, "section count"));
  PATHEST_RETURN_NOT_OK(header.ReadU64(&file_size, "file size"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&header_crc, "header crc"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&table_crc, "table crc"));
  if (Crc32c(bytes.data(), kHeaderBytes - 8) != header_crc) {
    return Status::IOError("binary catalog: header checksum mismatch");
  }
  if (version != kVersionV2) {
    return Status::IOError("binary catalog: unsupported format version " +
                           std::to_string(version) + " (reader knows " +
                           std::to_string(kVersionV2) + ")");
  }
  if (file_size != bytes.size()) {
    return Status::IOError("binary catalog: file is " +
                           std::to_string(bytes.size()) +
                           " bytes but the header expects " +
                           std::to_string(file_size) + " (truncated copy?)");
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::IOError("binary catalog: implausible section count " +
                           std::to_string(section_count));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  if (kHeaderBytes + table_bytes > bytes.size()) {
    return Status::IOError("binary catalog: truncated section table");
  }
  if (Crc32c(bytes.data() + kHeaderBytes, table_bytes) != table_crc) {
    return Status::IOError("binary catalog: section table checksum mismatch");
  }

  // ---- section table: extents AND page alignment, checked up front.
  BoundedReader table(bytes.data() + kHeaderBytes, table_bytes);
  std::vector<SectionEntry> entries(section_count);
  uint32_t prev_id = 0;
  for (SectionEntry& e : entries) {
    PATHEST_RETURN_NOT_OK(table.ReadU32(&e.id, "section id"));
    PATHEST_RETURN_NOT_OK(table.ReadU32(&e.crc, "section crc"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&e.offset, "section offset"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&e.length, "section length"));
    if (e.id <= prev_id) {
      return Status::IOError(
          "binary catalog: section ids not strictly ascending");
    }
    prev_id = e.id;
    if (e.id > kSectionSumIndex) {
      return Status::IOError("binary catalog: unknown section id " +
                             std::to_string(e.id));
    }
    if (e.offset < kHeaderBytes + table_bytes || e.offset > bytes.size() ||
        e.length > bytes.size() - e.offset) {
      return SectionError(e.id, "extent [" + std::to_string(e.offset) +
                                    ", +" + std::to_string(e.length) +
                                    ") outside the file");
    }
    if (e.offset % kPageBytes != 0) {
      return SectionError(e.id, "offset " + std::to_string(e.offset) +
                                    " is not page-aligned");
    }
  }
  auto find_section = [&entries](uint32_t id) -> const SectionEntry* {
    for (const SectionEntry& e : entries) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  for (uint32_t id : {kSectionOrdering, kSectionLabels,
                      kSectionCardinalities, kSectionHistogram}) {
    if (find_section(id) == nullptr) {
      return SectionError(id, "required section missing");
    }
  }
  auto open_checked = [&](const SectionEntry& e,
                          std::string_view* out) -> Status {
    *out = bytes.substr(e.offset, e.length);
    if (Crc32c(out->data(), out->size()) != e.crc) {
      return SectionError(e.id, "checksum mismatch over " +
                                    std::to_string(e.length) + " bytes");
    }
    return Status::OK();
  };

  CatalogV2View view;

  // ---- metadata sections: ALWAYS CRC-verified and fully parsed (they are
  // tiny, and every tier's shape validation depends on them).
  std::string_view payload;
  PATHEST_RETURN_NOT_OK(
      open_checked(*find_section(kSectionOrdering), &payload));
  BoundedReader ord(payload);
  std::string type_name;
  uint32_t k32 = 0, reserved = 0;
  PATHEST_RETURN_NOT_OK(ord.ReadLengthPrefixedString(&view.ordering_name, 64,
                                                     "ordering name"));
  PATHEST_RETURN_NOT_OK(
      ord.ReadLengthPrefixedString(&type_name, 64, "histogram type"));
  PATHEST_RETURN_NOT_OK(ord.ReadU32(&k32, "k"));
  PATHEST_RETURN_NOT_OK(ord.ReadU32(&reserved, "ordering reserved"));
  if (!ord.AtEnd()) return SectionError(kSectionOrdering, "trailing bytes");
  if (!IsSerializableOrdering(view.ordering_name)) {
    return SectionError(kSectionOrdering,
                        "unknown serialized ordering: " + view.ordering_name);
  }
  auto type = ParseHistogramType(type_name);
  if (!type.ok()) {
    return SectionError(kSectionOrdering, type.status().message());
  }
  view.histogram_type = *type;
  view.k = k32;
  if (view.k < 1 || view.k > kMaxPathLength) {
    return SectionError(kSectionOrdering, "bad k " + std::to_string(view.k));
  }

  PATHEST_RETURN_NOT_OK(open_checked(*find_section(kSectionLabels),
                                     &payload));
  BoundedReader lab(payload);
  uint32_t num_labels = 0;
  PATHEST_RETURN_NOT_OK(lab.ReadU32(&num_labels, "label count"));
  if (num_labels == 0 || num_labels > kMaxLabels) {
    return SectionError(kSectionLabels, "implausible label count " +
                                            std::to_string(num_labels));
  }
  PATHEST_RETURN_NOT_OK(lab.ValidateCount(num_labels, 4, "labels"));
  for (uint32_t i = 0; i < num_labels; ++i) {
    std::string name;
    PATHEST_RETURN_NOT_OK(
        lab.ReadLengthPrefixedString(&name, kMaxLabelNameBytes, "label name"));
    if (name.empty()) return SectionError(kSectionLabels, "empty label name");
    if (view.labels.Intern(name) != i) {
      return SectionError(kSectionLabels, "duplicate label name: " + name);
    }
  }
  if (!lab.AtEnd()) return SectionError(kSectionLabels, "trailing bytes");

  PATHEST_RETURN_NOT_OK(open_checked(*find_section(kSectionCardinalities),
                                     &payload));
  BoundedReader car(payload);
  uint32_t card_count = 0;
  PATHEST_RETURN_NOT_OK(car.ReadU32(&card_count, "cardinality count"));
  PATHEST_RETURN_NOT_OK(car.ReadU32(&reserved, "cardinalities reserved"));
  if (card_count != num_labels) {
    return SectionError(kSectionCardinalities,
                        "count " + std::to_string(card_count) +
                            " does not match " + std::to_string(num_labels) +
                            " labels");
  }
  PATHEST_RETURN_NOT_OK(car.ValidateCount(card_count, 8, "cardinalities"));
  view.cards.reserve(card_count);
  for (uint32_t i = 0; i < card_count; ++i) {
    uint64_t f = 0;
    PATHEST_RETURN_NOT_OK(car.ReadU64(&f, "cardinality"));
    view.cards.push_back(f);
  }
  if (!car.AtEnd()) {
    return SectionError(kSectionCardinalities, "trailing bytes");
  }

  // ---- bulk shape prologs: validated at EVERY tier (they are a few bytes
  // and they gate all span construction), overflow-safely — this is
  // untrusted data, so no CheckedAdd/CheckedMul (those abort).
  const SectionEntry& hist_entry = *find_section(kSectionHistogram);
  payload = bytes.substr(hist_entry.offset, hist_entry.length);
  BoundedReader his(payload);
  PATHEST_RETURN_NOT_OK(his.ReadU64(&view.beta, "bucket count"));
  PATHEST_RETURN_NOT_OK(his.ReadU64(&view.domain_size, "domain size"));
  if (view.beta == 0) return SectionError(kSectionHistogram, "zero buckets");
  // Each bucket costs >= 32 bytes across the diagnostic rows alone, so this
  // bound both rejects forged counts and keeps the layout math far from
  // u64 overflow.
  if (view.beta > bytes.size() / 32) {
    return SectionError(kSectionHistogram, "implausible bucket count " +
                                               std::to_string(view.beta));
  }
  const HistogramLayoutV2 hl = HistogramLayout(view.beta);
  if (hl.payload_bytes != hist_entry.length) {
    return SectionError(
        kSectionHistogram,
        "payload is " + std::to_string(hist_entry.length) +
            " bytes but the layout for beta=" + std::to_string(view.beta) +
            " needs " + std::to_string(hl.payload_bytes));
  }
  {
    // domain_size must be exactly |L_k| for the declared (|L|, k) — checked
    // with 128-bit accumulation instead of PathSpace (whose checked
    // arithmetic aborts on forged shapes).
    unsigned __int128 total = 0, pw = 1;
    for (uint64_t i = 1; i <= view.k; ++i) {
      pw *= num_labels;
      total += pw;
      if (total > ~0ULL) {
        return SectionError(kSectionHistogram, "domain size overflows u64");
      }
    }
    if (static_cast<uint64_t>(total) != view.domain_size) {
      return SectionError(
          kSectionHistogram,
          "domain size " + std::to_string(view.domain_size) +
              " does not match |L_k| = " +
              std::to_string(static_cast<uint64_t>(total)));
    }
  }
  view.begin = RowSpan<uint64_t>(payload, hl.begin_off, view.beta);
  view.end = RowSpan<uint64_t>(payload, hl.end_off, view.beta);
  view.sum_bits = RowSpan<uint64_t>(payload, hl.sum_off, view.beta);
  view.sumsq_bits = RowSpan<uint64_t>(payload, hl.sumsq_off, view.beta);
  view.mean = RowSpan<double>(payload, hl.mean_off, view.beta);
  view.prefix = RowSpan<double>(payload, hl.prefix_off, view.beta + 1);
  view.eytz_begin =
      RowSpan<uint64_t>(payload, hl.eytz_begin_off, view.beta + 1);
  view.eytz_rank =
      RowSpan<uint32_t>(payload, hl.eytz_rank_off, view.beta + 1);
  // Checked at EVERY tier (one load): FlatHistogram's borrowed-shape
  // invariant, which must be a typed error here — never a downstream
  // abort — even under kTrusted.
  if (view.begin[0] != 0) {
    return SectionError(kSectionHistogram, "first bucket must begin at 0");
  }

  // ---- sections 5-6: present iff sum family, both or neither.
  view.has_sum_sections = IsSumFamilyOrdering(view.ordering_name);
  const SectionEntry* comp_entry = find_section(kSectionComposition);
  const SectionEntry* index_entry = find_section(kSectionSumIndex);
  if (view.has_sum_sections != (comp_entry != nullptr)) {
    return SectionError(kSectionComposition,
                        comp_entry == nullptr
                            ? "missing for sum-family ordering"
                            : "present for non-sum ordering");
  }
  if (view.has_sum_sections != (index_entry != nullptr)) {
    return SectionError(kSectionSumIndex,
                        index_entry == nullptr
                            ? "missing for sum-family ordering"
                            : "present for non-sum ordering");
  }
  std::string_view comp_payload, index_payload;
  uint64_t num_cells = 0, total_blocks = 0;
  if (view.has_sum_sections) {
    comp_payload = bytes.substr(comp_entry->offset, comp_entry->length);
    BoundedReader com(comp_payload);
    uint32_t comp_labels = 0, comp_k = 0;
    uint64_t num_values = 0;
    PATHEST_RETURN_NOT_OK(com.ReadU32(&comp_labels, "composition |L|"));
    PATHEST_RETURN_NOT_OK(com.ReadU32(&comp_k, "composition k"));
    PATHEST_RETURN_NOT_OK(com.ReadU64(&num_values, "composition count"));
    if (comp_labels != num_labels || comp_k != view.k) {
      return SectionError(kSectionComposition,
                          "shape (|L|=" + std::to_string(comp_labels) +
                              ", k=" + std::to_string(comp_k) +
                              ") does not match the catalog");
    }
    const uint64_t expected_values =
        CompositionTable::FlatCountValues(num_labels, view.k);
    if (num_values != expected_values) {
      return SectionError(kSectionComposition,
                          "value count " + std::to_string(num_values) +
                              " (expected " +
                              std::to_string(expected_values) + ")");
    }
    const CompositionLayoutV2 cl = CompositionLayout(num_values, view.k);
    if (cl.payload_bytes != comp_entry->length) {
      return SectionError(kSectionComposition,
                          "payload is " + std::to_string(comp_entry->length) +
                              " bytes but the layout needs " +
                              std::to_string(cl.payload_bytes));
    }
    view.comp_counts = RowSpan<uint64_t>(comp_payload, cl.counts_off,
                                         num_values);
    view.comp_prefix = RowSpan<uint64_t>(comp_payload, cl.prefix_off,
                                         num_values + view.k);

    index_payload = bytes.substr(index_entry->offset, index_entry->length);
    BoundedReader idx(index_payload);
    uint32_t scheme32 = 0;
    PATHEST_RETURN_NOT_OK(idx.ReadU32(&scheme32, "sum-index scheme"));
    PATHEST_RETURN_NOT_OK(idx.ReadU32(&view.sum_key_bits, "sum-index bits"));
    PATHEST_RETURN_NOT_OK(idx.ReadU64(&num_cells, "sum-index cells"));
    PATHEST_RETURN_NOT_OK(idx.ReadU64(&total_blocks, "sum-index blocks"));
    SumKeyScheme expected_scheme;
    uint32_t expected_bits;
    ChooseSumKeyScheme(num_labels, view.k, &expected_scheme, &expected_bits);
    if (scheme32 != static_cast<uint32_t>(expected_scheme) ||
        view.sum_key_bits != expected_bits) {
      return SectionError(
          kSectionSumIndex,
          "key scheme " + std::to_string(scheme32) + "/" +
              std::to_string(view.sum_key_bits) + " bits does not match " +
              std::to_string(static_cast<uint32_t>(expected_scheme)) + "/" +
              std::to_string(expected_bits) + " for this space");
    }
    view.sum_scheme = expected_scheme;
    const uint64_t expected_cells =
        expected_scheme == SumKeyScheme::kNone
            ? 0
            : SumStage3CellCount(num_labels, view.k);
    if (num_cells != expected_cells) {
      return SectionError(kSectionSumIndex,
                          "cell count " + std::to_string(num_cells) +
                              " (expected " + std::to_string(expected_cells) +
                              ")");
    }
    if (expected_scheme == SumKeyScheme::kNone && total_blocks != 0) {
      return SectionError(kSectionSumIndex,
                          "blocks present under scheme none");
    }
    // Each block costs 24 bytes across keys/offsets/nops; bounding it here
    // keeps the layout math overflow-free before the exact length check.
    if (total_blocks > index_entry->length / 24 + 1) {
      return SectionError(kSectionSumIndex, "implausible block count " +
                                                std::to_string(total_blocks));
    }
    const SumIndexLayoutV2 sl = SumIndexLayout(num_cells, total_blocks);
    if (sl.payload_bytes != index_entry->length) {
      return SectionError(kSectionSumIndex,
                          "payload is " +
                              std::to_string(index_entry->length) +
                              " bytes but the layout needs " +
                              std::to_string(sl.payload_bytes));
    }
    if (expected_scheme != SumKeyScheme::kNone) {
      view.cell_starts = RowSpan<uint64_t>(index_payload, sl.cell_starts_off,
                                           num_cells + 1);
      view.keys = RowSpan<uint64_t>(index_payload, sl.keys_off, total_blocks);
      view.offsets =
          RowSpan<uint64_t>(index_payload, sl.offsets_off, total_blocks);
      view.nops = RowSpan<uint64_t>(index_payload, sl.nops_off, total_blocks);
    }
  }

  if (verify == CatalogVerify::kTrusted) return view;

  // ---- checksum tier: CRC every bulk byte, then structural scans that
  // certify what the serving fast paths assume without rebuilding anything.
  if (Crc32c(payload.data(), payload.size()) != hist_entry.crc) {
    return SectionError(kSectionHistogram,
                        "checksum mismatch over " +
                            std::to_string(hist_entry.length) + " bytes");
  }
  if (view.has_sum_sections) {
    if (Crc32c(comp_payload.data(), comp_payload.size()) != comp_entry->crc) {
      return SectionError(kSectionComposition,
                          "checksum mismatch over " +
                              std::to_string(comp_entry->length) + " bytes");
    }
    if (Crc32c(index_payload.data(), index_payload.size()) !=
        index_entry->crc) {
      return SectionError(kSectionSumIndex,
                          "checksum mismatch over " +
                              std::to_string(index_entry->length) + " bytes");
    }
  }

  for (uint64_t b = 0; b < view.beta; ++b) {
    const uint64_t bucket_end =
        b + 1 < view.beta ? view.begin[b + 1] : view.domain_size;
    if (view.end[b] != bucket_end || view.end[b] <= view.begin[b]) {
      return SectionError(kSectionHistogram,
                          "bucket chain broken at bucket " +
                              std::to_string(b));
    }
  }
  if (view.prefix[0] != 0.0) {
    return SectionError(kSectionHistogram, "prefix row must start at 0");
  }
  for (uint64_t b = 0; b <= view.beta; ++b) {
    if (!std::isfinite(view.prefix[b]) ||
        (b < view.beta && !std::isfinite(view.mean[b]))) {
      return SectionError(kSectionHistogram,
                          "non-finite serving row value at " +
                              std::to_string(b));
    }
  }
  for (uint64_t slot = 1; slot <= view.beta; ++slot) {
    const uint32_t rank = view.eytz_rank[slot];
    if (rank >= view.beta || view.eytz_begin[slot] != view.begin[rank]) {
      return SectionError(kSectionHistogram,
                          "Eytzinger row inconsistent at slot " +
                              std::to_string(slot));
    }
  }
  if (view.has_sum_sections) {
    // Composition prefix rows: per-m running sums of the count rows,
    // checked with overflow-safe compares.
    size_t count_at = 0, prefix_at = 0;
    for (uint64_t m = 1; m <= view.k; ++m) {
      const size_t row_len = m * num_labels - m + 1;
      if (view.comp_prefix[prefix_at] != 0) {
        return SectionError(kSectionComposition,
                            "prefix row for m=" + std::to_string(m) +
                                " must start at 0");
      }
      for (size_t i = 0; i < row_len; ++i) {
        const uint64_t lo = view.comp_prefix[prefix_at + i];
        const uint64_t hi = view.comp_prefix[prefix_at + i + 1];
        if (hi < lo || hi - lo != view.comp_counts[count_at + i]) {
          return SectionError(kSectionComposition,
                              "prefix row inconsistent at (m=" +
                                  std::to_string(m) +
                                  ", i=" + std::to_string(i) + ")");
        }
      }
      count_at += row_len;
      prefix_at += row_len + 1;
    }
    if (view.sum_scheme != SumKeyScheme::kNone) {
      if (view.cell_starts[0] != 0 ||
          view.cell_starts[num_cells] != total_blocks) {
        return SectionError(kSectionSumIndex,
                            "cell directory does not span the block arrays");
      }
      for (uint64_t c = 0; c < num_cells; ++c) {
        if (view.cell_starts[c + 1] < view.cell_starts[c]) {
          return SectionError(kSectionSumIndex,
                              "cell directory not monotone at cell " +
                                  std::to_string(c));
        }
        for (uint64_t b = view.cell_starts[c] + 1;
             b < view.cell_starts[c + 1]; ++b) {
          if (view.keys[b] <= view.keys[b - 1]) {
            return SectionError(kSectionSumIndex,
                                "keys not strictly ascending in cell " +
                                    std::to_string(c));
          }
        }
      }
    }
  }

  if (verify != CatalogVerify::kFull) return view;

  // ---- full tier: the persisted DERIVED rows must be bit-identical to a
  // fresh rebuild from the primary data — the wrong-but-well-formed
  // corruption class no checksum of the file alone can see.
  std::vector<Bucket> buckets(view.beta);
  for (uint64_t b = 0; b < view.beta; ++b) {
    buckets[b].begin = view.begin[b];
    buckets[b].end = view.end[b];
    buckets[b].sum = std::bit_cast<double>(view.sum_bits[b]);
    buckets[b].sumsq = std::bit_cast<double>(view.sumsq_bits[b]);
  }
  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return SectionError(kSectionHistogram,
                        "invalid buckets: " + histogram.status().message());
  }
  const FlatHistogram fresh(*histogram);
  if (!RowsIdentical(view.mean, fresh.means()) ||
      !RowsIdentical(view.prefix, fresh.prefix_sums()) ||
      !RowsIdentical(view.eytz_begin, fresh.eytz_begins()) ||
      !RowsIdentical(view.eytz_rank, fresh.eytz_ranks())) {
    return SectionError(kSectionHistogram,
                        "persisted serving rows differ from a fresh rebuild");
  }
  if (view.has_sum_sections) {
    const CompositionTable expected(num_labels, view.k);
    if (!RowsIdentical(view.comp_counts, expected.flat_counts()) ||
        !RowsIdentical(view.comp_prefix, expected.flat_prefix())) {
      return SectionError(kSectionComposition,
                          "persisted rows differ from a fresh rebuild");
    }
    const SumStage3Index rebuilt = BuildSumStage3Index(num_labels, view.k);
    if (!RowsIdentical(view.cell_starts,
                       std::span<const uint64_t>(rebuilt.cell_starts)) ||
        !RowsIdentical(view.keys, std::span<const uint64_t>(rebuilt.keys)) ||
        !RowsIdentical(view.offsets,
                       std::span<const uint64_t>(rebuilt.offsets)) ||
        !RowsIdentical(view.nops, std::span<const uint64_t>(rebuilt.nops))) {
      return SectionError(kSectionSumIndex,
                          "persisted index differs from a fresh rebuild");
    }
  }
  return view;
}

}  // namespace internal

Result<LoadedPathHistogram> ReadPathHistogramBinaryV2(std::string_view bytes) {
  auto view = internal::ParseCatalogV2(bytes, CatalogVerify::kFull);
  if (!view.ok()) return view.status();
  std::vector<Bucket> buckets(view->beta);
  for (uint64_t b = 0; b < view->beta; ++b) {
    buckets[b].begin = view->begin[b];
    buckets[b].end = view->end[b];
    buckets[b].sum = std::bit_cast<double>(view->sum_bits[b]);
    buckets[b].sumsq = std::bit_cast<double>(view->sumsq_bits[b]);
  }
  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return Status::IOError("section histogram: invalid buckets: " +
                           histogram.status().message());
  }
  auto ordering = MakeOrderingFromStats(view->ordering_name, view->labels,
                                        view->cards, view->k);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::FromParts(
      std::move(*ordering), std::move(*histogram), view->histogram_type);
  if (!estimator.ok()) return estimator.status();
  return LoadedPathHistogram{std::move(view->labels), std::move(view->cards),
                             std::move(*estimator)};
}

// --------------------------------------------------------------- dispatch

Result<LoadedPathHistogram> ReadPathHistogram(std::istream* in) {
  std::string content{std::istreambuf_iterator<char>(*in),
                      std::istreambuf_iterator<char>()};
  if (BytesAreBinaryV2(content)) return ReadPathHistogramBinaryV2(content);
  if (LooksLikeBinaryCatalog(content)) {
    return ReadPathHistogramBinary(content);
  }
  return ReadPathHistogramText(content);
}

Result<LoadedPathHistogram> LoadPathHistogram(const std::string& path) {
  std::string content;
  PATHEST_RETURN_NOT_OK(ReadFileToString(path, &content));
  if (BytesAreBinaryV2(content)) return ReadPathHistogramBinaryV2(content);
  if (LooksLikeBinaryCatalog(content)) {
    return ReadPathHistogramBinary(content);
  }
  return ReadPathHistogramText(content);
}

}  // namespace pathest
