#include "core/serialize.h"

#include <fstream>
#include <sstream>

#include "ordering/factory.h"

namespace pathest {

namespace {
constexpr const char* kMagic = "pathest-histogram v1";
}  // namespace

bool IsSerializableOrdering(const std::string& ordering_name) {
  for (const char* name :
       {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based",
        "sum-card", "sum-alph", "gray-alph", "gray-card"}) {
    if (ordering_name == name) return true;
  }
  return false;
}

Status WritePathHistogram(const PathHistogram& estimator,
                          const LabelDictionary& labels,
                          const std::vector<uint64_t>& label_cardinalities,
                          std::ostream* out) {
  const std::string& ordering_name = estimator.ordering().name();
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::InvalidArgument(
        "ordering '" + ordering_name +
        "' materializes O(|L_k|) state and cannot be serialized compactly");
  }
  if (labels.size() != label_cardinalities.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  (*out) << kMagic << "\n";
  (*out) << "ordering " << ordering_name << "\n";
  (*out) << "type " << HistogramTypeName(estimator.histogram_type()) << "\n";
  (*out) << "k " << estimator.ordering().space().k() << "\n";
  (*out) << "labels " << labels.size();
  for (const std::string& name : labels.names()) (*out) << ' ' << name;
  (*out) << "\n";
  (*out) << "cardinalities";
  for (uint64_t f : label_cardinalities) (*out) << ' ' << f;
  (*out) << "\n";
  const auto& buckets = estimator.histogram().buckets();
  (*out) << "buckets " << buckets.size() << "\n";
  // Hex double encoding is lossless and locale-independent.
  (*out).precision(17);
  for (const Bucket& b : buckets) {
    (*out) << b.begin << ' ' << b.end << ' ' << std::hexfloat << b.sum << ' '
           << b.sumsq << std::defaultfloat << "\n";
  }
  if (!out->good()) return Status::IOError("histogram write failed");
  return Status::OK();
}

Status SavePathHistogram(const PathHistogram& estimator, const Graph& graph,
                         const std::string& path) {
  std::vector<uint64_t> cards(graph.num_labels());
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards[l] = graph.LabelCardinality(l);
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return WritePathHistogram(estimator, graph.labels(), cards, &out);
}

Result<LoadedPathHistogram> ReadPathHistogram(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || line != kMagic) {
    return Status::IOError("bad magic: expected '" + std::string(kMagic) +
                           "'");
  }
  auto expect_key = [&](const char* key,
                        std::istringstream* rest) -> Status {
    if (!std::getline(*in, line)) {
      return Status::IOError(std::string("truncated file before '") + key +
                             "'");
    }
    rest->clear();
    rest->str(line);
    std::string actual;
    (*rest) >> actual;
    if (actual != key) {
      return Status::IOError("expected key '" + std::string(key) +
                             "', found '" + actual + "'");
    }
    return Status::OK();
  };

  std::istringstream rest;
  PATHEST_RETURN_NOT_OK(expect_key("ordering", &rest));
  std::string ordering_name;
  rest >> ordering_name;
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::IOError("unknown serialized ordering: " + ordering_name);
  }

  PATHEST_RETURN_NOT_OK(expect_key("type", &rest));
  std::string type_name;
  rest >> type_name;
  auto type = ParseHistogramType(type_name);
  if (!type.ok()) return type.status();

  PATHEST_RETURN_NOT_OK(expect_key("k", &rest));
  size_t k = 0;
  rest >> k;
  if (k < 1 || k > kMaxPathLength) return Status::IOError("bad k");

  PATHEST_RETURN_NOT_OK(expect_key("labels", &rest));
  size_t num_labels = 0;
  rest >> num_labels;
  if (num_labels == 0 || num_labels > 4096) {
    return Status::IOError("bad label count");
  }
  LabelDictionary labels;
  for (size_t i = 0; i < num_labels; ++i) {
    std::string name;
    if (!(rest >> name)) return Status::IOError("truncated label list");
    if (labels.Intern(name) != i) {
      return Status::IOError("duplicate label name: " + name);
    }
  }

  PATHEST_RETURN_NOT_OK(expect_key("cardinalities", &rest));
  std::vector<uint64_t> cards(num_labels);
  for (auto& f : cards) {
    if (!(rest >> f)) return Status::IOError("truncated cardinalities");
  }

  PATHEST_RETURN_NOT_OK(expect_key("buckets", &rest));
  size_t num_buckets = 0;
  rest >> num_buckets;
  if (num_buckets == 0) return Status::IOError("bad bucket count");
  std::vector<Bucket> buckets(num_buckets);
  for (auto& b : buckets) {
    if (!std::getline(*in, line)) return Status::IOError("truncated buckets");
    std::istringstream bs(line);
    // std::hexfloat parsing via strtod for portability.
    std::string sum_tok;
    std::string sumsq_tok;
    if (!(bs >> b.begin >> b.end >> sum_tok >> sumsq_tok)) {
      return Status::IOError("malformed bucket line: " + line);
    }
    b.sum = std::strtod(sum_tok.c_str(), nullptr);
    b.sumsq = std::strtod(sumsq_tok.c_str(), nullptr);
  }

  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return Status::IOError("invalid buckets: " +
                           histogram.status().message());
  }
  auto ordering = MakeOrderingFromStats(ordering_name, labels, cards, k);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::FromParts(std::move(*ordering),
                                            std::move(*histogram), *type);
  if (!estimator.ok()) return estimator.status();
  return LoadedPathHistogram{std::move(labels), std::move(cards),
                             std::move(*estimator)};
}

Result<LoadedPathHistogram> LoadPathHistogram(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);
  return ReadPathHistogram(&in);
}

}  // namespace pathest
