#include "core/serialize.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string_view>

#include "ordering/factory.h"
#include "util/combinatorics.h"
#include "util/crc32c.h"
#include "util/safe_io.h"

namespace pathest {

namespace {

constexpr const char* kTextMagic = "pathest-histogram v1";

// Caps shared by both formats: a label dictionary or path length outside
// these is a corrupt or forged file, not a real catalog.
constexpr uint64_t kMaxLabels = 4096;
constexpr uint64_t kMaxLabelNameBytes = 4096;

// The sum-based family carries a composition section (stage-2 table);
// sum-L2 never reaches serialization (IsSerializableOrdering rejects it).
bool IsSumFamilyOrdering(const std::string& name) {
  return name.rfind("sum-", 0) == 0;
}

}  // namespace

const char* CatalogFormatName(CatalogFormat format) {
  switch (format) {
    case CatalogFormat::kText:
      return "text";
    case CatalogFormat::kBinary:
      return "binary";
  }
  return "?";
}

Result<CatalogFormat> ParseCatalogFormat(const std::string& name) {
  if (name == "text") return CatalogFormat::kText;
  if (name == "binary") return CatalogFormat::kBinary;
  return Status::InvalidArgument("unknown catalog format '" + name +
                                 "' (expected text|binary)");
}

namespace binfmt {
const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionOrdering:
      return "ordering";
    case kSectionLabels:
      return "labels";
    case kSectionCardinalities:
      return "cardinalities";
    case kSectionHistogram:
      return "histogram";
    case kSectionComposition:
      return "composition";
  }
  return "?";
}
}  // namespace binfmt

bool IsSerializableOrdering(const std::string& ordering_name) {
  for (const char* name :
       {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based",
        "sum-card", "sum-alph", "gray-alph", "gray-card"}) {
    if (ordering_name == name) return true;
  }
  return false;
}

// ------------------------------------------------------------- text writer

Status WritePathHistogram(const PathHistogram& estimator,
                          const LabelDictionary& labels,
                          const std::vector<uint64_t>& label_cardinalities,
                          std::ostream* out) {
  const std::string& ordering_name = estimator.ordering().name();
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::InvalidArgument(
        "ordering '" + ordering_name +
        "' materializes O(|L_k|) state and cannot be serialized compactly");
  }
  if (labels.size() != label_cardinalities.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  (*out) << kTextMagic << "\n";
  (*out) << "ordering " << ordering_name << "\n";
  (*out) << "type " << HistogramTypeName(estimator.histogram_type()) << "\n";
  (*out) << "k " << estimator.ordering().space().k() << "\n";
  (*out) << "labels " << labels.size();
  for (const std::string& name : labels.names()) (*out) << ' ' << name;
  (*out) << "\n";
  (*out) << "cardinalities";
  for (uint64_t f : label_cardinalities) (*out) << ' ' << f;
  (*out) << "\n";
  const auto& buckets = estimator.histogram().buckets();
  (*out) << "buckets " << buckets.size() << "\n";
  // Hex double encoding is lossless and locale-independent.
  (*out).precision(17);
  for (const Bucket& b : buckets) {
    (*out) << b.begin << ' ' << b.end << ' ' << std::hexfloat << b.sum << ' '
           << b.sumsq << std::defaultfloat << "\n";
  }
  if (!out->good()) return Status::IOError("histogram write failed");
  return Status::OK();
}

// ----------------------------------------------------------- binary writer

Status WritePathHistogramBinary(const PathHistogram& estimator,
                                const LabelDictionary& labels,
                                const std::vector<uint64_t>& cardinalities,
                                std::string* out) {
  const std::string& ordering_name = estimator.ordering().name();
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::InvalidArgument(
        "ordering '" + ordering_name +
        "' materializes O(|L_k|) state and cannot be serialized compactly");
  }
  if (labels.size() != cardinalities.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  const size_t k = estimator.ordering().space().k();
  const size_t num_labels = labels.size();

  // Section payloads, in id order.
  std::vector<std::pair<uint32_t, std::string>> sections;

  std::string ordering_payload;
  AppendLengthPrefixedString(&ordering_payload, ordering_name);
  AppendLengthPrefixedString(
      &ordering_payload, HistogramTypeName(estimator.histogram_type()));
  AppendU32(&ordering_payload, static_cast<uint32_t>(k));
  AppendU32(&ordering_payload, 0);
  sections.emplace_back(binfmt::kSectionOrdering, std::move(ordering_payload));

  std::string labels_payload;
  AppendU32(&labels_payload, static_cast<uint32_t>(num_labels));
  for (const std::string& name : labels.names()) {
    AppendLengthPrefixedString(&labels_payload, name);
  }
  sections.emplace_back(binfmt::kSectionLabels, std::move(labels_payload));

  std::string cards_payload;
  AppendU32(&cards_payload, static_cast<uint32_t>(num_labels));
  AppendU32(&cards_payload, 0);
  for (uint64_t f : cardinalities) AppendU64(&cards_payload, f);
  sections.emplace_back(binfmt::kSectionCardinalities,
                        std::move(cards_payload));

  // Structure-of-arrays bucket rows: the column layout the serving
  // FlatHistogram wants, so an mmap tier can point at whole rows.
  const auto& buckets = estimator.histogram().buckets();
  std::string hist_payload;
  hist_payload.reserve(8 + buckets.size() * 32);
  AppendU64(&hist_payload, buckets.size());
  for (const Bucket& b : buckets) AppendU64(&hist_payload, b.begin);
  for (const Bucket& b : buckets) AppendU64(&hist_payload, b.end);
  for (const Bucket& b : buckets) AppendDouble(&hist_payload, b.sum);
  for (const Bucket& b : buckets) AppendDouble(&hist_payload, b.sumsq);
  sections.emplace_back(binfmt::kSectionHistogram, std::move(hist_payload));

  if (IsSumFamilyOrdering(ordering_name)) {
    // The sum-based stage-2 CompositionTable rows, exactly as the ordering
    // rebuilds them from (|L|, k). Carrying them on disk (a) lets the load
    // path cross-check a semantic invariant no CRC can, and (b) is the row
    // layout the mmap serving tier will consume directly.
    CompositionTable table(num_labels, k);
    std::string comp_payload;
    AppendU32(&comp_payload, static_cast<uint32_t>(num_labels));
    AppendU32(&comp_payload, static_cast<uint32_t>(k));
    uint64_t num_values = 0;
    for (uint64_t m = 1; m <= k; ++m) {
      num_values += m * num_labels - m + 1;
    }
    AppendU64(&comp_payload, num_values);
    for (uint64_t m = 1; m <= k; ++m) {
      for (uint64_t sum = m; sum <= m * num_labels; ++sum) {
        AppendU64(&comp_payload, table.Count(sum, m));
      }
    }
    sections.emplace_back(binfmt::kSectionComposition,
                          std::move(comp_payload));
  }

  // Assemble: header, table, payloads. Offsets are absolute.
  const size_t table_bytes = sections.size() * binfmt::kSectionEntryBytes;
  uint64_t offset = binfmt::kHeaderBytes + table_bytes;
  std::string table;
  table.reserve(table_bytes);
  uint64_t total_size = offset;
  for (const auto& [id, payload] : sections) {
    AppendU32(&table, id);
    AppendU32(&table, Crc32c(payload.data(), payload.size()));
    AppendU64(&table, offset);
    AppendU64(&table, payload.size());
    offset += payload.size();
    total_size += payload.size();
  }

  std::string header;
  header.reserve(binfmt::kHeaderBytes);
  header.append(reinterpret_cast<const char*>(binfmt::kMagic),
                binfmt::kMagicBytes);
  AppendU32(&header, binfmt::kVersion);
  AppendU32(&header, static_cast<uint32_t>(sections.size()));
  AppendU64(&header, total_size);
  AppendU32(&header, Crc32c(header.data(), header.size()));
  AppendU32(&header, Crc32c(table.data(), table.size()));

  out->clear();
  out->reserve(total_size);
  out->append(header);
  out->append(table);
  for (const auto& [id, payload] : sections) out->append(payload);
  return Status::OK();
}

Status SavePathHistogram(const PathHistogram& estimator, const Graph& graph,
                         const std::string& path, CatalogFormat format) {
  std::vector<uint64_t> cards(graph.num_labels());
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards[l] = graph.LabelCardinality(l);
  }
  std::string bytes;
  if (format == CatalogFormat::kBinary) {
    PATHEST_RETURN_NOT_OK(
        WritePathHistogramBinary(estimator, graph.labels(), cards, &bytes));
  } else {
    std::ostringstream out;
    PATHEST_RETURN_NOT_OK(
        WritePathHistogram(estimator, graph.labels(), cards, &out));
    bytes = out.str();
  }
  // Atomic publication: a crashed or failed save never leaves a partial
  // catalog at `path`, and any previous file there survives byte-identical.
  return AtomicWriteFile(path, bytes);
}

// ------------------------------------------------------------- text reader

namespace {

Result<LoadedPathHistogram> ReadPathHistogramText(const std::string& content) {
  // The buffer is parsed with a cursor over the raw bytes: integers via
  // std::from_chars, doubles via strtod (hexfloat). The previous reader
  // paid an istringstream construction plus locale-aware operator>>
  // extraction per line, which dominated large-beta catalog loads (see the
  // timing note in serialize.h).
  const char* cur = content.data();
  const char* const end = content.data() + content.size();

  // The magic is a whole line, not a token (it contains a space).
  const char* nl = std::find(cur, end, '\n');
  if (std::string_view(cur, static_cast<size_t>(nl - cur)) != kTextMagic) {
    return Status::IOError("bad magic: expected '" + std::string(kTextMagic) +
                           "'");
  }
  cur = nl == end ? end : nl + 1;

  auto next_token = [&cur, end]() -> std::string_view {
    while (cur < end && std::isspace(static_cast<unsigned char>(*cur))) ++cur;
    const char* begin = cur;
    while (cur < end && !std::isspace(static_cast<unsigned char>(*cur))) ++cur;
    return {begin, static_cast<size_t>(cur - begin)};
  };
  auto expect_key = [&next_token](const char* key) -> Status {
    const std::string_view tok = next_token();
    if (tok.empty()) {
      return Status::IOError(std::string("truncated file before '") + key +
                             "'");
    }
    if (tok != key) {
      return Status::IOError("expected key '" + std::string(key) +
                             "', found '" + std::string(tok) + "'");
    }
    return Status::OK();
  };
  auto parse_u64 = [&next_token](uint64_t* out) -> bool {
    const std::string_view tok = next_token();
    if (tok.empty()) return false;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), *out);
    return ec == std::errc() && ptr == tok.data() + tok.size();
  };
  // Hexfloat ("0x1.8p+4") parsing stays on strtod: std::from_chars's hex
  // format rejects the "0x" prefix the writer emits. Tokens point into
  // `content`, which is null-terminated past its last byte, and strtod
  // stops at the token-ending whitespace on its own.
  auto parse_double = [&next_token](double* out) -> bool {
    const std::string_view tok = next_token();
    if (tok.empty()) return false;
    char* parse_end = nullptr;
    *out = std::strtod(tok.data(), &parse_end);
    return parse_end == tok.data() + tok.size();
  };

  PATHEST_RETURN_NOT_OK(expect_key("ordering"));
  std::string ordering_name{next_token()};
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::IOError("unknown serialized ordering: " + ordering_name);
  }

  PATHEST_RETURN_NOT_OK(expect_key("type"));
  auto type = ParseHistogramType(std::string{next_token()});
  if (!type.ok()) return type.status();

  PATHEST_RETURN_NOT_OK(expect_key("k"));
  uint64_t k = 0;
  if (!parse_u64(&k) || k < 1 || k > kMaxPathLength) {
    return Status::IOError("bad k");
  }

  PATHEST_RETURN_NOT_OK(expect_key("labels"));
  uint64_t num_labels = 0;
  if (!parse_u64(&num_labels) || num_labels == 0 || num_labels > kMaxLabels) {
    return Status::IOError("bad label count");
  }
  // A parsed count sizes allocations below, so it must be plausible
  // against the bytes that actually remain (each label name plus its
  // separator needs at least 2 bytes) — a forged huge count is an IOError
  // here, never an unbounded reserve.
  if (num_labels > static_cast<uint64_t>(end - cur) / 2) {
    return Status::IOError("implausible label count " +
                           std::to_string(num_labels) + " for " +
                           std::to_string(end - cur) + " remaining bytes");
  }
  LabelDictionary labels;
  for (size_t i = 0; i < num_labels; ++i) {
    const std::string_view name = next_token();
    if (name.empty()) return Status::IOError("truncated label list");
    if (labels.Intern(std::string{name}) != i) {
      return Status::IOError("duplicate label name: " + std::string{name});
    }
  }

  PATHEST_RETURN_NOT_OK(expect_key("cardinalities"));
  std::vector<uint64_t> cards;
  cards.reserve(num_labels);
  for (size_t i = 0; i < num_labels; ++i) {
    uint64_t f = 0;
    if (!parse_u64(&f)) return Status::IOError("truncated cardinalities");
    cards.push_back(f);
  }

  PATHEST_RETURN_NOT_OK(expect_key("buckets"));
  uint64_t num_buckets = 0;
  if (!parse_u64(&num_buckets) || num_buckets == 0) {
    return Status::IOError("bad bucket count");
  }
  // Same plausibility gate as the label count: a bucket line is at least 8
  // bytes ("0 1 0 0\n"), so a count past remaining/8 cannot be satisfied
  // by the file and must not drive the reserve below.
  if (num_buckets > static_cast<uint64_t>(end - cur) / 8 + 1) {
    return Status::IOError("implausible bucket count " +
                           std::to_string(num_buckets) + " for " +
                           std::to_string(end - cur) + " remaining bytes");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    Bucket b;
    if (!parse_u64(&b.begin) || !parse_u64(&b.end) || !parse_double(&b.sum) ||
        !parse_double(&b.sumsq)) {
      return Status::IOError("truncated or malformed bucket " +
                             std::to_string(i));
    }
    buckets.push_back(b);
  }

  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return Status::IOError("invalid buckets: " +
                           histogram.status().message());
  }
  auto ordering = MakeOrderingFromStats(ordering_name, labels, cards, k);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::FromParts(std::move(*ordering),
                                            std::move(*histogram), *type);
  if (!estimator.ok()) return estimator.status();
  return LoadedPathHistogram{std::move(labels), std::move(cards),
                             std::move(*estimator)};
}

}  // namespace

// ----------------------------------------------------------- binary reader

bool LooksLikeBinaryCatalog(std::string_view bytes) {
  return bytes.size() >= binfmt::kMagicBytes &&
         std::memcmp(bytes.data(), binfmt::kMagic, binfmt::kMagicBytes) == 0;
}

namespace {

Status SectionError(uint32_t id, const std::string& detail) {
  return Status::IOError(std::string("section ") + binfmt::SectionName(id) +
                         ": " + detail);
}

struct SectionEntry {
  uint32_t id = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

}  // namespace

Result<LoadedPathHistogram> ReadPathHistogramBinary(std::string_view bytes) {
  using namespace binfmt;  // NOLINT — layout constants
  // ---- header: every check happens before the field it gates is used.
  if (bytes.size() < kHeaderBytes) {
    return Status::IOError("binary catalog: truncated header (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  if (!LooksLikeBinaryCatalog(bytes)) {
    return Status::IOError("binary catalog: bad magic");
  }
  BoundedReader header(bytes.data(), kHeaderBytes);
  PATHEST_RETURN_NOT_OK(header.Skip(kMagicBytes, "magic"));
  uint32_t version = 0, section_count = 0, header_crc = 0, table_crc = 0;
  uint64_t file_size = 0;
  PATHEST_RETURN_NOT_OK(header.ReadU32(&version, "version"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&section_count, "section count"));
  PATHEST_RETURN_NOT_OK(header.ReadU64(&file_size, "file size"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&header_crc, "header crc"));
  PATHEST_RETURN_NOT_OK(header.ReadU32(&table_crc, "table crc"));
  if (Crc32c(bytes.data(), kHeaderBytes - 8) != header_crc) {
    return Status::IOError("binary catalog: header checksum mismatch");
  }
  // Post-CRC: the header fields are authentic; now validate them.
  if (version != kVersion) {
    return Status::IOError("binary catalog: unsupported format version " +
                           std::to_string(version) + " (reader knows " +
                           std::to_string(kVersion) + ")");
  }
  if (file_size != bytes.size()) {
    return Status::IOError("binary catalog: file is " +
                           std::to_string(bytes.size()) +
                           " bytes but the header expects " +
                           std::to_string(file_size) + " (truncated copy?)");
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::IOError("binary catalog: implausible section count " +
                           std::to_string(section_count));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  if (kHeaderBytes + table_bytes > bytes.size()) {
    return Status::IOError("binary catalog: truncated section table");
  }
  if (Crc32c(bytes.data() + kHeaderBytes, table_bytes) != table_crc) {
    return Status::IOError("binary catalog: section table checksum mismatch");
  }

  // ---- section table: offsets/lengths bounds-checked before any access.
  BoundedReader table(bytes.data() + kHeaderBytes, table_bytes);
  std::vector<SectionEntry> entries(section_count);
  uint32_t prev_id = 0;
  for (SectionEntry& e : entries) {
    PATHEST_RETURN_NOT_OK(table.ReadU32(&e.id, "section id"));
    PATHEST_RETURN_NOT_OK(table.ReadU32(&e.crc, "section crc"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&e.offset, "section offset"));
    PATHEST_RETURN_NOT_OK(table.ReadU64(&e.length, "section length"));
    if (e.id <= prev_id) {
      return Status::IOError(
          "binary catalog: section ids not strictly ascending");
    }
    prev_id = e.id;
    if (e.id > kSectionComposition) {
      return Status::IOError("binary catalog: unknown section id " +
                             std::to_string(e.id));
    }
    if (e.offset < kHeaderBytes + table_bytes ||
        e.offset > bytes.size() || e.length > bytes.size() - e.offset) {
      return SectionError(e.id, "extent [" + std::to_string(e.offset) +
                                    ", +" + std::to_string(e.length) +
                                    ") outside the file");
    }
  }

  auto find_section = [&entries](uint32_t id) -> const SectionEntry* {
    for (const SectionEntry& e : entries) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  for (uint32_t id : {kSectionOrdering, kSectionLabels,
                      kSectionCardinalities, kSectionHistogram}) {
    if (find_section(id) == nullptr) {
      return SectionError(id, "required section missing");
    }
  }

  // Payload accessor: the CRC is verified before the first byte of a
  // section is interpreted.
  auto open_section = [&](const SectionEntry& e,
                          std::string_view* out) -> Status {
    *out = bytes.substr(e.offset, e.length);
    if (Crc32c(out->data(), out->size()) != e.crc) {
      return SectionError(e.id, "checksum mismatch over " +
                                    std::to_string(e.length) + " bytes");
    }
    return Status::OK();
  };

  // ---- section 1: ordering identity.
  std::string_view payload;
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionOrdering),
                                     &payload));
  BoundedReader ord(payload);
  std::string ordering_name, type_name;
  uint32_t k32 = 0, reserved = 0;
  PATHEST_RETURN_NOT_OK(
      ord.ReadLengthPrefixedString(&ordering_name, 64, "ordering name"));
  PATHEST_RETURN_NOT_OK(
      ord.ReadLengthPrefixedString(&type_name, 64, "histogram type"));
  PATHEST_RETURN_NOT_OK(ord.ReadU32(&k32, "k"));
  PATHEST_RETURN_NOT_OK(ord.ReadU32(&reserved, "ordering reserved"));
  if (!ord.AtEnd()) {
    return SectionError(kSectionOrdering, "trailing bytes");
  }
  if (!IsSerializableOrdering(ordering_name)) {
    return SectionError(kSectionOrdering,
                        "unknown serialized ordering: " + ordering_name);
  }
  auto type = ParseHistogramType(type_name);
  if (!type.ok()) {
    return SectionError(kSectionOrdering, type.status().message());
  }
  const uint64_t k = k32;
  if (k < 1 || k > kMaxPathLength) {
    return SectionError(kSectionOrdering, "bad k " + std::to_string(k));
  }

  // ---- section 2: label dictionary.
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionLabels),
                                     &payload));
  BoundedReader lab(payload);
  uint32_t num_labels = 0;
  PATHEST_RETURN_NOT_OK(lab.ReadU32(&num_labels, "label count"));
  if (num_labels == 0 || num_labels > kMaxLabels) {
    return SectionError(kSectionLabels, "implausible label count " +
                                            std::to_string(num_labels));
  }
  // Each label costs at least its 4-byte length prefix.
  PATHEST_RETURN_NOT_OK(lab.ValidateCount(num_labels, 4, "labels"));
  LabelDictionary labels;
  for (uint32_t i = 0; i < num_labels; ++i) {
    std::string name;
    PATHEST_RETURN_NOT_OK(
        lab.ReadLengthPrefixedString(&name, kMaxLabelNameBytes, "label name"));
    if (name.empty()) {
      return SectionError(kSectionLabels, "empty label name");
    }
    if (labels.Intern(name) != i) {
      return SectionError(kSectionLabels, "duplicate label name: " + name);
    }
  }
  if (!lab.AtEnd()) return SectionError(kSectionLabels, "trailing bytes");

  // ---- section 3: cardinalities.
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionCardinalities),
                                     &payload));
  BoundedReader car(payload);
  uint32_t card_count = 0;
  PATHEST_RETURN_NOT_OK(car.ReadU32(&card_count, "cardinality count"));
  PATHEST_RETURN_NOT_OK(car.ReadU32(&reserved, "cardinalities reserved"));
  if (card_count != num_labels) {
    return SectionError(kSectionCardinalities,
                        "count " + std::to_string(card_count) +
                            " does not match " + std::to_string(num_labels) +
                            " labels");
  }
  PATHEST_RETURN_NOT_OK(car.ValidateCount(card_count, 8, "cardinalities"));
  std::vector<uint64_t> cards;
  cards.reserve(card_count);
  for (uint32_t i = 0; i < card_count; ++i) {
    uint64_t f = 0;
    PATHEST_RETURN_NOT_OK(car.ReadU64(&f, "cardinality"));
    cards.push_back(f);
  }
  if (!car.AtEnd()) {
    return SectionError(kSectionCardinalities, "trailing bytes");
  }

  // ---- section 4: histogram SoA rows.
  PATHEST_RETURN_NOT_OK(open_section(*find_section(kSectionHistogram),
                                     &payload));
  BoundedReader his(payload);
  uint64_t num_buckets = 0;
  PATHEST_RETURN_NOT_OK(his.ReadU64(&num_buckets, "bucket count"));
  if (num_buckets == 0) {
    return SectionError(kSectionHistogram, "zero buckets");
  }
  // Four u64 rows of num_buckets each — validated as a whole before the
  // bucket vector is sized from the untrusted count.
  PATHEST_RETURN_NOT_OK(his.ValidateCount(num_buckets, 32, "buckets"));
  std::vector<Bucket> buckets(num_buckets);
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadU64(&b.begin, "bucket begins"));
  }
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadU64(&b.end, "bucket ends"));
  }
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadDouble(&b.sum, "bucket sums"));
  }
  for (Bucket& b : buckets) {
    PATHEST_RETURN_NOT_OK(his.ReadDouble(&b.sumsq, "bucket sumsqs"));
  }
  if (!his.AtEnd()) return SectionError(kSectionHistogram, "trailing bytes");

  // ---- section 5: composition table (sum family only).
  const SectionEntry* comp_entry = find_section(kSectionComposition);
  if (IsSumFamilyOrdering(ordering_name) != (comp_entry != nullptr)) {
    return SectionError(kSectionComposition,
                        comp_entry == nullptr
                            ? "missing for sum-family ordering"
                            : "present for non-sum ordering");
  }
  if (comp_entry != nullptr) {
    PATHEST_RETURN_NOT_OK(open_section(*comp_entry, &payload));
    BoundedReader com(payload);
    uint32_t comp_labels = 0, comp_k = 0;
    uint64_t num_values = 0;
    PATHEST_RETURN_NOT_OK(com.ReadU32(&comp_labels, "composition |L|"));
    PATHEST_RETURN_NOT_OK(com.ReadU32(&comp_k, "composition k"));
    PATHEST_RETURN_NOT_OK(com.ReadU64(&num_values, "composition count"));
    if (comp_labels != num_labels || comp_k != k) {
      return SectionError(kSectionComposition,
                          "shape (|L|=" + std::to_string(comp_labels) +
                              ", k=" + std::to_string(comp_k) +
                              ") does not match the catalog");
    }
    uint64_t expected_values = 0;
    for (uint64_t m = 1; m <= k; ++m) {
      expected_values += m * num_labels - m + 1;
    }
    if (num_values != expected_values) {
      return SectionError(kSectionComposition,
                          "value count " + std::to_string(num_values) +
                              " (expected " + std::to_string(expected_values) +
                              ")");
    }
    PATHEST_RETURN_NOT_OK(
        com.ValidateCount(num_values, 8, "composition values"));
    // Semantic integrity beyond the CRC: the persisted stage-2 rows must be
    // exactly what the ordering will rebuild from (|L|, k) — a mismatch
    // means a wrong-but-well-formed file, the one corruption class a
    // checksum of the file alone cannot see.
    CompositionTable expected(num_labels, k);
    for (uint64_t m = 1; m <= k; ++m) {
      for (uint64_t sum = m; sum <= m * num_labels; ++sum) {
        uint64_t v = 0;
        PATHEST_RETURN_NOT_OK(com.ReadU64(&v, "composition value"));
        if (v != expected.Count(sum, m)) {
          return SectionError(
              kSectionComposition,
              "value mismatch at (m=" + std::to_string(m) +
                  ", sum=" + std::to_string(sum) + "): file has " +
                  std::to_string(v) + ", recomputed " +
                  std::to_string(expected.Count(sum, m)));
        }
      }
    }
    if (!com.AtEnd()) {
      return SectionError(kSectionComposition, "trailing bytes");
    }
  }

  // ---- assembly (shared semantic validation with the text path).
  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return SectionError(kSectionHistogram,
                        "invalid buckets: " + histogram.status().message());
  }
  auto ordering = MakeOrderingFromStats(ordering_name, labels, cards, k);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::FromParts(std::move(*ordering),
                                            std::move(*histogram), *type);
  if (!estimator.ok()) return estimator.status();
  return LoadedPathHistogram{std::move(labels), std::move(cards),
                             std::move(*estimator)};
}

// --------------------------------------------------------------- dispatch

Result<LoadedPathHistogram> ReadPathHistogram(std::istream* in) {
  std::string content{std::istreambuf_iterator<char>(*in),
                      std::istreambuf_iterator<char>()};
  if (LooksLikeBinaryCatalog(content)) {
    return ReadPathHistogramBinary(content);
  }
  return ReadPathHistogramText(content);
}

Result<LoadedPathHistogram> LoadPathHistogram(const std::string& path) {
  std::string content;
  PATHEST_RETURN_NOT_OK(ReadFileToString(path, &content));
  if (LooksLikeBinaryCatalog(content)) {
    return ReadPathHistogramBinary(content);
  }
  return ReadPathHistogramText(content);
}

}  // namespace pathest
