#include "core/serialize.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string_view>

#include "ordering/factory.h"

namespace pathest {

namespace {
constexpr const char* kMagic = "pathest-histogram v1";
}  // namespace

bool IsSerializableOrdering(const std::string& ordering_name) {
  for (const char* name :
       {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based",
        "sum-card", "sum-alph", "gray-alph", "gray-card"}) {
    if (ordering_name == name) return true;
  }
  return false;
}

Status WritePathHistogram(const PathHistogram& estimator,
                          const LabelDictionary& labels,
                          const std::vector<uint64_t>& label_cardinalities,
                          std::ostream* out) {
  const std::string& ordering_name = estimator.ordering().name();
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::InvalidArgument(
        "ordering '" + ordering_name +
        "' materializes O(|L_k|) state and cannot be serialized compactly");
  }
  if (labels.size() != label_cardinalities.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  (*out) << kMagic << "\n";
  (*out) << "ordering " << ordering_name << "\n";
  (*out) << "type " << HistogramTypeName(estimator.histogram_type()) << "\n";
  (*out) << "k " << estimator.ordering().space().k() << "\n";
  (*out) << "labels " << labels.size();
  for (const std::string& name : labels.names()) (*out) << ' ' << name;
  (*out) << "\n";
  (*out) << "cardinalities";
  for (uint64_t f : label_cardinalities) (*out) << ' ' << f;
  (*out) << "\n";
  const auto& buckets = estimator.histogram().buckets();
  (*out) << "buckets " << buckets.size() << "\n";
  // Hex double encoding is lossless and locale-independent.
  (*out).precision(17);
  for (const Bucket& b : buckets) {
    (*out) << b.begin << ' ' << b.end << ' ' << std::hexfloat << b.sum << ' '
           << b.sumsq << std::defaultfloat << "\n";
  }
  if (!out->good()) return Status::IOError("histogram write failed");
  return Status::OK();
}

Status SavePathHistogram(const PathHistogram& estimator, const Graph& graph,
                         const std::string& path) {
  std::vector<uint64_t> cards(graph.num_labels());
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    cards[l] = graph.LabelCardinality(l);
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return WritePathHistogram(estimator, graph.labels(), cards, &out);
}

Result<LoadedPathHistogram> ReadPathHistogram(std::istream* in) {
  // The file is slurped once and parsed with a cursor over the raw bytes:
  // integers via std::from_chars, doubles via strtod (hexfloat). The
  // previous reader paid an istringstream construction plus locale-aware
  // operator>> extraction per line, which dominated large-beta catalog
  // loads (see the timing note in serialize.h).
  std::string content{std::istreambuf_iterator<char>(*in),
                      std::istreambuf_iterator<char>()};
  const char* cur = content.data();
  const char* const end = content.data() + content.size();

  // The magic is a whole line, not a token (it contains a space).
  const char* nl = std::find(cur, end, '\n');
  if (std::string_view(cur, static_cast<size_t>(nl - cur)) != kMagic) {
    return Status::IOError("bad magic: expected '" + std::string(kMagic) +
                           "'");
  }
  cur = nl == end ? end : nl + 1;

  auto next_token = [&cur, end]() -> std::string_view {
    while (cur < end && std::isspace(static_cast<unsigned char>(*cur))) ++cur;
    const char* begin = cur;
    while (cur < end && !std::isspace(static_cast<unsigned char>(*cur))) ++cur;
    return {begin, static_cast<size_t>(cur - begin)};
  };
  auto expect_key = [&next_token](const char* key) -> Status {
    const std::string_view tok = next_token();
    if (tok.empty()) {
      return Status::IOError(std::string("truncated file before '") + key +
                             "'");
    }
    if (tok != key) {
      return Status::IOError("expected key '" + std::string(key) +
                             "', found '" + std::string(tok) + "'");
    }
    return Status::OK();
  };
  auto parse_u64 = [&next_token](uint64_t* out) -> bool {
    const std::string_view tok = next_token();
    if (tok.empty()) return false;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), *out);
    return ec == std::errc() && ptr == tok.data() + tok.size();
  };
  // Hexfloat ("0x1.8p+4") parsing stays on strtod: std::from_chars's hex
  // format rejects the "0x" prefix the writer emits. Tokens point into
  // `content`, which is null-terminated past its last byte, and strtod
  // stops at the token-ending whitespace on its own.
  auto parse_double = [&next_token](double* out) -> bool {
    const std::string_view tok = next_token();
    if (tok.empty()) return false;
    char* parse_end = nullptr;
    *out = std::strtod(tok.data(), &parse_end);
    return parse_end == tok.data() + tok.size();
  };

  PATHEST_RETURN_NOT_OK(expect_key("ordering"));
  std::string ordering_name{next_token()};
  if (!IsSerializableOrdering(ordering_name)) {
    return Status::IOError("unknown serialized ordering: " + ordering_name);
  }

  PATHEST_RETURN_NOT_OK(expect_key("type"));
  auto type = ParseHistogramType(std::string{next_token()});
  if (!type.ok()) return type.status();

  PATHEST_RETURN_NOT_OK(expect_key("k"));
  uint64_t k = 0;
  if (!parse_u64(&k) || k < 1 || k > kMaxPathLength) {
    return Status::IOError("bad k");
  }

  PATHEST_RETURN_NOT_OK(expect_key("labels"));
  uint64_t num_labels = 0;
  if (!parse_u64(&num_labels) || num_labels == 0 || num_labels > 4096) {
    return Status::IOError("bad label count");
  }
  LabelDictionary labels;
  for (size_t i = 0; i < num_labels; ++i) {
    const std::string_view name = next_token();
    if (name.empty()) return Status::IOError("truncated label list");
    if (labels.Intern(std::string{name}) != i) {
      return Status::IOError("duplicate label name: " + std::string{name});
    }
  }

  PATHEST_RETURN_NOT_OK(expect_key("cardinalities"));
  std::vector<uint64_t> cards;
  cards.reserve(num_labels);
  for (size_t i = 0; i < num_labels; ++i) {
    uint64_t f = 0;
    if (!parse_u64(&f)) return Status::IOError("truncated cardinalities");
    cards.push_back(f);
  }

  PATHEST_RETURN_NOT_OK(expect_key("buckets"));
  uint64_t num_buckets = 0;
  if (!parse_u64(&num_buckets) || num_buckets == 0) {
    return Status::IOError("bad bucket count");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets);
  for (size_t i = 0; i < num_buckets; ++i) {
    Bucket b;
    if (!parse_u64(&b.begin) || !parse_u64(&b.end) || !parse_double(&b.sum) ||
        !parse_double(&b.sumsq)) {
      return Status::IOError("truncated or malformed bucket " +
                             std::to_string(i));
    }
    buckets.push_back(b);
  }

  auto histogram = Histogram::FromBuckets(std::move(buckets));
  if (!histogram.ok()) {
    return Status::IOError("invalid buckets: " +
                           histogram.status().message());
  }
  auto ordering = MakeOrderingFromStats(ordering_name, labels, cards, k);
  if (!ordering.ok()) return ordering.status();
  auto estimator = PathHistogram::FromParts(std::move(*ordering),
                                            std::move(*histogram), *type);
  if (!estimator.ok()) return estimator.status();
  return LoadedPathHistogram{std::move(labels), std::move(cards),
                             std::move(*estimator)};
}

Result<LoadedPathHistogram> LoadPathHistogram(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open: " + path);
  return ReadPathHistogram(&in);
}

}  // namespace pathest
