#include "core/catalog_cache.h"

#include <utility>

#include "util/mmap_file.h"

namespace pathest {

CatalogCache::CatalogCache(CatalogCacheOptions options)
    : options_(options) {}

Result<std::shared_ptr<const MappedCatalogEntry>> CatalogCache::GetOrOpen(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto id = StatFileId(path);
  auto it = slots_.find(path);
  if (it != slots_.end()) {
    if (id.ok() && it->second.entry->file_id() == *id) {
      ++hits_;
      it->second.last_use = ++clock_;
      return it->second.entry;
    }
    // The path no longer names these bytes (rewritten or removed): the
    // slot is stale either way. Pinned holders keep the old mapping alive.
    slots_.erase(it);
  }
  if (!id.ok()) return id.status();

  auto entry = MappedCatalogEntry::Open(path, options_.verify);
  if (!entry.ok()) return entry.status();
  ++misses_;
  slots_[path] = Slot{*entry, ++clock_};
  EvictLocked();
  return std::move(*entry);
}

bool CatalogCache::Invalidate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.erase(path) > 0;
}

size_t CatalogCache::MappedTotalLocked() const {
  size_t total = 0;
  for (const auto& [path, slot] : slots_) {
    total += slot.entry->mapped_bytes();
  }
  return total;
}

void CatalogCache::EvictLocked() {
  size_t total = MappedTotalLocked();
  while (total > options_.byte_budget) {
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      // use_count() == 1 under mu_ means the cache holds the ONLY
      // reference: nothing can re-pin concurrently because every pin path
      // (GetOrOpen) also runs under mu_.
      if (it->second.entry.use_count() != 1) continue;
      if (victim == slots_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == slots_.end()) break;  // everything left is pinned
    total -= victim->second.entry->mapped_bytes();
    slots_.erase(victim);
    ++evictions_;
  }
}

CatalogCacheStats CatalogCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CatalogCacheStats stats;
  stats.entries = slots_.size();
  stats.byte_budget = options_.byte_budget;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.per_entry.reserve(slots_.size());
  for (const auto& [path, slot] : slots_) {
    CatalogCacheEntryStats e;
    e.path = path;
    e.mapped_bytes = slot.entry->mapped_bytes();
    e.resident_bytes = slot.entry->resident_bytes();
    e.pinned = slot.entry.use_count() > 1;
    e.last_use = slot.last_use;
    stats.mapped_bytes += e.mapped_bytes;
    stats.per_entry.push_back(std::move(e));
  }
  return stats;
}

}  // namespace pathest
