#include "core/catalog.h"

#include "core/serialize.h"
#include "ordering/factory.h"

namespace pathest {

StatisticsCatalog::StatisticsCatalog(
    const Graph* graph, std::unique_ptr<SelectivityMap> selectivities)
    : graph_(graph),
      selectivities_(std::move(selectivities)),
      analyzed_edges_(graph->num_edges()) {}

Result<StatisticsCatalog> StatisticsCatalog::Analyze(
    const Graph& graph, size_t k, const SelectivityOptions& options) {
  auto map = ComputeSelectivities(graph, k, options);
  if (!map.ok()) return map.status();
  return StatisticsCatalog(
      &graph, std::make_unique<SelectivityMap>(std::move(*map)));
}

Status StatisticsCatalog::BuildEstimator(const std::string& name,
                                         const CatalogEntryConfig& config) {
  auto ordering = MakeOrderingWithSelectivities(config.ordering, *graph_,
                                                k(), *selectivities_);
  PATHEST_RETURN_NOT_OK(ordering.status());
  auto estimator =
      PathHistogram::Build(*selectivities_, std::move(*ordering),
                           config.histogram_type, config.num_buckets);
  PATHEST_RETURN_NOT_OK(estimator.status());
  estimators_[name] =
      std::make_unique<PathHistogram>(std::move(*estimator));
  return Status::OK();
}

Result<const PathHistogram*> StatisticsCatalog::GetEstimator(
    const std::string& name) const {
  auto it = estimators_.find(name);
  if (it == estimators_.end()) {
    return Status::NotFound("no estimator named '" + name + "'");
  }
  return static_cast<const PathHistogram*>(it->second.get());
}

Result<double> StatisticsCatalog::Estimate(const std::string& name,
                                           const LabelPath& path) const {
  auto estimator = GetEstimator(name);
  if (!estimator.ok()) return estimator.status();
  if (!(*estimator)->ordering().space().Contains(path)) {
    return Status::InvalidArgument("path outside the analyzed space L_" +
                                   std::to_string(k()));
  }
  return (*estimator)->Estimate(path);
}

uint64_t StatisticsCatalog::ExactSelectivity(const LabelPath& path) const {
  return selectivities_->Get(path);
}

std::vector<std::string> StatisticsCatalog::EstimatorNames() const {
  std::vector<std::string> names;
  names.reserve(estimators_.size());
  for (const auto& [name, _] : estimators_) names.push_back(name);
  return names;
}

void StatisticsCatalog::RecordDataChanges(uint64_t num_changes) {
  data_changes_ += num_changes;
}

double StatisticsCatalog::Staleness() const {
  if (analyzed_edges_ == 0) return data_changes_ > 0 ? 1.0 : 0.0;
  return static_cast<double>(data_changes_) /
         static_cast<double>(analyzed_edges_);
}

Status StatisticsCatalog::SaveAll(const std::string& dir,
                                  std::vector<std::string>* skipped) const {
  for (const auto& [name, estimator] : estimators_) {
    if (!IsSerializableOrdering(estimator->ordering().name())) {
      if (skipped != nullptr) skipped->push_back(name);
      continue;
    }
    PATHEST_RETURN_NOT_OK(
        SavePathHistogram(*estimator, *graph_, dir + "/" + name + ".stats"));
  }
  return Status::OK();
}

}  // namespace pathest
