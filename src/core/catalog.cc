#include "core/catalog.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "core/serialize.h"
#include "ordering/factory.h"

namespace pathest {

namespace {

// Binary-loader errors localize themselves as "section <name>: ..."; pull
// the section out so a CatalogLoadReport can aggregate by section without
// the caller string-matching.
std::string ExtractSectionFromError(const std::string& message) {
  constexpr const char* kPrefix = "section ";
  if (message.rfind(kPrefix, 0) != 0) return "";
  const size_t start = std::char_traits<char>::length(kPrefix);
  const size_t colon = message.find(':', start);
  if (colon == std::string::npos) return "";
  return message.substr(start, colon - start);
}

void RecordFailure(CatalogLoadReport* report, const std::string& path,
                   Status status) {
  if (report == nullptr) return;
  report->failures.push_back(MakeCatalogLoadFailure(path, std::move(status)));
}

}  // namespace

CatalogLoadFailure MakeCatalogLoadFailure(std::string path, Status status) {
  std::string section = ExtractSectionFromError(status.message());
  return CatalogLoadFailure{std::move(path), std::move(section),
                            std::move(status)};
}

Result<std::vector<std::string>> ListCatalogEntryPaths(
    const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("catalog directory not found: " + dir);
  }
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot read catalog directory '" + dir +
                           "': " + ec.message());
  }
  std::vector<std::string> out;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".stats") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<CatalogLoadReport> VerifyCatalogDir(const std::string& dir) {
  auto entries = ListCatalogEntryPaths(dir);
  if (!entries.ok()) return entries.status();
  CatalogLoadReport report;
  for (const std::string& path : *entries) {
    auto loaded = LoadPathHistogram(path);
    if (loaded.ok()) {
      const std::string name = std::filesystem::path(path).stem().string();
      report.loaded.push_back(name);
      auto format = SniffCatalogFormat(path);
      if (format.ok()) {
        // A v2 entry that loaded IS page-aligned: the v2 parser rejects
        // any section offset off a page boundary at every verify tier.
        report.entries.push_back(CatalogEntryInfo{
            name, CatalogFormatName(*format),
            *format == CatalogFormat::kBinaryV2});
      }
    } else {
      RecordFailure(&report, path, loaded.status());
    }
  }
  return report;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CatalogLoadReportToJson(const CatalogLoadReport& report,
                                    const std::string& dir) {
  std::string out = "{\"dir\":\"" + JsonEscape(dir) + "\"";
  out += ",\"ok\":" + std::to_string(report.loaded.size());
  out += ",\"corrupt\":" + std::to_string(report.failures.size());
  out += ",\"fully_healthy\":";
  out += report.fully_healthy() ? "true" : "false";
  out += ",\"loaded\":[";
  for (size_t i = 0; i < report.loaded.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + JsonEscape(report.loaded[i]) + '"';
  }
  out += "],\"entries\":[";
  for (size_t i = 0; i < report.entries.size(); ++i) {
    const CatalogEntryInfo& e = report.entries[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(e.name) + "\"";
    out += ",\"format\":\"" + JsonEscape(e.format) + "\"";
    out += ",\"aligned\":";
    out += e.aligned ? "true" : "false";
    out += "}";
  }
  out += "],\"failures\":[";
  for (size_t i = 0; i < report.failures.size(); ++i) {
    const CatalogLoadFailure& f = report.failures[i];
    if (i > 0) out += ',';
    out += "{\"path\":\"" + JsonEscape(f.path) + "\"";
    out += ",\"section\":\"" + JsonEscape(f.section) + "\"";
    out += ",\"code\":\"";
    out += StatusCodeToString(f.status.code());
    out += "\",\"error\":\"" + JsonEscape(f.status.message()) + "\"}";
  }
  out += "]}";
  return out;
}

StatisticsCatalog::StatisticsCatalog(
    const Graph* graph, std::unique_ptr<SelectivityMap> selectivities)
    : graph_(graph),
      selectivities_(std::move(selectivities)),
      analyzed_edges_(graph->num_edges()) {}

Result<StatisticsCatalog> StatisticsCatalog::Analyze(
    const Graph& graph, size_t k, const SelectivityOptions& options) {
  auto map = ComputeSelectivities(graph, k, options);
  if (!map.ok()) return map.status();
  return StatisticsCatalog(
      &graph, std::make_unique<SelectivityMap>(std::move(*map)));
}

Status StatisticsCatalog::BuildEstimator(const std::string& name,
                                         const CatalogEntryConfig& config) {
  auto ordering = MakeOrderingWithSelectivities(config.ordering, *graph_,
                                                k(), *selectivities_);
  PATHEST_RETURN_NOT_OK(ordering.status());
  auto estimator =
      PathHistogram::Build(*selectivities_, std::move(*ordering),
                           config.histogram_type, config.num_buckets);
  PATHEST_RETURN_NOT_OK(estimator.status());
  estimators_[name] =
      std::make_unique<PathHistogram>(std::move(*estimator));
  return Status::OK();
}

Result<const PathHistogram*> StatisticsCatalog::GetEstimator(
    const std::string& name) const {
  auto it = estimators_.find(name);
  if (it == estimators_.end()) {
    return Status::NotFound("no estimator named '" + name + "'");
  }
  return static_cast<const PathHistogram*>(it->second.get());
}

Result<double> StatisticsCatalog::Estimate(const std::string& name,
                                           const LabelPath& path) const {
  auto estimator = GetEstimator(name);
  if (!estimator.ok()) return estimator.status();
  if (!(*estimator)->ordering().space().Contains(path)) {
    return Status::InvalidArgument("path outside the analyzed space L_" +
                                   std::to_string(k()));
  }
  return (*estimator)->Estimate(path);
}

uint64_t StatisticsCatalog::ExactSelectivity(const LabelPath& path) const {
  return selectivities_->Get(path);
}

std::vector<std::string> StatisticsCatalog::EstimatorNames() const {
  std::vector<std::string> names;
  names.reserve(estimators_.size());
  for (const auto& [name, _] : estimators_) names.push_back(name);
  return names;
}

void StatisticsCatalog::RecordDataChanges(uint64_t num_changes) {
  data_changes_ += num_changes;
}

double StatisticsCatalog::Staleness() const {
  if (analyzed_edges_ == 0) return data_changes_ > 0 ? 1.0 : 0.0;
  return static_cast<double>(data_changes_) /
         static_cast<double>(analyzed_edges_);
}

Status StatisticsCatalog::SaveAll(const std::string& dir,
                                  std::vector<std::string>* skipped,
                                  CatalogFormat format) const {
  for (const auto& [name, estimator] : estimators_) {
    if (!IsSerializableOrdering(estimator->ordering().name())) {
      if (skipped != nullptr) skipped->push_back(name);
      continue;
    }
    // SavePathHistogram publishes atomically (temp + fsync + rename), so a
    // failure or crash on any entry leaves every existing file intact.
    PATHEST_RETURN_NOT_OK(SavePathHistogram(
        *estimator, *graph_, dir + "/" + name + ".stats", format));
  }
  return Status::OK();
}

Status StatisticsCatalog::LoadAll(const std::string& dir,
                                  CatalogLoadReport* report) {
  auto entries = ListCatalogEntryPaths(dir);
  if (!entries.ok()) return entries.status();
  for (const std::string& path : *entries) {
    auto loaded = LoadPathHistogram(path);
    if (!loaded.ok()) {
      RecordFailure(report, path, loaded.status());
      continue;
    }
    // A well-formed entry persisted against a DIFFERENT label dictionary
    // would serve confidently wrong estimates — quarantine it like any
    // other corruption instead of registering it.
    if (loaded->labels.names() != graph_->labels().names()) {
      RecordFailure(
          report, path,
          Status::IOError("label dictionary does not match the catalog's "
                          "graph (foreign or stale entry)"));
      continue;
    }
    const std::string name = std::filesystem::path(path).stem().string();
    estimators_[name] =
        std::make_unique<PathHistogram>(std::move(loaded->estimator));
    if (report != nullptr) report->loaded.push_back(name);
  }
  return Status::OK();
}

}  // namespace pathest
