// pathest: the statistics catalog — the integration surface a database
// engine would actually program against.
//
// A StatisticsCatalog owns path statistics for one graph: it computes the
// exact selectivities once (ANALYZE), builds one estimator per requested
// configuration, serves estimates, tracks data staleness, and persists /
// restores itself. This is the "statistics module" slot of the optimizer
// architecture the paper's introduction targets.

#ifndef PATHEST_CORE_CATALOG_H_
#define PATHEST_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/path_histogram.h"
#include "graph/graph.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief Configuration of one catalog entry.
struct CatalogEntryConfig {
  /// Ordering method name (MakeOrdering names).
  std::string ordering = "sum-based";
  HistogramType histogram_type = HistogramType::kVOptimal;
  size_t num_buckets = 256;
};

/// \brief Path-statistics catalog for a single graph.
class StatisticsCatalog {
 public:
  /// \brief Runs ANALYZE: computes exact selectivities up to `k` and
  /// remembers the graph's label statistics. The graph must outlive the
  /// catalog.
  static Result<StatisticsCatalog> Analyze(
      const Graph& graph, size_t k,
      const SelectivityOptions& options = SelectivityOptions{});

  /// \brief Builds (or replaces) the estimator for `name`.
  Status BuildEstimator(const std::string& name,
                        const CatalogEntryConfig& config);

  /// \brief The estimator registered under `name`; NotFound otherwise.
  Result<const PathHistogram*> GetEstimator(const std::string& name) const;

  /// \brief Estimate via a registered estimator.
  Result<double> Estimate(const std::string& name,
                          const LabelPath& path) const;

  /// \brief Exact selectivity from the ANALYZE pass (for validation).
  uint64_t ExactSelectivity(const LabelPath& path) const;

  /// \brief Names of all registered estimators, sorted.
  std::vector<std::string> EstimatorNames() const;

  /// \brief Records data-change events (edge insertions/deletions) since
  /// ANALYZE; drives staleness reporting.
  void RecordDataChanges(uint64_t num_changes);

  /// \brief Fraction of changed edges since ANALYZE: changes / |E|.
  /// An engine would re-ANALYZE past a threshold (e.g. 0.1).
  double Staleness() const;

  /// \brief True when staleness exceeds `threshold`.
  bool NeedsRefresh(double threshold = 0.1) const {
    return Staleness() > threshold;
  }

  /// \brief The ANALYZE-time selectivities.
  const SelectivityMap& selectivities() const { return *selectivities_; }

  size_t k() const { return selectivities_->space().k(); }

  /// \brief Persists every serializable estimator to `<dir>/<name>.stats`.
  /// Non-serializable entries (ideal/random/sum-L2) are skipped and
  /// reported in `skipped`.
  Status SaveAll(const std::string& dir,
                 std::vector<std::string>* skipped = nullptr) const;

 private:
  StatisticsCatalog(const Graph* graph,
                    std::unique_ptr<SelectivityMap> selectivities);

  const Graph* graph_;
  std::unique_ptr<SelectivityMap> selectivities_;
  std::map<std::string, std::unique_ptr<PathHistogram>> estimators_;
  uint64_t analyzed_edges_ = 0;
  uint64_t data_changes_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_CORE_CATALOG_H_
