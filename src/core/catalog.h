// pathest: the statistics catalog — the integration surface a database
// engine would actually program against.
//
// A StatisticsCatalog owns path statistics for one graph: it computes the
// exact selectivities once (ANALYZE), builds one estimator per requested
// configuration, serves estimates, tracks data staleness, and persists /
// restores itself. This is the "statistics module" slot of the optimizer
// architecture the paper's introduction targets.

#ifndef PATHEST_CORE_CATALOG_H_
#define PATHEST_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/path_histogram.h"
#include "core/serialize.h"
#include "graph/graph.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief One quarantined catalog entry: the file that failed, the binary
/// section implicated (when the loader could localize it; "" otherwise),
/// and the typed error.
struct CatalogLoadFailure {
  std::string path;
  std::string section;
  Status status;
};

/// \brief Builds a CatalogLoadFailure from a loader error, pulling the
/// implicated binary section out of the error message ("section <name>:
/// ..." — the binary loader's self-localizing prefix) when present.
CatalogLoadFailure MakeCatalogLoadFailure(std::string path, Status status);

/// \brief Per-entry detail for a verified catalog entry: its on-disk
/// format and, for binary v2, whether the page-alignment invariants held
/// (always true for a v2 entry that verified — the loader checks every
/// section offset at every tier; false for formats without the invariant).
struct CatalogEntryInfo {
  std::string name;
  std::string format;  // "text" | "binary" | "binary-v2"
  bool aligned = false;
};

/// \brief Outcome of a degraded-mode catalog load: which entries serve and
/// which were quarantined (and why). A catalog with failures still serves
/// every healthy entry — one corrupt file must not take down the rest.
struct CatalogLoadReport {
  std::vector<std::string> loaded;  // estimator names now registered
  std::vector<CatalogLoadFailure> failures;
  /// Format detail per healthy entry, parallel to `loaded` (filled by
  /// VerifyCatalogDir; load paths that do not sniff leave it empty).
  std::vector<CatalogEntryInfo> entries;

  bool fully_healthy() const { return failures.empty(); }
};

/// \brief Checksum-walks every `*.stats` entry under `dir` (both formats:
/// binary entries verify every section CRC, text entries a full parse)
/// without needing a graph or an analyzed catalog — the integrity audit
/// behind `pathest_cli catalog verify`. NotFound if `dir` does not exist.
Result<CatalogLoadReport> VerifyCatalogDir(const std::string& dir);

/// \brief Sorted `<dir>/*.stats` paths — the one definition of "what is a
/// catalog entry" shared by VerifyCatalogDir, StatisticsCatalog::LoadAll,
/// and the serving reload path (serve/snapshot_registry.h). NotFound when
/// `dir` is not a directory; IOError when it cannot be walked.
Result<std::vector<std::string>> ListCatalogEntryPaths(const std::string& dir);

/// \brief Renders a CatalogLoadReport as one line of JSON — the single
/// machine-readable integrity report consumed by `pathest_cli catalog
/// verify --json`, the serve daemon's `stats` response, and external
/// tooling. Shape:
///   {"dir":..., "ok":N, "corrupt":M, "fully_healthy":bool,
///    "loaded":[name...],
///    "entries":[{"name":...,"format":...,"aligned":bool}...],
///    "failures":[{"path":...,"section":...,"code":...,"error":...}...]}
std::string CatalogLoadReportToJson(const CatalogLoadReport& report,
                                    const std::string& dir);

/// \brief Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// \brief Configuration of one catalog entry.
struct CatalogEntryConfig {
  /// Ordering method name (MakeOrdering names).
  std::string ordering = "sum-based";
  HistogramType histogram_type = HistogramType::kVOptimal;
  size_t num_buckets = 256;
};

/// \brief Path-statistics catalog for a single graph.
class StatisticsCatalog {
 public:
  /// \brief Runs ANALYZE: computes exact selectivities up to `k` and
  /// remembers the graph's label statistics. The graph must outlive the
  /// catalog.
  static Result<StatisticsCatalog> Analyze(
      const Graph& graph, size_t k,
      const SelectivityOptions& options = SelectivityOptions{});

  /// \brief Builds (or replaces) the estimator for `name`.
  Status BuildEstimator(const std::string& name,
                        const CatalogEntryConfig& config);

  /// \brief The estimator registered under `name`; NotFound otherwise.
  Result<const PathHistogram*> GetEstimator(const std::string& name) const;

  /// \brief Estimate via a registered estimator.
  Result<double> Estimate(const std::string& name,
                          const LabelPath& path) const;

  /// \brief Exact selectivity from the ANALYZE pass (for validation).
  uint64_t ExactSelectivity(const LabelPath& path) const;

  /// \brief Names of all registered estimators, sorted.
  std::vector<std::string> EstimatorNames() const;

  /// \brief Records data-change events (edge insertions/deletions) since
  /// ANALYZE; drives staleness reporting.
  void RecordDataChanges(uint64_t num_changes);

  /// \brief Fraction of changed edges since ANALYZE: changes / |E|.
  /// An engine would re-ANALYZE past a threshold (e.g. 0.1).
  double Staleness() const;

  /// \brief True when staleness exceeds `threshold`.
  bool NeedsRefresh(double threshold = 0.1) const {
    return Staleness() > threshold;
  }

  /// \brief The ANALYZE-time selectivities.
  const SelectivityMap& selectivities() const { return *selectivities_; }

  size_t k() const { return selectivities_->space().k(); }

  /// \brief Persists every serializable estimator to `<dir>/<name>.stats`
  /// in `format`, each through an atomic temp+fsync+rename write
  /// (util/safe_io.h): a crash or failure mid-save leaves every previously
  /// existing entry byte-identical. Non-serializable entries
  /// (ideal/random/sum-L2) are skipped and reported in `skipped`.
  Status SaveAll(const std::string& dir,
                 std::vector<std::string>* skipped = nullptr,
                 CatalogFormat format = CatalogFormat::kText) const;

  /// \brief Restores persisted estimators from `<dir>/*.stats` (either
  /// format, sniffed) with graceful degradation: a corrupt or unreadable
  /// entry is quarantined into `report->failures` (path, section, error)
  /// and the remaining entries still load and serve. Entries register
  /// under their file stem, replacing same-named estimators. Returns
  /// non-OK only when the directory itself is unreadable — per-entry
  /// corruption is a report, not an abort.
  Status LoadAll(const std::string& dir,
                 CatalogLoadReport* report = nullptr);

 private:
  StatisticsCatalog(const Graph* graph,
                    std::unique_ptr<SelectivityMap> selectivities);

  const Graph* graph_;
  std::unique_ptr<SelectivityMap> selectivities_;
  std::map<std::string, std::unique_ptr<PathHistogram>> estimators_;
  uint64_t analyzed_edges_ = 0;
  uint64_t data_changes_ = 0;
};

}  // namespace pathest

#endif  // PATHEST_CORE_CATALOG_H_
