// pathest: the ordered frequency distribution — the histogram's domain data.
//
// Given exact selectivities f over L_k and an ordering O, the distribution is
// the sequence D[i] = f(O.Unrank(i)) for i in [0, |L_k|). Histograms are
// built over D; everything the paper's Figure 1 plots is one of these.

#ifndef PATHEST_CORE_DISTRIBUTION_H_
#define PATHEST_CORE_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "ordering/ordering.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief Materializes D[i] = f(O.Unrank(i)) over the ordering's full domain.
///
/// The selectivity map must cover the ordering's space (same label count and
/// k >= the ordering's k).
Result<std::vector<uint64_t>> BuildDistribution(
    const SelectivityMap& selectivities, const Ordering& ordering);

/// \brief Summary statistics of a distribution (diagnostics / reports).
struct DistributionProfile {
  uint64_t n = 0;
  uint64_t total = 0;
  uint64_t max_value = 0;
  uint64_t num_zero = 0;
  double mean = 0.0;
  double variance = 0.0;
  /// Sum over adjacent positions of |D[i+1] - D[i]|; lower total variation
  /// means better clustering of similar frequencies (the goal of domain
  /// reordering).
  double total_variation = 0.0;
};

/// \brief Computes the profile in one pass.
DistributionProfile ProfileDistribution(const std::vector<uint64_t>& dist);

}  // namespace pathest

#endif  // PATHEST_CORE_DISTRIBUTION_H_
