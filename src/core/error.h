// pathest: estimation error metrics (paper Formula 6 and aggregates).

#ifndef PATHEST_CORE_ERROR_H_
#define PATHEST_CORE_ERROR_H_

#include <cstdint>
#include <vector>

namespace pathest {

/// \brief The paper's err(ℓ) metric (Formula 6):
///   0 when e == f, otherwise (e - f) / max(e, f), in (-1, 1).
/// Sign encodes over- (positive) vs under-estimation.
double SignedErrorRate(double estimate, double truth);

/// \brief |err(ℓ)| — the quantity averaged in the paper's Figure 2.
double AbsoluteErrorRate(double estimate, double truth);

/// \brief Q-error: max(e, f) / min(e, f), with the usual epsilon-free
/// convention q = max(e, f) when the smaller side is zero and 1 when both
/// are. Provided for cross-literature comparison; not used by the paper.
double QError(double estimate, double truth);

/// \brief Aggregate statistics over a set of per-query absolute error rates.
struct ErrorSummary {
  uint64_t num_queries = 0;
  double mean_abs_error = 0.0;
  double median_abs_error = 0.0;
  double p90_abs_error = 0.0;
  double max_abs_error = 0.0;
  /// Fraction of queries with exactly zero error.
  double exact_fraction = 0.0;
};

/// \brief Summarizes a vector of absolute error rates (values in [0, 1]).
ErrorSummary SummarizeErrors(std::vector<double> abs_errors);

}  // namespace pathest

#endif  // PATHEST_CORE_ERROR_H_
