// pathest: query workload generation for accuracy and timing experiments.
//
// The paper's accuracy study queries every path in L_k (point queries over
// the whole domain); the timing study replays a workload repeatedly. Extra
// generators (sampled, nonzero-only, length-stratified) support ablations.

#ifndef PATHEST_CORE_WORKLOAD_H_
#define PATHEST_CORE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "path/label_path.h"
#include "path/path_space.h"
#include "path/selectivity.h"

namespace pathest {

/// \brief Every path in L_k, canonical order (the paper's accuracy query
/// set).
std::vector<LabelPath> AllPathsWorkload(const PathSpace& space);

/// \brief `count` paths drawn uniformly (with replacement) from L_k.
std::vector<LabelPath> SampledWorkload(const PathSpace& space, size_t count,
                                       uint64_t seed);

/// \brief All paths with non-zero exact selectivity — queries that a real
/// query log would actually contain.
std::vector<LabelPath> NonEmptyWorkload(const SelectivityMap& selectivities);

/// \brief All paths of exactly `length` labels.
std::vector<LabelPath> FixedLengthWorkload(const PathSpace& space,
                                           size_t length);

}  // namespace pathest

#endif  // PATHEST_CORE_WORKLOAD_H_
