#include "core/path_histogram.h"

#include "core/distribution.h"

namespace pathest {

Result<PathHistogram> PathHistogram::Build(const SelectivityMap& selectivities,
                                           OrderingPtr ordering,
                                           HistogramType histogram_type,
                                           size_t num_buckets) {
  if (ordering == nullptr) {
    return Status::InvalidArgument("null ordering");
  }
  auto dist = BuildDistribution(selectivities, *ordering);
  if (!dist.ok()) return dist.status();
  auto histogram = BuildHistogram(histogram_type, *dist, num_buckets);
  if (!histogram.ok()) return histogram.status();
  return PathHistogram(std::move(ordering), std::move(*histogram),
                       histogram_type);
}

Result<PathHistogram> PathHistogram::FromParts(OrderingPtr ordering,
                                               Histogram histogram,
                                               HistogramType histogram_type) {
  if (ordering == nullptr) return Status::InvalidArgument("null ordering");
  if (histogram.domain_size() != ordering->size()) {
    return Status::InvalidArgument(
        "histogram domain size " + std::to_string(histogram.domain_size()) +
        " does not match ordering domain " + std::to_string(ordering->size()));
  }
  return PathHistogram(std::move(ordering), std::move(histogram),
                       histogram_type);
}

double PathHistogram::Estimate(const LabelPath& path) const {
  return histogram_.Estimate(ordering_->Rank(path));
}

std::string PathHistogram::Describe() const {
  return ordering_->name() + "/" + HistogramTypeName(histogram_type_) + "(" +
         std::to_string(histogram_.num_buckets()) + ")";
}

}  // namespace pathest
