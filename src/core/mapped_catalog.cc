#include "core/mapped_catalog.h"

#include <utility>

#include "core/serialize_internal.h"
#include "histogram/flat_histogram.h"
#include "ordering/factory.h"
#include "ordering/ranking.h"
#include "ordering/sum_based.h"
#include "path/path_space.h"
#include "util/combinatorics.h"

namespace pathest {

namespace {

// The serializable sum-family names and the ranking rule each one encodes
// (SumBasedOrdering canonicalizes "sum-card" to "sum-based" before any
// catalog is written, so only these two appear on disk).
bool SumRankingRuleForName(const std::string& name, RankingRule* rule) {
  if (name == "sum-based") {
    *rule = RankingRule::kCardinality;
    return true;
  }
  if (name == "sum-alph") {
    *rule = RankingRule::kAlphabetical;
    return true;
  }
  return false;
}

}  // namespace

Result<std::shared_ptr<const MappedCatalogEntry>> MappedCatalogEntry::Open(
    const std::string& path, CatalogVerify verify) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();

  // Construct in place behind the shared_ptr: the estimator's pointers and
  // spans reference members of THIS allocation, so nothing may move after
  // they are wired up.
  std::shared_ptr<MappedCatalogEntry> entry(new MappedCatalogEntry());
  entry->file_ = std::move(*file);

  auto parsed = internal::ParseCatalogV2(entry->file_.view(), verify);
  if (!parsed.ok()) return parsed.status();
  internal::CatalogV2View& view = *parsed;

  entry->ordering_name_ = std::move(view.ordering_name);
  entry->histogram_type_ = view.histogram_type;
  entry->labels_ = std::move(view.labels);
  entry->cards_ = std::move(view.cards);

  // ParseCatalogV2 validated the (|L|, k, domain) triple overflow-safely,
  // so the checked PathSpace arithmetic below cannot abort.
  RankingRule rule;
  if (SumRankingRuleForName(entry->ordering_name_, &rule)) {
    PathSpace space(entry->labels_.size(), view.k);
    LabelRanking ranking =
        LabelRanking::Make(rule, entry->labels_, entry->cards_);
    CompositionTable comps = CompositionTable::Borrowed(
        entry->labels_.size(), view.k, view.comp_counts, view.comp_prefix);
    SumStage3View index;
    index.scheme = view.sum_scheme;
    index.key_bits = view.sum_key_bits;
    index.cell_starts = view.cell_starts;
    index.keys = view.keys;
    index.offsets = view.offsets;
    index.nops = view.nops;
    entry->ordering_ = std::make_unique<SumBasedOrdering>(
        space, std::move(ranking), std::move(comps), index);
  } else {
    // Non-sum orderings are closed-form: nothing bulk to borrow, and the
    // stats factory rebuild costs microseconds.
    auto ordering = MakeOrderingFromStats(entry->ordering_name_,
                                          entry->labels_, entry->cards_,
                                          view.k);
    if (!ordering.ok()) return ordering.status();
    entry->ordering_ = std::move(*ordering);
  }

  FlatHistogram::Rows rows;
  rows.domain_size = view.domain_size;
  rows.begin = view.begin;
  rows.mean = view.mean;
  rows.prefix_sum = view.prefix;
  rows.eytz_begin = view.eytz_begin;
  rows.eytz_rank = view.eytz_rank;
  entry->estimator_.emplace(*entry->ordering_,
                            FlatHistogram::FromBorrowedRows(rows));

  // Owned-heap accounting: parsed metadata plus the ordering's small owned
  // tables (ranking bijections, factorials, cell directory). The bulk rows
  // are all spans into the mapping and deliberately absent here.
  size_t resident = sizeof(MappedCatalogEntry);
  for (size_t i = 0; i < entry->labels_.size(); ++i) {
    resident += entry->labels_.names()[i].size();
  }
  resident += entry->cards_.size() * sizeof(uint64_t);
  resident += entry->labels_.size() * (sizeof(uint32_t) + sizeof(LabelId));
  resident += static_cast<size_t>(view.k) * 2 * sizeof(uint64_t);
  resident += entry->estimator_->ResidentBytes();
  entry->resident_bytes_ = resident;

  // Estimates probe the rows in index order, not file order.
  entry->file_.Advise(MappedFile::Advice::kRandom);
  return std::shared_ptr<const MappedCatalogEntry>(std::move(entry));
}

}  // namespace pathest
