// pathest: Gray-code ordering — an additional ordering strategy in the
// paper's framework (an instance of the "expand the framework with
// additional ordering strategies" direction of Section 5).
//
// Within each length block, rank-digit strings are enumerated in base-|L|
// REFLECTED GRAY order: consecutive domain positions differ in exactly one
// position by exactly one rank step. If label rank correlates with
// cardinality (card ranking), this smooths the distribution — neighboring
// paths differ by a single small rank change, so their frequencies tend to
// be close, which is precisely what bucket variance wants. It keeps the
// O(k) closed-form (un)ranking of the numerical ordering.

#ifndef PATHEST_ORDERING_GRAY_H_
#define PATHEST_ORDERING_GRAY_H_

#include <string>

#include "ordering/ordering.h"
#include "ordering/ranking.h"

namespace pathest {

/// \brief Length-major, reflected-Gray-within-length ordering
/// ("gray-alph" / "gray-card").
class GrayOrdering : public Ordering {
 public:
  GrayOrdering(PathSpace space, LabelRanking ranking);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }

  const LabelRanking& ranking() const { return ranking_; }

 private:
  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_GRAY_H_
