// pathest: Gray-code ordering — an additional ordering strategy in the
// paper's framework (an instance of the "expand the framework with
// additional ordering strategies" direction of Section 5).
//
// Within each length block, rank-digit strings are enumerated in base-|L|
// REFLECTED GRAY order: consecutive domain positions differ in exactly one
// position by exactly one rank step. If label rank correlates with
// cardinality (card ranking), this smooths the distribution — neighboring
// paths differ by a single small rank change, so their frequencies tend to
// be close, which is precisely what bucket variance wants. It keeps the
// O(k) closed-form (un)ranking of the numerical ordering.

#ifndef PATHEST_ORDERING_GRAY_H_
#define PATHEST_ORDERING_GRAY_H_

#include <string>

#include "ordering/ordering.h"
#include "ordering/ranking.h"

namespace pathest {

/// \brief Length-major, reflected-Gray-within-length ordering
/// ("gray-alph" / "gray-card").
class GrayOrdering : public Ordering {
 public:
  GrayOrdering(PathSpace space, LabelRanking ranking);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }
  OrderingKind kind() const override { return OrderingKind::kGray; }

  /// \brief Non-virtual Rank body for the estimator's type-tagged dispatch
  /// (reflected Gray decode, O(k), allocation-free).
  uint64_t RankFast(const LabelPath& path) const {
    PATHEST_CHECK(space_.Contains(path), "path outside space");
    const size_t len = path.length();
    const uint64_t base = space_.num_labels();
    // Reflected Gray decode, most significant digit first: digit ds selects
    // the block; odd blocks traverse their sub-block in reverse.
    uint64_t pow = 1;
    for (size_t i = 1; i < len; ++i) pow *= base;
    uint64_t radix = 0;
    bool reflected = false;
    for (size_t i = 0; i < len; ++i) {
      uint64_t digit = ranking_.RankOf(path.label(i)) - 1;
      // Position of this digit within the current (possibly reflected) block.
      uint64_t pos = reflected ? base - 1 - digit : digit;
      radix += pos * pow;
      // The sub-block of digit d is reversed in the original enumeration iff
      // d is odd; the visited orientation XORs that with the parent's.
      if (digit % 2 == 1) reflected = !reflected;
      pow /= base;
    }
    return space_.LengthOffset(len) + radix;
  }

  const LabelRanking& ranking() const { return ranking_; }

 private:
  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_GRAY_H_
