#include "ordering/random_order.h"

#include <numeric>

#include "util/random.h"
#include "util/status.h"

namespace pathest {

RandomOrdering::RandomOrdering(PathSpace space, uint64_t seed)
    : space_(space), name_("random") {
  canonical_of_index_.resize(space_.size());
  std::iota(canonical_of_index_.begin(), canonical_of_index_.end(), 0);
  Rng rng(seed);
  // Fisher-Yates with the library RNG for cross-platform determinism.
  for (uint64_t i = canonical_of_index_.size(); i > 1; --i) {
    std::swap(canonical_of_index_[i - 1],
              canonical_of_index_[rng.NextBounded(i)]);
  }
  index_of_canonical_.resize(space_.size());
  for (uint64_t i = 0; i < canonical_of_index_.size(); ++i) {
    index_of_canonical_[canonical_of_index_[i]] = i;
  }
}

uint64_t RandomOrdering::Rank(const LabelPath& path) const {
  return index_of_canonical_[space_.CanonicalIndex(path)];
}

LabelPath RandomOrdering::Unrank(uint64_t index) const {
  PATHEST_CHECK(index < canonical_of_index_.size(), "index out of range");
  return space_.CanonicalPath(canonical_of_index_[index]);
}

}  // namespace pathest
