#include "ordering/lexicographic.h"

#include "util/combinatorics.h"
#include "util/status.h"

namespace pathest {

LexicographicOrdering::LexicographicOrdering(PathSpace space,
                                             LabelRanking ranking)
    : space_(space), ranking_(std::move(ranking)) {
  PATHEST_CHECK(space_.num_labels() == ranking_.size(),
                "ranking size mismatch with path space");
  name_ = std::string("lex-") + RankingRuleName(ranking_.rule());
  // T(k) = 1; T(d) = 1 + |L| * T(d+1).
  subtree_.assign(space_.k() + 2, 0);
  subtree_[space_.k()] = 1;
  for (size_t d = space_.k(); d-- > 1;) {
    subtree_[d] =
        CheckedAdd(1, CheckedMul(space_.num_labels(), subtree_[d + 1]));
  }
}

uint64_t LexicographicOrdering::Rank(const LabelPath& path) const {
  return RankFast(path);
}

LabelPath LexicographicOrdering::Unrank(uint64_t index) const {
  PATHEST_CHECK(index < space_.size(), "index out of range");
  LabelPath path;
  uint64_t remaining = index;
  for (size_t depth = 1; depth <= space_.k(); ++depth) {
    uint64_t digit = remaining / subtree_[depth];
    path.PushBack(ranking_.LabelAt(static_cast<uint32_t>(digit) + 1));
    remaining -= digit * subtree_[depth];
    if (remaining == 0) break;  // this node is the path itself
    --remaining;                // skip the node, descend into its children
  }
  return path;
}

}  // namespace pathest
