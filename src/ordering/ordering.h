// pathest: the Ordering interface — a bijection between L_k and
// [0, |L_k|) (paper Sections 2-3).
//
// An ordering method combines a ranking rule over base labels with an
// ordering rule over rank sequences. Concrete orderings:
//   numerical (ordering/numerical.h), lexicographical
//   (ordering/lexicographic.h), sum-based (ordering/sum_based.h),
//   ideal (ordering/ideal.h), and the L2 composite prototype
//   (ordering/composite.h). Use ordering/factory.h to construct by name.
//
// Query-time fast path — the scratch contract:
//
// Rank() is the per-query latency cost a serving estimator pays (the paper's
// Table 4). The scratch overload Rank(path, RankScratch&) is the fast path:
// after scratch.Reserve(space().num_labels()) has run once, a call performs
// ZERO heap allocations and returns a result bit-identical to Rank(path).
// The scratch is caller-owned so it can be reused across millions of queries
// (one per thread — a RankScratch must not be shared concurrently; the
// Ordering itself is immutable after construction and safe to share across
// any number of reader threads). The base-class default simply forwards to
// the plain Rank(), which is already allocation-free for every ordering
// except the legacy sum-based path; SumBasedOrdering overrides it with the
// counts-based Algorithm-1 core. core/estimator.h adds a type-tagged
// dispatch over kind() on top, so the closed-form orderings (numerical /
// lexicographic / gray) are also called without a virtual hop.

#ifndef PATHEST_ORDERING_ORDERING_H_
#define PATHEST_ORDERING_ORDERING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "path/label_path.h"
#include "path/path_space.h"

namespace pathest {

/// \brief Concrete ordering family, used by the serving estimator to
/// dispatch Rank without a virtual call (core/estimator.h). kGeneric covers
/// the explicit-permutation baselines (ideal / random / composite), which
/// stay on the virtual path.
enum class OrderingKind {
  kNumerical,
  kLexicographic,
  kGray,
  kSumBased,
  kGeneric,
};

/// \brief Caller-owned reusable buffers for the allocation-free Rank fast
/// path.
///
/// Reserve(num_labels) sizes the buffers once; afterwards every
/// Rank(path, scratch) call on an ordering over a label set of that size (or
/// smaller) is heap-allocation-free. `counts` is keyed by base-label rank in
/// [1, num_labels] and is kept ALL-ZERO between calls — every fast-path user
/// restores the zeros it wrote before returning, so Reserve never has to
/// re-clear.
struct RankScratch {
  /// Rank-multiset counts, indexed by base-label rank (1-based).
  std::vector<uint32_t> counts;
  /// Per-position base-label ranks of the query path.
  uint32_t ranks[kMaxPathLength];
  /// The sorted rank multiset (combination) of the query path.
  uint32_t combo[kMaxPathLength];

  /// \brief Ensures capacity for a label set of `num_labels`. Idempotent;
  /// only grows (and thus allocates) when the current capacity is smaller.
  void Reserve(size_t num_labels) {
    if (counts.size() < num_labels + 1) counts.assign(num_labels + 1, 0u);
  }
};

/// \brief Bijection between label paths and histogram-domain indexes.
///
/// Implementations must satisfy, for every path p in the space and every
/// index i in [0, size()):
///   Unrank(Rank(p)) == p  and  Rank(Unrank(i)) == i.
class Ordering {
 public:
  virtual ~Ordering() = default;

  /// \brief Human-readable method name, e.g. "num-card" or "sum-based".
  virtual const std::string& name() const = 0;

  /// \brief index(ℓ): the domain position of `path`. Path must lie in
  /// space().
  virtual uint64_t Rank(const LabelPath& path) const = 0;

  /// \brief Fast-path Rank on caller-owned scratch (see the scratch contract
  /// in the file header): bit-identical to Rank(path), and allocation-free
  /// once `scratch` has been Reserve()d for this ordering's label set.
  virtual uint64_t Rank(const LabelPath& path, RankScratch& scratch) const {
    (void)scratch;
    return Rank(path);
  }

  /// \brief The path at domain position `index` (< size()).
  virtual LabelPath Unrank(uint64_t index) const = 0;

  /// \brief The underlying path space L_k.
  virtual const PathSpace& space() const = 0;

  /// \brief Family tag for devirtualized dispatch (core/estimator.h).
  virtual OrderingKind kind() const { return OrderingKind::kGeneric; }

  /// \brief Domain size |L_k|.
  uint64_t size() const { return space().size(); }
};

using OrderingPtr = std::unique_ptr<Ordering>;

}  // namespace pathest

#endif  // PATHEST_ORDERING_ORDERING_H_
