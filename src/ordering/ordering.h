// pathest: the Ordering interface — a bijection between L_k and
// [0, |L_k|) (paper Sections 2-3).
//
// An ordering method combines a ranking rule over base labels with an
// ordering rule over rank sequences. Concrete orderings:
//   numerical (ordering/numerical.h), lexicographical
//   (ordering/lexicographic.h), sum-based (ordering/sum_based.h),
//   ideal (ordering/ideal.h), and the L2 composite prototype
//   (ordering/composite.h). Use ordering/factory.h to construct by name.

#ifndef PATHEST_ORDERING_ORDERING_H_
#define PATHEST_ORDERING_ORDERING_H_

#include <cstdint>
#include <memory>
#include <string>

#include "path/label_path.h"
#include "path/path_space.h"

namespace pathest {

/// \brief Bijection between label paths and histogram-domain indexes.
///
/// Implementations must satisfy, for every path p in the space and every
/// index i in [0, size()):
///   Unrank(Rank(p)) == p  and  Rank(Unrank(i)) == i.
class Ordering {
 public:
  virtual ~Ordering() = default;

  /// \brief Human-readable method name, e.g. "num-card" or "sum-based".
  virtual const std::string& name() const = 0;

  /// \brief index(ℓ): the domain position of `path`. Path must lie in
  /// space().
  virtual uint64_t Rank(const LabelPath& path) const = 0;

  /// \brief The path at domain position `index` (< size()).
  virtual LabelPath Unrank(uint64_t index) const = 0;

  /// \brief The underlying path space L_k.
  virtual const PathSpace& space() const = 0;

  /// \brief Domain size |L_k|.
  uint64_t size() const { return space().size(); }
};

using OrderingPtr = std::unique_ptr<Ordering>;

}  // namespace pathest

#endif  // PATHEST_ORDERING_ORDERING_H_
