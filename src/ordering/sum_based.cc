#include "ordering/sum_based.h"

#include <algorithm>
#include <array>
#include <tuple>
#include <utility>

#include "util/status.h"

namespace pathest {

namespace {

// Magic-reciprocal division by the remaining permutation length. The
// hardware 64-bit divide these cores would otherwise issue per position is
// the single largest cost of a sum-based query; with the divisor n in
// [2, kMaxPathLength] and every dividend bounded by 16! * 16 < 2^49, the
// multiply-high by ceil(2^64 / n) is exact (error term < x / 2^64 << the
// 1/n quantum), so this is floor division, just without the divider unit.
constexpr auto kDivMagic = [] {
  std::array<uint64_t, kMaxPathLength + 1> magic{};
  for (size_t n = 2; n <= kMaxPathLength; ++n) magic[n] = ~0ULL / n + 1;
  return magic;
}();

inline uint64_t DivSmall(uint64_t x, size_t n) {
  if (n == 1) return x;
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(x) * kDivMagic[n]) >> 64);
}

// Multiplicities of `combination` into `counts`, returning the number of
// distinct permutations W = m! / prod c_w! of the whole multiset.
inline uint64_t FillCountsAndNop(const uint32_t* combination, size_t m,
                                 uint32_t* counts, const FactorialCache& fact) {
  uint64_t denom = 1;
  for (size_t i = 0; i < m; ++i) {
    ++counts[combination[i]];
    denom *= counts[combination[i]];  // running product builds prod c_w!
  }
  return fact.Fact(m) / denom;
}

}  // namespace

void UnrankPermutationCounts(uint64_t index, size_t m,
                             const uint32_t* combination, uint32_t* counts,
                             const FactorialCache& fact, uint32_t* out) {
  PATHEST_CHECK(m <= kMaxPathLength, "combination longer than kMaxPathLength");
  // Invariant: w = number of distinct permutations of the REMAINING
  // multiset. Those starting with value v number w * c_v / n_rem (an exact
  // integer), which is also the next w when v is chosen — so the whole
  // unranking needs no denominator bookkeeping at all.
  uint64_t w = FillCountsAndNop(combination, m, counts, fact);
  for (size_t pos = 0; pos < m; ++pos) {
    const size_t n_rem = m - pos;
    bool placed = false;
    for (size_t j = 0; j < m; ++j) {
      if (j > 0 && combination[j] == combination[j - 1]) continue;  // dup run
      const uint32_t v = combination[j];
      if (counts[v] == 0) continue;  // exhausted by earlier positions
      const uint64_t block = DivSmall(w * counts[v], n_rem);
      if (index >= block) {
        index -= block;
        continue;
      }
      out[pos] = v;
      w = block;
      --counts[v];
      placed = true;
      break;
    }
    PATHEST_CHECK(placed, "permutation index out of range");
  }
  // Each of the m insertions above was matched by exactly one decrement, so
  // `counts` is all-zero again (the RankScratch invariant).
}

uint64_t RankPermutationCounts(const uint32_t* permutation, size_t m,
                               const uint32_t* combination, uint32_t* counts,
                               const FactorialCache& fact) {
  PATHEST_CHECK(m <= kMaxPathLength, "combination longer than kMaxPathLength");
  uint64_t w = FillCountsAndNop(combination, m, counts, fact);
  uint64_t rank = 0;
  for (size_t pos = 0; pos < m; ++pos) {
    const uint32_t head = permutation[pos];
    const size_t n_rem = m - pos;
    // All permutations starting with a smaller distinct value come first.
    // Each such block is w * c_v / n_rem; since every block is an exact
    // integer, the SUM telescopes to w * (sum of smaller counts) / n_rem —
    // one multiply and one small division for the whole position.
    uint64_t below = 0;
    for (size_t j = 0; j < m && combination[j] < head; ++j) {
      if (j > 0 && combination[j] == combination[j - 1]) continue;
      below += counts[combination[j]];
    }
    rank += DivSmall(w * below, n_rem);
    PATHEST_CHECK(counts[head] > 0,
                  "permutation is not a permutation of the combination");
    w = DivSmall(w * counts[head], n_rem);
    --counts[head];
  }
  return rank;
}

std::vector<uint32_t> UnrankPermutationOfCombination(
    uint64_t index, const std::vector<uint32_t>& combination) {
  PATHEST_CHECK(!combination.empty(), "empty combination");
  PATHEST_CHECK(std::is_sorted(combination.begin(), combination.end()),
                "combination must be sorted ascending");
  PATHEST_CHECK(index < MultisetPermutationCount(combination),
                "permutation index out of range");
  const FactorialCache fact(combination.size());
  std::vector<uint32_t> counts(combination.back() + 1, 0);
  std::vector<uint32_t> out(combination.size());
  UnrankPermutationCounts(index, combination.size(), combination.data(),
                          counts.data(), fact, out.data());
  return out;
}

uint64_t RankPermutationInCombination(const std::vector<uint32_t>& permutation,
                                      std::vector<uint32_t> combination) {
  PATHEST_CHECK(permutation.size() == combination.size(),
                "permutation/combination size mismatch");
  if (permutation.empty()) return 0;
  const FactorialCache fact(combination.size());
  const uint32_t max_value =
      std::max(*std::max_element(permutation.begin(), permutation.end()),
               combination.back());
  std::vector<uint32_t> counts(max_value + 1, 0);
  return RankPermutationCounts(permutation.data(), permutation.size(),
                               combination.data(), counts.data(), fact);
}

void ChooseSumKeyScheme(uint64_t num_labels, uint64_t k,
                        SumKeyScheme* scheme, uint32_t* key_bits) {
  // Prefer the order-free counts encoding (no sort on the query path),
  // fall back to the sorted pack, else no index.
  uint32_t count_bits = 1;  // bits to hold multiplicities in [0, k]
  while ((1ULL << count_bits) <= k) ++count_bits;
  uint32_t value_bits = 1;  // bits to hold ranks in [1, |L|]
  while ((1ULL << value_bits) <= num_labels) ++value_bits;
  if (count_bits * num_labels <= 64) {
    *scheme = SumKeyScheme::kCounts;
    *key_bits = count_bits;
  } else if (value_bits * k <= 64) {
    *scheme = SumKeyScheme::kSorted;
    *key_bits = value_bits;
  } else {
    *scheme = SumKeyScheme::kNone;
    *key_bits = 0;
  }
}

uint64_t SumStage3CellCount(uint64_t num_labels, uint64_t k) {
  uint64_t cells = 0;
  for (uint64_t m = 1; m <= k; ++m) cells += m * num_labels - m + 1;
  return cells;
}

SumStage3Index BuildSumStage3Index(uint64_t num_labels, uint64_t k) {
  SumStage3Index index;
  ChooseSumKeyScheme(num_labels, k, &index.scheme, &index.key_bits);
  if (index.scheme == SumKeyScheme::kNone) return index;

  index.cell_starts.reserve(SumStage3CellCount(num_labels, k) + 1);
  index.cell_starts.push_back(0);
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> entries;
  for (uint64_t m = 1; m <= k; ++m) {
    for (uint64_t sr = m; sr <= m * num_labels; ++sr) {
      entries.clear();
      uint64_t offset = 0;
      for (const Partition& p : EnumeratePartitions(sr, m, num_labels)) {
        const uint64_t nop = MultisetPermutationCount(p);
        entries.push_back({SumEncodeKey(index.scheme, index.key_bits,
                                        p.data(), m),
                           offset, nop});
        offset += nop;
      }
      std::sort(entries.begin(), entries.end());
      for (const auto& [key, block_offset, nop] : entries) {
        index.keys.push_back(key);
        index.offsets.push_back(block_offset);
        index.nops.push_back(nop);
      }
      index.cell_starts.push_back(index.keys.size());
    }
  }
  return index;
}

void SumBasedOrdering::InitIndexViews(const SumStage3View& view) {
  key_scheme_ = view.scheme;
  key_bits_ = view.key_bits;
  cell_starts_ = view.cell_starts;
  keys_ = view.keys;
  offsets_ = view.offsets;
  nops_ = view.nops;
  cell_base_.resize(space_.k());
  uint64_t base = 0;
  for (uint64_t m = 1; m <= space_.k(); ++m) {
    cell_base_[m - 1] = base;
    base += m * space_.num_labels() - m + 1;
  }
  if (key_scheme_ != SumKeyScheme::kNone) {
    PATHEST_CHECK(cell_starts_.size() == base + 1,
                  "stage-three cell directory shape mismatch");
    PATHEST_CHECK(keys_.size() == cell_starts_.back() &&
                      offsets_.size() == keys_.size() &&
                      nops_.size() == keys_.size(),
                  "stage-three block array shape mismatch");
  }
}

SumBasedOrdering::SumBasedOrdering(PathSpace space, LabelRanking ranking)
    : space_(space),
      ranking_(std::move(ranking)),
      comps_(space.num_labels(), space.k()),
      fact_(space.k()) {
  PATHEST_CHECK(space_.num_labels() == ranking_.size(),
                "ranking size mismatch with path space");
  // The paper's "sum-based" method is sum ordering + cardinality ranking;
  // keep the short name for that standard combination.
  name_ = ranking_.rule() == RankingRule::kCardinality
              ? "sum-based"
              : std::string("sum-") + RankingRuleName(ranking_.rule());

  owned_index_ = BuildSumStage3Index(space_.num_labels(), space_.k());
  InitIndexViews(SumStage3View{owned_index_.scheme, owned_index_.key_bits,
                               owned_index_.cell_starts, owned_index_.keys,
                               owned_index_.offsets, owned_index_.nops});
}

SumBasedOrdering::SumBasedOrdering(PathSpace space, LabelRanking ranking,
                                   CompositionTable comps,
                                   const SumStage3View& index)
    : space_(space),
      ranking_(std::move(ranking)),
      comps_(std::move(comps)),
      fact_(space.k()) {
  PATHEST_CHECK(space_.num_labels() == ranking_.size(),
                "ranking size mismatch with path space");
  PATHEST_CHECK(comps_.num_labels() == space_.num_labels() &&
                    comps_.max_len() == space_.k(),
                "composition table shape mismatch with path space");
  SumKeyScheme expected_scheme;
  uint32_t expected_bits;
  ChooseSumKeyScheme(space_.num_labels(), space_.k(), &expected_scheme,
                     &expected_bits);
  PATHEST_CHECK(index.scheme == expected_scheme &&
                    index.key_bits == expected_bits,
                "stage-three key scheme mismatch for this space");
  name_ = ranking_.rule() == RankingRule::kCardinality
              ? "sum-based"
              : std::string("sum-") + RankingRuleName(ranking_.rule());
  InitIndexViews(index);
}

void SumBasedOrdering::EnsureBlocks() const {
  std::call_once(blocks_once_, [this] {
    const uint64_t num_labels = space_.num_labels();
    blocks_.resize(space_.k());
    for (size_t m = 1; m <= space_.k(); ++m) {
      auto& row = blocks_[m - 1];
      row.resize(m * num_labels - m + 1);
      for (uint64_t sr = m; sr <= m * num_labels; ++sr) {
        auto& blocks = row[sr - m];
        uint64_t offset = 0;
        for (Partition& p : EnumeratePartitions(sr, m, num_labels)) {
          uint64_t nop = MultisetPermutationCount(p);
          blocks.push_back(ComboBlock{std::move(p), nop, offset});
          offset += nop;
        }
      }
    }
  });
}

const std::vector<SumBasedOrdering::ComboBlock>& SumBasedOrdering::BlocksFor(
    size_t m, uint64_t sr) const {
  PATHEST_CHECK(m >= 1 && m <= space_.k(), "length out of range");
  PATHEST_CHECK(sr >= m && sr <= m * space_.num_labels(),
                "summed rank out of range");
  EnsureBlocks();
  return blocks_[m - 1][sr - m];
}

uint64_t SumBasedOrdering::StageThreeOffsetByScan(size_t m, uint64_t sr,
                                                  const uint32_t* combo) const {
  for (const ComboBlock& block : BlocksFor(m, sr)) {
    if (block.parts.size() == m &&
        std::equal(block.parts.begin(), block.parts.end(), combo)) {
      return block.offset;
    }
  }
  PATHEST_CHECK(false, "rank multiset missing from stage-three blocks");
  __builtin_unreachable();
}

uint64_t SumBasedOrdering::Rank(const LabelPath& path) const {
  // The LEGACY path: first-principles three-stage enumeration with per-call
  // buffers. Deliberately NOT a wrapper over the scratch fast path — its
  // stage-two linear accumulation and per-value scans derive every offset
  // from CompositionCount/factorial arithmetic directly, so the property
  // tests cross-validate the fast path's precomputed prefix tables against
  // an independent derivation rather than against themselves. This is also
  // the baseline bench_micro_estimation measures the fast path against.
  PATHEST_CHECK(space_.Contains(path), "path outside space");
  const size_t m = path.length();
  const uint32_t num_labels = static_cast<uint32_t>(space_.num_labels());

  uint32_t ranks[kMaxPathLength];
  uint32_t combo[kMaxPathLength];
  uint64_t sr = 0;
  for (size_t i = 0; i < m; ++i) {
    ranks[i] = ranking_.RankOf(path.label(i));
    combo[i] = ranks[i];
    sr += ranks[i];
  }
  // Insertion sort; m <= 16.
  for (size_t i = 1; i < m; ++i) {
    uint32_t v = combo[i];
    size_t j = i;
    while (j > 0 && combo[j - 1] > v) {
      combo[j] = combo[j - 1];
      --j;
    }
    combo[j] = v;
  }

  // Stage 1: all shorter lengths precede.
  uint64_t index = space_.LengthOffset(m);
  // Stage 2: all lower summed ranks precede.
  for (uint64_t s = m; s < sr; ++s) index += comps_.Count(s, m);
  // Stage 3: the block of our rank multiset.
  index += StageThreeOffsetByScan(m, sr, combo);

  // Permutation position within the block (inverse of Algorithm 1), via
  // multiplicity counts: with counts c over remaining values and
  // D = prod c_w!, the number of permutations starting with value v is
  // (n-1)! * c_v / D. The counts buffer is heap-allocated per call (sized
  // by the label set — the fixed 64-entry stack array this used to use was
  // an out-of-bounds write waiting for |L| > 64); the scratch overload
  // exists precisely so serving paths never pay this allocation.
  std::vector<uint32_t> counts(num_labels + 1, 0);
  uint64_t denom = 1;
  for (size_t i = 0; i < m; ++i) {
    ++counts[ranks[i]];
    denom *= counts[ranks[i]];  // running product builds prod c_w!
  }
  for (size_t i = 0; i < m; ++i) {
    const uint32_t head = ranks[i];
    const uint64_t rest_fact = fact_.Fact(m - i - 1);
    for (uint32_t v = 1; v < head && v <= num_labels; ++v) {
      if (counts[v] > 0) {
        index += rest_fact * counts[v] / denom;
      }
    }
    denom /= counts[head];
    --counts[head];
  }
  return index;
}

uint64_t SumBasedOrdering::Rank(const LabelPath& path,
                                RankScratch& scratch) const {
  PATHEST_CHECK(space_.Contains(path), "path outside space");
  const size_t m = path.length();

  uint32_t* ranks = scratch.ranks;
  uint64_t sr = 0;
  for (size_t i = 0; i < m; ++i) {
    ranks[i] = ranking_.RankOf(path.label(i));
    sr += ranks[i];
  }

  // Stage 1: all shorter lengths precede.
  uint64_t index = space_.LengthOffset(m);
  // Stage 2: all lower summed ranks precede — one prefix-table lookup.
  index += comps_.CumulativeBelow(sr, m);

  // Stage 3 key: order-free addition under kCounts; sorted pack (one
  // insertion sort) under kSorted; block scan fallback under kNone.
  uint64_t key = 0;
  if (key_scheme_ == SumKeyScheme::kCounts) {
    key = SumEncodeKey(key_scheme_, static_cast<uint32_t>(key_bits_), ranks,
                       m);
  } else {
    uint32_t* combo = scratch.combo;
    for (size_t i = 0; i < m; ++i) combo[i] = ranks[i];
    // Insertion sort; m <= 16.
    for (size_t i = 1; i < m; ++i) {
      uint32_t v = combo[i];
      size_t j = i;
      while (j > 0 && combo[j - 1] > v) {
        combo[j] = combo[j - 1];
        --j;
      }
      combo[j] = v;
    }
    if (key_scheme_ == SumKeyScheme::kNone) {
      // Generality fallback (combinations too wide for any key): legacy
      // block scan plus the allocation-free counts core.
      scratch.Reserve(space_.num_labels());
      index += StageThreeOffsetByScan(m, sr, combo);
      index +=
          RankPermutationCounts(ranks, m, combo, scratch.counts.data(), fact_);
      return index;
    }
    key = SumEncodeKey(key_scheme_, static_cast<uint32_t>(key_bits_), combo,
                       m);
  }

  // One branchless binary search (first key >= ours) over the cell's packed
  // keys, which also hands us the block's permutation count (w). The cell's
  // blocks live at [cell_starts_[c], cell_starts_[c+1]) in the flat arrays,
  // with c derived from (m, sr) — the same arrays catalog v2 persists.
  const uint64_t cell = cell_base_[m - 1] + (sr - m);
  const uint64_t cell_begin = cell_starts_[cell];
  const uint64_t* keys = keys_.data() + cell_begin;
  size_t len = static_cast<size_t>(cell_starts_[cell + 1] - cell_begin);
  size_t lo = 0;
  while (len > 1) {
    const size_t half = len / 2;
    lo += keys[lo + half - 1] < key ? half : 0;
    len -= half;
  }
  PATHEST_CHECK(keys[lo] == key, "rank multiset missing from stage-three index");
  index += offsets_[cell_begin + lo];

  // Permutation position within the block (inverse of Algorithm 1),
  // branchless: with w the permutation count of the REMAINING multiset,
  // the block of permutations starting below head h is w * below / n_rem
  // and choosing h leaves w * eq / n_rem (both exact integers — see
  // RankPermutationCounts). Since the remaining multiset at position pos is
  // exactly the rank suffix ranks[pos..m), below/eq are plain compare-sums
  // over that suffix. No counts buffer, no data-dependent branches, no
  // divider unit (DivSmall).
  uint64_t w = nops_[cell_begin + lo];
  for (size_t pos = 0; pos < m; ++pos) {
    const uint32_t head = ranks[pos];
    const size_t n_rem = m - pos;
    uint64_t below = 0;
    uint64_t eq = 0;
    for (size_t j = pos; j < m; ++j) {
      below += ranks[j] < head;
      eq += ranks[j] == head;
    }
    index += DivSmall(w * below, n_rem);
    w = DivSmall(w * eq, n_rem);
  }
  return index;
}

LabelPath SumBasedOrdering::Unrank(uint64_t index) const {
  RankScratch scratch;
  return Unrank(index, scratch);
}

LabelPath SumBasedOrdering::Unrank(uint64_t index,
                                   RankScratch& scratch) const {
  PATHEST_CHECK(index < space_.size(), "index out of range");
  scratch.Reserve(space_.num_labels());
  // Stage 1: find the length partition (paper Algorithm 2, lines 5-9).
  for (size_t len = 1; len <= space_.k(); ++len) {
    uint64_t len_count = space_.CountWithLength(len);
    if (index >= len_count) {
      index -= len_count;
      continue;
    }
    // Stage 2: find the summed-rank partition (lines 10-14) — binary search
    // over the composition prefix row instead of the paper's linear scan.
    const uint64_t sum = comps_.SumForOffset(index, len);
    index -= comps_.CumulativeBelow(sum, len);
    // Stage 3: find the combination, then the permutation (lines 15-24).
    for (const ComboBlock& block : BlocksFor(len, sum)) {
      if (index >= block.nop) {
        index -= block.nop;
        continue;
      }
      UnrankPermutationCounts(index, len, block.parts.data(),
                              scratch.counts.data(), fact_, scratch.ranks);
      LabelPath path;
      for (size_t i = 0; i < len; ++i) {
        path.PushBack(ranking_.LabelAt(scratch.ranks[i]));
      }
      return path;
    }
    PATHEST_CHECK(false, "index within sum partition but no combination");
  }
  PATHEST_CHECK(false, "unreachable: index checked against space size");
  __builtin_unreachable();
}

}  // namespace pathest
