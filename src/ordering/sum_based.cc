#include "ordering/sum_based.h"

#include <algorithm>

#include "util/status.h"

namespace pathest {

std::vector<uint32_t> UnrankPermutationOfCombination(
    uint64_t index, const std::vector<uint32_t>& combination) {
  PATHEST_CHECK(!combination.empty(), "empty combination");
  PATHEST_CHECK(std::is_sorted(combination.begin(), combination.end()),
                "combination must be sorted ascending");
  PATHEST_CHECK(index < MultisetPermutationCount(combination),
                "permutation index out of range");
  if (combination.size() == 1) return combination;

  size_t i = 0;
  while (i < combination.size()) {
    // S = combination minus one occurrence of combination[i]; nop(S) is the
    // number of permutations whose first element is combination[i].
    std::vector<uint32_t> rest = combination;
    rest.erase(rest.begin() + static_cast<ptrdiff_t>(i));
    uint64_t block = MultisetPermutationCount(rest);
    if (index >= block) {
      index -= block;
      // Skip all duplicates of this value: they index the same block.
      uint32_t value = combination[i];
      while (i < combination.size() && combination[i] == value) ++i;
      continue;
    }
    std::vector<uint32_t> sub = UnrankPermutationOfCombination(index, rest);
    sub.insert(sub.begin(), combination[i]);
    return sub;
  }
  PATHEST_CHECK(false, "unreachable: index within nop but not unranked");
  __builtin_unreachable();
}

uint64_t RankPermutationInCombination(const std::vector<uint32_t>& permutation,
                                      std::vector<uint32_t> combination) {
  PATHEST_CHECK(permutation.size() == combination.size(),
                "permutation/combination size mismatch");
  uint64_t rank = 0;
  std::vector<uint32_t> remaining = std::move(combination);
  for (uint32_t head : permutation) {
    // All permutations starting with a smaller distinct value come first.
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (i > 0 && remaining[i] == remaining[i - 1]) continue;  // same block
      if (remaining[i] >= head) break;
      std::vector<uint32_t> rest = remaining;
      rest.erase(rest.begin() + static_cast<ptrdiff_t>(i));
      rank += MultisetPermutationCount(rest);
    }
    auto it = std::find(remaining.begin(), remaining.end(), head);
    PATHEST_CHECK(it != remaining.end(),
                  "permutation is not a permutation of the combination");
    remaining.erase(it);
  }
  return rank;
}

SumBasedOrdering::SumBasedOrdering(PathSpace space, LabelRanking ranking)
    : space_(space),
      ranking_(std::move(ranking)),
      comps_(space.num_labels(), space.k()) {
  PATHEST_CHECK(space_.num_labels() == ranking_.size(),
                "ranking size mismatch with path space");
  // The paper's "sum-based" method is sum ordering + cardinality ranking;
  // keep the short name for that standard combination.
  name_ = ranking_.rule() == RankingRule::kCardinality
              ? "sum-based"
              : std::string("sum-") + RankingRuleName(ranking_.rule());

  const uint64_t num_labels = space_.num_labels();
  blocks_.resize(space_.k());
  for (size_t m = 1; m <= space_.k(); ++m) {
    auto& row = blocks_[m - 1];
    row.resize(m * num_labels - m + 1);
    for (uint64_t sr = m; sr <= m * num_labels; ++sr) {
      auto& blocks = row[sr - m];
      uint64_t offset = 0;
      for (Partition& p : EnumeratePartitions(sr, m, num_labels)) {
        uint64_t nop = MultisetPermutationCount(p);
        blocks.push_back(ComboBlock{std::move(p), nop, offset});
        offset += nop;
      }
    }
  }
}

const std::vector<SumBasedOrdering::ComboBlock>& SumBasedOrdering::BlocksFor(
    size_t m, uint64_t sr) const {
  PATHEST_CHECK(m >= 1 && m <= space_.k(), "length out of range");
  PATHEST_CHECK(sr >= m && sr <= m * space_.num_labels(),
                "summed rank out of range");
  return blocks_[m - 1][sr - m];
}

namespace {

constexpr uint64_t kFactorial[17] = {1,
                                     1,
                                     2,
                                     6,
                                     24,
                                     120,
                                     720,
                                     5040,
                                     40320,
                                     362880,
                                     3628800,
                                     39916800,
                                     479001600,
                                     6227020800ULL,
                                     87178291200ULL,
                                     1307674368000ULL,
                                     20922789888000ULL};

}  // namespace

uint64_t SumBasedOrdering::Rank(const LabelPath& path) const {
  PATHEST_CHECK(space_.Contains(path), "path outside space");
  const size_t m = path.length();
  const uint32_t num_labels = static_cast<uint32_t>(space_.num_labels());

  // Allocation-free hot path: this function is the per-query latency cost
  // the paper's Table 4 measures.
  uint32_t ranks[kMaxPathLength];
  uint32_t combo[kMaxPathLength];
  uint64_t sr = 0;
  for (size_t i = 0; i < m; ++i) {
    ranks[i] = ranking_.RankOf(path.label(i));
    combo[i] = ranks[i];
    sr += ranks[i];
  }
  // Insertion sort; m <= 16.
  for (size_t i = 1; i < m; ++i) {
    uint32_t v = combo[i];
    size_t j = i;
    while (j > 0 && combo[j - 1] > v) {
      combo[j] = combo[j - 1];
      --j;
    }
    combo[j] = v;
  }

  // Stage 1: all shorter lengths precede.
  uint64_t index = space_.LengthOffset(m);
  // Stage 2: all lower summed ranks precede.
  for (uint64_t s = m; s < sr; ++s) index += comps_.Count(s, m);
  // Stage 3: the block of our rank multiset.
  for (const ComboBlock& block : BlocksFor(m, sr)) {
    if (block.parts.size() == m &&
        std::equal(block.parts.begin(), block.parts.end(), combo)) {
      index += block.offset;
      break;
    }
  }

  // Permutation position within the block (inverse of Algorithm 1), via
  // multiplicity counts: with counts c over remaining values and
  // D = prod c_w!, the number of permutations starting with value v is
  // (n-1)! * c_v / D.
  uint32_t counts[65] = {0};
  uint64_t denom = 1;
  for (size_t i = 0; i < m; ++i) {
    ++counts[ranks[i]];
    denom *= counts[ranks[i]];  // running product builds prod c_w!
  }
  for (size_t i = 0; i < m; ++i) {
    const uint32_t head = ranks[i];
    const uint64_t rest_fact = kFactorial[m - i - 1];
    for (uint32_t v = 1; v < head && v <= num_labels; ++v) {
      if (counts[v] > 0) {
        index += rest_fact * counts[v] / denom;
      }
    }
    denom /= counts[head];
    --counts[head];
  }
  return index;
}

LabelPath SumBasedOrdering::Unrank(uint64_t index) const {
  PATHEST_CHECK(index < space_.size(), "index out of range");
  const uint64_t num_labels = space_.num_labels();
  // Stage 1: find the length partition (paper Algorithm 2, lines 5-9).
  for (size_t len = 1; len <= space_.k(); ++len) {
    uint64_t len_count = space_.CountWithLength(len);
    if (index >= len_count) {
      index -= len_count;
      continue;
    }
    // Stage 2: find the summed-rank partition (lines 10-14).
    for (uint64_t sum = len; sum <= len * num_labels; ++sum) {
      uint64_t sum_count = comps_.Count(sum, len);
      if (index >= sum_count) {
        index -= sum_count;
        continue;
      }
      // Stage 3: find the combination, then the permutation (lines 15-24).
      for (const ComboBlock& block : BlocksFor(len, sum)) {
        if (index >= block.nop) {
          index -= block.nop;
          continue;
        }
        std::vector<uint32_t> perm =
            UnrankPermutationOfCombination(index, block.parts);
        LabelPath path;
        for (uint32_t rank : perm) path.PushBack(ranking_.LabelAt(rank));
        return path;
      }
      PATHEST_CHECK(false, "index within sum partition but no combination");
    }
    PATHEST_CHECK(false, "index within length partition but no sum");
  }
  PATHEST_CHECK(false, "unreachable: index checked against space size");
  __builtin_unreachable();
}

}  // namespace pathest
