// pathest: random ordering — the adversarial baseline.
//
// A seeded uniform permutation of the domain. No structure survives, so
// bucket variance is maximal for any histogram; the gap between random and
// the structured orderings quantifies how much ordering matters at all
// (the framing question of the paper). Materializes the permutation
// explicitly, so like the ideal ordering it is an experimental baseline, not
// a deployable method.

#ifndef PATHEST_ORDERING_RANDOM_ORDER_H_
#define PATHEST_ORDERING_RANDOM_ORDER_H_

#include <string>
#include <vector>

#include "ordering/ordering.h"

namespace pathest {

/// \brief Seeded random permutation of L_k ("random").
class RandomOrdering : public Ordering {
 public:
  RandomOrdering(PathSpace space, uint64_t seed);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }

 private:
  PathSpace space_;
  std::string name_;
  std::vector<uint64_t> canonical_of_index_;
  std::vector<uint64_t> index_of_canonical_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_RANDOM_ORDER_H_
