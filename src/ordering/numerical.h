// pathest: numerical ordering (paper Section 3.2).
//
// Paths are ordered primarily by length; equal-length paths compare their
// rank sequences pairwise — i.e., a length-m path is read as an m-digit
// number in a base-|L| numeral system.

#ifndef PATHEST_ORDERING_NUMERICAL_H_
#define PATHEST_ORDERING_NUMERICAL_H_

#include <string>

#include "ordering/ordering.h"
#include "ordering/ranking.h"

namespace pathest {

/// \brief Numerical ordering over a path space with a given label ranking
/// ("num-alph" / "num-card").
class NumericalOrdering : public Ordering {
 public:
  NumericalOrdering(PathSpace space, LabelRanking ranking);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }

  const LabelRanking& ranking() const { return ranking_; }

 private:
  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_NUMERICAL_H_
