// pathest: numerical ordering (paper Section 3.2).
//
// Paths are ordered primarily by length; equal-length paths compare their
// rank sequences pairwise — i.e., a length-m path is read as an m-digit
// number in a base-|L| numeral system.

#ifndef PATHEST_ORDERING_NUMERICAL_H_
#define PATHEST_ORDERING_NUMERICAL_H_

#include <string>

#include "ordering/ordering.h"
#include "ordering/ranking.h"

namespace pathest {

/// \brief Numerical ordering over a path space with a given label ranking
/// ("num-alph" / "num-card").
class NumericalOrdering : public Ordering {
 public:
  NumericalOrdering(PathSpace space, LabelRanking ranking);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }
  OrderingKind kind() const override { return OrderingKind::kNumerical; }

  /// \brief Non-virtual Rank body, inlined into the estimator's type-tagged
  /// dispatch (already O(k) and allocation-free; de-virtualizing is the only
  /// fast-path work needed here).
  uint64_t RankFast(const LabelPath& path) const {
    PATHEST_CHECK(space_.Contains(path), "path outside space");
    const size_t len = path.length();
    const uint64_t base = space_.num_labels();
    uint64_t radix = 0;
    for (size_t i = 0; i < len; ++i) {
      radix = radix * base + (ranking_.RankOf(path.label(i)) - 1);
    }
    return space_.LengthOffset(len) + radix;
  }

  const LabelRanking& ranking() const { return ranking_; }

 private:
  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_NUMERICAL_H_
