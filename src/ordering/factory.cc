#include "ordering/factory.h"

#include <memory>

#include "graph/graph_stats.h"
#include "ordering/composite.h"
#include "ordering/gray.h"
#include "ordering/ideal.h"
#include "ordering/lexicographic.h"
#include "ordering/numerical.h"
#include "ordering/random_order.h"
#include "ordering/ranking.h"
#include "ordering/sum_based.h"
#include "path/splitter.h"

namespace pathest {

const std::vector<std::string>& PaperOrderingNames() {
  static const std::vector<std::string> kNames = {
      "num-alph", "num-card", "lex-alph", "lex-card", "sum-based"};
  return kNames;
}

namespace {

std::vector<uint64_t> LabelCardinalities(const Graph& graph) {
  std::vector<uint64_t> f(graph.num_labels());
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    f[l] = graph.LabelCardinality(l);
  }
  return f;
}

}  // namespace

Result<OrderingPtr> MakeOrdering(const std::string& name, const Graph& graph,
                                 size_t k) {
  return MakeOrderingFromStats(name, graph.labels(),
                               LabelCardinalities(graph), k);
}

Result<OrderingPtr> MakeOrderingFromStats(
    const std::string& name, const LabelDictionary& dict,
    const std::vector<uint64_t>& cardinalities, size_t k) {
  if (dict.size() == 0) {
    return Status::InvalidArgument("empty label set");
  }
  if (cardinalities.size() != dict.size()) {
    return Status::InvalidArgument("cardinalities size mismatch");
  }
  if (k < 1 || k > kMaxPathLength) {
    return Status::InvalidArgument("k out of range");
  }
  PathSpace space(dict.size(), k);
  auto ranking = [&](RankingRule rule) {
    return LabelRanking::Make(rule, dict, cardinalities);
  };

  if (name == "num-alph") {
    return OrderingPtr(
        new NumericalOrdering(space, ranking(RankingRule::kAlphabetical)));
  }
  if (name == "num-card") {
    return OrderingPtr(
        new NumericalOrdering(space, ranking(RankingRule::kCardinality)));
  }
  if (name == "lex-alph") {
    return OrderingPtr(
        new LexicographicOrdering(space, ranking(RankingRule::kAlphabetical)));
  }
  if (name == "lex-card") {
    return OrderingPtr(
        new LexicographicOrdering(space, ranking(RankingRule::kCardinality)));
  }
  if (name == "sum-based" || name == "sum-card") {
    return OrderingPtr(
        new SumBasedOrdering(space, ranking(RankingRule::kCardinality)));
  }
  if (name == "sum-alph") {
    return OrderingPtr(
        new SumBasedOrdering(space, ranking(RankingRule::kAlphabetical)));
  }
  if (name == "gray-alph") {
    return OrderingPtr(
        new GrayOrdering(space, ranking(RankingRule::kAlphabetical)));
  }
  if (name == "gray-card") {
    return OrderingPtr(
        new GrayOrdering(space, ranking(RankingRule::kCardinality)));
  }
  if (name == "random") {
    return OrderingPtr(new RandomOrdering(space, /*seed=*/0x9A7));
  }
  return Status::NotFound("unknown ordering method: " + name);
}

Result<OrderingPtr> MakeOrderingWithSelectivities(
    const std::string& name, const Graph& graph, size_t k,
    const SelectivityMap& selectivities) {
  if (name == "ideal") {
    if (selectivities.space().k() != k ||
        selectivities.space().num_labels() != graph.num_labels()) {
      return Status::InvalidArgument(
          "selectivity map space does not match requested ordering space");
    }
    return OrderingPtr(new IdealOrdering(selectivities));
  }
  if (name == "sum-L2") {
    if (graph.num_labels() == 0) {
      return Status::InvalidArgument("graph has no labels");
    }
    if (selectivities.space().k() < 2) {
      return Status::InvalidArgument(
          "sum-L2 needs selectivities covering length-2 paths");
    }
    PathSpace space(graph.num_labels(), k);
    BaseLabelSet base = BaseLabelSet::UpToLength(graph.num_labels(), 2);
    return OrderingPtr(new CompositeBaseOrdering(space, base, selectivities));
  }
  return MakeOrdering(name, graph, k);
}

}  // namespace pathest
