#include "ordering/numerical.h"

#include "util/status.h"

namespace pathest {

NumericalOrdering::NumericalOrdering(PathSpace space, LabelRanking ranking)
    : space_(space), ranking_(std::move(ranking)) {
  PATHEST_CHECK(space_.num_labels() == ranking_.size(),
                "ranking size mismatch with path space");
  name_ = std::string("num-") + RankingRuleName(ranking_.rule());
}

uint64_t NumericalOrdering::Rank(const LabelPath& path) const {
  return RankFast(path);
}

LabelPath NumericalOrdering::Unrank(uint64_t index) const {
  PATHEST_CHECK(index < space_.size(), "index out of range");
  size_t len = 1;
  while (index >= space_.LengthOffset(len) + space_.CountWithLength(len)) {
    ++len;
  }
  uint64_t radix = index - space_.LengthOffset(len);
  const uint64_t base = space_.num_labels();
  uint64_t pow = 1;
  for (size_t i = 1; i < len; ++i) pow *= base;
  LabelPath path;
  for (size_t i = 0; i < len; ++i) {
    uint32_t digit = static_cast<uint32_t>(radix / pow);
    path.PushBack(ranking_.LabelAt(digit + 1));
    radix %= pow;
    pow /= base;
  }
  return path;
}

}  // namespace pathest
