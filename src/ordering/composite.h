// pathest: composite base-set ordering — a prototype of the paper's primary
// future-work direction (Section 5): ordering strategies "built over richer
// base sets such as L2, towards capturing correlations between label paths".
//
// The ordering generalizes the sum-based idea: a path is greedily split into
// pieces from a base set B (e.g. L2), every piece gets a cardinality rank
// within B, and paths are keyed by
//   (length, summed piece rank, canonical tie-break).
// Because decompositions have variable piece counts, this prototype
// materializes the permutation explicitly (O(|L_k|) memory, like the ideal
// ordering) rather than deriving a closed-form unranking; a combinatorial
// unranking over composite bases is exactly the open problem the paper
// leaves for future work.

#ifndef PATHEST_ORDERING_COMPOSITE_H_
#define PATHEST_ORDERING_COMPOSITE_H_

#include <string>
#include <vector>

#include "ordering/ordering.h"
#include "path/selectivity.h"
#include "path/splitter.h"

namespace pathest {

/// \brief Sum-style ordering over a richer base set with cardinality piece
/// ranks ("sum-L2" for B = L2).
class CompositeBaseOrdering : public Ordering {
 public:
  /// \param space the target path space L_k.
  /// \param base base label set; must cover single labels.
  /// \param base_selectivities exact selectivities over a space that
  ///   contains every member of `base` (used to rank pieces by cardinality).
  CompositeBaseOrdering(PathSpace space, const BaseLabelSet& base,
                        const SelectivityMap& base_selectivities);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }

  /// \brief The sort key used for `path` (exposed for tests/diagnostics):
  /// summed cardinality rank of its greedy decomposition, or 0 when any
  /// piece has zero selectivity. The zero case is the payoff of the richer
  /// base set: a zero piece implies a zero path (pairs must flow through
  /// the piece), so all provably-empty paths cluster at the front of their
  /// length block — knowledge the single-label base set cannot express.
  uint64_t SummedPieceRank(const LabelPath& path) const;

 private:
  PathSpace space_;
  std::string name_;
  // Piece -> 1-based cardinality rank within the base set.
  std::vector<uint64_t> piece_rank_by_canonical_;
  // Piece -> whether its exact selectivity is zero.
  std::vector<uint8_t> piece_zero_by_canonical_;
  PathSpace base_space_;
  BaseLabelSet base_;
  std::vector<uint64_t> canonical_of_index_;
  std::vector<uint64_t> index_of_canonical_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_COMPOSITE_H_
