// pathest: the ideal ordering (paper Section 3) — sort label paths by their
// exact selectivity.
//
// The paper notes this ordering is "prohibitive": it needs O(|L_k|) memory
// for the explicit index, the same budget that would store the exact
// selectivities themselves. It is implemented here as the reference
// upper-bound baseline for accuracy experiments and ablations.

#ifndef PATHEST_ORDERING_IDEAL_H_
#define PATHEST_ORDERING_IDEAL_H_

#include <string>
#include <vector>

#include "ordering/ordering.h"
#include "path/selectivity.h"

namespace pathest {

/// \brief Explicit permutation sorting paths by ascending selectivity
/// (ties broken by canonical order for determinism).
class IdealOrdering : public Ordering {
 public:
  /// \param selectivities exact f over the target space.
  explicit IdealOrdering(const SelectivityMap& selectivities);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }

 private:
  PathSpace space_;
  std::string name_;
  std::vector<uint64_t> canonical_of_index_;  // ordering index -> canonical
  std::vector<uint64_t> index_of_canonical_;  // canonical -> ordering index
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_IDEAL_H_
