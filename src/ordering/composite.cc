#include "ordering/composite.h"

#include <algorithm>
#include <numeric>

#include "util/status.h"

namespace pathest {

CompositeBaseOrdering::CompositeBaseOrdering(
    PathSpace space, const BaseLabelSet& base,
    const SelectivityMap& base_selectivities)
    : space_(space),
      base_space_(base_selectivities.space()),
      base_(base) {
  PATHEST_CHECK(space_.num_labels() == base.num_labels(),
                "base set label count mismatch");
  PATHEST_CHECK(base_space_.num_labels() == space_.num_labels(),
                "base selectivity space label count mismatch");
  PATHEST_CHECK(base_space_.k() >= base.max_piece_length(),
                "base selectivities do not cover the base set");
  name_ = "sum-L" + std::to_string(base.max_piece_length());

  // Rank base pieces by cardinality (lower f first, canonical tie-break).
  std::vector<LabelPath> members = base.Members();
  std::stable_sort(members.begin(), members.end(),
                   [&](const LabelPath& a, const LabelPath& b) {
                     return base_selectivities.Get(a) <
                            base_selectivities.Get(b);
                   });
  piece_rank_by_canonical_.assign(base_space_.size(), 0);
  piece_zero_by_canonical_.assign(base_space_.size(), 0);
  for (uint64_t r = 0; r < members.size(); ++r) {
    uint64_t canonical = base_space_.CanonicalIndex(members[r]);
    piece_rank_by_canonical_[canonical] = r + 1;
    piece_zero_by_canonical_[canonical] =
        base_selectivities.Get(members[r]) == 0 ? 1 : 0;
  }

  // Materialize the permutation: sort L_k by (length, summed piece rank,
  // canonical index).
  std::vector<uint64_t> keys(space_.size());
  space_.ForEach([&](const LabelPath& p) {
    keys[space_.CanonicalIndex(p)] = SummedPieceRank(p);
  });
  canonical_of_index_.resize(space_.size());
  std::iota(canonical_of_index_.begin(), canonical_of_index_.end(), 0);
  std::stable_sort(
      canonical_of_index_.begin(), canonical_of_index_.end(),
      [&](uint64_t a, uint64_t b) {
        const LabelPath pa = space_.CanonicalPath(a);
        const LabelPath pb = space_.CanonicalPath(b);
        if (pa.length() != pb.length()) return pa.length() < pb.length();
        return keys[a] < keys[b];
      });
  index_of_canonical_.resize(space_.size());
  for (uint64_t i = 0; i < canonical_of_index_.size(); ++i) {
    index_of_canonical_[canonical_of_index_[i]] = i;
  }
}

uint64_t CompositeBaseOrdering::SummedPieceRank(const LabelPath& path) const {
  uint64_t total = 0;
  for (const LabelPath& piece : GreedySplit(path, base_)) {
    uint64_t canonical = base_space_.CanonicalIndex(piece);
    uint64_t rank = piece_rank_by_canonical_[canonical];
    PATHEST_CHECK(rank != 0, "piece missing from base ranking");
    // Zero piece => zero path: collapse the key so all provably-empty paths
    // are contiguous (key 0 precedes every real summed rank, which is >= 1).
    if (piece_zero_by_canonical_[canonical] != 0) return 0;
    total += rank;
  }
  return total;
}

uint64_t CompositeBaseOrdering::Rank(const LabelPath& path) const {
  return index_of_canonical_[space_.CanonicalIndex(path)];
}

LabelPath CompositeBaseOrdering::Unrank(uint64_t index) const {
  PATHEST_CHECK(index < canonical_of_index_.size(), "index out of range");
  return space_.CanonicalPath(canonical_of_index_[index]);
}

}  // namespace pathest
