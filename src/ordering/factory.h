// pathest: construction of ordering methods by name.

#ifndef PATHEST_ORDERING_FACTORY_H_
#define PATHEST_ORDERING_FACTORY_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "ordering/ordering.h"
#include "path/selectivity.h"
#include "util/status.h"

namespace pathest {

/// \brief The five ordering methods of the paper's experimental study, in
/// presentation order: num-alph, num-card, lex-alph, lex-card, sum-based.
const std::vector<std::string>& PaperOrderingNames();

/// \brief Builds an ordering method by name over `graph`'s label set.
///
/// Accepted names: "num-alph", "num-card", "lex-alph", "lex-card",
/// "sum-based" ("sum-card" is an alias), "sum-alph", "gray-alph",
/// "gray-card", and the "random" baseline.
/// Cardinality-ranked methods use the graph's label cardinalities f(l).
Result<OrderingPtr> MakeOrdering(const std::string& name, const Graph& graph,
                                 size_t k);

/// \brief Builds a closed-form ordering from label statistics alone (no
/// graph needed) — the deserialization path. Same names as MakeOrdering.
Result<OrderingPtr> MakeOrderingFromStats(
    const std::string& name, const LabelDictionary& labels,
    const std::vector<uint64_t>& label_cardinalities, size_t k);

/// \brief Builds an ordering that needs exact path selectivities:
/// all MakeOrdering names, plus "ideal" and "sum-L2".
Result<OrderingPtr> MakeOrderingWithSelectivities(
    const std::string& name, const Graph& graph, size_t k,
    const SelectivityMap& selectivities);

}  // namespace pathest

#endif  // PATHEST_ORDERING_FACTORY_H_
