// pathest: sum-based ordering (paper Section 3.3) — the paper's primary
// contribution.
//
// The index of a path approximates its cardinality through the SUM of its
// base-label ranks, via a three-stage partitioning of the domain:
//   stage 1: by path length (shorter first); partition size |L|^m,
//   stage 2: within a length, by summed rank sr (lower first); partition
//            size = CompositionCount(sr, m, |L|)  (Formula 3),
//   stage 3: within a summed rank, by the rank multiset (integer partition
//            of sr into m parts in [1, |L|], Formula 4), enumerated with the
//            multiplicity of the largest part ascending; partition size =
//            MultisetPermutationCount (Formula 5); finally by the concrete
//            permutation in the order of the paper's Algorithm 1.
//
// Rank() is the forward bijection (the inverse of the paper's Algorithm 2);
// Unrank() is Algorithm 2 itself, delegating to Algorithm 1 for the
// in-partition permutation.
//
// The query fast path runs entirely over FLAT stage-2/stage-3 tables
// (CompositionTable prefix rows + the SumStage3Index below). Both tables
// are pure functions of (|L|, k), built once here — or, on the mmap
// serving path, BORROWED straight out of a binary catalog v2 file
// (core/mapped_catalog.h), which is what makes zero-copy Estimator
// construction possible: the index is persisted in exactly the layout the
// search consumes. The legacy partition-block cache (Unrank's enumeration
// and the kNone fallback) is built lazily on first use in either form.

#ifndef PATHEST_ORDERING_SUM_BASED_H_
#define PATHEST_ORDERING_SUM_BASED_H_

#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ordering/ordering.h"
#include "ordering/ranking.h"
#include "util/combinatorics.h"

namespace pathest {

/// \brief Allocation-free core of Algorithm 1: writes the index-th distinct
/// permutation of the multiset `combination` into `out`.
///
/// Runs on multiset COUNTS instead of rebuilding a `rest` vector per
/// position: with c_v the remaining multiplicity of value v and
/// D = prod_w c_w!, the number of permutations starting with v is
/// (n-1)! * c_v / D (an exact integer), so each position is resolved by one
/// sweep over the distinct values of `combination` — zero heap allocations.
///
/// \param index position in [0, MultisetPermutationCount(combination)).
/// \param m combination size (and output length).
/// \param combination the multiset, sorted ascending, size m.
/// \param counts caller-owned buffer indexed by VALUE; must have capacity
///   > combination's max value, be all-zero on entry, and is restored to
///   all-zero on return (the RankScratch invariant, ordering/ordering.h).
/// \param fact factorial cache covering at least m.
/// \param out receives the permutation, size m.
void UnrankPermutationCounts(uint64_t index, size_t m,
                             const uint32_t* combination, uint32_t* counts,
                             const FactorialCache& fact, uint32_t* out);

/// \brief Allocation-free core of the inverse of Algorithm 1: the position
/// of `permutation` among the distinct permutations of `combination`.
///
/// Same counts-based scheme and the same buffer contract as
/// UnrankPermutationCounts; `counts` must additionally have capacity > the
/// max value of `permutation` (so a foreign permutation is diagnosed, not
/// read out of bounds).
uint64_t RankPermutationCounts(const uint32_t* permutation, size_t m,
                               const uint32_t* combination, uint32_t* counts,
                               const FactorialCache& fact);

/// \brief Unranking a permutation of a multiset (paper Algorithm 1).
/// Allocating convenience wrapper over UnrankPermutationCounts; results are
/// bit-identical.
///
/// \param index position in [0, MultisetPermutationCount(combination)).
/// \param combination multiset of values, sorted ascending.
/// \return the index-th distinct permutation, where permutations are ordered
///   by their first element (ascending over distinct values), then
///   recursively.
std::vector<uint32_t> UnrankPermutationOfCombination(
    uint64_t index, const std::vector<uint32_t>& combination);

/// \brief Inverse of UnrankPermutationOfCombination. Allocating convenience
/// wrapper over RankPermutationCounts; results are bit-identical.
///
/// \param permutation a permutation of `combination`.
/// \param combination multiset sorted ascending.
uint64_t RankPermutationInCombination(const std::vector<uint32_t>& permutation,
                                      std::vector<uint32_t> combination);

/// \brief Key encoding of the stage-three index. The numeric values are the
/// on-disk encoding of binary catalog v2's sum-index section — do not
/// renumber.
enum class SumKeyScheme : uint32_t {
  /// Combinations too wide for any 64-bit key; no index (block-scan
  /// fallback). Rare: needs |L| and k both large.
  kNone = 0,
  /// The multiplicity vector as a packed number: value v occupies key_bits
  /// bits at position (v - 1) * key_bits, and a query key is built by
  /// ADDING 1 << shift per path rank — order-free, so the fast path needs
  /// no sort at all. Feasible when |L| * ceil(log2(k + 1)) <= 64.
  kCounts = 1,
  /// The sorted combination packed value-by-value. Feasible when
  /// k * ceil(log2(|L| + 1)) <= 64; costs an insertion sort per query.
  kSorted = 2,
};

/// \brief The scheme (and per-field bit width) a (|L|, k) space uses —
/// a pure function of the shape, shared by the ordering, the catalog v2
/// writer, and the mapped reader's shape validation.
void ChooseSumKeyScheme(uint64_t num_labels, uint64_t k,
                        SumKeyScheme* scheme, uint32_t* key_bits);

/// \brief Encodes a rank multiset (any order under kCounts; sorted
/// ascending under kSorted) of size m into its lookup key.
inline uint64_t SumEncodeKey(SumKeyScheme scheme, uint32_t key_bits,
                             const uint32_t* values, size_t m) {
  uint64_t key = 0;
  if (scheme == SumKeyScheme::kCounts) {
    for (size_t i = 0; i < m; ++i) {
      key += 1ULL << (static_cast<size_t>(values[i] - 1) * key_bits);
    }
  } else {
    for (size_t i = 0; i < m; ++i) {
      key |= static_cast<uint64_t>(values[i]) << (i * key_bits);
    }
  }
  return key;
}

/// \brief The flat stage-three index: every (m, sr) cell's partition blocks
/// as key-sorted parallel arrays, all cells concatenated m-major (cell id =
/// SumStage3CellBase(m) + (sr - m)). cell_starts has one entry per cell
/// plus a final total, so cell c's blocks live at
/// [cell_starts[c], cell_starts[c+1]) in keys/offsets/nops.
///
/// This is both the in-memory fast-path structure AND the on-disk layout of
/// catalog v2's sum-index section; BuildSumStage3Index is its single
/// definition, used by the ordering, the writer, and the full verifier.
/// Under kNone every array is empty.
struct SumStage3Index {
  SumKeyScheme scheme = SumKeyScheme::kNone;
  uint32_t key_bits = 0;
  std::vector<uint64_t> cell_starts;
  std::vector<uint64_t> keys;     // ascending within each cell
  std::vector<uint64_t> offsets;  // offsets[i] belongs to keys[i]
  std::vector<uint64_t> nops;     // permutation count of keys[i]'s multiset
};

/// \brief Builds the stage-three index for (num_labels, k) by enumerating
/// every (m, sr) cell's partitions (Formula 4) in block order.
SumStage3Index BuildSumStage3Index(uint64_t num_labels, uint64_t k);

/// \brief Number of (m, sr) cells: sum over m of (m*|L| - m + 1).
uint64_t SumStage3CellCount(uint64_t num_labels, uint64_t k);

/// \brief Borrowed view of a SumStage3Index (spans into a mapped catalog).
struct SumStage3View {
  SumKeyScheme scheme = SumKeyScheme::kNone;
  uint32_t key_bits = 0;
  std::span<const uint64_t> cell_starts;
  std::span<const uint64_t> keys;
  std::span<const uint64_t> offsets;
  std::span<const uint64_t> nops;
};

/// \brief Sum-based ordering. The paper pairs it with cardinality ranking
/// (method name "sum-based"); any LabelRanking is accepted, enabling the
/// sum-alph ablation.
class SumBasedOrdering : public Ordering {
 public:
  SumBasedOrdering(PathSpace space, LabelRanking ranking);

  /// \brief Borrowed/mmap form: the stage-2 composition table and stage-3
  /// index come from persisted (typically memory-mapped) rows instead of
  /// being recomputed — construction is O(k) pointer fixup. `comps` is a
  /// CompositionTable::Borrowed over the same backing memory as `index`;
  /// both must match what the owned constructor would build for
  /// (space.num_labels(), space.k()) — callers on untrusted bytes verify
  /// first (core/mapped_catalog.h). The backing memory must outlive this
  /// ordering.
  SumBasedOrdering(PathSpace space, LabelRanking ranking,
                   CompositionTable comps, const SumStage3View& index);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }
  OrderingKind kind() const override { return OrderingKind::kSumBased; }

  /// \brief The allocation-free fast path (the scratch contract in
  /// ordering/ordering.h): three table lookups (length offset, O(1)
  /// stage-two prefix, stage-three binary search) plus the counts-based
  /// Algorithm-1 core, all on caller-owned buffers. The plain Rank() is a
  /// thin wrapper over this with a local scratch.
  uint64_t Rank(const LabelPath& path, RankScratch& scratch) const override;

  /// \brief Scratch-based Unrank twin (non-virtual; Unrank(index) wraps it).
  LabelPath Unrank(uint64_t index, RankScratch& scratch) const;

  const LabelRanking& ranking() const { return ranking_; }
  /// \brief The stage-2 table (persisted verbatim by the catalog writer).
  const CompositionTable& compositions() const { return comps_; }
  /// \brief The flat stage-3 index as spans (owned or borrowed — the
  /// catalog v2 writer persists exactly these arrays).
  SumStage3View stage3_view() const {
    return SumStage3View{key_scheme_, static_cast<uint32_t>(key_bits_),
                         cell_starts_, keys_, offsets_, nops_};
  }

 private:
  // One stage-three partition block: a combination (ascending rank multiset),
  // its permutation count, and its starting offset within the (length, sum)
  // stage-two partition.
  struct ComboBlock {
    Partition parts;
    uint64_t nop;
    uint64_t offset;
  };

  // Stage-three blocks for (m, sr), materialized LAZILY (call_once) on the
  // first Unrank / legacy Rank / kNone fallback: the enumeration is tiny
  // (O(k^2 |L|) distinct (m, sr) pairs, a handful of partitions each) but
  // costs ~1 ms for real spaces — which would swamp the microsecond mmap
  // construction path if it ran eagerly, and the serving fast path never
  // touches it.
  const std::vector<ComboBlock>& BlocksFor(size_t m, uint64_t sr) const;
  void EnsureBlocks() const;

  // Stage-three offset of the sorted rank multiset `combo` (size m) within
  // its (m, sr) partition, by linear block scan — shared by the legacy
  // Rank and the fast path's kNone fallback. Aborts if absent.
  uint64_t StageThreeOffsetByScan(size_t m, uint64_t sr,
                                  const uint32_t* combo) const;

  // Points the span members at owned_index_ / computes cell_base_.
  void InitIndexViews(const SumStage3View& view);

  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
  CompositionTable comps_;
  // Factorials 0!..k! for the counts-based Algorithm-1 core; built
  // (overflow-checked) once at construction.
  FactorialCache fact_;
  SumKeyScheme key_scheme_ = SumKeyScheme::kNone;
  size_t key_bits_ = 0;  // bits per key field under the chosen scheme
  // Backing storage for the owned form; empty when borrowed.
  SumStage3Index owned_index_;
  // The fast path reads ONLY these spans (into owned_index_ or the mapping).
  std::span<const uint64_t> cell_starts_;
  std::span<const uint64_t> keys_;
  std::span<const uint64_t> offsets_;
  std::span<const uint64_t> nops_;
  // cell_base_[m - 1] = id of cell (m, sr=m); cell id grows with sr.
  std::vector<uint64_t> cell_base_;
  // Lazy legacy blocks (see BlocksFor). once_flag makes this class
  // immovable — it is only ever constructed in place (factory / tests).
  mutable std::once_flag blocks_once_;
  // blocks_[m - 1][sr - m] for sr in [m, m * |L|].
  mutable std::vector<std::vector<std::vector<ComboBlock>>> blocks_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_SUM_BASED_H_
