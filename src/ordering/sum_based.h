// pathest: sum-based ordering (paper Section 3.3) — the paper's primary
// contribution.
//
// The index of a path approximates its cardinality through the SUM of its
// base-label ranks, via a three-stage partitioning of the domain:
//   stage 1: by path length (shorter first); partition size |L|^m,
//   stage 2: within a length, by summed rank sr (lower first); partition
//            size = CompositionCount(sr, m, |L|)  (Formula 3),
//   stage 3: within a summed rank, by the rank multiset (integer partition
//            of sr into m parts in [1, |L|], Formula 4), enumerated with the
//            multiplicity of the largest part ascending; partition size =
//            MultisetPermutationCount (Formula 5); finally by the concrete
//            permutation in the order of the paper's Algorithm 1.
//
// Rank() is the forward bijection (the inverse of the paper's Algorithm 2);
// Unrank() is Algorithm 2 itself, delegating to Algorithm 1 for the
// in-partition permutation.

#ifndef PATHEST_ORDERING_SUM_BASED_H_
#define PATHEST_ORDERING_SUM_BASED_H_

#include <string>
#include <vector>

#include "ordering/ordering.h"
#include "ordering/ranking.h"
#include "util/combinatorics.h"

namespace pathest {

/// \brief Allocation-free core of Algorithm 1: writes the index-th distinct
/// permutation of the multiset `combination` into `out`.
///
/// Runs on multiset COUNTS instead of rebuilding a `rest` vector per
/// position: with c_v the remaining multiplicity of value v and
/// D = prod_w c_w!, the number of permutations starting with v is
/// (n-1)! * c_v / D (an exact integer), so each position is resolved by one
/// sweep over the distinct values of `combination` — zero heap allocations.
///
/// \param index position in [0, MultisetPermutationCount(combination)).
/// \param m combination size (and output length).
/// \param combination the multiset, sorted ascending, size m.
/// \param counts caller-owned buffer indexed by VALUE; must have capacity
///   > combination's max value, be all-zero on entry, and is restored to
///   all-zero on return (the RankScratch invariant, ordering/ordering.h).
/// \param fact factorial cache covering at least m.
/// \param out receives the permutation, size m.
void UnrankPermutationCounts(uint64_t index, size_t m,
                             const uint32_t* combination, uint32_t* counts,
                             const FactorialCache& fact, uint32_t* out);

/// \brief Allocation-free core of the inverse of Algorithm 1: the position
/// of `permutation` among the distinct permutations of `combination`.
///
/// Same counts-based scheme and the same buffer contract as
/// UnrankPermutationCounts; `counts` must additionally have capacity > the
/// max value of `permutation` (so a foreign permutation is diagnosed, not
/// read out of bounds).
uint64_t RankPermutationCounts(const uint32_t* permutation, size_t m,
                               const uint32_t* combination, uint32_t* counts,
                               const FactorialCache& fact);

/// \brief Unranking a permutation of a multiset (paper Algorithm 1).
/// Allocating convenience wrapper over UnrankPermutationCounts; results are
/// bit-identical.
///
/// \param index position in [0, MultisetPermutationCount(combination)).
/// \param combination multiset of values, sorted ascending.
/// \return the index-th distinct permutation, where permutations are ordered
///   by their first element (ascending over distinct values), then
///   recursively.
std::vector<uint32_t> UnrankPermutationOfCombination(
    uint64_t index, const std::vector<uint32_t>& combination);

/// \brief Inverse of UnrankPermutationOfCombination. Allocating convenience
/// wrapper over RankPermutationCounts; results are bit-identical.
///
/// \param permutation a permutation of `combination`.
/// \param combination multiset sorted ascending.
uint64_t RankPermutationInCombination(const std::vector<uint32_t>& permutation,
                                      std::vector<uint32_t> combination);

/// \brief Sum-based ordering. The paper pairs it with cardinality ranking
/// (method name "sum-based"); any LabelRanking is accepted, enabling the
/// sum-alph ablation.
class SumBasedOrdering : public Ordering {
 public:
  SumBasedOrdering(PathSpace space, LabelRanking ranking);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }
  OrderingKind kind() const override { return OrderingKind::kSumBased; }

  /// \brief The allocation-free fast path (the scratch contract in
  /// ordering/ordering.h): three table lookups (length offset, O(1)
  /// stage-two prefix, stage-three block scan) plus the counts-based
  /// Algorithm-1 core, all on caller-owned buffers. The plain Rank() is a
  /// thin wrapper over this with a local scratch.
  uint64_t Rank(const LabelPath& path, RankScratch& scratch) const override;

  /// \brief Scratch-based Unrank twin (non-virtual; Unrank(index) wraps it).
  LabelPath Unrank(uint64_t index, RankScratch& scratch) const;

  const LabelRanking& ranking() const { return ranking_; }

 private:
  // One stage-three partition block: a combination (ascending rank multiset),
  // its permutation count, and its starting offset within the (length, sum)
  // stage-two partition.
  struct ComboBlock {
    Partition parts;
    uint64_t nop;
    uint64_t offset;
  };

  // Cached stage-three blocks for (m, sr); the enumeration is tiny
  // (O(k^2 |L|) distinct (m, sr) pairs, a handful of partitions each) but
  // re-deriving it on every Rank/Unrank dominates query latency, so it is
  // materialized once at construction.
  const std::vector<ComboBlock>& BlocksFor(size_t m, uint64_t sr) const;

  // Stage-three offset of the sorted rank multiset `combo` (size m) within
  // its (m, sr) partition, by linear block scan — shared by the legacy
  // Rank and the fast path's kNone fallback. Aborts if absent.
  uint64_t StageThreeOffsetByScan(size_t m, uint64_t sr,
                                  const uint32_t* combo) const;

  // Key-sorted stage-three index for the fast path: each (m, sr) cell holds
  // the blocks' combinations encoded as single uint64 keys next to their
  // offsets and permutation counts, so the fast Rank resolves its multiset
  // with one O(log #blocks) branchless binary search over 8-byte keys
  // instead of std::equal-scanning whole partition vectors. Two encodings,
  // chosen at construction:
  //   kCounts — the multiplicity vector as a packed number: value v
  //     occupies key_bits_ bits at position (v - 1) * key_bits_, and a
  //     query key is built by ADDING 1 << shift per path rank — order-free,
  //     so the fast path needs no sort at all. Feasible when
  //     |L| * ceil(log2(k + 1)) <= 64 (multiplicities are at most k).
  //   kSorted — the sorted combination packed value-by-value. Feasible when
  //     k * ceil(log2(|L| + 1)) <= 64; costs an insertion sort per query.
  //   kNone — neither fits a word; the fast path falls back to the legacy
  //     block scan (spaces that large already strain blocks_ itself).
  enum class KeyScheme { kNone, kCounts, kSorted };

  struct ComboIndex {
    std::vector<uint64_t> keys;     // ascending
    std::vector<uint64_t> offsets;  // offsets[i] belongs to keys[i]
    std::vector<uint64_t> nops;     // permutation count of keys[i]'s multiset
  };

  // Encodes a rank multiset (any order) of size m into its lookup key.
  uint64_t MakeKey(const uint32_t* values, size_t m) const {
    uint64_t key = 0;
    if (key_scheme_ == KeyScheme::kCounts) {
      for (size_t i = 0; i < m; ++i) {
        key += 1ULL << (static_cast<size_t>(values[i] - 1) * key_bits_);
      }
    } else {
      // kSorted: `values` must be sorted ascending here.
      for (size_t i = 0; i < m; ++i) {
        key |= static_cast<uint64_t>(values[i]) << (i * key_bits_);
      }
    }
    return key;
  }

  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
  CompositionTable comps_;
  // Factorials 0!..k! for the counts-based Algorithm-1 core; built
  // (overflow-checked) once at construction.
  FactorialCache fact_;
  // blocks_[m - 1][sr - m] for sr in [m, m * |L|].
  std::vector<std::vector<std::vector<ComboBlock>>> blocks_;
  KeyScheme key_scheme_ = KeyScheme::kNone;
  size_t key_bits_ = 0;  // bits per key field under the chosen scheme
  // combo_index_[m - 1][sr - m], parallel to blocks_.
  std::vector<std::vector<ComboIndex>> combo_index_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_SUM_BASED_H_
