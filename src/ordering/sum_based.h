// pathest: sum-based ordering (paper Section 3.3) — the paper's primary
// contribution.
//
// The index of a path approximates its cardinality through the SUM of its
// base-label ranks, via a three-stage partitioning of the domain:
//   stage 1: by path length (shorter first); partition size |L|^m,
//   stage 2: within a length, by summed rank sr (lower first); partition
//            size = CompositionCount(sr, m, |L|)  (Formula 3),
//   stage 3: within a summed rank, by the rank multiset (integer partition
//            of sr into m parts in [1, |L|], Formula 4), enumerated with the
//            multiplicity of the largest part ascending; partition size =
//            MultisetPermutationCount (Formula 5); finally by the concrete
//            permutation in the order of the paper's Algorithm 1.
//
// Rank() is the forward bijection (the inverse of the paper's Algorithm 2);
// Unrank() is Algorithm 2 itself, delegating to Algorithm 1 for the
// in-partition permutation.

#ifndef PATHEST_ORDERING_SUM_BASED_H_
#define PATHEST_ORDERING_SUM_BASED_H_

#include <string>
#include <vector>

#include "ordering/ordering.h"
#include "ordering/ranking.h"
#include "util/combinatorics.h"

namespace pathest {

/// \brief Unranking a permutation of a multiset (paper Algorithm 1).
///
/// \param index position in [0, MultisetPermutationCount(combination)).
/// \param combination multiset of values, sorted ascending.
/// \return the index-th distinct permutation, where permutations are ordered
///   by their first element (ascending over distinct values), then
///   recursively.
std::vector<uint32_t> UnrankPermutationOfCombination(
    uint64_t index, const std::vector<uint32_t>& combination);

/// \brief Inverse of UnrankPermutationOfCombination.
///
/// \param permutation a permutation of `combination`.
/// \param combination multiset sorted ascending.
uint64_t RankPermutationInCombination(const std::vector<uint32_t>& permutation,
                                      std::vector<uint32_t> combination);

/// \brief Sum-based ordering. The paper pairs it with cardinality ranking
/// (method name "sum-based"); any LabelRanking is accepted, enabling the
/// sum-alph ablation.
class SumBasedOrdering : public Ordering {
 public:
  SumBasedOrdering(PathSpace space, LabelRanking ranking);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }

  const LabelRanking& ranking() const { return ranking_; }

 private:
  // One stage-three partition block: a combination (ascending rank multiset),
  // its permutation count, and its starting offset within the (length, sum)
  // stage-two partition.
  struct ComboBlock {
    Partition parts;
    uint64_t nop;
    uint64_t offset;
  };

  // Cached stage-three blocks for (m, sr); the enumeration is tiny
  // (O(k^2 |L|) distinct (m, sr) pairs, a handful of partitions each) but
  // re-deriving it on every Rank/Unrank dominates query latency, so it is
  // materialized once at construction.
  const std::vector<ComboBlock>& BlocksFor(size_t m, uint64_t sr) const;

  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
  CompositionTable comps_;
  // blocks_[m - 1][sr - m] for sr in [m, m * |L|].
  std::vector<std::vector<std::vector<ComboBlock>>> blocks_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_SUM_BASED_H_
