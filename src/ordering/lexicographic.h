// pathest: lexicographical ordering (paper Section 3.2).
//
// Dictionary order over rank sequences: every path is conceptually padded to
// length k with blank symbols and compared position-wise. The paper's prose
// states rank(blank) > rank(l), but its own Table 2 ("lex-alph": 1, 1/1,
// 1/2, ..., i.e., a path precedes its extensions) requires blanks to sort
// BEFORE labels — ordinary dictionary order, where "a" < "ab". We implement
// the Table 2 behaviour; see DESIGN.md §3.
//
// Closed form used for O(k) (un)ranking: with T(d) = sum_{i=0}^{k-d} |L|^i
// the number of paths in the subtree rooted at a depth-d node (itself
// included),
//   index(ℓ) = sum_{i=1..|ℓ|} (r_i - 1) * T(i)  +  (|ℓ| - 1).

#ifndef PATHEST_ORDERING_LEXICOGRAPHIC_H_
#define PATHEST_ORDERING_LEXICOGRAPHIC_H_

#include <string>
#include <vector>

#include "ordering/ordering.h"
#include "ordering/ranking.h"

namespace pathest {

/// \brief Lexicographical ordering ("lex-alph" / "lex-card").
class LexicographicOrdering : public Ordering {
 public:
  LexicographicOrdering(PathSpace space, LabelRanking ranking);

  const std::string& name() const override { return name_; }
  uint64_t Rank(const LabelPath& path) const override;
  LabelPath Unrank(uint64_t index) const override;
  const PathSpace& space() const override { return space_; }
  OrderingKind kind() const override { return OrderingKind::kLexicographic; }

  /// \brief Non-virtual Rank body for the estimator's type-tagged dispatch
  /// (closed-form, O(k), allocation-free).
  uint64_t RankFast(const LabelPath& path) const {
    PATHEST_CHECK(space_.Contains(path), "path outside space");
    uint64_t index = path.length() - 1;
    for (size_t i = 0; i < path.length(); ++i) {
      uint64_t digit = ranking_.RankOf(path.label(i)) - 1;
      index += digit * subtree_[i + 1];
    }
    return index;
  }

  const LabelRanking& ranking() const { return ranking_; }

 private:
  PathSpace space_;
  LabelRanking ranking_;
  std::string name_;
  // subtree_[d] = T(d) for d in [1, k]; number of label paths whose rank
  // sequence starts with a fixed depth-d prefix (the prefix itself included).
  std::vector<uint64_t> subtree_;
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_LEXICOGRAPHIC_H_
