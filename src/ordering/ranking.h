// pathest: ranking rules over the base label set (paper Section 3.1).
//
// A ranking rule is a bijection between the edge label set L and [1, |L|].
// Two rules are defined by the paper: alphabetical (by label name) and
// cardinality (by f(l), lower cardinality first). Composed with an ordering
// rule (numerical / lexicographical / sum-based) it yields a full ordering
// method such as "num-card".

#ifndef PATHEST_ORDERING_RANKING_H_
#define PATHEST_ORDERING_RANKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace pathest {

/// \brief Which ranking rule a LabelRanking was built with.
enum class RankingRule {
  kAlphabetical,
  kCardinality,
};

/// \brief Short name: "alph" or "card".
const char* RankingRuleName(RankingRule rule);

/// \brief A bijection LabelId <-> rank in [1, |L|].
class LabelRanking {
 public:
  /// \brief Alphabetical ranking: rank 1 = lexicographically smallest name.
  static LabelRanking Alphabetical(const LabelDictionary& dict);

  /// \brief Cardinality ranking: rank 1 = lowest f(l) (paper: a label with
  /// lower cardinality precedes one with higher cardinality). Ties broken by
  /// label name for determinism.
  static LabelRanking Cardinality(const LabelDictionary& dict,
                                  const std::vector<uint64_t>& cardinalities);

  /// \brief Builds the ranking named by `rule`.
  static LabelRanking Make(RankingRule rule, const LabelDictionary& dict,
                           const std::vector<uint64_t>& cardinalities);

  /// \brief Rank of a label, in [1, size()]. Inline: this is the innermost
  /// lookup of every closed-form Rank fast path (see ordering/ordering.h).
  uint32_t RankOf(LabelId label) const {
    PATHEST_CHECK(label < rank_of_.size(), "label id out of range");
    return rank_of_[label];
  }

  /// \brief Label with the given rank (inverse bijection).
  LabelId LabelAt(uint32_t rank) const {
    PATHEST_CHECK(rank >= 1 && rank <= label_at_.size(), "rank out of range");
    return label_at_[rank - 1];
  }

  size_t size() const { return rank_of_.size(); }
  RankingRule rule() const { return rule_; }

 private:
  LabelRanking(RankingRule rule, std::vector<uint32_t> rank_of);

  RankingRule rule_;
  std::vector<uint32_t> rank_of_;   // LabelId -> rank (1-based)
  std::vector<LabelId> label_at_;   // rank-1 -> LabelId
};

}  // namespace pathest

#endif  // PATHEST_ORDERING_RANKING_H_
