#include "ordering/ranking.h"

#include <algorithm>
#include <numeric>

namespace pathest {

const char* RankingRuleName(RankingRule rule) {
  switch (rule) {
    case RankingRule::kAlphabetical:
      return "alph";
    case RankingRule::kCardinality:
      return "card";
  }
  return "?";
}

LabelRanking::LabelRanking(RankingRule rule, std::vector<uint32_t> rank_of)
    : rule_(rule), rank_of_(std::move(rank_of)) {
  label_at_.resize(rank_of_.size());
  for (LabelId l = 0; l < rank_of_.size(); ++l) {
    PATHEST_CHECK(rank_of_[l] >= 1 && rank_of_[l] <= rank_of_.size(),
                  "rank out of range");
    label_at_[rank_of_[l] - 1] = l;
  }
}

LabelRanking LabelRanking::Alphabetical(const LabelDictionary& dict) {
  std::vector<LabelId> order(dict.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](LabelId a, LabelId b) {
    return dict.Name(a) < dict.Name(b);
  });
  std::vector<uint32_t> rank_of(dict.size());
  for (uint32_t r = 0; r < order.size(); ++r) rank_of[order[r]] = r + 1;
  return LabelRanking(RankingRule::kAlphabetical, std::move(rank_of));
}

LabelRanking LabelRanking::Cardinality(
    const LabelDictionary& dict, const std::vector<uint64_t>& cardinalities) {
  PATHEST_CHECK(cardinalities.size() == dict.size(),
                "cardinalities size mismatch");
  std::vector<LabelId> order(dict.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](LabelId a, LabelId b) {
    if (cardinalities[a] != cardinalities[b]) {
      return cardinalities[a] < cardinalities[b];
    }
    return dict.Name(a) < dict.Name(b);
  });
  std::vector<uint32_t> rank_of(dict.size());
  for (uint32_t r = 0; r < order.size(); ++r) rank_of[order[r]] = r + 1;
  return LabelRanking(RankingRule::kCardinality, std::move(rank_of));
}

LabelRanking LabelRanking::Make(RankingRule rule, const LabelDictionary& dict,
                                const std::vector<uint64_t>& cardinalities) {
  switch (rule) {
    case RankingRule::kAlphabetical:
      return Alphabetical(dict);
    case RankingRule::kCardinality:
      return Cardinality(dict, cardinalities);
  }
  PATHEST_CHECK(false, "unknown RankingRule");
  __builtin_unreachable();
}

}  // namespace pathest
