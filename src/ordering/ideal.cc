#include "ordering/ideal.h"

#include <algorithm>
#include <numeric>

#include "util/status.h"

namespace pathest {

IdealOrdering::IdealOrdering(const SelectivityMap& selectivities)
    : space_(selectivities.space()), name_("ideal") {
  const auto& f = selectivities.values();
  canonical_of_index_.resize(f.size());
  std::iota(canonical_of_index_.begin(), canonical_of_index_.end(), 0);
  std::stable_sort(canonical_of_index_.begin(), canonical_of_index_.end(),
                   [&](uint64_t a, uint64_t b) { return f[a] < f[b]; });
  index_of_canonical_.resize(f.size());
  for (uint64_t i = 0; i < canonical_of_index_.size(); ++i) {
    index_of_canonical_[canonical_of_index_[i]] = i;
  }
}

uint64_t IdealOrdering::Rank(const LabelPath& path) const {
  return index_of_canonical_[space_.CanonicalIndex(path)];
}

LabelPath IdealOrdering::Unrank(uint64_t index) const {
  PATHEST_CHECK(index < canonical_of_index_.size(), "index out of range");
  return space_.CanonicalPath(canonical_of_index_[index]);
}

}  // namespace pathest
