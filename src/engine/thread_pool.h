// pathest: a small fixed-size thread pool with an atomic work-queue
// ParallelFor, the parallel substrate of the evaluation engine.
//
// Design constraints, in order:
//   1. Determinism must be the caller's problem ONLY in work partitioning —
//      the pool itself adds none: indices are handed out one at a time from
//      an atomic counter, every index runs exactly once, and ParallelFor
//      does not return until every index has finished.
//   2. num_threads == 1 must be genuinely serial: no threads are spawned,
//      no atomics contended, indices run in order 0..n-1 on the caller.
//   3. Workers are identified by a dense id in [0, num_threads) so callers
//      can pre-allocate per-worker scratch (see engine/eval_context.h) and
//      index it race-free. The calling thread participates as worker 0.

#ifndef PATHEST_ENGINE_THREAD_POOL_H_
#define PATHEST_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pathest {

/// \brief Fixed-size pool of worker threads driving a blocking ParallelFor.
///
/// The pool spawns num_threads - 1 background workers at construction (the
/// calling thread is the remaining worker) and joins them at destruction.
/// ParallelFor may be called any number of times; calls must not overlap
/// (one in-flight job at a time, enforced by the caller) and tasks must not
/// call back into the same pool.
class ThreadPool {
 public:
  /// \brief Task signature: (index, worker). `index` is the work item in
  /// [0, n); `worker` is the dense worker id in [0, num_threads()).
  using Task = std::function<void(size_t index, size_t worker)>;

  /// \param num_threads worker count; 0 means DefaultThreads().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// \brief Runs task(i, worker) for every i in [0, n), blocking until all
  /// complete. Indices are distributed dynamically via an atomic counter;
  /// each started index runs exactly once. With num_threads() == 1 (or
  /// n <= 1) this degenerates to a plain serial loop on the caller.
  ///
  /// Exception contract: a throwing task no longer std::terminate()s the
  /// process. The exception is caught at the worker boundary, no FURTHER
  /// indices are issued (in-flight ones finish), and the first-recorded
  /// exception is rethrown from ParallelFor on the calling thread after
  /// the job drains — so indices past the failure point may never run,
  /// and under parallelism "first" is the first CAUGHT, not the lowest
  /// index. The pool itself stays healthy and reusable afterwards.
  void ParallelFor(size_t n, const Task& task);

  /// \brief std::thread::hardware_concurrency with a floor of 1.
  static size_t DefaultThreads();

 private:
  // Background worker `worker_id` (in [1, num_threads)); worker 0 is the
  // ParallelFor caller.
  void WorkerLoop(size_t worker_id);
  void DrainJob(size_t worker);

  size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;  // signals workers: new job or shutdown
  std::condition_variable done_;  // signals the caller: job fully drained
  const Task* task_ = nullptr;    // valid while the current job is in flight
  size_t job_size_ = 0;
  std::atomic<size_t> next_index_{0};
  uint64_t generation_ = 0;  // bumped once per job so sleepers can't re-run it
  size_t unfinished_workers_ = 0;
  bool shutdown_ = false;
  // First exception caught from a task of the current job (guarded by mu_);
  // rethrown by ParallelFor once the job has fully drained.
  std::exception_ptr first_exception_;
};

}  // namespace pathest

#endif  // PATHEST_ENGINE_THREAD_POOL_H_
