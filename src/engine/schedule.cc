#include "engine/schedule.h"

#include <algorithm>
#include <numeric>

namespace pathest {

std::vector<size_t> HeaviestFirstOrder(const std::vector<uint64_t>& weights) {
  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // stable_sort keeps equal-weight indices in ascending order.
  std::stable_sort(order.begin(), order.end(), [&weights](size_t a, size_t b) {
    return weights[a] > weights[b];
  });
  return order;
}

}  // namespace pathest
