#include "engine/thread_pool.h"

#include <utility>

namespace pathest {

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreads() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, w);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainJob(size_t worker) {
  for (;;) {
    const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_size_) return;
    try {
      (*task_)(i, worker);
    } catch (...) {
      // Worker-boundary catch: letting this escape a worker thread would
      // std::terminate the whole process. Record the first exception and
      // stop issuing new indices; ParallelFor rethrows after the drain.
      next_index_.store(job_size_, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock,
               [&] { return shutdown_ || generation_ != seen_generation; });
    if (shutdown_) return;
    seen_generation = generation_;
    lock.unlock();
    DrainJob(worker_id);
    lock.lock();
    if (--unfinished_workers_ == 0) done_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n, const Task& task) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Genuinely serial: an exception propagates directly from the task —
    // observably the same "rethrown from ParallelFor" contract, with no
    // worker boundary to cross.
    for (size_t i = 0; i < n; ++i) task(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    unfinished_workers_ = workers_.size();
    first_exception_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  DrainJob(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [&] { return unfinished_workers_ == 0; });
  task_ = nullptr;
  job_size_ = 0;
  if (first_exception_) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace pathest
