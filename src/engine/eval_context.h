// pathest: per-worker evaluation context — the scratch arena one worker
// thread needs to evaluate root-label subtrees of the selectivity DFS.
//
// The exact evaluator's working state is three scratch structures (a
// distinct-marking Marker, a fused LeafCounter, and one reusable PairSet
// per DFS depth). None of them is thread-safe, and all of them are
// expensive to allocate relative to a single DFS step — so the engine owns
// exactly one EvalContext per worker, allocated once up front, and every
// root subtree dispatched to that worker reuses it. Two workers never share
// a context; one worker never runs two subtrees concurrently. That is the
// entire synchronization story of the parallel evaluator: contexts are
// disjoint, output slices are disjoint, nothing else is written.

#ifndef PATHEST_ENGINE_EVAL_CONTEXT_H_
#define PATHEST_ENGINE_EVAL_CONTEXT_H_

#include <cstddef>
#include <vector>

#include "path/pair_set.h"

namespace pathest {

/// \brief One worker's scratch arena for selectivity evaluation.
///
/// Reusable across any number of sequential evaluations on graphs with at
/// most `num_vertices` vertices / `num_labels` labels and DFS depth at most
/// `k`; results are independent of prior use (every structure is
/// epoch-reset or cleared at the start of each scope).
struct EvalContext {
  EvalContext(size_t num_vertices, size_t num_labels, size_t k)
      : marker(num_vertices),
        leaf_counter(num_vertices, num_labels),
        levels(k + 1) {}

  Marker marker;
  LeafCounter leaf_counter;
  /// One reusable PairSet per DFS depth (1-based level); levels[0] unused.
  std::vector<PairSet> levels;
};

}  // namespace pathest

#endif  // PATHEST_ENGINE_EVAL_CONTEXT_H_
