// pathest: per-worker evaluation context — the scratch arena one worker
// thread needs to evaluate root-label subtrees of the selectivity DFS.
//
// The exact evaluator's working state is three scratch structures (a
// distinct-marking Marker, a fused LeafCounter, and one reusable PairSet
// per DFS depth). None of them is thread-safe, and all of them are
// expensive to allocate relative to a single DFS step — so the engine owns
// exactly one EvalContext per worker, allocated once up front, and every
// root subtree dispatched to that worker reuses it. Two workers never share
// a context; one worker never runs two subtrees concurrently. That is the
// entire synchronization story of the parallel evaluator: contexts are
// disjoint, output slices are disjoint, nothing else is written.

#ifndef PATHEST_ENGINE_EVAL_CONTEXT_H_
#define PATHEST_ENGINE_EVAL_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "path/pair_set.h"
#include "util/bitset.h"

namespace pathest {

/// \brief One worker's scratch arena for selectivity evaluation.
///
/// Reusable across any number of sequential evaluations on graphs with at
/// most `num_vertices` vertices / `num_labels` labels and DFS depth at most
/// `k`; results are independent of prior use (every structure is
/// epoch-reset, cleared, or rebound at the start of each scope). Everything
/// a subtree evaluation touches is pre-allocated here, so the DFS — and in
/// particular the penultimate-level leaf pass, the hottest loop — performs
/// no allocation at all.
struct EvalContext {
  EvalContext(size_t num_vertices, size_t num_labels, size_t k)
      : marker(num_vertices),
        leaf_counter(num_vertices, num_labels),
        fused(num_vertices, num_labels),
        extend_bits(num_vertices),
        levels(k + 1),
        blocks(k + 1, std::vector<PairSet>(num_labels)),
        fwd_views(num_labels),
        leaf_counts(num_labels, 0) {}

  Marker marker;
  LeafCounter leaf_counter;
  /// The fused all-labels kernel's scratch (per-label bitsets + emission
  /// arenas + vertex-major binding); rebound per evaluation scope.
  FusedExtender fused;
  /// Dense-kernel accumulator for ExtendPairSet; all-zero between uses
  /// (the kernel's drain restores that invariant).
  DynamicBitset extend_bits;
  /// One reusable PairSet per DFS depth (1-based level); levels[0] unused.
  /// The per-label DFS's working sets; the fused task path uses levels[1]
  /// and levels[2] for its root/starting sets.
  std::vector<PairSet> levels;
  /// The fused DFS's per-depth CHILD BLOCKS: blocks[d][l] holds the pair
  /// set of the depth-d child with last label l, all |L| siblings
  /// materialized together by one ExtendAll pass. blocks[0..2] unused (the
  /// task's starting set lives in the shared level-2 block).
  std::vector<std::vector<PairSet>> blocks;
  /// Hoisted per-label ForwardViews, rebound once per root subtree by
  /// EvaluateRootSubtree — the leaf pass reads them instead of calling
  /// Graph::ForwardView once per (node, label).
  std::vector<Graph::CsrView> fwd_views;
  /// Per-label counts buffer of the fused leaf pass (one entry per label),
  /// zero-filled by the DFS before each use.
  std::vector<uint64_t> leaf_counts;
};

}  // namespace pathest

#endif  // PATHEST_ENGINE_EVAL_CONTEXT_H_
