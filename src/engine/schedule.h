// pathest: deterministic work-ordering helpers for the engine's ParallelFor.
//
// ParallelFor hands indices to workers one at a time, in the order the
// caller presents them. For jobs whose items have wildly uneven costs (the
// selectivity evaluator's root subtrees under skewed label cardinalities),
// presentation order decides the tail: if the single most expensive item is
// picked up last, the whole job waits on it alone while every other worker
// idles. Scheduling heaviest-first bounds that tail — the expensive items
// start immediately and the cheap ones backfill the gaps.

#ifndef PATHEST_ENGINE_SCHEDULE_H_
#define PATHEST_ENGINE_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathest {

/// \brief Returns the permutation of [0, weights.size()) that orders
/// indices by descending weight, ties broken by ascending index — so the
/// result is deterministic in `weights` alone. Feed ParallelFor the
/// permuted indices (`task(order[i])`) to run heaviest-first.
std::vector<size_t> HeaviestFirstOrder(const std::vector<uint64_t>& weights);

}  // namespace pathest

#endif  // PATHEST_ENGINE_SCHEDULE_H_
