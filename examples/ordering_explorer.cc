// Ordering explorer: visualize what each domain ordering does to a dataset's
// path-frequency distribution.
//
// For a chosen dataset and k, prints per ordering method: the first few
// domain positions (index -> path -> f), and the distribution profile —
// most importantly the TOTAL VARIATION sum |D[i+1] - D[i]|, the quantity
// domain reordering tries to minimize (smoother distribution = tighter
// buckets = lower estimation error).
//
// Run:  ./ordering_explorer [dataset] [k]
//       dataset in {moreno, dbpedia, snap-er, snap-ff}, default moreno
//       k default 3

#include <cstdio>
#include <string>

#include "core/distribution.h"
#include "gen/datasets.h"
#include "ordering/factory.h"
#include "ordering/ideal.h"
#include "path/selectivity.h"

using namespace pathest;  // NOLINT — example code favors brevity

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "moreno";
  const size_t k = argc > 2 ? std::stoul(argv[2]) : 3;

  auto spec = FindDatasetSpec(dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s' (try moreno, dbpedia, "
                 "snap-er, snap-ff)\n", dataset.c_str());
    return 1;
  }
  // Scale 0.25 keeps the example interactive; pass PATHEST_SCALE-style full
  // runs to the bench binaries instead.
  auto graph = BuildDataset(spec->id, 0.25, 42);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto truth = ComputeSelectivities(*graph, k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  std::printf("dataset %s (0.25 scale): |V|=%zu |E|=%zu |L|=%zu, k=%zu, "
              "|L_k|=%llu\n\n",
              dataset.c_str(), graph->num_vertices(), graph->num_edges(),
              graph->num_labels(), k,
              static_cast<unsigned long long>(truth->space().size()));

  auto methods = PaperOrderingNames();
  methods.push_back("ideal");
  for (const std::string& method : methods) {
    auto ordering =
        MakeOrderingWithSelectivities(method, *graph, k, *truth);
    if (!ordering.ok()) {
      std::fprintf(stderr, "%s: %s\n", method.c_str(),
                   ordering.status().ToString().c_str());
      continue;
    }
    auto dist = BuildDistribution(*truth, **ordering);
    if (!dist.ok()) continue;
    DistributionProfile profile = ProfileDistribution(*dist);

    std::printf("== %-10s  total-variation %.3g  (variance %.3g)\n",
                method.c_str(), profile.total_variation, profile.variance);
    std::printf("   first positions: ");
    for (uint64_t i = 0; i < 8 && i < dist->size(); ++i) {
      std::printf("%s=%llu ",
                  (*ordering)->Unrank(i).ToString(graph->labels()).c_str(),
                  static_cast<unsigned long long>((*dist)[i]));
    }
    std::printf("\n\n");
  }
  std::printf("lower total variation means label paths with similar "
              "cardinality sit next to each other — the goal of domain "
              "reordering (ideal is the floor).\n");
  return 0;
}
