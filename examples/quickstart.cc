// Quickstart: the 60-second tour of pathest.
//
// Builds a small labeled graph, computes exact path selectivities, builds a
// sum-based V-optimal path histogram, and compares its estimates against the
// truth — the end-to-end flow of the paper in one page of code.
//
// Run:  ./quickstart

#include <cstdio>

#include "core/error.h"
#include "core/path_histogram.h"
#include "graph/graph_builder.h"
#include "ordering/factory.h"
#include "path/selectivity.h"

using namespace pathest;  // NOLINT — example code favors brevity

int main() {
  // 1. A toy social graph: people follow/like/block each other.
  GraphBuilder builder;
  const char* follows = "follows";
  const char* likes = "likes";
  const char* blocks = "blocks";
  builder.AddEdge(0, follows, 1);
  builder.AddEdge(1, follows, 2);
  builder.AddEdge(2, follows, 3);
  builder.AddEdge(3, follows, 0);
  builder.AddEdge(0, likes, 2);
  builder.AddEdge(1, likes, 3);
  builder.AddEdge(2, likes, 0);
  builder.AddEdge(1, blocks, 0);
  auto graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // 2. Exact selectivities for every label path up to length 3.
  const size_t k = 3;
  auto truth = ComputeSelectivities(*graph, k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  // 3. A sum-based V-optimal histogram with an 8-bucket budget.
  auto ordering = MakeOrdering("sum-based", *graph, k);
  auto estimator = PathHistogram::Build(*truth, std::move(*ordering),
                                        HistogramType::kVOptimal,
                                        /*num_buckets=*/8);
  if (!estimator.ok()) {
    std::fprintf(stderr, "%s\n", estimator.status().ToString().c_str());
    return 1;
  }
  std::printf("estimator: %s, domain |L_3| = %llu, %zu buckets\n\n",
              estimator->Describe().c_str(),
              static_cast<unsigned long long>(estimator->ordering().size()),
              estimator->histogram().num_buckets());

  // 4. Ask it about some path queries.
  std::printf("%-28s %8s %10s %8s\n", "path query", "true f", "estimate",
              "|err|");
  for (const char* query :
       {"follows", "follows/follows", "follows/likes", "likes/blocks",
        "follows/follows/follows", "blocks/likes/follows"}) {
    auto path = LabelPath::Parse(query, graph->labels());
    if (!path.ok()) continue;
    double f = static_cast<double>(truth->Get(*path));
    double e = estimator->Estimate(*path);
    std::printf("%-28s %8.0f %10.2f %8.3f\n", query, f, e,
                AbsoluteErrorRate(e, f));
  }
  std::printf("\n(err is the paper's Formula 6 metric, in [0, 1])\n");
  return 0;
}
