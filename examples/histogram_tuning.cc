// Histogram tuning: pick a bucket budget for a target accuracy.
//
// Sweeps the bucket budget and histogram type for a dataset and reports the
// accuracy/memory trade-off, the practical question a DBA (or an automated
// stats advisor) answers when enabling path statistics.
//
// Run:  ./histogram_tuning [dataset] [k]

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "gen/datasets.h"
#include "ordering/factory.h"
#include "path/selectivity.h"

using namespace pathest;  // NOLINT — example code favors brevity

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "moreno";
  const size_t k = argc > 2 ? std::stoul(argv[2]) : 4;

  auto spec = FindDatasetSpec(dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 1;
  }
  auto graph = BuildDataset(spec->id, 0.25, 42);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto truth = ComputeSelectivities(*graph, k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  PathSpace space(graph->num_labels(), k);
  std::printf("histogram tuning on %s (0.25 scale), k=%zu, |L_k|=%llu, "
              "sum-based ordering\n\n",
              dataset.c_str(), k,
              static_cast<unsigned long long>(space.size()));

  ReportTable table({"beta", "approx bytes", "v-optimal err", "equi-width err",
                     "equi-depth err", "exact fraction (v-opt)"});
  for (size_t beta : BetaSweep(space.size(), 8)) {
    auto vopt = MeasureAccuracy(*graph, *truth, "sum-based", k, beta,
                                HistogramType::kVOptimal);
    auto ew = MeasureAccuracy(*graph, *truth, "sum-based", k, beta,
                              HistogramType::kEquiWidth);
    auto ed = MeasureAccuracy(*graph, *truth, "sum-based", k, beta,
                              HistogramType::kEquiDepth);
    if (!vopt.ok() || !ew.ok() || !ed.ok()) continue;
    table.AddRow({std::to_string(beta), std::to_string(beta * 16),
                  FormatDouble(vopt->errors.mean_abs_error, 4),
                  FormatDouble(ew->errors.mean_abs_error, 4),
                  FormatDouble(ed->errors.mean_abs_error, 4),
                  FormatDouble(vopt->errors.exact_fraction, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("memory is ~16 bytes per bucket (boundary + frequency sum); "
              "exact selectivities would cost 8 bytes per domain position "
              "= %llu bytes.\n",
              static_cast<unsigned long long>(space.size() * 8));
  return 0;
}
