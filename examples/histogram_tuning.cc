// Histogram tuning: pick a bucket budget for a target accuracy.
//
// Sweeps the bucket budget and histogram type for a dataset and reports the
// accuracy/memory trade-off, the practical question a DBA (or an automated
// stats advisor) answers when enabling path statistics.
//
// This drives the histogram engine directly: the ordering, its
// distribution, and the shared DistributionStats are built ONCE and reused
// by every histogram type's whole-β BuildHistogramSweep (the v-optimal
// column costs a single greedy-merge run for all 8 budgets).
//
// Run:  ./histogram_tuning [dataset] [k]

#include <cstdio>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "core/error.h"
#include "core/experiment.h"
#include "core/report.h"
#include "gen/datasets.h"
#include "histogram/builders.h"
#include "histogram/stats.h"
#include "ordering/factory.h"
#include "path/selectivity.h"

using namespace pathest;  // NOLINT — example code favors brevity

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "moreno";
  const size_t k = argc > 2 ? std::stoul(argv[2]) : 4;

  auto spec = FindDatasetSpec(dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 1;
  }
  auto graph = BuildDataset(spec->id, 0.25, 42);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto truth = ComputeSelectivities(*graph, k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  PathSpace space(graph->num_labels(), k);
  std::printf("histogram tuning on %s (0.25 scale), k=%zu, |L_k|=%llu, "
              "sum-based ordering\n\n",
              dataset.c_str(), k,
              static_cast<unsigned long long>(space.size()));

  // One ordering + distribution + stats build serves every (type, beta).
  auto ordering = MakeOrdering("sum-based", *graph, k);
  if (!ordering.ok()) {
    std::fprintf(stderr, "%s\n", ordering.status().ToString().c_str());
    return 1;
  }
  auto dist = BuildDistribution(*truth, **ordering);
  if (!dist.ok()) {
    std::fprintf(stderr, "%s\n", dist.status().ToString().c_str());
    return 1;
  }
  DistributionStats stats(*dist);

  const std::vector<size_t> betas = BetaSweep(space.size(), 8);
  auto vopt = BuildHistogramSweep(HistogramType::kVOptimal, stats, betas);
  auto ew = BuildHistogramSweep(HistogramType::kEquiWidth, stats, betas);
  auto ed = BuildHistogramSweep(HistogramType::kEquiDepth, stats, betas);
  if (!vopt.ok() || !ew.ok() || !ed.ok()) {
    std::fprintf(stderr, "histogram sweep failed\n");
    return 1;
  }

  ReportTable table({"beta", "approx bytes", "v-optimal err", "equi-width err",
                     "equi-depth err", "exact fraction (v-opt)"});
  for (size_t b = 0; b < betas.size(); ++b) {
    const ErrorSummary vopt_errors = SummarizeHistogramErrors((*vopt)[b],
                                                              *dist);
    table.AddRow({std::to_string(betas[b]), std::to_string(betas[b] * 16),
                  FormatDouble(vopt_errors.mean_abs_error, 4),
                  FormatDouble(SummarizeHistogramErrors((*ew)[b], *dist)
                                   .mean_abs_error, 4),
                  FormatDouble(SummarizeHistogramErrors((*ed)[b], *dist)
                                   .mean_abs_error, 4),
                  FormatDouble(vopt_errors.exact_fraction, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("memory is ~16 bytes per bucket (boundary + frequency sum); "
              "exact selectivities would cost 8 bytes per domain position "
              "= %llu bytes.\n",
              static_cast<unsigned long long>(space.size() * 8));
  return 0;
}
