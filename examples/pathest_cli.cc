// pathest_cli: command-line front end for the library — generate datasets,
// analyze graphs, build and persist statistics, and answer estimates, all
// from a shell. This is the operational surface a user pokes at before
// integrating the library.
//
// Usage:
//   pathest_cli [--threads N] [--kernel auto|sparse|dense]
//               [--strategy fused|per-label] [--graph G] <command> ...
//   pathest_cli generate <dataset> <out.graph> [scale] [seed]
//   pathest_cli stats <graph-file>
//   pathest_cli analyze <graph-file> <k> <ordering> <beta> <out.stats>
//   pathest_cli estimate <stats-file> [<path> ...]
//   pathest_cli accuracy <graph-file> <k> <ordering> <beta>
//   pathest_cli catalog verify [--json] <dir>
//   pathest_cli catalog convert <dir> --format text|binary|binary-v2
//   pathest_cli serve <socket> <catalog-dir> [key=value ...]
//   pathest_cli call [--retries N] <socket> <request words ...>
//   pathest_cli orderings
//
// The graph source of stats/analyze/accuracy is the <graph-file>
// positional, or the global --graph flag standing in for it; either may
// be "-" to read the edge list from stdin (mirroring estimate's stdin
// workload mode). Graphs load through the streaming ingest pipeline
// (chunked from_chars parse + parallel counting-sort build), and the
// resolved ingest configuration — thread count, chunking, plane kind —
// is echoed alongside the load, like the selectivity build config.
//
// estimate answers queries through the serving facade (core/estimator.h:
// scratch fast-path ranking + flat bucket lookup, one EstimateBatch call
// for the whole workload). Paths come from the command line, or — when none
// are given — from stdin, one label path (a/b/c) per line.
//
// --threads N controls the parallel selectivity engine (the dominant cost
// of analyze/accuracy): N worker threads, 0 = one per hardware core (the
// default). --kernel forces the pair-set extension kernel (default: auto,
// a per-group cost-based choice); --strategy picks the evaluator
// decomposition (default: fused — the all-labels kernel with prefix
// tasks). Results are bit-identical for every thread count, kernel, and
// strategy; the flags only change speed. All three are validated up
// front (a malformed value is an error, not a silent fallback), and the
// commands that build ground truth echo the RESOLVED configuration —
// including the post-clamp worker count — in their build report line.
//
// --format text|binary picks the on-disk catalog format analyze writes
// (default text; binary is the checksummed v1 layout of core/serialize.h —
// estimate and catalog verify sniff the format, so no flag on read).
// `catalog verify <dir>` checksum-walks every *.stats entry and exits
// nonzero if ANY entry fails, printing one line per entry; it is the
// operational integrity probe for a directory of persisted statistics.
// When the directory carries a maintenance journal (maint/deltas.journal)
// it is frame-walked too: every CRC checked, the last good offset
// reported; a torn tail (crash artifact that startup recovery truncates)
// is a warning, mid-file corruption is a failure. With --json it prints
// one machine-readable JSON object instead (same exit-code contract),
// for monitoring that should not scrape text.
//
// `serve <socket> <catalog-dir>` runs the concurrent estimation daemon
// (serve/server.h): catalog entries served as immutable snapshots with
// atomic hot-swap on `reload`, bounded-queue load shedding, per-request
// deadlines, and degraded-mode serving of a partially corrupt catalog.
// Optional key=value args: workers=N queue=N deadline_ms=N idle_ms=N
// mmap_budget=BYTES (residency budget for zero-copy binary-v2 serving),
// plus graph=FILE maint_k=N compact_every=N to enable online maintenance
// (maint/online_maintenance.h): the update/compact protocol commands, a
// crash-safe fsync-before-ack edge-delta journal under
// <catalog-dir>/maint/, journal replay on startup, and incremental
// statistics refresh published through the same atomic snapshot swap.
// SIGTERM/SIGINT begin a graceful drain (in-flight requests answered)
// and the daemon exits 0. `call [--retries N] <socket> <words...>` sends
// one request line to a running daemon, prints the response line, and
// exits 0 iff the response is "ok ..." — the scripting/smoke-test
// client; --retries N adds exponential-backoff retry (jittered) on
// transport failures and protocol errors marked retriable.
//
// Exit codes are uniform across subcommands: 0 = success, 1 = runtime
// failure (including any failed estimate query or corrupt catalog entry,
// with the details on stderr), 2 = usage error.
//
// Runs with no arguments as a self-demo (generates a small moreno-like
// graph, analyzes it, estimates a few queries) so that it is exercised by
// simply running the binary.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/error.h"
#include "core/estimator.h"
#include "core/experiment.h"
#include "core/serialize.h"
#include "gen/datasets.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "maint/delta_journal.h"
#include "ordering/factory.h"
#include "path/selectivity.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/safe_io.h"

using namespace pathest;  // NOLINT — example code favors brevity

namespace {

// Worker threads for selectivity evaluation; set by --threads (0 = one per
// hardware core). Shared by every subcommand that computes ground truth.
size_t g_num_threads = 0;

// Extension-kernel override; set by --kernel (auto = per-group choice).
PairKernel g_kernel = PairKernel::kAuto;

// Evaluator strategy; set by --strategy (fused = all-labels kernel with
// depth-2 prefix tasks, per-label = the baseline engine).
ExtendStrategy g_strategy = ExtendStrategy::kFused;

// On-disk catalog format for analyze's save and catalog convert's target;
// set by --format. Readers sniff, so there is no corresponding load flag.
CatalogFormat g_format = CatalogFormat::kText;
// True when --format appeared on the command line: `catalog convert`
// demands an explicit target instead of silently rewriting to text.
bool g_format_seen = false;

// Loads the graph named by `spec` — a file path, or "-" for stdin —
// through the streaming ingest pipeline, echoing the resolved ingest
// configuration (threads actually used, parse chunking, plane kind) the
// same way PrintBuildConfig echoes the selectivity build's.
Result<Graph> LoadCliGraph(const std::string& spec) {
  GraphLoadOptions options;
  options.num_threads = g_num_threads;
  GraphLoadStats stats;
  Result<Graph> graph = spec == "-"
                            ? ReadGraphText(&std::cin, options, &stats)
                            : LoadGraphFile(spec, options, &stats);
  if (graph.ok()) {
    std::printf(
        "graph ingest: %s |V|=%zu |E|=%zu |L|=%zu threads=%zu "
        "(requested %zu), chunks=%zu, plane=%s, load=%.1fms "
        "(read %.1f, parse %.1f, build %.1f)\n",
        spec == "-" ? "<stdin>" : spec.c_str(), graph->num_vertices(),
        graph->num_edges(), graph->num_labels(), stats.build.num_threads,
        g_num_threads, stats.num_chunks,
        PlaneKindName(stats.build.plane_kind), stats.total_ms, stats.read_ms,
        stats.parse_ms, stats.build.total_ms);
  }
  return graph;
}

SelectivityOptions CliSelectivityOptions() {
  SelectivityOptions options;
  options.num_threads = g_num_threads;
  options.kernel = g_kernel;
  options.strategy = g_strategy;
  return options;
}

// One-line echo of the RESOLVED build configuration (requested 0 becomes
// the hardware core count, then clamps to the build's task count), so a
// clamped or defaulted value is visible instead of silent.
void PrintBuildConfig(const Graph& graph, size_t k) {
  SelectivityOptions options = CliSelectivityOptions();
  std::printf(
      "selectivity build: threads=%zu (requested %zu), kernel=%s, "
      "strategy=%s, tasks=%zu\n",
      ResolvedNumThreads(options, graph.num_labels(), k), g_num_threads,
      PairKernelName(g_kernel), ExtendStrategyName(g_strategy),
      SelectivityTaskCount(graph.num_labels(), k, g_strategy));
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pathest_cli [--threads N] [--kernel K] [--strategy S] <command> "
      "...\n"
      "  pathest_cli generate <dataset> <out.graph> [scale] [seed]\n"
      "  pathest_cli stats <graph-file>\n"
      "  pathest_cli analyze <graph-file> <k> <ordering> <beta> <out.stats>\n"
      "  pathest_cli estimate <stats-file> [<path> ...]\n"
      "      (no paths: read one label path per stdin line)\n"
      "  pathest_cli accuracy <graph-file> <k> <ordering> <beta>\n"
      "  pathest_cli catalog verify [--json] <dir>\n"
      "      (checksum-walk every *.stats entry AND the maintenance "
      "journal,\n"
      "       frame by frame; nonzero exit on any failure; a torn journal "
      "tail\n"
      "       is a warning, not a failure; --json prints one report "
      "object;\n"
      "       each healthy entry reports its format and, for binary-v2, "
      "alignment)\n"
      "  pathest_cli catalog convert <dir> --format text|binary|binary-v2\n"
      "      (rewrite every entry to the target format in place via "
      "atomic rename;\n"
      "       full verify on read; corrupt entries are reported and left "
      "untouched)\n"
      "  pathest_cli serve <socket> <catalog-dir> [workers=N queue=N "
      "deadline_ms=N idle_ms=N graph=FILE maint_k=N compact_every=N "
      "mmap_budget=BYTES]\n"
      "      (estimation daemon: atomic snapshot hot-swap on reload, "
      "load shedding,\n"
      "       per-request deadlines, degraded-mode serving; SIGTERM "
      "drains gracefully;\n"
      "       graph=FILE enables online maintenance: the update/compact "
      "commands,\n"
      "       a crash-safe edge-delta journal, and incremental statistics "
      "refresh)\n"
      "  pathest_cli call [--retries N] <socket> <request words ...>\n"
      "      (one-shot client; prints the response line, exit 0 iff "
      "'ok ...';\n"
      "       --retries N retries transport failures and retriable "
      "errors\n"
      "       with exponential backoff + jitter, N extra attempts)\n"
      "  pathest_cli orderings\n"
      "datasets: moreno dbpedia snap-er snap-ff\n"
      "<graph-file> (or the global --graph flag standing in for it) may "
      "be '-' to read the edge list from stdin\n"
      "--threads N: selectivity AND ingest worker threads (0 = hardware "
      "cores, default)\n"
      "--kernel K: pair-set extension kernel, auto|sparse|dense "
      "(auto = per-group cost-based choice, default)\n"
      "--strategy S: evaluator decomposition, fused|per-label "
      "(fused = all-labels kernel + prefix tasks, default)\n"
      "--format F: catalog format analyze writes / convert targets, "
      "text|binary|binary-v2 (text default; binary = checksummed catalog "
      "v1; binary-v2 = page-aligned mmap-servable; readers sniff)\n");
  return 2;
}

int CmdGenerate(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  auto spec = FindDatasetSpec(args[0]);
  if (!spec.ok()) return Fail(spec.status());
  double scale = args.size() > 2 ? std::atof(args[2].c_str()) : 1.0;
  uint64_t seed = args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10)
                                  : 42;
  auto graph = BuildDataset(spec->id, scale, seed);
  if (!graph.ok()) return Fail(graph.status());
  Status st = SaveGraphFile(*graph, args[1]);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: |V|=%zu |E|=%zu |L|=%zu\n", args[1].c_str(),
              graph->num_vertices(), graph->num_edges(),
              graph->num_labels());
  return 0;
}

int CmdStats(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  auto graph = LoadCliGraph(args[0]);
  if (!graph.ok()) return Fail(graph.status());
  GraphStats stats = ComputeGraphStats(*graph);
  std::printf("%s", FormatGraphStats(*graph, stats).c_str());
  return 0;
}

int CmdAnalyze(const std::vector<std::string>& args) {
  if (args.size() != 5) return Usage();
  auto graph = LoadCliGraph(args[0]);
  if (!graph.ok()) return Fail(graph.status());
  size_t k = std::strtoull(args[1].c_str(), nullptr, 10);
  size_t beta = std::strtoull(args[3].c_str(), nullptr, 10);
  PrintBuildConfig(*graph, k);
  auto truth = ComputeSelectivities(*graph, k, CliSelectivityOptions());
  if (!truth.ok()) return Fail(truth.status());
  auto ordering = MakeOrdering(args[2], *graph, k);
  if (!ordering.ok()) return Fail(ordering.status());
  auto estimator = PathHistogram::Build(*truth, std::move(*ordering),
                                        HistogramType::kVOptimal, beta);
  if (!estimator.ok()) return Fail(estimator.status());
  Status st = SavePathHistogram(*estimator, *graph, args[4], g_format);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s (%s): %s over |L_%zu|=%llu\n", args[4].c_str(),
              CatalogFormatName(g_format), estimator->Describe().c_str(), k,
              static_cast<unsigned long long>(estimator->ordering().size()));
  return 0;
}

int CmdEstimate(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  auto loaded = LoadPathHistogram(args[0]);
  if (!loaded.ok()) return Fail(loaded.status());
  std::printf("%s\n", loaded->estimator.Describe().c_str());

  // Queries come from the remaining arguments, or — with none — one label
  // path per stdin line (the batch-serving mode).
  std::vector<std::string> queries(args.begin() + 1, args.end());
  if (queries.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) queries.push_back(line);
    }
  }
  if (queries.empty()) return Usage();

  // Everything goes through the serving facade: parse the whole workload,
  // answer it with one EstimateBatch call, then print in input order.
  Estimator serving(loaded->estimator);
  std::vector<LabelPath> paths;
  std::vector<size_t> path_of_query(queries.size(), SIZE_MAX);
  std::vector<std::string> errors(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto path = LabelPath::Parse(queries[i], loaded->labels);
    if (!path.ok()) {
      errors[i] = path.status().ToString();
      continue;
    }
    if (!serving.ordering().space().Contains(*path)) {
      errors[i] = "outside analyzed space";
      continue;
    }
    path_of_query[i] = paths.size();
    paths.push_back(*path);
  }
  std::vector<double> estimates(paths.size());
  serving.EstimateBatch(paths, estimates);
  size_t failed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (path_of_query[i] == SIZE_MAX) {
      ++failed;
      std::printf("%-30s  <%s>\n", queries[i].c_str(), errors[i].c_str());
    } else {
      std::printf("%-30s  e = %.2f\n", queries[i].c_str(),
                  estimates[path_of_query[i]]);
    }
  }
  // A scripted caller must be able to see "some queries did not parse"
  // without scraping stdout: failures also mean a nonzero exit.
  if (failed > 0) {
    std::fprintf(stderr, "error: %zu of %zu queries failed\n", failed,
                 queries.size());
    return 1;
  }
  return 0;
}

// `catalog convert <dir> --format F`: rewrites every entry to the target
// format IN PLACE through the atomic-rename writer — a crash mid-convert
// leaves each entry either fully old-format or fully new-format, never
// torn. Every entry is fully verified on the way in (LoadPathHistogram
// runs the strictest tier for its format), so a corrupt entry is reported
// and left untouched rather than laundered into a fresh file.
int CmdCatalogConvert(const std::string& dir) {
  if (!g_format_seen) {
    return Fail(Status::InvalidArgument(
        "catalog convert requires an explicit --format "
        "text|binary|binary-v2 target"));
  }
  auto entries = ListCatalogEntryPaths(dir);
  if (!entries.ok()) return Fail(entries.status());
  size_t converted = 0;
  size_t skipped = 0;
  size_t failed = 0;
  for (const std::string& path : *entries) {
    auto current = SniffCatalogFormat(path);
    if (current.ok() && *current == g_format) {
      ++skipped;
      std::printf("skip      %s (already %s)\n", path.c_str(),
                  CatalogFormatName(g_format));
      continue;
    }
    auto loaded = LoadPathHistogram(path);
    if (!loaded.ok()) {
      ++failed;
      std::fprintf(stderr, "CORRUPT   %s: %s (left untouched)\n",
                   path.c_str(), loaded.status().ToString().c_str());
      continue;
    }
    Status st = SaveLoadedPathHistogram(*loaded, path, g_format);
    if (!st.ok()) {
      ++failed;
      std::fprintf(stderr, "FAILED    %s: %s\n", path.c_str(),
                   st.ToString().c_str());
      continue;
    }
    ++converted;
    std::printf("converted %s -> %s\n", path.c_str(),
                CatalogFormatName(g_format));
  }
  std::printf("convert %s: %zu converted, %zu skipped, %zu failed\n",
              dir.c_str(), converted, skipped, failed);
  return failed > 0 ? 1 : 0;
}

int CmdCatalog(const std::vector<std::string>& args) {
  // `catalog verify [--json] <dir>`: --json may come before or after the
  // directory; the exit-code contract (nonzero iff any entry is corrupt or
  // the walk fails) is identical in both output modes.
  std::vector<std::string> rest;
  bool json = false;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else {
      rest.push_back(arg);
    }
  }
  if (rest.size() == 2 && rest[0] == "convert") {
    return CmdCatalogConvert(rest[1]);
  }
  if (rest.size() != 2 || rest[0] != "verify") return Usage();
  auto report = VerifyCatalogDir(rest[1]);
  if (!report.ok()) return Fail(report.status());

  // The maintenance journal, when present, is part of the catalog's
  // integrity story: walk it frame by frame (ScanDeltaJournal checks every
  // CRC) without modifying it. A torn tail is a WARNING (startup recovery
  // amputates it); mid-file corruption or a bad header is a failure.
  const std::string journal_path = rest[1] + "/maint/deltas.journal";
  auto journal = maint::ScanDeltaJournal(journal_path);
  const bool have_journal =
      journal.ok() || journal.status().code() != StatusCode::kNotFound;
  bool journal_corrupt = false;
  std::string journal_json = "null";
  if (have_journal) {
    if (journal.ok()) {
      size_t edges = 0;
      for (const auto& record : journal->records) {
        if (record.is_edge()) ++edges;
      }
      journal_json = "{\"path\":\"" + JsonEscape(journal_path) + "\"";
      journal_json += ",\"records\":" + std::to_string(journal->records.size());
      journal_json += ",\"edge_records\":" + std::to_string(edges);
      journal_json +=
          ",\"last_good_offset\":" + std::to_string(journal->last_good_offset);
      journal_json += ",\"file_bytes\":" + std::to_string(journal->file_bytes);
      journal_json +=
          std::string(",\"torn_tail\":") + (journal->torn_tail ? "true" : "false");
      journal_json += ",\"tail_bytes\":" + std::to_string(journal->tail_bytes);
      journal_json += "}";
    } else {
      journal_corrupt = true;
      journal_json = "{\"path\":\"" + JsonEscape(journal_path) +
                     "\",\"error\":\"" +
                     JsonEscape(journal.status().message()) + "\"}";
    }
  }
  const bool failed = !report->failures.empty() || journal_corrupt;

  if (json) {
    // Splice the journal status into the report object so consumers keep
    // one top-level JSON value.
    std::string out = CatalogLoadReportToJson(*report, rest[1]);
    out.insert(out.size() - 1, ",\"journal\":" + journal_json);
    std::printf("%s\n", out.c_str());
    return failed ? 1 : 0;
  }
  for (size_t i = 0; i < report->loaded.size(); ++i) {
    const std::string& name = report->loaded[i];
    // entries[] is parallel to loaded[] when the format sniff succeeded.
    if (i < report->entries.size() && report->entries[i].name == name) {
      const CatalogEntryInfo& e = report->entries[i];
      std::printf("ok        %s format=%s aligned=%s\n", name.c_str(),
                  e.format.c_str(), e.aligned ? "yes" : "no");
    } else {
      std::printf("ok        %s\n", name.c_str());
    }
  }
  for (const CatalogLoadFailure& f : report->failures) {
    std::string where = f.path;
    if (!f.section.empty()) where += " [" + f.section + "]";
    std::fprintf(stderr, "CORRUPT   %s: %s\n", where.c_str(),
                 f.status.ToString().c_str());
  }
  if (have_journal) {
    if (journal.ok()) {
      size_t edges = 0;
      for (const auto& record : journal->records) {
        if (record.is_edge()) ++edges;
      }
      std::printf("journal   %s: %zu records (%zu edges), "
                  "last_good_offset=%llu%s\n",
                  journal_path.c_str(), journal->records.size(), edges,
                  static_cast<unsigned long long>(journal->last_good_offset),
                  journal->torn_tail ? " [TORN TAIL: recovery will truncate]"
                                     : "");
    } else {
      std::fprintf(stderr, "CORRUPT   journal %s: %s\n", journal_path.c_str(),
                   journal.status().ToString().c_str());
    }
  }
  std::printf("verified %s: %zu ok, %zu corrupt\n", rest[1].c_str(),
              report->loaded.size(),
              report->failures.size() + (journal_corrupt ? 1 : 0));
  return failed ? 1 : 0;
}

// SIGTERM/SIGINT raise this flag; the serve main loop polls it and turns
// it into a graceful drain. A flag (not direct RequestStop from the
// handler) keeps the handler async-signal-safe.
volatile std::sig_atomic_t g_serve_signal = 0;

void ServeSignalHandler(int) { g_serve_signal = 1; }

int CmdServe(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  serve::ServeOptions options;
  options.socket_path = args[0];
  options.catalog_dir = args[1];
  for (size_t i = 2; i < args.size(); ++i) {
    const size_t eq = args[i].find('=');
    if (eq == std::string::npos) {
      return Fail(Status::InvalidArgument(
          "serve options are key=value pairs, got '" + args[i] + "'"));
    }
    const std::string key = args[i].substr(0, eq);
    // String-valued options first — everything below parses as u64.
    if (key == "graph") {
      options.graph_path = args[i].substr(eq + 1);
      continue;
    }
    auto value = serve::ParseU64Option(key, args[i].substr(eq + 1));
    if (!value.ok()) return Fail(value.status());
    if (key == "workers") {
      if (*value == 0) {
        return Fail(Status::InvalidArgument("workers must be >= 1"));
      }
      options.num_workers = *value;
    } else if (key == "queue") {
      options.queue_capacity = *value;
    } else if (key == "deadline_ms") {
      options.default_deadline_ms = *value;
    } else if (key == "idle_ms") {
      options.idle_timeout_ms = *value;
    } else if (key == "maint_k") {
      options.maint_k = *value;
    } else if (key == "compact_every") {
      options.compact_every_records = *value;
    } else if (key == "mmap_budget") {
      options.mmap_cache_bytes = *value;
    } else {
      return Fail(Status::InvalidArgument(
          "unknown serve option '" + key +
          "' (workers, queue, deadline_ms, idle_ms, graph, maint_k, "
          "compact_every, mmap_budget)"));
    }
  }

  // Handlers go in BEFORE Start(): the socket becomes connectable inside
  // Start, and a supervisor may signal the moment it appears.
  std::signal(SIGTERM, ServeSignalHandler);
  std::signal(SIGINT, ServeSignalHandler);

  serve::ServeServer server(options);
  Status st = server.Start();
  if (!st.ok()) return Fail(st);
  const auto state = server.registry_state();
  std::printf("serving %zu catalog entr%s from %s on %s "
              "(workers=%zu queue=%zu deadline_ms=%llu)%s\n",
              state->entries.size(), state->entries.size() == 1 ? "y" : "ies",
              options.catalog_dir.c_str(), options.socket_path.c_str(),
              options.num_workers, options.queue_capacity,
              static_cast<unsigned long long>(options.default_deadline_ms),
              state->degraded ? " [DEGRADED: some entries quarantined]" : "");
  for (const CatalogLoadFailure& f : server.initial_report().failures) {
    std::fprintf(stderr, "quarantined %s: %s\n", f.path.c_str(),
                 f.status.ToString().c_str());
  }
  std::fflush(stdout);

  // Park until a signal or a `shutdown` request begins the drain.
  while (g_serve_signal == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining (%s)...\n",
              g_serve_signal != 0 ? "signal" : "shutdown request");
  std::fflush(stdout);
  server.RequestStop();
  server.Wait();
  std::printf("drained; served %llu requests, shed %llu connections\n",
              static_cast<unsigned long long>(
                  server.counters().requests.load()),
              static_cast<unsigned long long>(
                  server.counters().connections_shed.load()));
  return 0;
}

int CmdCall(const std::vector<std::string>& args) {
  // `call <socket> [--retries N] <request words...>`: with retries, the
  // request is resent (fresh connection, exponential backoff + jitter) on
  // transport failures and typed RETRIABLE protocol errors; fatal errors
  // and "ok" return immediately (serve/client.h CallWithRetry).
  std::vector<std::string> rest;
  size_t retries = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--retries") {
      if (i + 1 >= args.size()) return Usage();
      auto parsed = serve::ParseU64Option("--retries", args[++i]);
      if (!parsed.ok()) return Fail(parsed.status());
      retries = *parsed;
    } else {
      rest.push_back(args[i]);
    }
  }
  if (rest.size() < 2) return Usage();
  std::string request = rest[1];
  for (size_t i = 2; i < rest.size(); ++i) request += " " + rest[i];

  auto response = [&]() -> Result<std::string> {
    if (retries == 0) {
      auto client = serve::ServeClient::Connect(rest[0]);
      if (!client.ok()) return client.status();
      return client->Call(request);
    }
    serve::RetryOptions retry;
    retry.max_attempts = retries + 1;
    return serve::CallWithRetry(rest[0], request, retry);
  }();
  if (!response.ok()) return Fail(response.status());
  std::printf("%s\n", response->c_str());
  // "ok ..." is success; "err ..." (typed protocol error) exits 1 so smoke
  // tests can assert on the exit code alone.
  return response->rfind("ok", 0) == 0 ? 0 : 1;
}

int CmdAccuracy(const std::vector<std::string>& args) {
  if (args.size() != 4) return Usage();
  auto graph = LoadCliGraph(args[0]);
  if (!graph.ok()) return Fail(graph.status());
  size_t k = std::strtoull(args[1].c_str(), nullptr, 10);
  size_t beta = std::strtoull(args[3].c_str(), nullptr, 10);
  PrintBuildConfig(*graph, k);
  auto truth = ComputeSelectivities(*graph, k, CliSelectivityOptions());
  if (!truth.ok()) return Fail(truth.status());
  auto result = MeasureAccuracy(*graph, *truth, args[2], k, beta,
                                HistogramType::kVOptimal);
  if (!result.ok()) return Fail(result.status());
  std::printf("ordering=%s k=%zu beta=%zu queries=%llu\n"
              "mean |err| = %.4f   median = %.4f   p90 = %.4f   "
              "exact = %.1f%%\n",
              result->ordering.c_str(), k, beta,
              static_cast<unsigned long long>(result->errors.num_queries),
              result->errors.mean_abs_error, result->errors.median_abs_error,
              result->errors.p90_abs_error,
              100.0 * result->errors.exact_fraction);
  return 0;
}

int CmdOrderings() {
  std::printf("paper orderings:");
  for (const std::string& name : PaperOrderingNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nextras: sum-alph gray-alph gray-card random "
              "(+ ideal, sum-L2 via library API)\n");
  return 0;
}

int SelfDemo() {
  std::printf("pathest_cli self-demo (run with a subcommand for real use; "
              "see --help)\n\n");
  auto graph = BuildDataset(DatasetId::kMorenoHealth, 0.1, 42);
  if (!graph.ok()) return Fail(graph.status());
  PrintBuildConfig(*graph, 3);
  auto truth = ComputeSelectivities(*graph, 3, CliSelectivityOptions());
  if (!truth.ok()) return Fail(truth.status());
  auto ordering = MakeOrdering("sum-based", *graph, 3);
  if (!ordering.ok()) return Fail(ordering.status());
  auto estimator = PathHistogram::Build(*truth, std::move(*ordering),
                                        HistogramType::kVOptimal, 32);
  if (!estimator.ok()) return Fail(estimator.status());
  std::printf("built %s on a 0.1-scale moreno-like graph\n",
              estimator->Describe().c_str());
  for (const char* q : {"1", "1/2", "2/1/3"}) {
    auto path = LabelPath::Parse(q, graph->labels());
    if (!path.ok()) continue;
    std::printf("  %-8s true=%llu est=%.2f\n", q,
                static_cast<unsigned long long>(truth->Get(*path)),
                estimator->Estimate(*path));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A broken pipe (e.g. `pathest_cli ... | head`, or a serve client dying
  // mid-response) must be an error return, never a process-killing signal.
  IgnoreSigpipeForProcess();
  std::vector<std::string> all(argv + 1, argv + argc);
  // Strip the global flags ("--flag value" or "--flag=value") wherever they
  // appear. Every value is validated HERE, before any command runs: a
  // malformed --threads used to silently parse to 0 (= all hardware cores)
  // via strtoull.
  std::vector<std::string> rest;
  bool threads_seen = false;
  bool kernel_seen = false;
  bool strategy_seen = false;
  bool graph_seen = false;
  bool format_seen = false;
  std::string threads_text;
  std::string kernel_name;
  std::string strategy_name;
  std::string graph_spec;
  std::string format_name;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i] == "--threads" && i + 1 < all.size()) {
      threads_seen = true;
      threads_text = all[++i];
    } else if (all[i].rfind("--threads=", 0) == 0) {
      threads_seen = true;
      threads_text = all[i].substr(10);
    } else if (all[i] == "--graph" && i + 1 < all.size()) {
      graph_seen = true;
      graph_spec = all[++i];
    } else if (all[i].rfind("--graph=", 0) == 0) {
      graph_seen = true;
      graph_spec = all[i].substr(8);
    } else if (all[i] == "--kernel" && i + 1 < all.size()) {
      kernel_seen = true;
      kernel_name = all[++i];
    } else if (all[i].rfind("--kernel=", 0) == 0) {
      kernel_seen = true;
      kernel_name = all[i].substr(9);
    } else if (all[i] == "--strategy" && i + 1 < all.size()) {
      strategy_seen = true;
      strategy_name = all[++i];
    } else if (all[i].rfind("--strategy=", 0) == 0) {
      strategy_seen = true;
      strategy_name = all[i].substr(11);
    } else if (all[i] == "--format" && i + 1 < all.size()) {
      format_seen = true;
      format_name = all[++i];
    } else if (all[i].rfind("--format=", 0) == 0) {
      format_seen = true;
      format_name = all[i].substr(9);
    } else {
      rest.push_back(all[i]);
    }
  }
  if (threads_seen) {
    // An empty or non-numeric value is an error, not a silent default.
    if (threads_text.empty() ||
        threads_text.find_first_not_of("0123456789") != std::string::npos) {
      return Fail(Status::InvalidArgument(
          "invalid --threads '" + threads_text +
          "' (expected a non-negative integer; 0 = hardware cores)"));
    }
    g_num_threads = std::strtoull(threads_text.c_str(), nullptr, 10);
  }
  if (kernel_seen) {
    auto kernel = ParsePairKernel(kernel_name);
    if (!kernel.ok()) return Fail(kernel.status());
    g_kernel = *kernel;
  }
  if (strategy_seen) {
    auto strategy = ParseExtendStrategy(strategy_name);
    if (!strategy.ok()) return Fail(strategy.status());
    g_strategy = *strategy;
  }
  if (format_seen) {
    auto format = ParseCatalogFormat(format_name);
    if (!format.ok()) return Fail(format.status());
    g_format = *format;
    g_format_seen = true;
  }
  if (rest.empty()) return SelfDemo();
  std::string cmd = rest[0];
  std::vector<std::string> args(rest.begin() + 1, rest.end());
  const bool takes_graph =
      cmd == "stats" || cmd == "analyze" || cmd == "accuracy";
  // --graph stands in for the <graph-file> positional of the commands
  // that load one ("-" = stdin), so pipelines can keep the source up
  // front: `pathest_cli --graph - stats < edges.txt`.
  if (graph_seen) {
    if (!takes_graph) {
      std::fprintf(stderr,
                   "note: --graph has no effect on '%s' (it names the "
                   "graph source of stats/analyze/accuracy)\n",
                   cmd.c_str());
    } else {
      args.insert(args.begin(), graph_spec);
    }
  }
  // The engine flags only matter to commands that compute ground truth
  // (--threads also drives the ingest of a loaded graph); flag a no-op
  // combination instead of ignoring it silently.
  if ((kernel_seen || strategy_seen) && cmd != "analyze" &&
      cmd != "accuracy") {
    std::fprintf(stderr,
                 "note: --kernel/--strategy have no effect on '%s' (they "
                 "configure the selectivity build of analyze/accuracy)\n",
                 cmd.c_str());
  } else if (threads_seen && !takes_graph) {
    std::fprintf(stderr,
                 "note: --threads has no effect on '%s' (it configures "
                 "graph ingest and the selectivity build)\n",
                 cmd.c_str());
  }
  if (format_seen && cmd != "analyze" && cmd != "catalog") {
    std::fprintf(stderr,
                 "note: --format has no effect on '%s' (it picks the "
                 "catalog format analyze writes and catalog convert's "
                 "target; readers sniff)\n",
                 cmd.c_str());
  }
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "analyze") return CmdAnalyze(args);
  if (cmd == "estimate") return CmdEstimate(args);
  if (cmd == "accuracy") return CmdAccuracy(args);
  if (cmd == "catalog") return CmdCatalog(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "call") return CmdCall(args);
  if (cmd == "orderings") return CmdOrderings();
  return Usage();
}
