// Optimizer demo: path histograms driving a (toy) query optimizer.
//
// A path query l1/l2/.../lk can be evaluated left-to-right or right-to-left
// (and real engines split anywhere in between). The sane heuristic is to
// start from the MOST SELECTIVE (lowest-cardinality) end. This example uses
// a pathest histogram as the optimizer's statistics module, decides a
// direction for a workload of queries, and scores the decisions against the
// decisions an oracle with exact statistics would make.
//
// This is precisely the downstream consumer the paper's introduction
// motivates: "query optimizers rely on accurate data statistics for
// cardinality estimation during plan generation".
//
// Run:  ./optimizer_cardinality

#include <cstdio>
#include <string>

#include "core/path_histogram.h"
#include "core/workload.h"
#include "gen/datasets.h"
#include "ordering/factory.h"
#include "path/selectivity.h"

using namespace pathest;  // NOLINT — example code favors brevity

namespace {

// Direction choice: compare the cardinality of the first vs last label-path
// half; evaluate from the smaller side.
enum class Direction { kLeftToRight, kRightToLeft };

template <typename EstimateFn>
Direction ChooseDirection(const LabelPath& query, EstimateFn est) {
  size_t half = query.length() / 2;
  if (half == 0) return Direction::kLeftToRight;
  LabelPath prefix = query.Prefix(half);
  LabelPath suffix = query.Suffix(query.length() - half);
  return est(prefix) <= est(suffix) ? Direction::kLeftToRight
                                    : Direction::kRightToLeft;
}

}  // namespace

int main() {
  auto graph = BuildDataset(DatasetId::kMorenoHealth, 0.25, 42);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const size_t k = 4;
  auto truth = ComputeSelectivities(*graph, k);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }

  PathSpace space(graph->num_labels(), k);
  const size_t beta = space.size() / 32;  // tight statistics budget

  std::printf("toy optimizer on moreno-like data, k=%zu, stats budget "
              "beta=%zu of %llu domain positions\n\n",
              k, beta, static_cast<unsigned long long>(space.size()));
  std::printf("%-10s %22s %22s\n", "ordering", "direction agreement",
              "(vs exact-stats oracle)");

  // Queries: all length-3.. 4 paths that actually return results.
  std::vector<LabelPath> workload;
  for (const LabelPath& p : NonEmptyWorkload(*truth)) {
    if (p.length() >= 3) workload.push_back(p);
  }

  auto oracle = [&](const LabelPath& p) {
    return static_cast<double>(truth->Get(p));
  };

  for (const std::string& method : PaperOrderingNames()) {
    auto ordering = MakeOrdering(method, *graph, k);
    if (!ordering.ok()) continue;
    auto estimator = PathHistogram::Build(*truth, std::move(*ordering),
                                          HistogramType::kVOptimal, beta);
    if (!estimator.ok()) continue;

    size_t agree = 0;
    for (const LabelPath& q : workload) {
      Direction by_hist = ChooseDirection(
          q, [&](const LabelPath& p) { return estimator->Estimate(p); });
      Direction by_oracle = ChooseDirection(q, oracle);
      agree += (by_hist == by_oracle);
    }
    std::printf("%-10s %9zu / %-10zu %.1f%%\n", method.c_str(), agree,
                workload.size(),
                100.0 * static_cast<double>(agree) /
                    static_cast<double>(workload.size()));
  }

  std::printf("\nbetter domain orderings make the same join-direction "
              "choices as exact statistics more often — the planning wins "
              "the paper's estimator accuracy buys.\n");
  return 0;
}
