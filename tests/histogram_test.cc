// Unit tests for the Histogram container and all builder policies.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "histogram/builders.h"
#include "util/random.h"

namespace pathest {
namespace {

std::vector<uint64_t> RandomData(size_t n, uint64_t seed, uint64_t max_v) {
  Rng rng(seed);
  std::vector<uint64_t> data(n);
  for (auto& v : data) v = rng.NextBounded(max_v + 1);
  return data;
}

void ExpectValidPartition(const Histogram& h, size_t n, size_t beta) {
  ASSERT_FALSE(h.buckets().empty());
  EXPECT_LE(h.num_buckets(), beta);
  EXPECT_EQ(h.buckets().front().begin, 0u);
  EXPECT_EQ(h.buckets().back().end, n);
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    EXPECT_LT(h.buckets()[i].begin, h.buckets()[i].end);
    if (i > 0) {
      EXPECT_EQ(h.buckets()[i].begin, h.buckets()[i - 1].end);
    }
  }
}

TEST(HistogramTest, FromBoundariesComputesSums) {
  std::vector<uint64_t> data = {1, 2, 3, 4, 5, 6};
  auto h = Histogram::FromBoundaries(data, {2, 4});
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->num_buckets(), 3u);
  EXPECT_DOUBLE_EQ(h->buckets()[0].sum, 3.0);
  EXPECT_DOUBLE_EQ(h->buckets()[1].sum, 7.0);
  EXPECT_DOUBLE_EQ(h->buckets()[2].sum, 11.0);
  EXPECT_DOUBLE_EQ(h->Estimate(0), 1.5);
  EXPECT_DOUBLE_EQ(h->Estimate(3), 3.5);
  EXPECT_DOUBLE_EQ(h->Estimate(5), 5.5);
  EXPECT_EQ(h->domain_size(), 6u);
}

TEST(HistogramTest, FromBoundariesValidates) {
  std::vector<uint64_t> data = {1, 2, 3};
  EXPECT_FALSE(Histogram::FromBoundaries(data, {0}).ok());   // not > 0
  EXPECT_FALSE(Histogram::FromBoundaries(data, {3}).ok());   // not < n
  EXPECT_FALSE(Histogram::FromBoundaries(data, {2, 2}).ok());  // not strict
  EXPECT_FALSE(Histogram::FromBoundaries({}, {}).ok());      // empty domain
}

TEST(HistogramTest, BucketSse) {
  Bucket b;
  b.begin = 0;
  b.end = 4;
  // values 1, 1, 3, 3 -> mean 2, SSE = 4.
  b.sum = 8;
  b.sumsq = 1 + 1 + 9 + 9;
  EXPECT_DOUBLE_EQ(b.Sse(), 4.0);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(HistogramTest, SingleBucketEstimateIsGlobalMean) {
  std::vector<uint64_t> data = {0, 0, 12};
  auto h = Histogram::FromBoundaries(data, {});
  ASSERT_TRUE(h.ok());
  for (uint64_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(h->Estimate(i), 4.0);
}

TEST(EquiWidthTest, BucketsHaveNearEqualWidth) {
  auto data = RandomData(100, 1, 50);
  auto h = BuildEquiWidth(data, 7);
  ASSERT_TRUE(h.ok());
  ExpectValidPartition(*h, 100, 7);
  EXPECT_EQ(h->num_buckets(), 7u);
  for (const Bucket& b : h->buckets()) {
    EXPECT_GE(b.width(), 100 / 7);
    EXPECT_LE(b.width(), 100 / 7 + 1);
  }
}

TEST(EquiWidthTest, BetaLargerThanDomainClamps) {
  std::vector<uint64_t> data = {5, 6, 7};
  auto h = BuildEquiWidth(data, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(h->Estimate(i), static_cast<double>(data[i]));
  }
}

TEST(EquiDepthTest, MassIsBalanced) {
  auto data = RandomData(500, 2, 100);
  auto h = BuildEquiDepth(data, 10);
  ASSERT_TRUE(h.ok());
  ExpectValidPartition(*h, 500, 10);
  double total = 0.0;
  for (const Bucket& b : h->buckets()) total += b.sum;
  double target = total / static_cast<double>(h->num_buckets());
  // Each bucket within 3x of target mass (loose: single values can exceed).
  for (const Bucket& b : h->buckets()) {
    EXPECT_LE(b.sum, target * 3 + 100);
  }
}

TEST(EquiDepthTest, HandlesAllZeros) {
  std::vector<uint64_t> data(20, 0);
  auto h = BuildEquiDepth(data, 4);
  ASSERT_TRUE(h.ok());
  ExpectValidPartition(*h, 20, 4);
  EXPECT_DOUBLE_EQ(h->Estimate(7), 0.0);
}

TEST(EquiDepthTest, SkewedMassIsolatesHeavyRegion) {
  std::vector<uint64_t> data(100, 1);
  data[50] = 1000;
  auto h = BuildEquiDepth(data, 4);
  ASSERT_TRUE(h.ok());
  ExpectValidPartition(*h, 100, 4);
  // The heavy position must not share a bucket with the whole domain.
  const Bucket& heavy = h->BucketFor(50);
  EXPECT_LT(heavy.width(), 60u);
}

// Brute-force optimal SSE by trying all boundary placements.
double BruteVOptimalSse(const std::vector<uint64_t>& data, size_t beta,
                        size_t start = 0) {
  if (beta == 1) {
    Bucket b = MakeBucket(data, start, data.size());
    return b.Sse();
  }
  double best = 1e300;
  for (size_t cut = start + 1; cut + (beta - 1) <= data.size(); ++cut) {
    Bucket b = MakeBucket(data, start, cut);
    double rest = BruteVOptimalSse(data, beta - 1, cut);
    best = std::min(best, b.Sse() + rest);
  }
  return best;
}

TEST(VOptimalExactTest, MatchesBruteForce) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    auto data = RandomData(12, seed, 20);
    for (size_t beta : {1u, 2u, 3u, 4u}) {
      auto h = BuildVOptimalExact(data, beta);
      ASSERT_TRUE(h.ok());
      ExpectValidPartition(*h, data.size(), beta);
      double brute = BruteVOptimalSse(data, beta);
      EXPECT_NEAR(h->TotalSse(), brute, 1e-6)
          << "seed " << seed << " beta " << beta;
    }
  }
  // Slightly larger domains exercise the Hirschberg recursion (both the
  // forward and backward rows) through several levels.
  for (uint64_t seed : {5ULL, 6ULL}) {
    auto data = RandomData(16, seed, 30);
    for (size_t beta : {5u, 6u, 7u, 15u, 16u}) {
      auto h = BuildVOptimalExact(data, beta);
      ASSERT_TRUE(h.ok());
      ExpectValidPartition(*h, data.size(), beta);
      double brute = BruteVOptimalSse(data, beta);
      EXPECT_NEAR(h->TotalSse(), brute, 1e-6)
          << "seed " << seed << " beta " << beta;
    }
  }
}

TEST(VOptimalExactTest, DefaultCeilingAllowsMidSizeDomains) {
  // The pruned-scan + Hirschberg DP raised the default max_n from 4096 to
  // 16384; a 5000-value domain that the seed implementation refused now
  // builds, and the result is never worse than the greedy approximation.
  auto data = RandomData(5000, 17, 100);
  auto exact = BuildVOptimalExact(data, 16);
  ASSERT_TRUE(exact.ok());
  ExpectValidPartition(*exact, data.size(), 16);
  auto greedy = BuildVOptimalGreedy(data, 16);
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(exact->TotalSse(), greedy->TotalSse() + 1e-6);
}

TEST(VOptimalExactTest, PerfectFitWhenBetaCoversSteps) {
  // Three constant plateaus -> zero SSE with 3 buckets.
  std::vector<uint64_t> data = {5, 5, 5, 9, 9, 9, 2, 2, 2};
  auto h = BuildVOptimalExact(data, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->TotalSse(), 0.0, 1e-9);
}

TEST(VOptimalExactTest, RefusesHugeDomain) {
  std::vector<uint64_t> data(5000, 1);
  auto h = BuildVOptimalExact(data, 4, /*max_n=*/4096);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kResourceExhausted);
}

TEST(VOptimalGreedyTest, ValidPartitionAndExactBucketCount) {
  auto data = RandomData(1000, 5, 200);
  for (size_t beta : {1u, 2u, 10u, 100u, 500u, 1000u}) {
    auto h = BuildVOptimalGreedy(data, beta);
    ASSERT_TRUE(h.ok());
    ExpectValidPartition(*h, 1000, beta);
    EXPECT_EQ(h->num_buckets(), beta);
  }
}

TEST(VOptimalGreedyTest, ZeroSseOnPlateaus) {
  std::vector<uint64_t> data;
  for (int p = 0; p < 5; ++p) {
    for (int i = 0; i < 10; ++i) data.push_back(p * 7);
  }
  auto h = BuildVOptimalGreedy(data, 5);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->TotalSse(), 0.0, 1e-9);
}

TEST(VOptimalGreedyTest, CloseToExactOnSmallInputs) {
  // Greedy is a heuristic; on small random inputs it should stay within a
  // small constant factor of the DP optimum.
  for (uint64_t seed : {10ULL, 11ULL, 12ULL, 13ULL, 14ULL}) {
    auto data = RandomData(64, seed, 30);
    for (size_t beta : {4u, 8u, 16u}) {
      auto exact = BuildVOptimalExact(data, beta);
      auto greedy = BuildVOptimalGreedy(data, beta);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(greedy.ok());
      EXPECT_LE(greedy->TotalSse(), exact->TotalSse() * 2.0 + 1e-9)
          << "seed " << seed << " beta " << beta;
    }
  }
}

TEST(MaxDiffTest, CutsAtLargestGaps) {
  std::vector<uint64_t> data = {1, 1, 1, 100, 100, 100, 1, 1, 1};
  auto h = BuildMaxDiff(data, 3);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->num_buckets(), 3u);
  EXPECT_EQ(h->buckets()[0].end, 3u);
  EXPECT_EQ(h->buckets()[1].end, 6u);
  EXPECT_NEAR(h->TotalSse(), 0.0, 1e-9);
}

TEST(MaxDiffTest, SingleBucket) {
  std::vector<uint64_t> data = {3, 9, 1};
  auto h = BuildMaxDiff(data, 1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 1u);
}

TEST(EndBiasedTest, IsolatesHeavyHitters) {
  std::vector<uint64_t> data(50, 2);
  data[10] = 500;
  data[30] = 900;
  auto h = BuildEndBiased(data, 9);  // 4 singletons allowed
  ASSERT_TRUE(h.ok());
  ExpectValidPartition(*h, 50, 9);
  EXPECT_EQ(h->BucketFor(10).width(), 1u);
  EXPECT_EQ(h->BucketFor(30).width(), 1u);
  EXPECT_DOUBLE_EQ(h->Estimate(10), 500.0);
  EXPECT_DOUBLE_EQ(h->Estimate(30), 900.0);
}

TEST(EndBiasedTest, RespectsBudget) {
  auto data = RandomData(200, 7, 1000);
  for (size_t beta : {2u, 5u, 9u, 33u}) {
    auto h = BuildEndBiased(data, beta);
    ASSERT_TRUE(h.ok());
    EXPECT_LE(h->num_buckets(), beta);
  }
}

TEST(BuilderDispatchTest, AllTypesBuild) {
  auto data = RandomData(128, 9, 40);
  for (HistogramType type :
       {HistogramType::kEquiWidth, HistogramType::kEquiDepth,
        HistogramType::kVOptimal, HistogramType::kVOptimalExact,
        HistogramType::kMaxDiff, HistogramType::kEndBiased}) {
    auto h = BuildHistogram(type, data, 8);
    ASSERT_TRUE(h.ok()) << HistogramTypeName(type);
    ExpectValidPartition(*h, 128, 8);
  }
}

TEST(BuilderDispatchTest, NamesRoundTrip) {
  for (HistogramType type :
       {HistogramType::kEquiWidth, HistogramType::kEquiDepth,
        HistogramType::kVOptimal, HistogramType::kVOptimalExact,
        HistogramType::kMaxDiff, HistogramType::kEndBiased}) {
    auto parsed = ParseHistogramType(HistogramTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseHistogramType("nope").ok());
}

TEST(BuilderInvariantTest, MoreBucketsNeverIncreaseSse) {
  auto data = RandomData(256, 21, 100);
  double prev = 1e300;
  for (size_t beta : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    auto h = BuildVOptimalGreedy(data, beta);
    ASSERT_TRUE(h.ok());
    EXPECT_LE(h->TotalSse(), prev + 1e-9) << "beta " << beta;
    prev = h->TotalSse();
  }
}

}  // namespace
}  // namespace pathest
