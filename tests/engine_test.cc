// Tests for the engine layer: ThreadPool/ParallelFor scheduling guarantees,
// heaviest-first work ordering, and EvalContext scratch reuse.

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/eval_context.h"
#include "engine/schedule.h"
#include "engine/thread_pool.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace {

using testing_util::SmallGraph;

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (size_t num_threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(num_threads);
    ASSERT_EQ(pool.num_threads(), num_threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t i, size_t worker) {
      ASSERT_LT(i, kN);
      ASSERT_LT(worker, pool.num_threads());
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ZeroAndSingleItemJobs) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A 1-item job runs inline on the caller (worker 0).
  pool.ParallelFor(1, [&](size_t i, size_t worker) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(worker, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SerialPoolRunsInOrderOnCaller) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t i, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    const size_t n = 1 + static_cast<size_t>(round % 7);
    pool.ParallelFor(n, [&](size_t i, size_t) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(2);
  pool.ParallelFor(2, [&](size_t i, size_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  ThreadPool pool(0);  // 0 = DefaultThreads
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreads());
}

TEST(ScheduleTest, HeaviestFirstOrderSortsDescending) {
  const std::vector<uint64_t> weights{5, 100, 7, 100, 1, 42};
  const std::vector<size_t> order = HeaviestFirstOrder(weights);
  // Descending weight, ties (the two 100s) by ascending index.
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 5, 2, 0, 4}));
}

TEST(ScheduleTest, HeaviestFirstOrderIsAPermutation) {
  const std::vector<uint64_t> weights{3, 3, 3, 0, 9, 3, 2};
  std::vector<size_t> order = HeaviestFirstOrder(weights);
  ASSERT_EQ(order.size(), weights.size());
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // All-equal weights degrade to the identity (stable ties).
  EXPECT_EQ(HeaviestFirstOrder({7, 7, 7}), (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(HeaviestFirstOrder({}).empty());
}

TEST(EvalContextTest, RootSubtreeIsPureAndContextReusable) {
  Graph g = SmallGraph();
  const size_t k = 3;
  PathSpace space(g.num_labels(), k);
  SelectivityOptions options;

  // Evaluate every root twice through ONE context; a full fresh evaluation
  // must agree, proving prior scratch contents don't leak into results.
  EvalContext ctx(g.num_vertices(), g.num_labels(), k);
  SelectivityMap first(space);
  SelectivityMap second(space);
  for (LabelId root = 0; root < g.num_labels(); ++root) {
    ASSERT_TRUE(EvaluateRootSubtree(g, ctx, root, k, options, &first).ok());
  }
  for (LabelId root = g.num_labels(); root-- > 0;) {  // reverse order
    ASSERT_TRUE(EvaluateRootSubtree(g, ctx, root, k, options, &second).ok());
  }
  EXPECT_EQ(first.values(), second.values());

  auto reference = ComputeSelectivities(g, k);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(first.values(), reference->values());
}

TEST(EvalContextTest, OversizedContextEvaluatesSmallerGraph) {
  // The documented reuse contract: a context built for AT MOST some counts
  // must evaluate any smaller graph — kernel thresholds and the leaf pass
  // have to use the graph's real dimensions, not the context capacities.
  Graph g = SmallGraph();
  const size_t k = 3;
  PathSpace space(g.num_labels(), k);
  EvalContext ctx(g.num_vertices() + 100, g.num_labels() + 5, k + 2);
  SelectivityOptions options;
  SelectivityMap map(space);
  for (LabelId root = 0; root < g.num_labels(); ++root) {
    ASSERT_TRUE(EvaluateRootSubtree(g, ctx, root, k, options, &map).ok());
  }
  auto reference = ComputeSelectivities(g, k);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(map.values(), reference->values());
}

TEST(ThreadPoolTest, TaskExceptionRethrownFromParallelFor) {
  // A throwing task must not terminate the process (worker-boundary
  // catch); the first exception is rethrown from ParallelFor itself.
  for (size_t num_threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(num_threads);
    std::atomic<size_t> ran{0};
    bool caught = false;
    try {
      pool.ParallelFor(64, [&](size_t i, size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 7) throw std::runtime_error("task failed on index 7");
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "task failed on index 7");
    }
    EXPECT_TRUE(caught) << num_threads << " threads";
    // The failure stops new indices; the pool never claims completeness.
    EXPECT_LE(ran.load(), 64u);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   16, [](size_t, size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  // The next job runs clean: no sticky exception, every index exactly once.
  std::vector<std::atomic<int>> hits(32);
  pool.ParallelFor(hits.size(), [&](size_t i, size_t) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  // And a second failing job still reports (first exception wins, others
  // are swallowed at the worker boundary).
  EXPECT_THROW(pool.ParallelFor(
                   8, [](size_t, size_t) { throw std::string("not even an "
                                                             "exception"); }),
               std::string);
}

TEST(ThreadPoolTest, DestructionImmediatelyAfterConstruction) {
  // The destructor must join workers that never saw a job — repeatedly,
  // since the failure mode (a worker missing the shutdown wake) is a
  // race, not a deterministic bug.
  for (int i = 0; i < 50; ++i) {
    ThreadPool pool(4);
  }
}

TEST(ThreadPoolTest, DestructionRightAfterJobsDoesNotHang) {
  // Lifecycle stress: construct, run a tiny job, destroy — the shutdown
  // signal must never race a worker that is still draining the last job.
  for (int i = 0; i < 30; ++i) {
    ThreadPool pool(3);
    std::atomic<size_t> ran{0};
    pool.ParallelFor(5, [&](size_t, size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 5u);
  }
}

TEST(ThreadPoolTest, SurvivesRepeatedExceptionJobs) {
  // Exception recovery is not one-shot: alternate failing and clean jobs
  // on one pool and demand full correctness from every clean one.
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        pool.ParallelFor(16,
                         [](size_t, size_t) {
                           throw std::runtime_error("round failure");
                         }),
        std::runtime_error);
    std::vector<std::atomic<int>> hits(24);
    pool.ParallelFor(hits.size(), [&](size_t i, size_t) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ExternallySerializedSubmittersShareOnePool) {
  // The contract allows one in-flight job at a time but not only from the
  // constructing thread: several submitter threads take turns (their own
  // mutex) driving the SAME pool, which must hand every job's indices out
  // exactly once regardless of which thread called ParallelFor.
  ThreadPool pool(4);
  std::mutex turn;
  std::atomic<size_t> total{0};
  constexpr size_t kJobsPerSubmitter = 20;
  constexpr size_t kIndicesPerJob = 32;
  std::vector<std::thread> submitters;
  for (int s = 0; s < 3; ++s) {
    submitters.emplace_back([&] {
      for (size_t j = 0; j < kJobsPerSubmitter; ++j) {
        std::lock_guard<std::mutex> lock(turn);
        pool.ParallelFor(kIndicesPerJob, [&](size_t, size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 3 * kJobsPerSubmitter * kIndicesPerJob);
}

TEST(EvalContextTest, RootSubtreeWritesOnlyItsSlice) {
  Graph g = SmallGraph();
  const size_t k = 3;
  PathSpace space(g.num_labels(), k);
  EvalContext ctx(g.num_vertices(), g.num_labels(), k);
  SelectivityOptions options;

  const LabelId root = 1;
  SelectivityMap map(space);
  ASSERT_TRUE(EvaluateRootSubtree(g, ctx, root, k, options, &map).ok());
  space.ForEach([&](const LabelPath& p) {
    if (p.label(0) != root) {
      EXPECT_EQ(map.Get(p), 0u) << "foreign-slice write at " << p.ToIdString();
    }
  });
}

}  // namespace
}  // namespace pathest
