// The bit-identity oracle of the incremental rebuild
// (maint/incremental.h): for random graphs, random delta batches, and
// every (k, kernel, strategy, thread count) combination, patching an old
// selectivity map with IncrementalSelectivities must equal a full
// ComputeSelectivities on the patched graph EXACTLY — the maps hold exact
// uint64 counts, so equality is ==, not approximate. The delta batches
// deliberately cover the awkward shapes: no-op adds of present edges,
// no-op removes of absent edges, edges landing on brand-new vertices,
// removals that empty a label's edge list entirely, and add-then-remove
// pairs inside one batch (last-op-wins).

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "maint/incremental.h"
#include "path/selectivity.h"
#include "test_util.h"

namespace pathest {
namespace maint {
namespace {

struct EdgeTriple {
  uint32_t src, dst, label;
  bool operator<(const EdgeTriple& o) const {
    return std::tie(src, dst, label) < std::tie(o.src, o.dst, o.label);
  }
};

// A random multi-label graph with reverse CSRs (the incremental engine's
// backward cones need them).
Graph RandomGraph(uint32_t seed, size_t num_vertices, size_t num_labels,
                  size_t num_edges, std::vector<EdgeTriple>* edges_out) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<uint32_t> vertex(
      0, static_cast<uint32_t>(num_vertices - 1));
  std::uniform_int_distribution<uint32_t> label(
      0, static_cast<uint32_t>(num_labels - 1));
  GraphBuilder builder;
  for (size_t l = 0; l < num_labels; ++l) {
    builder.AddLabel(std::string(1, static_cast<char>('a' + l)));
  }
  for (size_t e = 0; e < num_edges; ++e) {
    EdgeTriple t{vertex(rng), vertex(rng), label(rng)};
    builder.AddEdge(t.src, t.label, t.dst);
    if (edges_out) edges_out->push_back(t);
  }
  auto graph = builder.Build(/*with_reverse=*/true);
  PATHEST_CHECK(graph.ok(), "random graph build failed");
  return std::move(graph).ValueOrDie();
}

// A random delta batch exercising every shape: genuine adds, adds of
// edges already present (no-op), removes of present edges, removes of
// absent edges (no-op), and adds onto vertices past the current range.
std::vector<EdgeDelta> RandomDeltas(uint32_t seed, size_t count,
                                    const std::vector<EdgeTriple>& edges,
                                    size_t num_vertices, size_t num_labels,
                                    bool with_new_vertices) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<uint32_t> vertex(
      0, static_cast<uint32_t>(num_vertices - 1));
  std::uniform_int_distribution<uint32_t> label(
      0, static_cast<uint32_t>(num_labels - 1));
  std::uniform_int_distribution<size_t> pick(0, edges.size() - 1);
  std::uniform_int_distribution<int> shape(0, with_new_vertices ? 4 : 3);
  std::vector<EdgeDelta> deltas;
  for (size_t i = 0; i < count; ++i) {
    switch (shape(rng)) {
      case 0:  // fresh add (may or may not collide — both are legal)
        deltas.push_back({true, vertex(rng), vertex(rng), label(rng)});
        break;
      case 1: {  // no-op add of a present edge
        const EdgeTriple& t = edges[pick(rng)];
        deltas.push_back({true, t.src, t.dst, t.label});
        break;
      }
      case 2: {  // remove a present edge
        const EdgeTriple& t = edges[pick(rng)];
        deltas.push_back({false, t.src, t.dst, t.label});
        break;
      }
      case 3:  // no-op remove (absent with overwhelming probability)
        deltas.push_back({false, vertex(rng), vertex(rng), label(rng)});
        break;
      default:  // add landing on brand-new vertices
        deltas.push_back({true,
                          static_cast<uint32_t>(num_vertices + i),
                          static_cast<uint32_t>(num_vertices + i + 1),
                          label(rng)});
        break;
    }
  }
  return deltas;
}

std::string GraphText(const Graph& graph) {
  std::ostringstream out;
  PATHEST_CHECK(WriteGraphText(graph, &out).ok(), "write failed");
  return out.str();
}

// The oracle assertion: incremental(old_map, deltas) == full(patched),
// bit for bit, across kernels × strategies × thread counts.
void ExpectBitIdentity(const Graph& graph, const std::vector<EdgeDelta>& deltas,
                       size_t k, const std::string& what) {
  SelectivityOptions base;
  auto old_map = ComputeSelectivities(graph, k, base);
  ASSERT_TRUE(old_map.ok()) << what << ": " << old_map.status().ToString();
  auto patched = PatchGraph(graph, deltas);
  ASSERT_TRUE(patched.ok()) << what << ": " << patched.status().ToString();

  for (PairKernel kernel :
       {PairKernel::kAuto, PairKernel::kSparse, PairKernel::kDense}) {
    for (ExtendStrategy strategy :
         {ExtendStrategy::kFused, ExtendStrategy::kPerLabel}) {
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
        SelectivityOptions options;
        options.kernel = kernel;
        options.strategy = strategy;
        options.num_threads = threads;
        auto full = ComputeSelectivities(*patched, k, options);
        ASSERT_TRUE(full.ok()) << what;
        IncrementalStats stats;
        auto inc =
            IncrementalSelectivities(*patched, *old_map, deltas, options,
                                     &stats);
        ASSERT_TRUE(inc.ok()) << what << ": " << inc.status().ToString();
        ASSERT_EQ(inc->values(), full->values())
            << what << " k=" << k << " kernel=" << static_cast<int>(kernel)
            << " strategy=" << static_cast<int>(strategy)
            << " threads=" << threads;
        EXPECT_LE(stats.touched_roots, stats.total_roots) << what;
      }
    }
  }
}

TEST(EdgeDeltasFromRecordsTest, ExtractsEdgesSkipsBarriersAndMarkers) {
  std::vector<DeltaRecord> records = {
      DeltaRecord::Compaction(1), DeltaRecord::AddEdge(1, 2, 0),
      DeltaRecord::Barrier(2), DeltaRecord::RemoveEdge(3, 4, 1),
      DeltaRecord::AddEdge(5, 6, 2)};
  auto deltas = EdgeDeltasFromRecords(records);
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_EQ(deltas[0], (EdgeDelta{true, 1, 2, 0}));
  EXPECT_EQ(deltas[1], (EdgeDelta{false, 3, 4, 1}));
  EXPECT_EQ(deltas[2], (EdgeDelta{true, 5, 6, 2}));
}

TEST(PatchGraphTest, SetSemanticsAndIdempotentReplay) {
  Graph graph = testing_util::SmallGraph();
  const LabelId a = *graph.labels().Find("a");
  const LabelId b = *graph.labels().Find("b");
  std::vector<EdgeDelta> deltas = {
      {true, 0, 1, a},   // no-op: already present
      {false, 3, 0, 2},  // remove the only "c" edge (label emptied)
      {true, 10, 11, b},  // new vertices grow the range
      {false, 9, 9, b},  // no-op: absent
  };
  auto once = PatchGraph(graph, deltas);
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  EXPECT_GE(once->num_vertices(), 12u);
  EXPECT_EQ(once->LabelCardinality(2), 0u);  // "c" emptied
  EXPECT_EQ(once->num_labels(), graph.num_labels());

  // Replaying the same batch over the patched graph is a no-op: the
  // journal's recovery story depends on this.
  auto twice = PatchGraph(*once, deltas);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(GraphText(*twice), GraphText(*once));

  // Last-op-wins within one batch.
  std::vector<EdgeDelta> flip = {{true, 20, 21, a}, {false, 20, 21, a}};
  auto flipped = PatchGraph(graph, flip);
  ASSERT_TRUE(flipped.ok());
  std::vector<EdgeDelta> back = {{false, 20, 21, a}, {true, 20, 21, a}};
  auto added = PatchGraph(graph, back);
  ASSERT_TRUE(added.ok());
  EXPECT_NE(GraphText(*flipped), GraphText(*added));

  // A label id outside the dictionary is a typed error, not a new label.
  std::vector<EdgeDelta> bad = {{true, 0, 1, 99}};
  EXPECT_EQ(PatchGraph(graph, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, SmallGraphAllKsAllShapes) {
  Graph graph = testing_util::SmallGraph();
  const LabelId a = *graph.labels().Find("a");
  const LabelId c = *graph.labels().Find("c");
  std::vector<EdgeDelta> deltas = {
      {true, 2, 1, a},    // genuine add
      {false, 3, 0, c},   // empty label "c"
      {true, 0, 1, a},    // no-op add
      {true, 4, 5, c},    // resurrect "c" on new vertices
  };
  for (size_t k : {size_t{2}, size_t{3}, size_t{4}}) {
    ExpectBitIdentity(graph, deltas, k, "small graph");
  }
}

TEST(IncrementalTest, EmptyBatchIsExactNoOp) {
  Graph graph = testing_util::SmallGraph();
  auto old_map = ComputeSelectivities(graph, 3);
  ASSERT_TRUE(old_map.ok());
  auto inc = IncrementalSelectivities(graph, *old_map, {}, {});
  ASSERT_TRUE(inc.ok());
  EXPECT_EQ(inc->values(), old_map->values());
}

TEST(IncrementalTest, RandomGraphGridIsBitIdentical) {
  // The main oracle grid. Modest sizes keep the 18-combination inner loop
  // affordable; the seeds vary topology, delta mix, and batch size.
  struct Case {
    uint32_t seed;
    size_t vertices, labels, edges, deltas;
    bool new_vertices;
  };
  const std::vector<Case> cases = {
      {11, 24, 3, 60, 8, false},
      {22, 40, 4, 120, 16, true},
      {33, 16, 2, 50, 6, true},
      {44, 60, 5, 150, 24, false},
  };
  for (const Case& c : cases) {
    std::vector<EdgeTriple> edges;
    Graph graph = RandomGraph(c.seed, c.vertices, c.labels, c.edges, &edges);
    std::vector<EdgeDelta> deltas =
        RandomDeltas(c.seed * 7 + 1, c.deltas, edges, c.vertices, c.labels,
                     c.new_vertices);
    for (size_t k : {size_t{2}, size_t{3}}) {
      ExpectBitIdentity(graph, deltas, k,
                        "seed=" + std::to_string(c.seed));
    }
  }
  // One deeper case: k=4 over a small graph.
  std::vector<EdgeTriple> edges;
  Graph graph = RandomGraph(55, 14, 3, 40, &edges);
  std::vector<EdgeDelta> deltas =
      RandomDeltas(56, 10, edges, 14, 3, /*with_new_vertices=*/true);
  ExpectBitIdentity(graph, deltas, 4, "deep seed=55");
}

TEST(IncrementalTest, RemoveEveryEdgeOfALabel) {
  // The hardest emptying shape: the batch removes EVERY edge of one label,
  // so its whole root subtree must collapse to zero — and every other
  // root's paths THROUGH that label must vanish too.
  std::vector<EdgeTriple> edges;
  Graph graph = RandomGraph(77, 20, 3, 70, &edges);
  std::vector<EdgeDelta> deltas;
  for (const EdgeTriple& t : edges) {
    if (t.label == 1) deltas.push_back({false, t.src, t.dst, t.label});
  }
  ASSERT_FALSE(deltas.empty());
  for (size_t k : {size_t{2}, size_t{3}}) {
    ExpectBitIdentity(graph, deltas, k, "label emptied");
  }
}

TEST(IncrementalTest, GuardViolationMatchesFullBuildError) {
  // A pair guard the BASE graph satisfies but the patched graph trips:
  // the incremental rebuild (same guard as the original build, per its
  // contract) must surface the same deterministic error class a full
  // build reports — never a silently partial map.
  GraphBuilder builder;
  builder.AddEdge(0, "a", 1);
  builder.AddEdge(1, "b", 2);
  auto built = builder.Build(/*with_reverse=*/true);
  ASSERT_TRUE(built.ok());
  Graph graph = std::move(*built);
  const LabelId b = *graph.labels().Find("b");

  SelectivityOptions guard;
  guard.max_pairs_per_prefix = 3;
  auto old_map = ComputeSelectivities(graph, 3, guard);
  ASSERT_TRUE(old_map.ok()) << old_map.status().ToString();

  // Fan label b out of vertex 1: prefix (a, b) now holds 4 pairs > 3.
  std::vector<EdgeDelta> deltas = {
      {true, 1, 3, b}, {true, 1, 4, b}, {true, 1, 5, b}};
  auto patched = PatchGraph(graph, deltas);
  ASSERT_TRUE(patched.ok());

  auto full = ComputeSelectivities(*patched, 3, guard);
  ASSERT_FALSE(full.ok());
  auto inc = IncrementalSelectivities(*patched, *old_map, deltas, guard);
  ASSERT_FALSE(inc.ok());
  EXPECT_EQ(inc.status().code(), full.status().code());
}

}  // namespace
}  // namespace maint
}  // namespace pathest
