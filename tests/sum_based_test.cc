// Unit tests for the sum-based ordering internals: Algorithm 1
// (permutation unranking within a combination), its inverse, and the
// three-stage structure of Algorithm 2.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ordering/sum_based.h"
#include "test_util.h"

namespace pathest {
namespace {

TEST(UnrankPermutationTest, SingleElement) {
  EXPECT_EQ(UnrankPermutationOfCombination(0, {7}),
            (std::vector<uint32_t>{7}));
}

TEST(UnrankPermutationTest, DistinctPair) {
  EXPECT_EQ(UnrankPermutationOfCombination(0, {1, 3}),
            (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(UnrankPermutationOfCombination(1, {1, 3}),
            (std::vector<uint32_t>{3, 1}));
}

TEST(UnrankPermutationTest, DuplicatePairHasOnePermutation) {
  EXPECT_EQ(UnrankPermutationOfCombination(0, {2, 2}),
            (std::vector<uint32_t>{2, 2}));
}

TEST(UnrankPermutationTest, ThreeElementsWithDuplicate) {
  // C = {1,1,2}: permutations in Algorithm-1 order:
  //   (1,1,2), (1,2,1), (2,1,1).
  EXPECT_EQ(UnrankPermutationOfCombination(0, {1, 1, 2}),
            (std::vector<uint32_t>{1, 1, 2}));
  EXPECT_EQ(UnrankPermutationOfCombination(1, {1, 1, 2}),
            (std::vector<uint32_t>{1, 2, 1}));
  EXPECT_EQ(UnrankPermutationOfCombination(2, {1, 1, 2}),
            (std::vector<uint32_t>{2, 1, 1}));
}

TEST(UnrankPermutationTest, EnumeratesAllDistinctPermutations) {
  for (const std::vector<uint32_t>& combo :
       {std::vector<uint32_t>{1, 2, 3}, {1, 1, 2, 2}, {1, 2, 2, 3, 3},
        {4, 4, 4, 4}}) {
    uint64_t n = MultisetPermutationCount(combo);
    std::set<std::vector<uint32_t>> seen;
    for (uint64_t i = 0; i < n; ++i) {
      auto perm = UnrankPermutationOfCombination(i, combo);
      // Same multiset.
      auto sorted = perm;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(sorted, combo);
      EXPECT_TRUE(seen.insert(perm).second) << "duplicate at " << i;
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(UnrankPermutationTest, OutOfRangeIndexAborts) {
  EXPECT_DEATH(UnrankPermutationOfCombination(2, {2, 2}), "out of range");
}

TEST(RankPermutationTest, InverseOfUnrank) {
  for (const std::vector<uint32_t>& combo :
       {std::vector<uint32_t>{1, 2}, {1, 1, 3}, {1, 2, 2, 4}, {2, 2, 2}}) {
    uint64_t n = MultisetPermutationCount(combo);
    for (uint64_t i = 0; i < n; ++i) {
      auto perm = UnrankPermutationOfCombination(i, combo);
      EXPECT_EQ(RankPermutationInCombination(perm, combo), i);
    }
  }
}

TEST(RankPermutationTest, RejectsForeignPermutation) {
  EXPECT_DEATH(RankPermutationInCombination({9, 1}, {1, 2}),
               "not a permutation");
}

class SumBasedStructureTest : public ::testing::Test {
 protected:
  SumBasedStructureTest()
      : graph_(testing_util::GraphWithCardinalities(
            {{"1", 50}, {"2", 10}, {"3", 30}, {"4", 20}})),
        space_(4, 3),
        ordering_(space_,
                  LabelRanking::Cardinality(
                      graph_.labels(), {50, 10, 30, 20})) {}

  Graph graph_;
  PathSpace space_;
  SumBasedOrdering ordering_;
};

TEST_F(SumBasedStructureTest, NameIsSumBased) {
  EXPECT_EQ(ordering_.name(), "sum-based");
}

TEST_F(SumBasedStructureTest, Stage1LengthBlocksAreContiguous) {
  // Indexes [0, 4) are length 1, [4, 20) length 2, [20, 84) length 3.
  for (uint64_t i = 0; i < ordering_.size(); ++i) {
    size_t len = ordering_.Unrank(i).length();
    if (i < 4) {
      EXPECT_EQ(len, 1u);
    } else if (i < 20) {
      EXPECT_EQ(len, 2u);
    } else {
      EXPECT_EQ(len, 3u);
    }
  }
}

TEST_F(SumBasedStructureTest, Stage2SumsAreNonDecreasingWithinLength) {
  const LabelRanking& ranking = ordering_.ranking();
  for (size_t len = 1; len <= 3; ++len) {
    uint64_t prev_sum = 0;
    for (uint64_t i = space_.LengthOffset(len);
         i < space_.LengthOffset(len) + space_.CountWithLength(len); ++i) {
      LabelPath p = ordering_.Unrank(i);
      uint64_t sr = 0;
      for (size_t j = 0; j < p.length(); ++j) {
        sr += ranking.RankOf(p.label(j));
      }
      EXPECT_GE(sr, prev_sum) << "index " << i;
      prev_sum = sr;
    }
  }
}

TEST_F(SumBasedStructureTest, Stage3CombinationBlocksAreContiguous) {
  // Within one length, paths with the same rank-multiset form one contiguous
  // block.
  std::set<std::vector<uint32_t>> closed;
  std::vector<uint32_t> current;
  const LabelRanking& ranking = ordering_.ranking();
  for (uint64_t i = space_.LengthOffset(3); i < ordering_.size(); ++i) {
    LabelPath p = ordering_.Unrank(i);
    std::vector<uint32_t> combo;
    for (size_t j = 0; j < p.length(); ++j) {
      combo.push_back(ranking.RankOf(p.label(j)));
    }
    std::sort(combo.begin(), combo.end());
    if (combo != current) {
      EXPECT_TRUE(closed.insert(combo).second)
          << "combination block re-opened at index " << i;
      current = combo;
    }
  }
}

TEST_F(SumBasedStructureTest, RankRejectsForeignPath) {
  EXPECT_DEATH(ordering_.Rank(LabelPath{9}), "outside space");
  EXPECT_DEATH(ordering_.Unrank(ordering_.size()), "out of range");
}

}  // namespace
}  // namespace pathest
